#!/usr/bin/env python
"""Markdown link checker for the repo's documentation surface.

Walks the given markdown files/directories, extracts inline links and
images (``[text](target)``), and verifies that every **relative** link
resolves to a real file (anchors are checked against the target file's
headings).  External ``http(s)``/``mailto`` links are only validated
syntactically — CI must not depend on third-party uptime.

Usage::

    python tools/check_links.py README.md docs src/repro/service/README.md

Exits non-zero listing every broken link, so the docs job fails when a
rename or deletion orphans a reference.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images; deliberately simple — our docs do not
#: use reference-style links or angle-bracket targets.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_PATTERN = re.compile(r"^(https?|mailto|ftp):")


def heading_anchors(path: Path) -> set[str]:
    """GitHub-style anchor slugs of a markdown file's headings."""
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        match = re.match(r"^#{1,6}\s+(.*)$", line)
        if not match:
            continue
        slug = match.group(1).strip().lower()
        slug = re.sub(r"[`*_~]", "", slug)
        slug = re.sub(r"[^\w\- ]", "", slug)
        anchors.add(slug.replace(" ", "-"))
    return anchors


def check_file(path: Path) -> list[str]:
    """All broken links in one markdown file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if EXTERNAL_PATTERN.match(target):
            continue  # syntactic presence is all we require offline
        target, _, fragment = target.partition("#")
        if not target:  # pure in-page anchor
            if fragment and fragment.lower() not in heading_anchors(path):
                problems.append(f"{path}: missing anchor #{fragment}")
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if fragment.lower() not in heading_anchors(resolved):
                problems.append(
                    f"{path}: missing anchor -> {target}#{fragment}"
                )
    return problems


def main(arguments: list[str]) -> int:
    """Check every markdown file under the given paths."""
    if not arguments:
        print(__doc__)
        return 2
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"checked {len(files)} file(s): {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
