#!/usr/bin/env python
"""Run ``python -m doctest`` over the documented public entry points.

The docs CI job (and ``tests/test_doctest_examples.py``) executes this
so the ``>>>`` examples in the docstrings — the quickstart surface of
the public API — stay runnable instead of rotting.  Modules are
imported and fed to :func:`doctest.testmod` (the file-path form of
``python -m doctest`` cannot resolve the package's relative imports).

Usage::

    PYTHONPATH=src python tools/run_doctests.py [module ...]

With no arguments, the curated module list below (every module that
carries ``>>>`` examples) is used.  Exits non-zero on any failure and
on a curated module that no longer contains any doctests (so silently
deleting the examples also fails the job).
"""

from __future__ import annotations

import doctest
import importlib
import sys

#: Every module carrying runnable ``>>>`` examples.  Extend this list
#: when adding examples to a new module.
DOCUMENTED_MODULES = (
    "repro.ansatz.base",
    "repro.landscape.generator",
    "repro.service.client",
    "repro.service.shards",
    "repro.service.store",
)


def run(module_names: list[str]) -> int:
    """Doctest every named module; returns a process exit code."""
    failures = 0
    for name in module_names:
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        status = "ok" if result.failed == 0 else "FAILED"
        print(
            f"{name}: {result.attempted} examples, "
            f"{result.failed} failures [{status}]"
        )
        if result.attempted == 0:
            print(f"{name}: expected runnable >>> examples, found none")
            failures += 1
        failures += result.failed
    return 1 if failures else 0


if __name__ == "__main__":
    names = sys.argv[1:] or list(DOCUMENTED_MODULES)
    sys.exit(run(names))
