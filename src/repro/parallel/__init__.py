"""Parallel landscape reconstruction (paper Sec. 5).

- :class:`~repro.parallel.scheduler.ParallelSampler` — distribute
  samples over a :class:`~repro.hardware.qpu.QpuPool` with optional
  noise compensation,
- :class:`~repro.parallel.ncm.NoiseCompensationModel` — linear
  regression mapping one device's expectations onto another's,
- :func:`~repro.parallel.eager.eager_reconstruct` — timeout-bounded
  reconstruction that sidesteps latency tails.
"""

from .eager import EagerOutcome, eager_reconstruct
from .ncm import NoiseCompensationModel
from .scheduler import ParallelSampler, SampleBatch

__all__ = [
    "EagerOutcome",
    "eager_reconstruct",
    "NoiseCompensationModel",
    "ParallelSampler",
    "SampleBatch",
]
