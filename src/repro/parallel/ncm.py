"""Noise Compensation Model (NCM).

When OSCAR samples a landscape on several devices at once, the
reconstruction mixes the devices' noise profiles and masks
hardware-specific effects (Sec. 5.1).  The NCM fixes this: train a
linear regression mapping expected values obtained on QPU-2 to the
values QPU-1 would have produced for the same circuit parameters, then
transform all QPU-2 samples before reconstruction.

A 1-D affine map ``y1 ~ a * y2 + b`` is exactly the right model for
depolarizing-dominated noise: a global depolarizing channel contracts
the traceless part of every expectation by a device-dependent factor
and shifts by the device-dependent mean, which is precisely an affine
relation between two devices' landscapes.  A quadratic option is
provided for the model-order ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseCompensationModel"]


@dataclass
class NoiseCompensationModel:
    """Polynomial regression from one device's values to another's.

    Attributes:
        degree: polynomial degree (1 = the paper's linear model).
    """

    degree: int = 1

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError("degree must be >= 1")
        self._coefficients: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has been called."""
        return self._coefficients is not None

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted polynomial coefficients (highest degree first)."""
        if self._coefficients is None:
            raise RuntimeError("NCM has not been trained")
        return self._coefficients.copy()

    def train(
        self, source_values: np.ndarray, target_values: np.ndarray
    ) -> "NoiseCompensationModel":
        """Fit the map from source-device to target-device values.

        Args:
            source_values: expectations measured on the device to be
                transformed (QPU-2).
            target_values: expectations measured on the reference device
                (QPU-1) *for the same circuit parameters*.
        """
        source = np.asarray(source_values, dtype=float).reshape(-1)
        target = np.asarray(target_values, dtype=float).reshape(-1)
        if source.shape != target.shape:
            raise ValueError("source/target training sets must align")
        if source.size < self.degree + 1:
            raise ValueError(
                f"need at least {self.degree + 1} training pairs for "
                f"degree {self.degree}"
            )
        if np.ptp(source) == 0.0:
            # Degenerate constant source: map everything to target mean.
            self._coefficients = np.zeros(self.degree + 1)
            self._coefficients[-1] = float(np.mean(target))
        else:
            self._coefficients = np.polyfit(source, target, deg=self.degree)
        return self

    def transform(self, source_values: np.ndarray) -> np.ndarray:
        """Map source-device values into the reference device's frame."""
        if self._coefficients is None:
            raise RuntimeError("NCM must be trained before transforming")
        source = np.asarray(source_values, dtype=float)
        return np.polyval(self._coefficients, source)

    def training_residual(
        self, source_values: np.ndarray, target_values: np.ndarray
    ) -> float:
        """RMS residual of the fit on a (source, target) pair set."""
        predicted = self.transform(source_values)
        target = np.asarray(target_values, dtype=float)
        return float(np.sqrt(np.mean((predicted - target) ** 2)))
