"""Parallel multi-QPU sampling (Sec. 5.1, Fig. 7).

OSCAR's samples are independent, so they can be distributed over a pool
of devices.  :class:`ParallelSampler` does exactly that — including the
NCM pipeline: hold out a small training fraction, execute it on *both*
the reference device and each secondary device, fit one
:class:`~repro.parallel.ncm.NoiseCompensationModel` per secondary
device, and transform the secondary devices' production samples into
the reference frame before reconstruction.

Execution is simulated, but job *timing* is modelled faithfully: each
sample gets a latency draw from its device's
:class:`~repro.hardware.latency.LatencyModel`, and the batch completes
at the device-wise maximum — the quantity eager reconstruction attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..hardware.qpu import QpuPool
from ..landscape.grid import ParameterGrid
from .ncm import NoiseCompensationModel
from ..utils import ensure_rng

__all__ = ["SampleBatch", "ParallelSampler"]


@dataclass
class SampleBatch:
    """Samples gathered by one parallel run.

    Attributes:
        flat_indices: grid indices of all gathered samples.
        values: cost values aligned with :attr:`flat_indices` (already
            NCM-transformed when compensation is enabled).
        latencies: per-sample completion times (seconds).
        device_of_sample: pool index that executed each sample.
        ncm_training_pairs: number of circuit parameters executed twice
            for NCM training (extra cost bookkeeping).
        training_latencies: completion times of the NCM training
            executions (reference and secondary devices).  These jobs
            run in the same batch, so they participate in the makespan
            — the paper's NCM-overhead claim depends on counting them.
    """

    flat_indices: np.ndarray
    values: np.ndarray
    latencies: np.ndarray
    device_of_sample: np.ndarray
    ncm_training_pairs: int = 0
    training_latencies: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def makespan(self) -> float:
        """Wall-clock completion time of the whole batch — the max over
        production *and* NCM-training job latencies."""
        slowest = 0.0
        if self.latencies.size:
            slowest = float(np.max(self.latencies))
        if self.training_latencies.size:
            slowest = max(slowest, float(np.max(self.training_latencies)))
        return slowest

    def completed_before(self, timeout: float) -> "SampleBatch":
        """The sub-batch whose production jobs finished within
        ``timeout`` seconds.

        NCM training jobs are *retained regardless of the timeout*:
        when compensation ran, every value in the batch causally
        depends on the training outputs, so training jobs can never be
        dropped — the sub-batch's makespan keeps accounting for them.
        """
        mask = self.latencies <= timeout
        return SampleBatch(
            self.flat_indices[mask],
            self.values[mask],
            self.latencies[mask],
            self.device_of_sample[mask],
            self.ncm_training_pairs,
            self.training_latencies,
        )


class ParallelSampler:
    """Distributes landscape sampling over a QPU pool."""

    def __init__(self, pool: QpuPool, grid: ParameterGrid, reference: str | None = None):
        self.pool = pool
        self.grid = grid
        self.reference = reference or pool.qpus[0].name

    def run(
        self,
        ansatz: Ansatz,
        flat_indices: np.ndarray,
        fractions: Sequence[float] | None = None,
        compensate: bool = False,
        ncm_training_fraction: float = 0.01,
        ncm: NoiseCompensationModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> SampleBatch:
        """Execute the sampled grid points across the pool.

        When compensation is on, the NCM training executions (reference
        device once, each secondary device once) are accounted as jobs
        of the batch: their latencies land in
        :attr:`SampleBatch.training_latencies` and participate in the
        makespan, since the paper's overhead claim counts them.

        Args:
            ansatz: the circuit family being characterised.
            flat_indices: grid points to evaluate.
            fractions: share of samples per QPU (default: even split).
            compensate: if True, fit an NCM per non-reference device and
                transform its values into the reference frame.
            ncm_training_fraction: fraction *of the full grid* used as
                NCM training pairs (the paper trains on 1%).
            ncm: optional pre-configured model (e.g. quadratic ablation);
                used as a template, re-trained per device.
            rng: RNG for choosing training points.
        """
        rng = ensure_rng(rng)
        flat_indices = np.asarray(flat_indices, dtype=int)
        if fractions is None:
            fractions = [1.0 / len(self.pool)] * len(self.pool)
        chunks = self.pool.split_indices(flat_indices, fractions)
        reference_qpu = self.pool.by_name(self.reference)
        reference_index = self.pool.qpus.index(reference_qpu)

        all_indices: list[np.ndarray] = []
        all_values: list[np.ndarray] = []
        all_latencies: list[np.ndarray] = []
        all_devices: list[np.ndarray] = []
        training_latencies: list[np.ndarray] = []
        training_pairs = 0

        # NCM training points: shared across devices, drawn (and their
        # parameter vectors materialised) exactly once.
        training_indices = np.empty(0, dtype=int)
        training_points = np.empty((0, self.grid.ndim))
        reference_training_values = np.empty(0)
        if compensate:
            count = max(
                2, int(round(ncm_training_fraction * self.grid.size))
            )
            training_indices = np.sort(
                rng.choice(self.grid.size, size=count, replace=False)
            )
            training_points = self.grid.points_from_flat(training_indices)
            reference_training_values = reference_qpu.execute_batch(
                ansatz, training_points
            )
            training_latencies.append(
                reference_qpu.sample_latencies(training_indices.size)
            )

        for device_index, (qpu, chunk) in enumerate(zip(self.pool, chunks)):
            if chunk.size == 0:
                continue
            points = self.grid.points_from_flat(chunk)
            values = qpu.execute_batch(ansatz, points)
            if compensate and device_index != reference_index:
                device_training_values = qpu.execute_batch(ansatz, training_points)
                training_latencies.append(
                    qpu.sample_latencies(training_indices.size)
                )
                model = NoiseCompensationModel(
                    degree=ncm.degree if ncm is not None else 1
                )
                model.train(device_training_values, reference_training_values)
                values = model.transform(values)
                training_pairs += training_indices.size
            all_indices.append(chunk)
            all_values.append(values)
            all_latencies.append(qpu.sample_latencies(chunk.size))
            all_devices.append(np.full(chunk.size, device_index))

        return SampleBatch(
            flat_indices=np.concatenate(all_indices) if all_indices else np.empty(0, int),
            values=np.concatenate(all_values) if all_values else np.empty(0),
            latencies=np.concatenate(all_latencies) if all_latencies else np.empty(0),
            device_of_sample=(
                np.concatenate(all_devices) if all_devices else np.empty(0, int)
            ),
            ncm_training_pairs=training_pairs,
            training_latencies=(
                np.concatenate(training_latencies)
                if training_latencies
                else np.empty(0)
            ),
        )
