"""Eager reconstruction (Sec. 5.2, "Relaxing Amdahl's Law").

A parallel sampling batch completes only when its *slowest* job does,
and cloud-QPU latency tails run 10x-30x above the median.  Eager
reconstruction sets a soft timeout, drops the straggler samples still
in flight, and reconstructs from whatever arrived — trading a slightly
lower sampling fraction (hence marginally higher NRMSE) for a large
reduction in time-to-landscape.

:func:`eager_reconstruct` implements the policy; the timeout is
expressed as a quantile of the batch's latency distribution so configs
transfer across latency scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..landscape.landscape import Landscape
from ..landscape.reconstructor import OscarReconstructor, ReconstructionReport
from .scheduler import SampleBatch

__all__ = ["EagerOutcome", "eager_reconstruct"]


@dataclass(frozen=True)
class EagerOutcome:
    """Result of an eager (timeout-bounded) reconstruction.

    Attributes:
        landscape: the reconstructed landscape.
        report: reconstruction diagnostics.
        timeout_seconds: the applied soft timeout.
        samples_used: jobs that finished in time.
        samples_dropped: straggler jobs discarded.
        full_makespan: completion time had we waited for every job.
        eager_makespan: actual completion time of the eager batch — the
            slowest *surviving* production job (at or before the
            timeout; waiting until the timeout itself is unnecessary
            once the last survivor has landed), or the slowest NCM
            training job if compensation ran, since training outputs
            are baked into the surviving values and cannot be dropped.
        time_saved_fraction: ``1 - eager_makespan / full_makespan``.
    """

    landscape: Landscape
    report: ReconstructionReport
    timeout_seconds: float
    samples_used: int
    samples_dropped: int
    full_makespan: float
    eager_makespan: float
    time_saved_fraction: float


def eager_reconstruct(
    reconstructor: OscarReconstructor,
    batch: SampleBatch,
    timeout_quantile: float = 0.95,
    label: str = "oscar-eager",
) -> EagerOutcome:
    """Reconstruct from the samples completed before a soft timeout.

    Args:
        reconstructor: configured for the batch's grid.
        batch: a parallel sampling batch with latency annotations.
        timeout_quantile: the soft timeout, as a quantile of the batch's
            latency distribution (0.95 drops the worst 5% of jobs).
        label: provenance tag for the reconstructed landscape.
    """
    if not 0.0 < timeout_quantile <= 1.0:
        raise ValueError("timeout quantile must be in (0, 1]")
    if batch.latencies.size == 0:
        raise ValueError("cannot reconstruct from an empty batch")
    timeout = float(np.quantile(batch.latencies, timeout_quantile))
    surviving = batch.completed_before(timeout)
    if surviving.flat_indices.size == 0:
        raise ValueError("timeout dropped every sample; raise the quantile")
    landscape, report = reconstructor.reconstruct_from_samples(
        surviving.flat_indices, surviving.values, label=label
    )
    full_makespan = batch.makespan
    # The eager batch completes when its slowest *surviving* job does —
    # at or before the timeout for production jobs, never at the
    # timeout itself.  completed_before retains NCM training jobs (the
    # surviving values are compensated with their outputs, so they can
    # never be dropped); surviving.makespan accounts for them.
    eager_makespan = surviving.makespan
    saved = 1.0 - eager_makespan / full_makespan if full_makespan > 0 else 0.0
    return EagerOutcome(
        landscape=landscape,
        report=report,
        timeout_seconds=timeout,
        samples_used=int(surviving.flat_indices.size),
        samples_dropped=int(batch.flat_indices.size - surviving.flat_indices.size),
        full_makespan=full_makespan,
        eager_makespan=eager_makespan,
        time_saved_fraction=float(max(saved, 0.0)),
    )
