"""Simulated hardware: noise-configured QPUs, pools, latency models.

- :class:`~repro.hardware.qpu.SimulatedQPU` — one device (noise + shots
  + latency),
- :class:`~repro.hardware.qpu.QpuPool` — multi-device job distribution,
- :class:`~repro.hardware.latency.LatencyModel` — heavy-tailed job
  latency (queuing + execution + Pareto tail),
- :data:`~repro.hardware.qpu.DEVICE_PROFILES` — named noise profiles
  ("ibm-lagos", "ibm-perth", "noisy-sim-i/ii", "ideal-sim").
"""

from .latency import LatencyModel
from .qpu import DEVICE_PROFILES, QpuPool, SimulatedQPU, device_profile

__all__ = ["LatencyModel", "DEVICE_PROFILES", "QpuPool", "SimulatedQPU", "device_profile"]
