"""Latency models for simulated QPUs.

The parallel-reconstruction experiments (Sec. 5.2) hinge on the shape of
real cloud-QPU latency: large queuing delays plus heavy-tailed circuit
execution times — the paper reports 10x-30x higher tail latency than
median.  :class:`LatencyModel` produces per-job completion times from a
log-normal body with an explicit Pareto tail, reproducing those
tail-to-median ratios, which is all the eager-reconstruction experiment
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """Heavy-tailed job latency: queue delay + execution time.

    Attributes:
        median_seconds: median circuit execution latency.
        sigma: log-normal shape parameter of the body.
        tail_probability: chance a job lands in the Pareto tail.
        tail_scale: tail start, as a multiple of the median.
        tail_alpha: Pareto index (smaller = heavier tail).
        queue_delay_seconds: fixed queuing delay added to every job.
    """

    median_seconds: float = 1.0
    sigma: float = 0.25
    tail_probability: float = 0.05
    tail_scale: float = 10.0
    tail_alpha: float = 1.5
    queue_delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.median_seconds <= 0:
            raise ValueError("median latency must be positive")
        if not 0.0 <= self.tail_probability < 1.0:
            raise ValueError("tail probability must be in [0, 1)")
        if self.tail_alpha <= 1.0:
            raise ValueError("tail alpha must exceed 1 for a finite mean")

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` job latencies (seconds)."""
        body = self.median_seconds * rng.lognormal(0.0, self.sigma, size=count)
        in_tail = rng.random(count) < self.tail_probability
        tail = (
            self.median_seconds
            * self.tail_scale
            * (1.0 + rng.pareto(self.tail_alpha, size=count))
        )
        latencies = np.where(in_tail, tail, body)
        return latencies + self.queue_delay_seconds

    def tail_to_median_ratio(self, rng: np.random.Generator, samples: int = 20000) -> float:
        """Empirical p99 / median ratio (sanity check for configs)."""
        draws = self.sample(samples, rng)
        return float(np.percentile(draws, 99) / np.median(draws))
