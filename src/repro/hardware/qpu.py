"""Simulated quantum processing units (QPUs).

The parallel-reconstruction and NCM experiments need multiple devices
with *different noise configurations* — the paper uses pairs of noisy
simulators (0.1%/0.5% vs 0.3%/0.7% gate errors), IBM Lagos/Perth, and
ideal simulation.  :class:`SimulatedQPU` wraps an ansatz execution with
a fixed :class:`~repro.quantum.noise.NoiseModel`, per-device shot
noise, and a latency model, which is everything the scheduler needs.

Named device profiles approximate the published calibration data of the
7-qubit IBM Falcon devices the paper used (median 1q error ~3e-4,
2q error ~7e-3 for Lagos; slightly worse for Perth) plus readout error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.noise import IDEAL, NoiseModel
from .latency import LatencyModel

__all__ = ["SimulatedQPU", "QpuPool", "device_profile", "DEVICE_PROFILES"]

DEVICE_PROFILES: dict[str, NoiseModel] = {
    "ideal-sim": IDEAL,
    "noisy-sim-i": NoiseModel(p1=0.001, p2=0.005, seed_tag="noisy-sim-i"),
    "noisy-sim-ii": NoiseModel(p1=0.003, p2=0.007, seed_tag="noisy-sim-ii"),
    "ibm-lagos": NoiseModel(p1=0.0003, p2=0.008, readout=0.012, seed_tag="ibm-lagos"),
    "ibm-perth": NoiseModel(p1=0.0005, p2=0.012, readout=0.025, seed_tag="ibm-perth"),
}


def device_profile(name: str) -> NoiseModel:
    """Look up a named device noise profile."""
    if name not in DEVICE_PROFILES:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICE_PROFILES)}"
        )
    return DEVICE_PROFILES[name]


@dataclass
class SimulatedQPU:
    """One simulated device: noise profile + shots + latency.

    Attributes:
        name: device identifier.
        noise: the device's noise model.
        shots: shots per expectation estimate (``None`` = exact).
        latency: job-latency model (used by the parallel scheduler).
        seed: RNG seed; every QPU owns an independent stream so
            multi-device experiments are reproducible.
    """

    name: str
    noise: NoiseModel = IDEAL
    shots: int | None = None
    latency: LatencyModel = field(default_factory=LatencyModel)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    @classmethod
    def from_profile(
        cls,
        name: str,
        shots: int | None = None,
        latency: LatencyModel | None = None,
        seed: int = 0,
    ) -> "SimulatedQPU":
        """Build a QPU from a named device profile."""
        return cls(
            name=name,
            noise=device_profile(name),
            shots=shots,
            latency=latency or LatencyModel(),
            seed=seed,
        )

    def execute(self, ansatz: Ansatz, parameters: np.ndarray) -> float:
        """One expectation estimate under this device's noise/shots."""
        return ansatz.expectation(
            parameters, noise=self.noise, shots=self.shots, rng=self._rng
        )

    def execute_batch(self, ansatz: Ansatz, points: np.ndarray) -> np.ndarray:
        """Expectations for an ``(m, k)`` batch of parameter vectors."""
        return np.array([self.execute(ansatz, point) for point in points])

    def sample_latencies(self, count: int) -> np.ndarray:
        """Per-job completion latencies for ``count`` jobs."""
        return self.latency.sample(count, self._rng)

    def reseed(self, seed: int) -> None:
        """Reset the device RNG (for independent experiment repeats)."""
        self._rng = np.random.default_rng(seed)


class QpuPool:
    """A set of QPUs jobs can be distributed over."""

    def __init__(self, qpus: Sequence[SimulatedQPU]):
        if not qpus:
            raise ValueError("a pool needs at least one QPU")
        names = [qpu.name for qpu in qpus]
        if len(set(names)) != len(names):
            raise ValueError("QPU names in a pool must be unique")
        self.qpus = list(qpus)

    def __len__(self) -> int:
        return len(self.qpus)

    def __iter__(self):
        return iter(self.qpus)

    def by_name(self, name: str) -> SimulatedQPU:
        """Look up a pool member by name."""
        for qpu in self.qpus:
            if qpu.name == name:
                return qpu
        raise KeyError(f"no QPU named {name!r} in pool")

    def split_indices(
        self, flat_indices: np.ndarray, fractions: Sequence[float]
    ) -> list[np.ndarray]:
        """Partition sample indices across the pool by target fractions.

        ``fractions`` must have one entry per QPU and sum to ~1; the
        Table 5 splits ("20%-80%" etc.) use this.
        """
        flat_indices = np.asarray(flat_indices, dtype=int)
        if len(fractions) != len(self.qpus):
            raise ValueError("need one fraction per QPU")
        total = float(sum(fractions))
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"fractions must sum to 1, got {total}")
        counts = [int(round(f * flat_indices.size)) for f in fractions]
        # Fix rounding drift on the last chunk.
        counts[-1] = flat_indices.size - sum(counts[:-1])
        if counts[-1] < 0:
            raise ValueError("fractions produce a negative final chunk")
        chunks = []
        cursor = 0
        for count in counts:
            chunks.append(flat_indices[cursor : cursor + count])
            cursor += count
        return chunks
