"""OSCAR: compressed-sensing cost-landscape reconstruction for VQA debugging.

Reproduction of Liu, Hao & Tannu, *"Enabling High Performance Debugging
for Variational Quantum Algorithms using Compressed Sensing"*
(ISCA 2023, arXiv:2308.03213).

Quickstart::

    from repro import (
        QaoaAnsatz, random_3_regular_maxcut, qaoa_grid,
        LandscapeGenerator, cost_function, OscarReconstructor, nrmse,
    )

    problem = random_3_regular_maxcut(10, seed=0)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=(30, 60))
    generator = LandscapeGenerator(cost_function(ansatz), grid)

    oscar = OscarReconstructor(grid, rng=0)
    landscape, report = oscar.reconstruct(generator, fraction=0.06)
    print(report.speedup, "x fewer circuit executions than grid search")

Subpackage map (details in DESIGN.md):

- :mod:`repro.quantum` — simulation substrate (circuits, statevector,
  density matrix, trajectories, noise),
- :mod:`repro.problems` — MaxCut / SK / Ising / chemistry Hamiltonians,
- :mod:`repro.ansatz` — QAOA / Two-local / UCCSD,
- :mod:`repro.cs` — DCT basis, L1 solvers, sampling,
- :mod:`repro.landscape` — grids, generation, OSCAR reconstruction,
  metrics, interpolation,
- :mod:`repro.mitigation` — ZNE / readout / dynamical decoupling,
- :mod:`repro.optimizers` — ADAM / COBYLA / SPSA / GD / Nelder-Mead,
- :mod:`repro.hardware` — simulated QPUs, pools, latency models,
- :mod:`repro.parallel` — multi-QPU sampling, NCM, eager reconstruction,
- :mod:`repro.initialization` — OSCAR-based initial points,
- :mod:`repro.service` — sharded multiprocess execution + the
  content-addressed landscape store,
- :mod:`repro.datasets` — synthetic Sycamore landscapes,
- :mod:`repro.viz` — ASCII heatmaps,
- :mod:`repro.experiments` — table/figure regeneration runners.
"""

from .ansatz import Ansatz, QaoaAnsatz, TwoLocalAnsatz, UccsdAnsatz
from .cs import ReconstructionConfig, ReconstructionEngine
from .hardware import LatencyModel, QpuPool, SimulatedQPU
from .initialization import OscarInitializer
from .landscape import (
    GridAxis,
    InterpolatedLandscape,
    Landscape,
    LandscapeGenerator,
    OscarReconstructor,
    ParameterGrid,
    cost_function,
    nrmse,
    qaoa_grid,
)
from .mitigation import (
    ZneConfig,
    ZneCostFunction,
    zne_cost_function,
    zne_expectation,
)
from .optimizers import Adam, Cobyla, NelderMead, Spsa
from .parallel import NoiseCompensationModel, ParallelSampler, eager_reconstruct
from .problems import (
    IsingProblem,
    PauliString,
    PauliSum,
    h2_hamiltonian,
    lih_hamiltonian,
    maxcut_from_graph,
    mesh_maxcut,
    random_3_regular_maxcut,
    sk_problem,
)
from .quantum import BatchedStatevector, NoiseModel, QuantumCircuit, Statevector
from .service import LandscapeSpec, LandscapeStore, ShardedExecutor
from .utils import ensure_rng

__version__ = "1.0.0"

__all__ = [
    "Ansatz",
    "QaoaAnsatz",
    "TwoLocalAnsatz",
    "UccsdAnsatz",
    "ReconstructionConfig",
    "ReconstructionEngine",
    "LatencyModel",
    "QpuPool",
    "SimulatedQPU",
    "OscarInitializer",
    "GridAxis",
    "InterpolatedLandscape",
    "Landscape",
    "LandscapeGenerator",
    "OscarReconstructor",
    "ParameterGrid",
    "cost_function",
    "nrmse",
    "qaoa_grid",
    "ZneConfig",
    "ZneCostFunction",
    "zne_cost_function",
    "zne_expectation",
    "Adam",
    "Cobyla",
    "NelderMead",
    "Spsa",
    "NoiseCompensationModel",
    "ParallelSampler",
    "eager_reconstruct",
    "BatchedStatevector",
    "LandscapeSpec",
    "LandscapeStore",
    "ShardedExecutor",
    "ensure_rng",
    "IsingProblem",
    "PauliString",
    "PauliSum",
    "h2_hamiltonian",
    "lih_hamiltonian",
    "maxcut_from_graph",
    "mesh_maxcut",
    "random_3_regular_maxcut",
    "sk_problem",
    "NoiseModel",
    "QuantumCircuit",
    "Statevector",
    "__version__",
]
