"""Command-line interface: quick OSCAR demos from the terminal.

``oscar-repro`` exposes the library's headline flows without writing
code:

- ``oscar-repro reconstruct`` — reconstruct a QAOA MaxCut landscape and
  print the NRMSE, speedup and an ASCII side-by-side view;
- ``oscar-repro sycamore`` — reconstruct a synthetic Sycamore landscape;
- ``oscar-repro speedup`` — run the headline speedup measurement;
- ``oscar-repro sparsity`` — print DCT sparsity for a problem family;
- ``oscar-repro batch`` — reconstruct a whole sampling-fraction sweep
  in one batched engine pass (optionally timed against the serial loop);
- ``oscar-repro pipeline`` — the one-request OSCAR pipeline: sample,
  evaluate, reconstruct and optimize in a single daemon round-trip
  (or the identical in-process sequence without ``--daemon``);
- ``oscar-repro serve`` — run the landscape daemon (persistent worker
  pool + shared cache behind a Unix socket, plus an authenticated TCP
  listener with ``--tcp``/``--tokens-file``); ``--daemon`` on the
  other commands routes their landscape generation through it
  (``--token`` authenticates against a token-gated daemon);
- ``oscar-repro cache`` — list, clear or summarize a landscape store.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from .ansatz import QaoaAnsatz
from .datasets import sycamore_landscape
from .experiments.speedup import measure_speedup
from .landscape import (
    LandscapeGenerator,
    OscarReconstructor,
    cost_function,
    nrmse,
    qaoa_grid,
    sample_and_evaluate,
)
from .optimizers import available_optimizers
from .problems import random_3_regular_maxcut, sk_problem
from .quantum import NoiseModel
from .viz import render_side_by_side

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="oscar-repro",
        description="OSCAR compressed-sensing VQA landscape reconstruction demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_batch_size(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--batch-size",
            type=int,
            default=None,
            help="grid points per vectorized execution pass "
            "(default: memory-capped automatic)",
        )

    def add_service(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers",
            type=int,
            default=1,
            help="processes for sharded landscape execution (default: 1, "
            "in-process)",
        )
        command.add_argument(
            "--cache-dir",
            default=None,
            help="content-addressed landscape store directory; repeated "
            "identical requests become file loads (see `oscar-repro cache`). "
            "NOTE: with --shots, either --workers > 1 or --cache-dir "
            "switches execution to the seeded per-shard rng plan "
            "(reproducible for any worker count, but a different draw "
            "order than the default single-process path)",
        )
        command.add_argument(
            "--daemon",
            default=None,
            metavar="TARGET",
            help="route landscape generation through the daemon on this "
            "Unix socket path or `tcp://host:port` target (see "
            "`oscar-repro serve`): shared persistent pool, shared cache, "
            "concurrent identical requests computed once.  Falls back to "
            "in-process execution when no daemon is listening",
        )
        command.add_argument(
            "--token",
            default=None,
            help="bearer token for an authenticated daemon (required for "
            "tcp:// targets; resolves to a tenant namespace server-side)",
        )

    recon = sub.add_parser("reconstruct", help="reconstruct a QAOA landscape")
    recon.add_argument("--qubits", type=int, default=10)
    recon.add_argument("--problem", choices=("maxcut", "sk"), default="maxcut")
    recon.add_argument("--fraction", type=float, default=0.06)
    recon.add_argument("--resolution", type=int, nargs=2, default=(30, 60))
    recon.add_argument("--noisy", action="store_true", help="add depolarizing noise")
    recon.add_argument(
        "--zne",
        choices=("off", "richardson", "linear"),
        default="off",
        help="zero-noise extrapolation on the noisy landscape "
        "(scale factors fold into the batched execution axis; "
        "implies --noisy)",
    )
    recon.add_argument(
        "--shots",
        type=int,
        default=None,
        help="per-query measurement shots (default: exact expectations)",
    )
    recon.add_argument("--seed", type=int, default=0)
    recon.add_argument("--render", action="store_true", help="print ASCII heatmaps")
    add_batch_size(recon)
    add_service(recon)

    syc = sub.add_parser("sycamore", help="reconstruct a synthetic Sycamore landscape")
    syc.add_argument("--kind", choices=("mesh", "3-regular", "sk"), default="sk")
    syc.add_argument("--fraction", type=float, default=0.41)
    syc.add_argument("--seed", type=int, default=0)
    syc.add_argument("--render", action="store_true")
    add_batch_size(syc)
    add_service(syc)

    speed = sub.add_parser("speedup", help="measure the headline speedup")
    speed.add_argument("--qubits", type=int, default=10)
    speed.add_argument("--target-nrmse", type=float, default=0.05)
    speed.add_argument("--seed", type=int, default=0)
    add_batch_size(speed)
    add_service(speed)

    sparse = sub.add_parser("sparsity", help="DCT sparsity of a landscape")
    sparse.add_argument("--qubits", type=int, default=10)
    sparse.add_argument("--problem", choices=("maxcut", "sk"), default="maxcut")
    sparse.add_argument("--seed", type=int, default=0)
    add_batch_size(sparse)
    add_service(sparse)

    adaptive = sub.add_parser(
        "adaptive", help="reconstruct with automatically chosen sampling fraction"
    )
    adaptive.add_argument("--qubits", type=int, default=10)
    adaptive.add_argument("--problem", choices=("maxcut", "sk"), default="maxcut")
    adaptive.add_argument("--target-error", type=float, default=0.1)
    adaptive.add_argument("--resolution", type=int, nargs=2, default=(30, 60))
    adaptive.add_argument("--seed", type=int, default=0)
    add_batch_size(adaptive)

    analyze = sub.add_parser(
        "analyze", help="landscape analysis: plateaus, local minima, symmetry"
    )
    analyze.add_argument("--qubits", type=int, default=10)
    analyze.add_argument("--problem", choices=("maxcut", "sk"), default="maxcut")
    analyze.add_argument("--fraction", type=float, default=0.08)
    analyze.add_argument("--resolution", type=int, nargs=2, default=(30, 60))
    analyze.add_argument("--seed", type=int, default=0)
    add_batch_size(analyze)

    serve = sub.add_parser(
        "serve",
        help="run the landscape daemon (persistent pool + shared cache "
        "on a Unix socket, optionally an authenticated TCP listener)",
    )
    serve.add_argument(
        "--socket",
        default=None,
        help="Unix-socket path to bind (default: oscar-repro.sock in "
        "the working directory)",
    )
    serve.add_argument(
        "--tcp",
        default=None,
        metavar="HOST:PORT",
        help="also listen on TCP (pickle-free v2 protocol only; requires "
        "--tokens-file).  Port 0 binds an ephemeral port, printed at "
        "startup",
    )
    serve.add_argument(
        "--tokens-file",
        default=None,
        metavar="FILE",
        help="JSON bearer-token file mapping tenant names to tokens "
        '(`{"alice": "tok", "bob": {"token": "...", "quota_bytes": 1000}}`); '
        "each tenant gets its own store namespace",
    )
    serve.add_argument(
        "--tenant-quota-bytes",
        type=int,
        default=None,
        help="default per-tenant store byte budget for tenants whose "
        "credential does not set quota_bytes (default: unbounded)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="persistent worker-pool size (forked once at startup; "
        "default: 1, in-process)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="landscape store directory shared by every client "
        "(default: no cache — requests still dedup in flight)",
    )
    serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="LRU byte budget for the store (default: unbounded)",
    )
    serve.add_argument(
        "--shard-points",
        type=int,
        default=None,
        help="default points per shard for requests that do not set "
        "their own (default: automatic, worker-count independent)",
    )

    cache = sub.add_parser(
        "cache", help="inspect, summarize or clear a landscape store"
    )
    cache.add_argument("action", choices=("list", "clear", "stats"))
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="store directory to operate on (required unless --socket)",
    )
    cache.add_argument(
        "--socket",
        default=None,
        metavar="TARGET",
        help="ask a running daemon instead of reading a directory — a "
        "Unix socket path or `tcp://host:port` (stats: live hit/miss/"
        "dedup counters and per-tenant accounting; list: the daemon's "
        "index; clear is directory-only)",
    )
    cache.add_argument(
        "--token",
        default=None,
        help="bearer token for an authenticated daemon (required for "
        "tcp:// targets)",
    )

    batch = sub.add_parser(
        "batch",
        help="batched engine: reconstruct a whole fraction sweep in one pass",
    )
    batch.add_argument("--qubits", type=int, default=10)
    batch.add_argument("--problem", choices=("maxcut", "sk"), default="maxcut")
    batch.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=(0.04, 0.06, 0.08, 0.10, 0.15),
        help="one landscape is reconstructed per sampling fraction",
    )
    batch.add_argument("--resolution", type=int, nargs=2, default=(30, 60))
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--compare-serial",
        action="store_true",
        help="also time the serial per-landscape path",
    )
    batch.add_argument(
        "--daemon",
        default=None,
        metavar="TARGET",
        help="serve the dense ground-truth landscape through the daemon "
        "on this Unix socket path or `tcp://host:port` target "
        "(in-process fallback when absent)",
    )
    batch.add_argument(
        "--token",
        default=None,
        help="bearer token for an authenticated daemon (required for "
        "tcp:// targets)",
    )
    add_batch_size(batch)

    pipe = sub.add_parser(
        "pipeline",
        help="one-request OSCAR pipeline: sample, evaluate, reconstruct "
        "and optimize (server-side with --daemon)",
    )
    pipe.add_argument("--qubits", type=int, default=10)
    pipe.add_argument("--problem", choices=("maxcut", "sk"), default="maxcut")
    pipe.add_argument("--fraction", type=float, default=0.08)
    pipe.add_argument("--resolution", type=int, nargs=2, default=(30, 60))
    pipe.add_argument(
        "--optimizer",
        choices=available_optimizers(),
        default="cobyla",
        help="optimizer run on the reconstructed landscape surrogate",
    )
    pipe.add_argument(
        "--sampler", choices=("uniform", "stratified"), default="uniform"
    )
    pipe.add_argument("--noisy", action="store_true", help="add depolarizing noise")
    pipe.add_argument(
        "--shots",
        type=int,
        default=None,
        help="per-query measurement shots (default: exact expectations)",
    )
    pipe.add_argument("--seed", type=int, default=0)
    add_batch_size(pipe)
    add_service(pipe)
    return parser


def _problem(kind: str, qubits: int, seed: int):
    if kind == "maxcut":
        return random_3_regular_maxcut(qubits, seed=seed)
    return sk_problem(qubits, seed=seed)


def _store(args: argparse.Namespace):
    """A LandscapeStore for --cache-dir, or ``None`` when unset."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from .service import LandscapeStore

    return LandscapeStore(args.cache_dir)


def _command_reconstruct(args: argparse.Namespace) -> int:
    from .mitigation import ZneConfig, zne_cost_function

    problem = _problem(args.problem, args.qubits, args.seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=tuple(args.resolution))
    mitigated = args.zne != "off"
    noise = NoiseModel(p1=0.003, p2=0.007) if (args.noisy or mitigated) else None
    rng = np.random.default_rng(args.seed) if args.shots is not None else None
    if mitigated:
        config = (
            ZneConfig((1.0, 2.0, 3.0), "richardson")
            if args.zne == "richardson"
            else ZneConfig((1.0, 3.0), "linear")
        )
        function = zne_cost_function(
            ansatz, noise, config, shots=args.shots, rng=rng
        )
        print(
            f"zne: {args.zne} (scales {config.scale_factors}, "
            f"{function.rows_per_point} execution rows per point)"
        )
    else:
        function = cost_function(ansatz, noise=noise, shots=args.shots, rng=rng)
    generator = LandscapeGenerator(
        function,
        grid,
        batch_size=args.batch_size,
        workers=args.workers,
        # Multiprocess (or cached/daemon-served) shot noise needs a
        # seeding plan the cache key can record; exact runs stay
        # plan-independent.
        seed=args.seed
        if (
            args.shots is not None
            and (args.workers > 1 or args.cache_dir or args.daemon)
        )
        else None,
        store=_store(args),
        daemon=args.daemon,
        daemon_token=args.token,
    )
    truth = generator.grid_search(label="grid-search")
    oscar = OscarReconstructor(grid, rng=args.seed)
    reconstruction, report = oscar.reconstruct(generator, args.fraction)
    print(f"problem: {problem.name}  grid: {grid.shape} ({grid.size} points)")
    print(
        f"samples: {report.num_samples} ({100 * report.sampling_fraction:.1f}%)  "
        f"speedup: {report.speedup:.1f}x  NRMSE: "
        f"{nrmse(truth.values, reconstruction.values):.4f}"
    )
    if args.render:
        print(render_side_by_side(truth, reconstruction))
    return 0


def _command_sycamore(args: argparse.Namespace) -> int:
    hardware, _ = sycamore_landscape(
        args.kind,
        seed=args.seed,
        batch_size=args.batch_size,
        workers=args.workers,
        store=_store(args),
        daemon=args.daemon,
        daemon_token=args.token,
    )
    oscar = OscarReconstructor(hardware.grid, rng=args.seed)
    indices = oscar.sample_indices(args.fraction)
    reconstruction, report = oscar.reconstruct_from_samples(
        indices, hardware.flat()[indices]
    )
    print(
        f"sycamore-{args.kind}: {report.num_samples} samples "
        f"({100 * report.sampling_fraction:.0f}%)  NRMSE: "
        f"{nrmse(hardware.values, reconstruction.values):.4f}"
    )
    if args.render:
        print(render_side_by_side(hardware, reconstruction))
    return 0


def _command_speedup(args: argparse.Namespace) -> int:
    result = measure_speedup(
        num_qubits=args.qubits,
        target_nrmse=args.target_nrmse,
        seed=args.seed,
        batch_size=args.batch_size,
        workers=args.workers,
        store=_store(args),
        daemon=args.daemon,
        daemon_token=args.token,
    )
    print(
        f"grid: {result.grid_executions} executions  "
        f"oscar: {result.oscar_executions} executions  "
        f"speedup: {result.speedup:.1f}x at NRMSE {result.achieved_nrmse:.4f} "
        f"(target {result.target_nrmse})"
    )
    return 0


def _command_sparsity(args: argparse.Namespace) -> int:
    problem = _problem(args.problem, args.qubits, args.seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=(30, 60))
    generator = LandscapeGenerator(
        cost_function(ansatz),
        grid,
        batch_size=args.batch_size,
        workers=args.workers,
        store=_store(args),
        daemon=args.daemon,
        daemon_token=args.token,
    )
    truth = generator.grid_search()
    fraction = truth.dct_sparsity()
    print(
        f"{problem.name}: {100 * fraction:.4f}% of DCT coefficients hold "
        "99% of the landscape energy"
    )
    return 0


def _command_adaptive(args: argparse.Namespace) -> int:
    from .landscape import AdaptiveConfig, adaptive_reconstruct

    problem = _problem(args.problem, args.qubits, args.seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=tuple(args.resolution))
    generator = LandscapeGenerator(
        cost_function(ansatz), grid, batch_size=args.batch_size
    )
    oscar = OscarReconstructor(grid, rng=args.seed)
    outcome = adaptive_reconstruct(
        oscar, generator, AdaptiveConfig(target_error=args.target_error)
    )
    for round_index, (fraction, estimate) in enumerate(
        zip(outcome.fractions, outcome.error_estimates)
    ):
        print(
            f"round {round_index}: fraction {100 * fraction:5.1f}%  "
            f"holdout error estimate {estimate:.4f}"
        )
    status = "met" if outcome.met_target else "NOT met (fraction cap)"
    print(
        f"target {args.target_error} {status} with "
        f"{outcome.report.num_samples} circuit executions "
        f"({outcome.report.speedup:.1f}x cheaper than grid search)"
    )
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    from .landscape import (
        barren_plateau_fraction,
        find_local_minima,
        time_reversal_symmetry_error,
    )

    problem = _problem(args.problem, args.qubits, args.seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=tuple(args.resolution))
    generator = LandscapeGenerator(
        cost_function(ansatz), grid, batch_size=args.batch_size
    )
    oscar = OscarReconstructor(grid, rng=args.seed)
    landscape, report = oscar.reconstruct(generator, args.fraction)
    minima = find_local_minima(landscape)
    print(f"landscape from {report.num_samples} samples ({report.speedup:.1f}x speedup)")
    print(f"barren-plateau fraction: {100 * barren_plateau_fraction(landscape):.1f}%")
    print(f"local minima: {len(minima)} (best {minima[0][1]:+.4f})")
    print(
        f"time-reversal symmetry error: "
        f"{time_reversal_symmetry_error(landscape):.4f} "
        "(should be ~0 for a healthy QAOA landscape)"
    )
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    import time

    problem = _problem(args.problem, args.qubits, args.seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=tuple(args.resolution))
    generator = LandscapeGenerator(
        cost_function(ansatz),
        grid,
        batch_size=args.batch_size,
        daemon=args.daemon,
        daemon_token=args.token,
    )
    truth = generator.grid_search(label="grid-search")
    oscar = OscarReconstructor(grid, rng=args.seed)
    sample_sets = [
        sample_and_evaluate(generator, oscar, fraction)
        for fraction in args.fractions
    ]
    start = time.perf_counter()
    reconstructions = oscar.reconstruct_many(sample_sets)
    batched_seconds = time.perf_counter() - start
    print(
        f"problem: {problem.name}  grid: {grid.shape} ({grid.size} points)  "
        f"stack: {len(sample_sets)} landscapes"
    )
    for fraction, (landscape, report) in zip(args.fractions, reconstructions):
        print(
            f"  fraction {100 * fraction:5.1f}%  samples {report.num_samples:5d}  "
            f"iters {report.solver_iterations:4d}  NRMSE "
            f"{nrmse(truth.values, landscape.values):.4f}"
        )
    print(f"batched engine: {batched_seconds:.3f}s for the whole stack")
    if args.compare_serial:
        start = time.perf_counter()
        for indices, values in sample_sets:
            oscar.reconstruct_from_samples(indices, values)
        serial_seconds = time.perf_counter() - start
        print(
            f"serial loop:    {serial_seconds:.3f}s "
            f"({serial_seconds / max(batched_seconds, 1e-9):.1f}x slower)"
        )
    return 0


def _command_pipeline(args: argparse.Namespace) -> int:
    from .service import PipelineConfig

    problem = _problem(args.problem, args.qubits, args.seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=tuple(args.resolution))
    noise = NoiseModel(p1=0.003, p2=0.007) if args.noisy else None
    rng = np.random.default_rng(args.seed) if args.shots is not None else None
    generator = LandscapeGenerator(
        cost_function(ansatz, noise=noise, shots=args.shots, rng=rng),
        grid,
        batch_size=args.batch_size,
        workers=args.workers,
        # Multiprocess (or cached/daemon-served) shot noise needs a
        # seeding plan the cache key can record; exact runs stay
        # plan-independent.
        seed=args.seed
        if (
            args.shots is not None
            and (args.workers > 1 or args.cache_dir or args.daemon)
        )
        else None,
        store=_store(args),
        daemon=args.daemon,
        daemon_token=args.token,
    )
    config = PipelineConfig(
        fraction=args.fraction,
        sampler=args.sampler,
        optimizer=args.optimizer,
    )
    outcome = generator.run_pipeline(config, sample_rng=args.seed)
    report = outcome.report
    result = outcome.optimization
    print(f"problem: {problem.name}  grid: {grid.shape} ({grid.size} points)")
    print(
        f"samples: {report.num_samples} ({100 * report.sampling_fraction:.1f}%)  "
        f"speedup: {report.speedup:.1f}x  solver iters: "
        f"{report.solver_iterations}"
    )
    point = "  ".join(f"{value:+.4f}" for value in result.parameters)
    print(
        f"{args.optimizer}: best {result.value:+.6f} at [{point}]  "
        f"queries {result.num_queries}  "
        f"{'converged' if result.converged else 'NOT converged'}"
    )
    stages = "  ".join(
        f"{name} {seconds * 1000:.1f}ms"
        for name, seconds in outcome.timings.items()
    )
    if stages:
        print(f"stages: {stages}")
    served = outcome.served_by
    if outcome.key is not None:
        served += f"  (cached as {outcome.key})"
    print(f"served by: {served}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .service import DEFAULT_SOCKET, LandscapeDaemon

    socket_path = args.socket or DEFAULT_SOCKET
    tcp = None
    if args.tcp is not None:
        host, _, port = args.tcp.rpartition(":")
        if not port.isdigit():
            print(f"serve: --tcp expects HOST:PORT, got {args.tcp!r}")
            return 2
        tcp = (host or "127.0.0.1", int(port))
    try:
        daemon = LandscapeDaemon(
            socket_path,
            workers=args.workers,
            cache_dir=args.cache_dir,
            max_bytes=args.max_bytes,
            shard_points=args.shard_points,
            tcp=tcp,
            tokens_file=args.tokens_file,
            tenant_quota_bytes=args.tenant_quota_bytes,
        )
    except ValueError as error:
        print(f"serve: {error}")
        return 2
    cache = args.cache_dir or "disabled (in-flight dedup only)"
    try:
        # Bind before printing the banner so --tcp HOST:0 reports the
        # ephemeral port it actually got (serve_forever's own bind is
        # idempotent).
        daemon._bind()
    except OSError as error:
        print(f"serve: cannot bind: {error}")
        return 2
    print(
        f"landscape daemon: socket {socket_path}  workers {args.workers}  "
        f"cache {cache}"
    )
    if daemon.tcp_address is not None:
        host, port = daemon.tcp_address
        print(
            f"  tcp tcp://{host}:{port}  (bearer tokens from "
            f"{args.tokens_file})"
        )
    print("serving; stop with Ctrl-C or a client shutdown request")
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    print("daemon stopped")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from .service import (
        DaemonError,
        DaemonUnavailable,
        LandscapeClient,
        LandscapeStore,
    )

    if args.socket is not None and args.action in ("list", "stats"):
        client = LandscapeClient(args.socket, fallback=False, token=args.token)
        try:
            return _cache_from_daemon(client, args.action)
        except DaemonUnavailable:
            print(f"cache: no landscape daemon reachable on {args.socket}")
            return 2
        except DaemonError as error:
            print(f"cache: daemon refused the request: {error}")
            return 2

    if args.cache_dir is None:
        print("cache: --cache-dir is required (or --socket for a daemon)")
        return 2
    store = LandscapeStore(args.cache_dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached landscape(s) from {store.root}")
        return 0
    if args.action == "stats":
        stats = store.stats()
        budget = "unbounded" if stats["max_bytes"] is None else stats["max_bytes"]
        print(
            f"{stats['entries']} cached landscape(s) in {stats['root']}: "
            f"{stats['payload_bytes']} payload bytes (budget: {budget})"
        )
        return 0
    entries = store.entries()
    if not entries:
        print(f"no cached landscapes in {store.root}")
        return 0
    print(f"{len(entries)} cached landscape(s) in {store.root} "
          f"({store.total_bytes()} payload bytes), LRU first:")
    for entry in entries:
        print(
            f"  {entry.key}  {entry.payload_bytes:>8d} B  "
            f"access {entry.access:>4d}  {entry.label}"
        )
    return 0


def _cache_from_daemon(client, action: str) -> int:
    """``oscar-repro cache list|stats`` against a live daemon socket."""
    if action == "stats":
        stats = client.stats()
        counters = stats["counters"]
        print(
            f"daemon pid {stats['pid']}  workers {stats['workers']}  "
            f"uptime {stats['uptime']:.1f}s"
        )
        print(
            "  requests {requests}  hits {hits}  misses {misses}  "
            "computed {computed}  deduped {deduped}  "
            "errors {errors}".format(**counters)
        )
        print(
            "  sparse: read-through {sparse_hits}  computed "
            "{sparse_computed}  deduped {sparse_deduped}  "
            "pipelines {pipeline_runs}".format(
                **{
                    name: counters.get(name, 0)
                    for name in (
                        "sparse_hits",
                        "sparse_computed",
                        "sparse_deduped",
                        "pipeline_runs",
                    )
                }
            )
        )
        store = stats["store"]
        if store is None:
            print("  store: disabled")
        else:
            print(
                f"  store: {store['entries']} entries, "
                f"{store['payload_bytes']} payload bytes in "
                f"{store['root']}"
            )
        for tenant, accounting in stats.get("tenants", {}).items():
            ops = "  ".join(
                f"{op} {count}"
                for op, count in sorted(accounting.get("ops", {}).items())
            )
            tenant_store = accounting.get("store")
            if tenant_store is None:
                usage = "store disabled"
            else:
                budget = tenant_store.get("max_bytes")
                budget = "unbounded" if budget is None else f"{budget} B quota"
                usage = (
                    f"{tenant_store['entries']} entries, "
                    f"{tenant_store['payload_bytes']} B ({budget})"
                )
            print(f"  tenant {tenant}: {usage}" + (f"  ops: {ops}" if ops else ""))
        return 0
    entries = client.index()
    if not entries:
        print("no cached landscapes served by the daemon")
        return 0
    print(f"{len(entries)} cached landscape(s), LRU first:")
    for entry in entries:
        print(
            f"  {entry['key']}  {entry['payload_bytes']:>8d} B  "
            f"access {entry['access']:>4d}  {entry['label']}"
        )
    return 0


_COMMANDS = {
    "reconstruct": _command_reconstruct,
    "sycamore": _command_sycamore,
    "speedup": _command_speedup,
    "sparsity": _command_sparsity,
    "adaptive": _command_adaptive,
    "analyze": _command_analyze,
    "batch": _command_batch,
    "pipeline": _command_pipeline,
    "serve": _command_serve,
    "cache": _command_cache,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
