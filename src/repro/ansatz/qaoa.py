"""The QAOA ansatz (Farhi, Goldstone, Gutmann 2014).

For a diagonal cost Hamiltonian ``C`` and ``p`` layers, the circuit is

    |psi(beta, gamma)> = prod_{l=1..p} U_B(beta_l) U_P(gamma_l) H^{(x)n} |0>,

with the phase separator ``U_P(gamma) = exp(-i gamma C)`` and the
transverse-field mixer ``U_B(beta) = exp(-i beta sum_i X_i)``, i.e.
``RX(2 beta)`` on every qubit.

Two execution paths are provided:

- :meth:`QaoaAnsatz.circuit` emits an explicit gate circuit (H + RZZ/RZ
  + RX), used by the noisy simulators and by ZNE folding;
- the expectation fast path exploits that ``U_P`` is an elementwise
  phase multiply on the statevector, making a full dense landscape grid
  (Table 1: 5k-32k points) tractable on one CPU core.

Parameter vector layout is ``[beta_1..beta_p, gamma_1..gamma_p]``,
matching the paper's ``(beta, gamma)`` axis order for p=1 landscapes.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..problems.ising import IsingProblem
from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import rx as rx_matrix
from ..quantum.noise import NoiseModel, global_depolarizing_factor
from ..quantum.statevector import Statevector
from ..quantum.trajectories import trajectory_expectation_diagonal
from .base import Ansatz

__all__ = ["QaoaAnsatz"]


class QaoaAnsatz(Ansatz):
    """Depth-``p`` QAOA for a diagonal Ising cost Hamiltonian."""

    def __init__(self, problem: IsingProblem, p: int = 1):
        if p < 1:
            raise ValueError("QAOA depth p must be >= 1")
        self.problem = problem
        self.p = int(p)
        self.num_qubits = problem.num_qubits
        self.num_parameters = 2 * self.p
        self._cost_diagonal = problem.cost_diagonal()
        # Mean cost of the traceless part: depolarizing noise pulls the
        # landscape toward this value, not toward zero.
        self._cost_mean = float(np.mean(self._cost_diagonal))

    # -- circuit path -----------------------------------------------------

    def circuit(self, parameters: Sequence[float]) -> QuantumCircuit:
        """Explicit gate circuit: H layer, then p x (cost, mixer)."""
        values = self._validate(parameters)
        betas, gammas = values[: self.p], values[self.p :]
        qc = QuantumCircuit(self.num_qubits, name=f"qaoa-p{self.p}")
        for qubit in range(self.num_qubits):
            qc.h(qubit)
        for beta, gamma in zip(betas, gammas):
            for i, j, weight in self.problem.couplings:
                qc.rzz(2.0 * gamma * weight, i, j)
            for i, strength in self.problem.fields:
                qc.rz(2.0 * gamma * strength, i)
            for qubit in range(self.num_qubits):
                qc.rx(2.0 * beta, qubit)
        return qc

    # -- fast path ----------------------------------------------------------

    def statevector(self, parameters: Sequence[float]) -> Statevector:
        """Exact output state via the diagonal-phase fast path."""
        values = self._validate(parameters)
        betas, gammas = values[: self.p], values[self.p :]
        n = self.num_qubits
        dim = 1 << n
        state = Statevector(n, np.full(dim, 1.0 / math.sqrt(dim), dtype=complex))
        for beta, gamma in zip(betas, gammas):
            state.apply_diagonal(np.exp(-1j * gamma * self._cost_diagonal))
            mixer = rx_matrix(2.0 * beta)
            for qubit in range(n):
                state.apply_one_qubit(mixer, qubit)
        return state

    def expectation(
        self,
        parameters: Sequence[float],
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Expected cost ``<C>`` at the given angles.

        Ideal, exact requests use the fast path.  Noisy requests use the
        analytic global-depolarizing contraction of the traceless cost
        (calibrated on the explicit gate circuit) — the regime the
        paper's Fig. 4(b)/(d) experiments probe — with optional shot
        noise layered on top.  For exact per-gate noisy simulation use
        :func:`repro.quantum.density.simulate_density` or the trajectory
        engine directly.
        """
        state = self.statevector(parameters)
        exact = state.expectation_diagonal(self._cost_diagonal)
        factor = 1.0
        if noise is not None and not noise.is_ideal:
            factor = global_depolarizing_factor(self.circuit(parameters), noise)
            # Symmetric readout flips with probability r scale every
            # 2-local ZZ term of the cost by (1 - 2r)^2 (and 1-local Z
            # terms by (1 - 2r); couplings dominate QAOA costs).
            factor *= (1.0 - 2.0 * noise.readout) ** 2
            exact = self._cost_mean + factor * (exact - self._cost_mean)
        if shots is None:
            return exact
        rng = rng or np.random.default_rng()
        # Shot noise of the (possibly contracted) estimator: sample the
        # ideal distribution, rescale the traceless part to match.
        sampled = state.sample_expectation_diagonal(self._cost_diagonal, shots, rng)
        if noise is not None and not noise.is_ideal:
            sampled = self._cost_mean + factor * (sampled - self._cost_mean)
        return sampled

    def expectation_trajectory(
        self,
        parameters: Sequence[float],
        noise: NoiseModel,
        num_trajectories: int = 32,
        shots_per_trajectory: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Per-gate stochastic noisy estimate (the trajectory engine)."""
        return trajectory_expectation_diagonal(
            self.circuit(parameters),
            self._cost_diagonal,
            noise,
            num_trajectories=num_trajectories,
            shots_per_trajectory=shots_per_trajectory,
            rng=rng,
        )

    @property
    def cost_diagonal(self) -> np.ndarray:
        """The problem's diagonal cost vector (read-only copy)."""
        return self._cost_diagonal.copy()

    def parameter_names(self) -> list[str]:
        return [f"beta_{l}" for l in range(self.p)] + [
            f"gamma_{l}" for l in range(self.p)
        ]
