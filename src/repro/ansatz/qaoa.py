"""The QAOA ansatz (Farhi, Goldstone, Gutmann 2014).

For a diagonal cost Hamiltonian ``C`` and ``p`` layers, the circuit is

    |psi(beta, gamma)> = prod_{l=1..p} U_B(beta_l) U_P(gamma_l) H^{(x)n} |0>,

with the phase separator ``U_P(gamma) = exp(-i gamma C)`` and the
transverse-field mixer ``U_B(beta) = exp(-i beta sum_i X_i)``, i.e.
``RX(2 beta)`` on every qubit.

Two execution paths are provided:

- :meth:`QaoaAnsatz.circuit` emits an explicit gate circuit (H + RZZ/RZ
  + RX), used by the noisy simulators and by ZNE folding;
- the expectation fast path exploits that ``U_P`` is an elementwise
  phase multiply on the statevector, making a full dense landscape grid
  (Table 1: 5k-32k points) tractable on one CPU core.

The fast path comes in scalar and batched flavours:
:meth:`QaoaAnsatz.expectation_many` stacks many ``(beta, gamma)``
bindings along a leading axis of a
:class:`~repro.quantum.batched.BatchedStatevector` — the cost layer is
one broadcast ``exp(-1j * gamma[:, None] * cost_diagonal)`` multiply and
the mixer one contraction with a per-row RX stack — which is what makes
batched landscape generation an order of magnitude faster than the
point-at-a-time loop.

Parameter vector layout is ``[beta_1..beta_p, gamma_1..gamma_p]``,
matching the paper's ``(beta, gamma)`` axis order for p=1 landscapes.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..problems.ising import IsingProblem
from ..quantum.batched import BatchedStatevector
from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import rx as rx_matrix
from ..quantum.noise import NoiseModel, global_depolarizing_factor
from ..quantum.statevector import Statevector
from ..quantum.trajectories import trajectory_expectation_diagonal
from ..utils import ensure_rng
from .base import Ansatz

__all__ = ["QaoaAnsatz"]


class QaoaAnsatz(Ansatz):
    """Depth-``p`` QAOA for a diagonal Ising cost Hamiltonian."""

    #: Noisy rows use the analytic global-depolarizing contraction (no
    #: density matrices), so noise never shrinks the batch capacity.
    noisy_engine = "contraction"

    def __init__(self, problem: IsingProblem, p: int = 1):
        if p < 1:
            raise ValueError("QAOA depth p must be >= 1")
        self.problem = problem
        self.p = int(p)
        self.num_qubits = problem.num_qubits
        self.num_parameters = 2 * self.p
        self._cost_diagonal = problem.cost_diagonal()
        # Mean cost of the traceless part: depolarizing noise pulls the
        # landscape toward this value, not toward zero.
        self._cost_mean = float(np.mean(self._cost_diagonal))
        # The depolarizing contraction depends only on gate counts (the
        # circuit structure is parameter-independent), so it is cached
        # per noise model instead of rebuilt at every grid point.
        self._noise_factors: dict[NoiseModel, float] = {}
        # Lazy lookup tables for the batched fast path (built on first
        # expectation_many call): basis-state popcounts for the mixer
        # phases, and a compressed cost table when the cost diagonal
        # takes few distinct values (integer-weight MaxCut et al.).
        self._popcount: np.ndarray | None = None
        self._cost_table: tuple[np.ndarray, np.ndarray] | None = None

    # -- circuit path -----------------------------------------------------

    def circuit(self, parameters: Sequence[float]) -> QuantumCircuit:
        """Explicit gate circuit: H layer, then p x (cost, mixer)."""
        values = self._validate(parameters)
        betas, gammas = values[: self.p], values[self.p :]
        qc = QuantumCircuit(self.num_qubits, name=f"qaoa-p{self.p}")
        for qubit in range(self.num_qubits):
            qc.h(qubit)
        for beta, gamma in zip(betas, gammas):
            for i, j, weight in self.problem.couplings:
                qc.rzz(2.0 * gamma * weight, i, j)
            for i, strength in self.problem.fields:
                qc.rz(2.0 * gamma * strength, i)
            for qubit in range(self.num_qubits):
                qc.rx(2.0 * beta, qubit)
        return qc

    # -- fast path ----------------------------------------------------------

    def statevector(self, parameters: Sequence[float]) -> Statevector:
        """Exact output state via the diagonal-phase fast path."""
        values = self._validate(parameters)
        betas, gammas = values[: self.p], values[self.p :]
        n = self.num_qubits
        dim = 1 << n
        state = Statevector(n, np.full(dim, 1.0 / math.sqrt(dim), dtype=complex))
        for beta, gamma in zip(betas, gammas):
            state.apply_diagonal(np.exp(-1j * gamma * self._cost_diagonal))
            mixer = rx_matrix(2.0 * beta)
            for qubit in range(n):
                state.apply_one_qubit(mixer, qubit)
        return state

    def expectation(
        self,
        parameters: Sequence[float],
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Expected cost ``<C>`` at the given angles.

        Ideal, exact requests use the fast path.  Noisy requests use the
        analytic global-depolarizing contraction of the traceless cost
        (calibrated on the explicit gate circuit) — the regime the
        paper's Fig. 4(b)/(d) experiments probe — with optional shot
        noise layered on top.  For exact per-gate noisy simulation use
        :func:`repro.quantum.density.simulate_density` or the trajectory
        engine directly.
        """
        state = self.statevector(parameters)
        exact = state.expectation_diagonal(self._cost_diagonal)
        factor = 1.0
        if noise is not None and not noise.is_ideal:
            factor = self._contraction_factor(noise)
            exact = self._cost_mean + factor * (exact - self._cost_mean)
        if shots is None:
            return exact
        rng = ensure_rng(rng)
        # Shot noise of the (possibly contracted) estimator: sample the
        # ideal distribution, rescale the traceless part to match.
        sampled = state.sample_expectation_diagonal(self._cost_diagonal, shots, rng)
        if noise is not None and not noise.is_ideal:
            sampled = self._cost_mean + factor * (sampled - self._cost_mean)
        return sampled

    def _contraction_factor(self, noise: NoiseModel) -> float:
        """Noisy contraction of the traceless cost, cached per model.

        ``global_depolarizing_factor`` depends only on the circuit's
        gate counts, and the QAOA circuit structure (H layer + per-layer
        RZZ/RZ/RX) is the same at every parameter point, so the factor
        is computed once per (ansatz, noise) pair instead of rebuilding
        the full gate circuit at every grid point.  Symmetric readout
        flips with probability r scale every 2-local ZZ term of the
        cost by (1 - 2r)^2 (and 1-local Z terms by (1 - 2r); couplings
        dominate QAOA costs).
        """
        factor = self._noise_factors.get(noise)
        if factor is None:
            circuit = self.circuit(np.zeros(self.num_parameters))
            factor = global_depolarizing_factor(circuit, noise)
            factor *= (1.0 - 2.0 * noise.readout) ** 2
            self._noise_factors[noise] = factor
        return factor

    # -- batched fast path --------------------------------------------------

    def statevector_many(
        self, parameters_batch: Sequence[Sequence[float]] | np.ndarray
    ) -> BatchedStatevector:
        """Exact output states for a parameter batch, one vectorized pass.

        Mirrors :meth:`statevector` with a leading batch axis.  Each
        cost layer is one broadcast
        ``exp(-1j * gamma[:, None] * cost_diagonal)`` multiply over the
        ``(B, 2**n)`` stack.  Each mixer layer uses the diagonalization
        ``RX(2b)^n = H^n · exp(-1j b (n - 2 popcount)) · H^n``: two
        shared Walsh-Hadamard transforms around one per-row phase lookup
        (only ``n + 1`` distinct phases per row), which keeps the whole
        layer in elementwise array operations.
        """
        batch = self._validate_batch(parameters_batch)
        betas, gammas = batch[:, : self.p], batch[:, self.p :]
        n = self.num_qubits
        dim = 1 << n
        self._build_fast_path_tables()
        state = BatchedStatevector.uniform_superposition(n, batch.shape[0])
        levels = np.arange(n + 1)
        for layer in range(self.p):
            state.apply_diagonal(self._cost_phases(gammas[:, layer]))
            # Mixer eigenvalues in the X basis: sum_i X_i has eigenvalue
            # n - 2*popcount(z) on the Hadamard-transformed basis state
            # z; the 2**-n of the two unnormalized transforms is folded
            # into the phase table.
            table = np.exp(-1j * betas[:, layer, None] * (n - 2 * levels)) / dim
            state.apply_hadamard_all(scale=1.0)
            state.apply_diagonal(table[:, self._popcount])
            state.apply_hadamard_all(scale=1.0)
        return state

    def _build_fast_path_tables(self) -> None:
        """Build the cached lookup tables for :meth:`statevector_many`."""
        if self._popcount is not None:
            return
        dim = 1 << self.num_qubits
        basis = np.arange(dim, dtype=np.uint64)
        popcount = np.zeros(dim, dtype=np.intp)
        while basis.any():
            popcount += (basis & 1).astype(np.intp)
            basis >>= 1
        self._popcount = popcount
        unique, inverse = np.unique(self._cost_diagonal, return_inverse=True)
        # Compress the cost-phase exponential when the diagonal takes
        # few distinct values (integer-weight MaxCut has O(edges) cut
        # values): exp() over (B, unique) then a cheap gather.
        if unique.shape[0] * 4 <= dim:
            self._cost_table = (unique, inverse.reshape(-1))
        else:
            self._cost_table = (np.empty(0), np.empty(0, dtype=np.intp))

    def _cost_phases(self, gammas: np.ndarray) -> np.ndarray:
        """``(B, 2**n)`` cost-layer phases ``exp(-1j g_b c_z)``."""
        unique, inverse = self._cost_table
        if unique.shape[0]:
            return np.exp(-1j * gammas[:, None] * unique[None, :])[:, inverse]
        return np.exp(-1j * gammas[:, None] * self._cost_diagonal[None, :])

    def _contraction_factors(
        self, noise_rows: list[NoiseModel | None]
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Per-row ``(factors, noisy_mask)``, or ``None`` if all ideal.

        Ideal rows keep factor 1.0 and a ``False`` mask entry; each
        distinct noisy model hits the per-(ansatz, noise) cache once.
        """
        mask = self._noisy_mask(noise_rows)
        if not mask.any():
            return None
        factors = np.array(
            [
                self._contraction_factor(model) if noisy else 1.0
                for model, noisy in zip(noise_rows, mask)
            ]
        )
        return factors, mask

    def _contract(
        self, values: np.ndarray, factors: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Contract the noisy rows, leaving ideal rows bit-identical.

        ``mean + 1.0 * (x - mean)`` is not exactly ``x`` in floating
        point, so ideal rows are skipped rather than scaled by 1.0 — a
        serial loop never touches them either.
        """
        values = values.copy()
        values[mask] = self._cost_mean + factors[mask] * (
            values[mask] - self._cost_mean
        )
        return values

    def expectation_many(
        self,
        parameters_batch: Sequence[Sequence[float]] | np.ndarray,
        noise: NoiseModel | Sequence[NoiseModel | None] | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
        sampler: str = "parity",
    ) -> np.ndarray:
        """Vectorized :meth:`expectation` over a parameter batch.

        Semantics match a serial loop of :meth:`expectation` row by
        row: the same diagonal fast path, the same cached depolarizing
        contraction, and — for ``shots`` requests with the default
        ``sampler="parity"`` — the same per-row rng draw order.
        ``sampler="multinomial"`` switches the shot sampling to one
        vectorized multinomial per stack (identical per-row statistics,
        different draw order, markedly faster on shots-heavy grids).
        ``noise`` may vary per row (a length-``B`` sequence), in which
        case the analytic contraction is applied with a per-row factor
        — the path batched ZNE rides.
        """
        self.validate_sampler(sampler)
        batch = self._validate_batch(parameters_batch)
        noise_rows = self._resolve_noise(noise, batch.shape[0])
        state = self.statevector_many(batch)
        exact = state.expectation_diagonal(self._cost_diagonal)
        contraction = self._contraction_factors(noise_rows)
        if contraction is not None:
            exact = self._contract(exact, *contraction)
        if shots is None:
            return exact
        rng = ensure_rng(rng)
        sampled = state.sample_expectation_diagonal(
            self._cost_diagonal, shots, rng, rng_parity=(sampler == "parity")
        )
        if contraction is not None:
            sampled = self._contract(sampled, *contraction)
        return sampled

    def expectation_many_scaled(
        self,
        parameters_batch: Sequence[Sequence[float]] | np.ndarray,
        noise_models: Sequence[NoiseModel | None],
        shots: int | None = None,
        rng: np.random.Generator | None = None,
        sampler: str = "parity",
    ) -> np.ndarray:
        """``(B, S)`` noisy expectations with one simulation per point.

        The ZNE fast path: on the analytic-contraction engine the ideal
        statevector is *noise-scale independent*, so instead of folding
        the ``S`` scale factors into the batch axis (re-simulating every
        point once per scale), each point is simulated once and its
        exact value / measurement distribution is reused across all
        scale models — only the cheap per-scale contraction (and, with
        ``shots``, the per-(point, scale) sampling) remains.

        Semantics match a serial per-(point, scale) loop of
        :meth:`expectation` in point-major / scale-minor order, rng
        draws included for ``sampler="parity"``.
        """
        self.validate_sampler(sampler)
        batch = self._validate_batch(parameters_batch)
        models = list(noise_models)
        for model in models:
            if model is not None and not isinstance(model, NoiseModel):
                raise TypeError(
                    f"noise_models entries must be NoiseModel or None, "
                    f"got {type(model).__name__}"
                )
        num_points, num_scales = batch.shape[0], len(models)
        if num_scales == 0:
            return np.empty((num_points, 0))
        state = self.statevector_many(batch)
        noisy = np.array(
            [model is not None and not model.is_ideal for model in models],
            dtype=bool,
        )
        factors = np.array(
            [
                self._contraction_factor(model) if flagged else 1.0
                for model, flagged in zip(models, noisy)
            ]
        )
        if shots is None:
            exact = state.expectation_diagonal(self._cost_diagonal)
            values = np.repeat(exact[:, None], num_scales, axis=1)
        else:
            rng = ensure_rng(rng)
            if sampler == "multinomial":
                # One multinomial over the point-major/scale-minor row
                # expansion: each point's distribution repeated per
                # scale, all sampled in a single vectorized draw.
                counts = state._multinomial_counts(
                    shots, rng, repeats=num_scales
                )
                values = (
                    (counts @ self._cost_diagonal) / shots
                ).reshape(num_points, num_scales)
            else:
                # Parity: sample per (point, scale) from the shared
                # per-point state, in exactly the serial loop's order.
                values = np.empty((num_points, num_scales))
                for index in range(num_points):
                    row = state.row(index)
                    for scale in range(num_scales):
                        values[index, scale] = row.sample_expectation_diagonal(
                            self._cost_diagonal, shots, rng
                        )
        # Contract noisy columns; ideal columns stay bit-identical (the
        # serial loop never scales them either).
        values[:, noisy] = self._cost_mean + factors[noisy][None, :] * (
            values[:, noisy] - self._cost_mean
        )
        return values

    def expectation_trajectory(
        self,
        parameters: Sequence[float],
        noise: NoiseModel,
        num_trajectories: int = 32,
        shots_per_trajectory: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Per-gate stochastic noisy estimate (the trajectory engine)."""
        return trajectory_expectation_diagonal(
            self.circuit(parameters),
            self._cost_diagonal,
            noise,
            num_trajectories=num_trajectories,
            shots_per_trajectory=shots_per_trajectory,
            rng=rng,
        )

    @property
    def cost_diagonal(self) -> np.ndarray:
        """The problem's diagonal cost vector (read-only copy)."""
        return self._cost_diagonal.copy()

    def cache_spec(self) -> dict:
        """Canonical content description for the landscape store.

        The problem is described by its full coupling/field content
        (what the cost diagonal derives from), not its display name, so
        two identically-wired instances share a cache key regardless of
        labelling.
        """
        return {
            "type": "qaoa",
            "p": self.p,
            "num_qubits": self.num_qubits,
            "problem": {
                "couplings": [
                    [int(i), int(j), float(w)]
                    for i, j, w in self.problem.couplings
                ],
                "fields": [
                    [int(i), float(h)] for i, h in self.problem.fields
                ],
                "offset": float(self.problem.offset),
            },
        }

    def parameter_names(self) -> list[str]:
        return [f"beta_{l}" for l in range(self.p)] + [
            f"gamma_{l}" for l in range(self.p)
        ]
