"""A UCCSD-style chemistry ansatz.

The Unitary Coupled-Cluster Singles-and-Doubles ansatz applies
``exp(-i theta_k G_k / 2)`` for a set of anti-Hermitian excitation
generators ``G_k``.  After Jordan-Wigner/parity mapping, each generator
is a sum of Pauli strings; first-order Trotterisation turns each string
into a Pauli-rotation gate sequence.

We implement the standard compact form used for small molecules:

- **singles** on qubit pairs: excitation-preserving hopping generators
  ``(X_i X_j + Y_i Y_j)/2`` (Givens rotations), realised as an RXX +
  RYY pair;
- **doubles** on qubit quadruples (only emitted when the register is
  wide enough): the leading ``XXXY``-type strings, Trotterised with the
  textbook CX-ladder + RZ construction.

Parameter counts match the paper's Table 3 configuration: H2/UCCSD has
3 parameters (2 singles + 1 double on the 2-qubit reduced problem uses
a doubled singles layer), LiH/UCCSD has 8.  The exact excitation list
is configurable so tests can exercise arbitrary layouts.

Batched execution (:meth:`UccsdAnsatz.expectation_many`) replays the
same gate sequence on a
:class:`~repro.quantum.batched.BatchedStatevector`: singles become
per-row ``(B, 4, 4)`` RXX/RYY stacks, doubles keep their shared
basis-change/CX frame around one per-row RZ stack, so the Table 3
slice grids run vectorized instead of a circuit per point.  Noisy rows
run vectorized too, replayed on a
:class:`~repro.quantum.batched_density.BatchedDensityMatrix` with
per-row noise models — see :meth:`~repro.ansatz.base.Ansatz._density_many`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..problems.pauli import PauliSum
from ..quantum.batched import BatchedStatevector
from ..quantum.circuit import QuantumCircuit
from ..quantum.density import simulate_density
from ..quantum.gates import CX, H, S, SDG, rxx_many, ryy_many, rz_many
from ..quantum.noise import NoiseModel
from .base import Ansatz
from ..utils import ensure_rng

__all__ = ["UccsdAnsatz", "default_excitations"]


def default_excitations(num_qubits: int, num_parameters: int) -> list[tuple[int, ...]]:
    """A deterministic excitation list with ``num_parameters`` entries.

    Singles over adjacent pairs first (wrapping), then doubles over
    sliding windows of four qubits, cycling until the requested count is
    reached.  This reproduces the (2-qubit, 3-parameter) and
    (4-qubit, 8-parameter) shapes of the paper's Table 3.
    """
    if num_qubits < 2:
        raise ValueError("UCCSD needs at least two qubits")
    excitations: list[tuple[int, ...]] = []
    pair_count = num_qubits if num_qubits > 2 else 1
    cursor = 0
    while len(excitations) < num_parameters:
        if num_qubits >= 4 and cursor % 3 == 2:
            start = cursor % (num_qubits - 3)
            excitations.append(tuple(range(start, start + 4)))
        else:
            i = cursor % pair_count
            excitations.append((i, (i + 1) % num_qubits))
        cursor += 1
    return excitations


class UccsdAnsatz(Ansatz):
    """Trotterised UCCSD-style ansatz over configurable excitations."""

    #: Noisy rows run on the batched density engine (see
    #: :meth:`~repro.ansatz.base.Ansatz.batch_capacity`).
    noisy_engine = "density"

    def __init__(
        self,
        hamiltonian: PauliSum,
        num_parameters: int,
        excitations: Sequence[tuple[int, ...]] | None = None,
        initial_bitstring: str | None = None,
    ):
        self.hamiltonian = hamiltonian
        self.num_qubits = hamiltonian.num_qubits
        self.num_parameters = int(num_parameters)
        if excitations is None:
            excitations = default_excitations(self.num_qubits, self.num_parameters)
        if len(excitations) != self.num_parameters:
            raise ValueError("need exactly one excitation per parameter")
        for excitation in excitations:
            if len(excitation) not in (2, 4):
                raise ValueError("excitations must touch 2 (single) or 4 (double) qubits")
            if any(not 0 <= q < self.num_qubits for q in excitation):
                raise ValueError(f"excitation {excitation} out of range")
        self.excitations = [tuple(exc) for exc in excitations]
        # Hartree-Fock-like reference: fill the lower half of the register.
        if initial_bitstring is None:
            occupied = self.num_qubits // 2
            initial_bitstring = "0" * (self.num_qubits - occupied) + "1" * occupied
        if len(initial_bitstring) != self.num_qubits:
            raise ValueError("initial bitstring width mismatch")
        self.initial_bitstring = initial_bitstring
        self._matrix: np.ndarray | None = None

    def circuit(self, parameters: Sequence[float]) -> QuantumCircuit:
        """Reference-state preparation followed by excitation rotations."""
        values = self._validate(parameters)
        qc = QuantumCircuit(self.num_qubits, name="uccsd")
        for position, bit in enumerate(self.initial_bitstring):
            if bit == "1":
                qc.x(self.num_qubits - 1 - position)
        for theta, excitation in zip(values, self.excitations):
            if len(excitation) == 2:
                self._append_single(qc, float(theta), *excitation)
            else:
                self._append_double(qc, float(theta), excitation)
        return qc

    @staticmethod
    def _append_single(qc: QuantumCircuit, theta: float, i: int, j: int) -> None:
        """Hopping rotation ``exp(-i theta (X_i X_j + Y_i Y_j)/2)``.

        ``(XX + YY)/2`` is the excitation-preserving Givens generator:
        it rotates within the ``{|01>, |10>}`` subspace and leaves
        ``|00>``/``|11>`` untouched, which is exactly a fermionic single
        excitation after the Jordan-Wigner/parity mapping on adjacent
        qubits.
        """
        qc.rxx(theta, i, j)
        qc.ryy(theta, i, j)

    @staticmethod
    def _append_double(
        qc: QuantumCircuit, theta: float, qubits: tuple[int, ...]
    ) -> None:
        """Leading double-excitation string ``exp(-i theta X X X Y / 2)``.

        Textbook construction: basis rotation to Z, CX ladder, RZ, undo.
        """
        a, b, c, d = qubits
        for qubit in (a, b, c):
            qc.h(qubit)
        qc.sdg(d)
        qc.h(d)
        qc.cx(a, b)
        qc.cx(b, c)
        qc.cx(c, d)
        qc.rz(theta, d)
        qc.cx(c, d)
        qc.cx(b, c)
        qc.cx(a, b)
        qc.h(d)
        qc.s(d)
        for qubit in (c, b, a):
            qc.h(qubit)

    def _observable_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = self.hamiltonian.matrix()
        return self._matrix

    # -- batched fast path ----------------------------------------------------

    def statevector_many(
        self, parameters_batch: Sequence[Sequence[float]] | np.ndarray
    ) -> BatchedStatevector:
        """Exact output states for a parameter batch, one vectorized pass.

        Mirrors :meth:`circuit` gate for gate with a leading batch axis.
        The reference state is written directly (one basis column), each
        single excitation is an RXX + RYY pair of per-row ``(B, 4, 4)``
        stacks, and each double keeps its shared basis-change/CX frame
        with only the central RZ as a per-row ``(B, 2, 2)`` stack.
        """
        batch = self._validate_batch(parameters_batch)
        n = self.num_qubits
        state = BatchedStatevector(n, batch_size=batch.shape[0])
        reference = int(self.initial_bitstring, 2)
        if reference:
            data = state.data
            data[:, 0] = 0.0
            data[:, reference] = 1.0
        for column, excitation in enumerate(self.excitations):
            thetas = batch[:, column]
            if len(excitation) == 2:
                i, j = excitation
                state.apply_two_qubit(rxx_many(thetas), i, j)
                state.apply_two_qubit(ryy_many(thetas), i, j)
            else:
                a, b, c, d = excitation
                for qubit in (a, b, c):
                    state.apply_one_qubit(H, qubit)
                state.apply_one_qubit(SDG, d)
                state.apply_one_qubit(H, d)
                for control, target in ((a, b), (b, c), (c, d)):
                    state.apply_two_qubit(CX, qubit0=target, qubit1=control)
                state.apply_one_qubit(rz_many(thetas), d)
                for control, target in ((c, d), (b, c), (a, b)):
                    state.apply_two_qubit(CX, qubit0=target, qubit1=control)
                state.apply_one_qubit(H, d)
                state.apply_one_qubit(S, d)
                for qubit in (c, b, a):
                    state.apply_one_qubit(H, qubit)
        return state

    def expectation_many(
        self,
        parameters_batch: Sequence[Sequence[float]] | np.ndarray,
        noise: NoiseModel | Sequence[NoiseModel | None] | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
        sampler: str = "parity",
    ) -> np.ndarray:
        """Vectorized :meth:`expectation` over a parameter batch.

        Ideal rows ride the native batched statevector path; noisy rows
        ride the batched density engine — one
        :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
        replay per memory-capped chunk with per-row noise models,
        matching the serial loop's values to machine precision.  Shot
        noise is drawn one row at a time in batch order, so a serial
        loop over :meth:`expectation` with the same generator sees
        identical draws.  ``sampler`` is accepted for interface
        uniformity but is a no-op here: the Gaussian shot model is
        already one vectorized draw block.
        """
        self.validate_sampler(sampler)
        batch = self._validate_batch(parameters_batch)
        noise_rows = self._resolve_noise(noise, batch.shape[0])
        return self._expectation_many_split(
            batch,
            noise_rows,
            shots,
            rng,
            ideal_many=lambda rows: self.statevector_many(
                rows
            ).expectation_matrix(self._observable_matrix()),
            noisy_many=self._density_many,
        )

    def _density_expectations(self, rho, models) -> np.ndarray:
        """Per-row ``Tr(rho H)`` of a noisy density stack.

        The molecular Hamiltonians are dense matrices, so readout error
        plays no role here — exactly like the serial noisy path.
        """
        del models
        return rho.expectation_matrix(self._observable_matrix())

    def _shot_scale(self) -> float:
        """Crude per-shot standard-deviation bound: sum of |coeffs|."""
        return float(sum(abs(term.coefficient) for term in self.hamiltonian))

    def expectation(
        self,
        parameters: Sequence[float],
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """``<H>`` for the bound circuit (density matrix when noisy)."""
        values = self._validate(parameters)
        if noise is not None and not noise.is_ideal:
            rho = simulate_density(self.circuit(values), noise)
            value = rho.expectation_matrix(self._observable_matrix())
        else:
            state = self.statevector(values)
            value = self.hamiltonian.expectation(state)
        if shots is None:
            return value
        rng = ensure_rng(rng)
        return value + rng.normal(0.0, self._shot_scale() / np.sqrt(shots))

    def cache_spec(self) -> dict:
        """Canonical content description for the landscape store."""
        from .twolocal import _pauli_sum_spec

        return {
            "type": "uccsd",
            "num_qubits": self.num_qubits,
            "num_parameters": self.num_parameters,
            "excitations": [list(exc) for exc in self.excitations],
            "initial_bitstring": self.initial_bitstring,
            "hamiltonian": _pauli_sum_spec(self.hamiltonian),
        }

    def parameter_names(self) -> list[str]:
        return [
            f"t{'s' if len(exc) == 2 else 'd'}_{index}"
            for index, exc in enumerate(self.excitations)
        ]
