"""Common interface for parameterized ansatz circuits.

An :class:`Ansatz` couples a parametric circuit factory with the
observable whose expectation defines the cost function.  The landscape
layer only ever talks to this interface, so QAOA (diagonal cost, fast
path) and VQE-style ansatzes (Pauli-sum cost) are interchangeable.

Two evaluation granularities are exposed:

- :meth:`Ansatz.expectation` — one parameter point;
- :meth:`Ansatz.expectation_many` — a whole ``(B, num_parameters)``
  batch of points.  The base implementation is a serial loop, so every
  ansatz supports the batched interface; all three shipped ansatzes
  override it with a vectorized execution path over a
  :class:`~repro.quantum.batched.BatchedStatevector` (QAOA's
  diagonal-phase fast path, Two-local's per-row RY stacks, UCCSD's
  per-row excitation stacks) while preserving the loop's semantics,
  including rng draw order.  ``noise`` may also be a per-row sequence,
  which is how batched ZNE folds its scale factors into the batch axis
  (see :class:`repro.mitigation.zne.ZneCostFunction`).  Noisy
  Two-local/UCCSD rows run vectorized too, on the batched density
  engine (:meth:`Ansatz._density_many` over a
  :class:`~repro.quantum.batched_density.BatchedDensityMatrix` with
  per-row noise models); :meth:`Ansatz.batch_capacity` tells the
  landscape layer how far the ``4**n``-per-row memory cost shrinks a
  chunk.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from ..quantum.batched import default_batch_size
from ..quantum.batched_density import (
    BatchedDensityMatrix,
    default_density_batch_size,
)
from ..quantum.circuit import QuantumCircuit
from ..quantum.noise import NoiseModel
from ..quantum.statevector import Statevector
from ..utils import ensure_rng

__all__ = ["Ansatz"]


#: Accepted shot-noise sampling strategies for the batch path.
#: ``"parity"`` preserves the serial loop's rng draw order (the
#: cross-engine equivalence contract); ``"multinomial"`` opts into the
#: vectorized multinomial sampler where one exists (same per-row
#: statistics, different draw order).
SAMPLERS = ("parity", "multinomial")


class Ansatz(abc.ABC):
    """A parametric circuit plus the cost observable it is scored by."""

    #: number of free circuit parameters
    num_parameters: int
    #: circuit width
    num_qubits: int

    #: How noisy rows are simulated: ``"serial"`` (the generic
    #: per-row loop), ``"density"`` (the batched density engine via
    #: :meth:`_density_many` — Two-local/UCCSD), or ``"contraction"``
    #: (QAOA's analytic global-depolarizing factor).  Drives
    #: :meth:`batch_capacity`'s memory model.
    noisy_engine: str = "serial"

    #: Override for the rows-per-chunk of :meth:`_density_many`;
    #: ``None`` picks the memory-capped
    #: :func:`~repro.quantum.batched_density.default_density_batch_size`.
    #: The equivalence harness pins this to force genuine chunk splits.
    density_batch_rows: int | None = None

    @staticmethod
    def validate_sampler(sampler: str) -> str:
        """Check a ``sampler=`` value against :data:`SAMPLERS`."""
        if sampler not in SAMPLERS:
            raise ValueError(
                f"unknown sampler {sampler!r}; choose from {SAMPLERS}"
            )
        return sampler

    @abc.abstractmethod
    def circuit(self, parameters: Sequence[float]) -> QuantumCircuit:
        """The bound circuit for concrete parameter values."""

    @abc.abstractmethod
    def expectation(
        self,
        parameters: Sequence[float],
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Cost-function value at ``parameters``.

        Args:
            parameters: flat parameter vector of length
                :attr:`num_parameters`.
            noise: optional noise model; ``None`` means ideal execution.
            shots: if given, add measurement shot noise with this many
                shots; ``None`` returns the exact expectation.
            rng: random generator for shot/trajectory sampling.
        """

    def expectation_many(
        self,
        parameters_batch: Sequence[Sequence[float]] | np.ndarray,
        noise: NoiseModel | Sequence[NoiseModel | None] | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
        sampler: str = "parity",
    ) -> np.ndarray:
        """Cost-function values for a batch of parameter points.

        The generic implementation loops :meth:`expectation` row by row
        and exists so every ansatz can be driven through the batched
        execution layer; ansatzes with a vectorized simulation path
        override it.  Stochastic requests (``shots``) consume ``rng``
        one row at a time in batch order, so a serial loop over
        :meth:`expectation` with the same generator produces the same
        draws.

        Args:
            parameters_batch: ``(B, num_parameters)`` array-like of
                parameter vectors (a single flat vector is promoted to
                a batch of one).
            noise: optional noise model shared by all rows, or a
                length-``B`` sequence with one model (or ``None``) per
                row — the shape batched ZNE uses to fold its noise
                scale factors into the batch axis.
            shots: if given, add measurement shot noise per row.
            rng: random generator shared across the batch.
            sampler: shot-noise sampling strategy (:data:`SAMPLERS`).
                ``"parity"`` keeps the serial loop's draw order;
                ``"multinomial"`` opts into a vectorized sampler on the
                ansatzes that have one (QAOA's measurement sampler).
                Advisory for implementations whose shot model is
                already a single vectorized draw block.

        Returns:
            The ``(B,)`` array of cost values, row-aligned with the
            input batch.

        Example — one vectorized pass over a batch of points matches
        the point-at-a-time loop exactly::

            >>> import numpy as np
            >>> from repro.ansatz import QaoaAnsatz
            >>> from repro.problems import random_3_regular_maxcut
            >>> ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1)
            >>> batch = np.linspace(0.0, 1.0, 6).reshape(3, 2)
            >>> values = ansatz.expectation_many(batch)
            >>> values.shape
            (3,)
            >>> serial = [ansatz.expectation(row) for row in batch]
            >>> bool(np.allclose(values, serial, atol=1e-10))
            True
        """
        self.validate_sampler(sampler)
        batch = self._validate_batch(parameters_batch)
        noise_rows = self._resolve_noise(noise, batch.shape[0])
        if shots is not None:
            rng = ensure_rng(rng)
        return np.array(
            [
                self.expectation(row, noise=model, shots=shots, rng=rng)
                for row, model in zip(batch, noise_rows)
            ]
        ).reshape(batch.shape[0])

    def parameter_names(self) -> list[str]:
        """Stable display names for the parameters (default: p0..pk)."""
        return [f"p{i}" for i in range(self.num_parameters)]

    def cache_spec(self) -> dict:
        """Canonical content description for the landscape store.

        Must capture everything that determines expectation values —
        the structural parameters *and* the full problem content
        (couplings, Pauli terms, excitations) — as a JSON-able nested
        payload: two ansatzes with equal payloads must produce equal
        landscapes, and any content change must change the payload.
        The shipped ansatzes implement this; custom ansatzes must
        override it before their landscapes can be cached.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not describe itself for the "
            "landscape store; override cache_spec() to enable caching"
        )

    def statevector(self, parameters: Sequence[float]) -> Statevector:
        """The exact output state (default: simulate the circuit)."""
        return Statevector(self.num_qubits).evolve(self.circuit(parameters))

    def _validate(self, parameters: Sequence[float]) -> np.ndarray:
        values = np.asarray(parameters, dtype=float).reshape(-1)
        if values.shape[0] != self.num_parameters:
            raise ValueError(
                f"{type(self).__name__} expects {self.num_parameters} "
                f"parameters, got {values.shape[0]}"
            )
        return values

    def _resolve_noise(
        self,
        noise: NoiseModel | Sequence[NoiseModel | None] | None,
        batch_size: int,
    ) -> list[NoiseModel | None]:
        """Normalize a shared-or-per-row noise spec to one model per row.

        ``None`` or a single :class:`~repro.quantum.noise.NoiseModel`
        broadcasts over the batch; a sequence must supply exactly one
        entry (a model or ``None``) per row.
        """
        if noise is None or isinstance(noise, NoiseModel):
            return [noise] * batch_size
        rows = list(noise)
        if len(rows) != batch_size:
            raise ValueError(
                f"per-row noise needs {batch_size} entries, got {len(rows)}"
            )
        for model in rows:
            if model is not None and not isinstance(model, NoiseModel):
                raise TypeError(
                    f"per-row noise entries must be NoiseModel or None, "
                    f"got {type(model).__name__}"
                )
        return rows

    def _expectation_many_split(
        self,
        batch: np.ndarray,
        noise_rows: list[NoiseModel | None],
        shots: int | None,
        rng: np.random.Generator | None,
        ideal_many: "Callable[[np.ndarray], np.ndarray]",
        noisy_many: "Callable[[np.ndarray, list[NoiseModel]], np.ndarray]",
    ) -> np.ndarray:
        """Shared scaffold for native batched paths with per-row noise.

        Ideal rows are evaluated in one vectorized ``ideal_many`` call,
        noisy rows in one vectorized ``noisy_many(rows, models)`` call
        (typically :meth:`_density_many`), and shot noise is drawn
        afterwards one row at a time in batch order — the rng contract
        that keeps a seeded serial loop over :meth:`expectation`
        reproducing the batch draw for draw.  Subclasses using this
        must define ``_shot_scale()`` (the per-shot standard-deviation
        bound of their estimator).
        """
        noisy = self._noisy_mask(noise_rows)
        values = np.empty(batch.shape[0])
        ideal_indices = np.flatnonzero(~noisy)
        if ideal_indices.size:
            values[ideal_indices] = ideal_many(batch[ideal_indices])
        noisy_indices = np.flatnonzero(noisy)
        if noisy_indices.size:
            values[noisy_indices] = noisy_many(
                batch[noisy_indices],
                [noise_rows[index] for index in noisy_indices],
            )
        if shots is None:
            return values
        rng = ensure_rng(rng)
        sigma = self._shot_scale() / np.sqrt(shots)
        # One vectorized draw block: numpy Generators produce the same
        # bitstream for normal(size=B) as for B sequential scalar
        # draws, so row-order parity with the serial loop is preserved.
        return values + rng.normal(0.0, sigma, size=batch.shape[0])

    def _density_many(
        self, batch: np.ndarray, models: "list[NoiseModel]"
    ) -> np.ndarray:
        """Noisy rows through the batched density engine, chunked.

        Builds each row's bound circuit and replays the chunk as one
        :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
        with per-row noise models; expectations are extracted by the
        :meth:`_density_expectations` hook the ansatz supplies.  Chunk
        size defaults to the memory-capped
        :func:`~repro.quantum.batched_density.default_density_batch_size`
        (``4**n`` entries per row) and can be pinned via
        :attr:`density_batch_rows`.
        """
        chunk = self.density_batch_rows or default_density_batch_size(
            self.num_qubits
        )
        values = np.empty(batch.shape[0])
        for start in range(0, batch.shape[0], chunk):
            rows = batch[start : start + chunk]
            chunk_models = models[start : start + chunk]
            rho = BatchedDensityMatrix(
                self.num_qubits, batch_size=rows.shape[0]
            )
            rho.evolve_circuits(
                [self.circuit(row) for row in rows], chunk_models
            )
            values[start : start + rows.shape[0]] = self._density_expectations(
                rho, chunk_models
            )
        return values

    def _density_expectations(
        self, rho: BatchedDensityMatrix, models: "list[NoiseModel]"
    ) -> np.ndarray:
        """Per-row observable values of an evolved noisy density stack.

        Required by :meth:`_density_many`; ansatzes routing noisy rows
        through the batched density engine override it (diagonal vs
        dense-matrix observable, readout handling).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not extract observables from "
            "the batched density engine"
        )

    def batch_capacity(
        self, noise: NoiseModel | Sequence[NoiseModel | None] | None = None
    ) -> int:
        """Memory-capped execution rows per chunk for a noise spec.

        Ideal batches are bounded by the statevector entry budget
        (``2**n`` entries per row); when any row is noisy and this
        ansatz simulates noisy rows on the batched density engine
        (:attr:`noisy_engine` ``== "density"``), each row holds
        ``4**n`` entries and the cap shrinks to
        :func:`~repro.quantum.batched_density.default_density_batch_size`.
        The landscape layer consults this through the cost functions'
        ``batch_capacity`` hooks
        (:func:`repro.landscape.generator.resolve_batch_size`).
        """
        if self.noisy_engine == "density" and self._any_noisy(noise):
            return default_density_batch_size(self.num_qubits)
        return default_batch_size(self.num_qubits)

    @staticmethod
    def _any_noisy(
        noise: NoiseModel | Sequence[NoiseModel | None] | None,
    ) -> bool:
        """Whether a shared-or-per-row noise spec has any non-ideal row."""
        if noise is None:
            return False
        if isinstance(noise, NoiseModel):
            return not noise.is_ideal
        return any(
            model is not None and not model.is_ideal for model in noise
        )

    @staticmethod
    def _noisy_mask(noise_rows: list[NoiseModel | None]) -> np.ndarray:
        """Boolean per-row mask of the rows with a non-ideal model."""
        return np.array(
            [model is not None and not model.is_ideal for model in noise_rows],
            dtype=bool,
        )

    def _shot_scale(self) -> float:
        """Per-shot standard-deviation bound of the estimator.

        Required by :meth:`_expectation_many_split`; ansatzes with a
        native batched path override it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a shot-noise scale"
        )

    def _validate_batch(
        self, parameters_batch: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        batch = np.asarray(parameters_batch, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[1] != self.num_parameters:
            raise ValueError(
                f"{type(self).__name__} expects a (B, {self.num_parameters}) "
                f"parameter batch, got shape {batch.shape}"
            )
        return batch
