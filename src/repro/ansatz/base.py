"""Common interface for parameterized ansatz circuits.

An :class:`Ansatz` couples a parametric circuit factory with the
observable whose expectation defines the cost function.  The landscape
layer only ever talks to this interface, so QAOA (diagonal cost, fast
path) and VQE-style ansatzes (Pauli-sum cost) are interchangeable.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..quantum.circuit import QuantumCircuit
from ..quantum.noise import NoiseModel
from ..quantum.statevector import Statevector

__all__ = ["Ansatz"]


class Ansatz(abc.ABC):
    """A parametric circuit plus the cost observable it is scored by."""

    #: number of free circuit parameters
    num_parameters: int
    #: circuit width
    num_qubits: int

    @abc.abstractmethod
    def circuit(self, parameters: Sequence[float]) -> QuantumCircuit:
        """The bound circuit for concrete parameter values."""

    @abc.abstractmethod
    def expectation(
        self,
        parameters: Sequence[float],
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Cost-function value at ``parameters``.

        Args:
            parameters: flat parameter vector of length
                :attr:`num_parameters`.
            noise: optional noise model; ``None`` means ideal execution.
            shots: if given, add measurement shot noise with this many
                shots; ``None`` returns the exact expectation.
            rng: random generator for shot/trajectory sampling.
        """

    def parameter_names(self) -> list[str]:
        """Stable display names for the parameters (default: p0..pk)."""
        return [f"p{i}" for i in range(self.num_parameters)]

    def statevector(self, parameters: Sequence[float]) -> Statevector:
        """The exact output state (default: simulate the circuit)."""
        return Statevector(self.num_qubits).evolve(self.circuit(parameters))

    def _validate(self, parameters: Sequence[float]) -> np.ndarray:
        values = np.asarray(parameters, dtype=float).reshape(-1)
        if values.shape[0] != self.num_parameters:
            raise ValueError(
                f"{type(self).__name__} expects {self.num_parameters} "
                f"parameters, got {values.shape[0]}"
            )
        return values
