"""Common interface for parameterized ansatz circuits.

An :class:`Ansatz` couples a parametric circuit factory with the
observable whose expectation defines the cost function.  The landscape
layer only ever talks to this interface, so QAOA (diagonal cost, fast
path) and VQE-style ansatzes (Pauli-sum cost) are interchangeable.

Two evaluation granularities are exposed:

- :meth:`Ansatz.expectation` — one parameter point;
- :meth:`Ansatz.expectation_many` — a whole ``(B, num_parameters)``
  batch of points.  The base implementation is a serial loop, so every
  ansatz supports the batched interface; subclasses with a vectorized
  execution path (QAOA's diagonal-phase fast path over a
  :class:`~repro.quantum.batched.BatchedStatevector`) override it for
  the wall-clock win while preserving the loop's semantics, including
  rng draw order.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..quantum.circuit import QuantumCircuit
from ..quantum.noise import NoiseModel
from ..quantum.statevector import Statevector
from ..utils import ensure_rng

__all__ = ["Ansatz"]


class Ansatz(abc.ABC):
    """A parametric circuit plus the cost observable it is scored by."""

    #: number of free circuit parameters
    num_parameters: int
    #: circuit width
    num_qubits: int

    @abc.abstractmethod
    def circuit(self, parameters: Sequence[float]) -> QuantumCircuit:
        """The bound circuit for concrete parameter values."""

    @abc.abstractmethod
    def expectation(
        self,
        parameters: Sequence[float],
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Cost-function value at ``parameters``.

        Args:
            parameters: flat parameter vector of length
                :attr:`num_parameters`.
            noise: optional noise model; ``None`` means ideal execution.
            shots: if given, add measurement shot noise with this many
                shots; ``None`` returns the exact expectation.
            rng: random generator for shot/trajectory sampling.
        """

    def expectation_many(
        self,
        parameters_batch: Sequence[Sequence[float]] | np.ndarray,
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Cost-function values for a batch of parameter points.

        The generic implementation loops :meth:`expectation` row by row
        and exists so every ansatz can be driven through the batched
        execution layer; ansatzes with a vectorized simulation path
        override it.  Stochastic requests (``shots``) consume ``rng``
        one row at a time in batch order, so a serial loop over
        :meth:`expectation` with the same generator produces the same
        draws.

        Args:
            parameters_batch: ``(B, num_parameters)`` array-like of
                parameter vectors (a single flat vector is promoted to
                a batch of one).
            noise: optional noise model shared by all rows.
            shots: if given, add measurement shot noise per row.
            rng: random generator shared across the batch.

        Returns:
            The ``(B,)`` array of cost values, row-aligned with the
            input batch.
        """
        batch = self._validate_batch(parameters_batch)
        if shots is not None:
            rng = ensure_rng(rng)
        return np.array(
            [
                self.expectation(row, noise=noise, shots=shots, rng=rng)
                for row in batch
            ]
        )

    def parameter_names(self) -> list[str]:
        """Stable display names for the parameters (default: p0..pk)."""
        return [f"p{i}" for i in range(self.num_parameters)]

    def statevector(self, parameters: Sequence[float]) -> Statevector:
        """The exact output state (default: simulate the circuit)."""
        return Statevector(self.num_qubits).evolve(self.circuit(parameters))

    def _validate(self, parameters: Sequence[float]) -> np.ndarray:
        values = np.asarray(parameters, dtype=float).reshape(-1)
        if values.shape[0] != self.num_parameters:
            raise ValueError(
                f"{type(self).__name__} expects {self.num_parameters} "
                f"parameters, got {values.shape[0]}"
            )
        return values

    def _validate_batch(
        self, parameters_batch: Sequence[Sequence[float]] | np.ndarray
    ) -> np.ndarray:
        batch = np.asarray(parameters_batch, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[1] != self.num_parameters:
            raise ValueError(
                f"{type(self).__name__} expects a (B, {self.num_parameters}) "
                f"parameter batch, got shape {batch.shape}"
            )
        return batch
