"""Ansatz library: the parametric circuits the paper evaluates.

- :class:`~repro.ansatz.qaoa.QaoaAnsatz` — QAOA with a diagonal-cost
  fast path (the paper's primary workload),
- :class:`~repro.ansatz.twolocal.TwoLocalAnsatz` — hardware-efficient
  RY/CZ ansatz,
- :class:`~repro.ansatz.uccsd.UccsdAnsatz` — Trotterised UCCSD-style
  chemistry ansatz.
"""

from .base import Ansatz
from .qaoa import QaoaAnsatz
from .twolocal import TwoLocalAnsatz
from .uccsd import UccsdAnsatz, default_excitations

__all__ = ["Ansatz", "QaoaAnsatz", "TwoLocalAnsatz", "UccsdAnsatz", "default_excitations"]
