"""Hardware-efficient "Two-local" ansatz.

The Two-local ansatz (the Qiskit ``TwoLocal`` default the paper uses)
alternates a layer of single-qubit RY rotations with a linear-chain CZ
entangler, finishing with one more rotation layer:

    [RY(theta) on all qubits]  ->  [CZ chain]  -> ... -> [RY(theta)]

With ``reps`` entangling blocks, the parameter count is
``num_qubits * (reps + 1)``.  The paper sizes depth so the ansatz has 8
parameters at n=4 (reps=1) and 6 parameters at n=6 (reps=0); both
configurations are expressible here.

The cost function is the expectation of an arbitrary
:class:`~repro.problems.pauli.PauliSum` (MaxCut/SK diagonal Hamiltonians
or molecular Hamiltonians).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..problems.pauli import PauliSum
from ..quantum.circuit import QuantumCircuit
from ..quantum.density import simulate_density
from ..quantum.noise import NoiseModel
from .base import Ansatz
from ..utils import ensure_rng

__all__ = ["TwoLocalAnsatz"]


class TwoLocalAnsatz(Ansatz):
    """RY-rotation / CZ-entangler hardware-efficient ansatz."""

    def __init__(self, hamiltonian: PauliSum, reps: int = 1):
        if reps < 0:
            raise ValueError("reps must be >= 0")
        self.hamiltonian = hamiltonian
        self.reps = int(reps)
        self.num_qubits = hamiltonian.num_qubits
        self.num_parameters = self.num_qubits * (self.reps + 1)
        self._diagonal = hamiltonian.diagonal() if hamiltonian.is_diagonal else None
        self._matrix: np.ndarray | None = None

    def circuit(self, parameters: Sequence[float]) -> QuantumCircuit:
        """Alternating RY layers and linear CZ chains."""
        values = self._validate(parameters)
        qc = QuantumCircuit(self.num_qubits, name=f"twolocal-r{self.reps}")
        index = 0
        for layer in range(self.reps + 1):
            for qubit in range(self.num_qubits):
                qc.ry(float(values[index]), qubit)
                index += 1
            if layer < self.reps:
                for qubit in range(self.num_qubits - 1):
                    qc.cz(qubit, qubit + 1)
        return qc

    def _observable_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = self.hamiltonian.matrix()
        return self._matrix

    def expectation(
        self,
        parameters: Sequence[float],
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """``<H>`` for the bound circuit.

        Ideal execution evaluates term-by-term on the statevector.
        Noisy execution runs the exact density-matrix engine (these
        ansatzes are used at n <= 6 in the paper's tables, where O(4^n)
        is cheap).
        """
        values = self._validate(parameters)
        if noise is not None and not noise.is_ideal:
            rho = simulate_density(self.circuit(values), noise)
            if self._diagonal is not None:
                value = rho.expectation_diagonal(self._diagonal, noise.readout)
            else:
                value = rho.expectation_matrix(self._observable_matrix())
        else:
            state = self.statevector(values)
            if self._diagonal is not None:
                value = state.expectation_diagonal(self._diagonal)
            else:
                value = self.hamiltonian.expectation(state)
        if shots is None:
            return value
        rng = ensure_rng(rng)
        # Model shot noise as Gaussian with the observable's variance
        # bound; cheap and adequate for landscape jitter studies.
        spread = self._shot_scale()
        return value + rng.normal(0.0, spread / np.sqrt(shots))

    def _shot_scale(self) -> float:
        """Crude per-shot standard-deviation bound: sum of |coeffs|."""
        return float(sum(abs(term.coefficient) for term in self.hamiltonian))

    def parameter_names(self) -> list[str]:
        return [
            f"theta_{layer}_{qubit}"
            for layer in range(self.reps + 1)
            for qubit in range(self.num_qubits)
        ]
