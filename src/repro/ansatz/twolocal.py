"""Hardware-efficient "Two-local" ansatz.

The Two-local ansatz (the Qiskit ``TwoLocal`` default the paper uses)
alternates a layer of single-qubit RY rotations with a linear-chain CZ
entangler, finishing with one more rotation layer:

    [RY(theta) on all qubits]  ->  [CZ chain]  -> ... -> [RY(theta)]

With ``reps`` entangling blocks, the parameter count is
``num_qubits * (reps + 1)``.  The paper sizes depth so the ansatz has 8
parameters at n=4 (reps=1) and 6 parameters at n=6 (reps=0); both
configurations are expressible here.

The cost function is the expectation of an arbitrary
:class:`~repro.problems.pauli.PauliSum` (MaxCut/SK diagonal Hamiltonians
or molecular Hamiltonians).

Batched execution (:meth:`TwoLocalAnsatz.expectation_many`) stacks many
parameter bindings on a
:class:`~repro.quantum.batched.BatchedStatevector`: every RY layer is a
per-row ``(B, 2, 2)`` rotation stack and the parameter-independent CZ
chain collapses to one shared ±1 diagonal, so a whole Tables 2-4 slice
grid runs in a handful of array passes instead of a circuit per point.
Noisy rows run vectorized as well, replayed gate by gate (the CZ chain
included, so each entangler gate carries its depolarizing channel) on a
:class:`~repro.quantum.batched_density.BatchedDensityMatrix` with
per-row noise models — see :meth:`~repro.ansatz.base.Ansatz._density_many`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..problems.pauli import PauliSum
from ..quantum.batched import BatchedStatevector
from ..quantum.circuit import QuantumCircuit
from ..quantum.density import simulate_density
from ..quantum.gates import ry_many
from ..quantum.noise import NoiseModel
from .base import Ansatz
from ..utils import ensure_rng

__all__ = ["TwoLocalAnsatz"]


class TwoLocalAnsatz(Ansatz):
    """RY-rotation / CZ-entangler hardware-efficient ansatz."""

    #: Noisy rows run on the batched density engine (see
    #: :meth:`~repro.ansatz.base.Ansatz.batch_capacity`).
    noisy_engine = "density"

    def __init__(self, hamiltonian: PauliSum, reps: int = 1):
        if reps < 0:
            raise ValueError("reps must be >= 0")
        self.hamiltonian = hamiltonian
        self.reps = int(reps)
        self.num_qubits = hamiltonian.num_qubits
        self.num_parameters = self.num_qubits * (self.reps + 1)
        self._diagonal = hamiltonian.diagonal() if hamiltonian.is_diagonal else None
        self._matrix: np.ndarray | None = None
        # Lazy shared diagonal of the whole CZ entangler chain (built on
        # the first expectation_many call): the chain is
        # parameter-independent, so one elementwise sign multiply
        # replaces num_qubits - 1 two-qubit gate applications per block.
        self._entangler: np.ndarray | None = None

    def circuit(self, parameters: Sequence[float]) -> QuantumCircuit:
        """Alternating RY layers and linear CZ chains."""
        values = self._validate(parameters)
        qc = QuantumCircuit(self.num_qubits, name=f"twolocal-r{self.reps}")
        index = 0
        for layer in range(self.reps + 1):
            for qubit in range(self.num_qubits):
                qc.ry(float(values[index]), qubit)
                index += 1
            if layer < self.reps:
                for qubit in range(self.num_qubits - 1):
                    qc.cz(qubit, qubit + 1)
        return qc

    def _observable_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = self.hamiltonian.matrix()
        return self._matrix

    def _entangler_diagonal(self) -> np.ndarray:
        """Shared ``2**n`` diagonal of the linear CZ chain (cached).

        Entry ``z`` is ``(-1)**(number of adjacent 1-pairs in z)`` —
        the product of every ``CZ(q, q+1)`` in the chain.
        """
        if self._entangler is None:
            basis = np.arange(1 << self.num_qubits, dtype=np.uint64)
            pairs = basis & (basis >> np.uint64(1))
            signs = np.ones(basis.shape[0])
            for qubit in range(self.num_qubits - 1):
                signs *= 1.0 - 2.0 * ((pairs >> np.uint64(qubit)) & 1).astype(float)
            self._entangler = signs
        return self._entangler

    # -- batched fast path ----------------------------------------------------

    def statevector_many(
        self, parameters_batch: Sequence[Sequence[float]] | np.ndarray
    ) -> BatchedStatevector:
        """Exact output states for a parameter batch, one vectorized pass.

        Mirrors :meth:`circuit` gate for gate with a leading batch axis:
        each RY layer is ``num_qubits`` calls with a per-row ``(B, 2, 2)``
        rotation stack (:func:`~repro.quantum.gates.ry_many`), and each
        CZ entangler block is one shared elementwise sign multiply
        (:meth:`_entangler_diagonal`).
        """
        batch = self._validate_batch(parameters_batch)
        state = BatchedStatevector(self.num_qubits, batch_size=batch.shape[0])
        index = 0
        for layer in range(self.reps + 1):
            for qubit in range(self.num_qubits):
                state.apply_one_qubit(ry_many(batch[:, index]), qubit)
                index += 1
            if layer < self.reps:
                state.apply_diagonal(self._entangler_diagonal())
        return state

    def _expectation_state_many(self, state: BatchedStatevector) -> np.ndarray:
        """Per-row ``<H>`` of a batched state (diagonal fast path if any)."""
        if self._diagonal is not None:
            return state.expectation_diagonal(self._diagonal)
        return state.expectation_matrix(self._observable_matrix())

    def expectation_many(
        self,
        parameters_batch: Sequence[Sequence[float]] | np.ndarray,
        noise: NoiseModel | Sequence[NoiseModel | None] | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
        sampler: str = "parity",
    ) -> np.ndarray:
        """Vectorized :meth:`expectation` over a parameter batch.

        Ideal rows ride the native batched statevector path; noisy rows
        ride the batched density engine — one
        :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
        replay per memory-capped chunk with per-row noise models,
        matching the serial loop's values to machine precision.  Shot
        noise is drawn after all rows are evaluated, one draw per row
        in batch order, so a serial loop over :meth:`expectation` with
        the same generator sees identical draws.  ``sampler`` is
        accepted for interface uniformity but is a no-op here: the
        Gaussian shot model is already one vectorized draw block.
        """
        self.validate_sampler(sampler)
        batch = self._validate_batch(parameters_batch)
        noise_rows = self._resolve_noise(noise, batch.shape[0])
        return self._expectation_many_split(
            batch,
            noise_rows,
            shots,
            rng,
            ideal_many=lambda rows: self._expectation_state_many(
                self.statevector_many(rows)
            ),
            noisy_many=self._density_many,
        )

    def _density_expectations(self, rho, models) -> np.ndarray:
        """Per-row ``<H>`` of a noisy density stack (diagonal fast path).

        Mirrors :meth:`_noisy_expectation`: diagonal observables go
        through readout-corrupted probabilities (with per-row readout
        rates), dense-matrix observables through ``Tr(rho O)``.
        """
        if self._diagonal is not None:
            readout = np.array(
                [0.0 if model is None else model.readout for model in models]
            )
            return rho.expectation_diagonal(self._diagonal, readout)
        return rho.expectation_matrix(self._observable_matrix())

    def _noisy_expectation(
        self, parameters: np.ndarray, model: NoiseModel
    ) -> float:
        """One row through the exact density engine (serial semantics)."""
        rho = simulate_density(self.circuit(parameters), model)
        if self._diagonal is not None:
            return rho.expectation_diagonal(self._diagonal, model.readout)
        return rho.expectation_matrix(self._observable_matrix())

    def expectation(
        self,
        parameters: Sequence[float],
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """``<H>`` for the bound circuit.

        Ideal execution evaluates term-by-term on the statevector.
        Noisy execution runs the exact density-matrix engine (these
        ansatzes are used at n <= 6 in the paper's tables, where O(4^n)
        is cheap).
        """
        values = self._validate(parameters)
        if noise is not None and not noise.is_ideal:
            value = self._noisy_expectation(values, noise)
        else:
            state = self.statevector(values)
            if self._diagonal is not None:
                value = state.expectation_diagonal(self._diagonal)
            else:
                value = self.hamiltonian.expectation(state)
        if shots is None:
            return value
        rng = ensure_rng(rng)
        # Model shot noise as Gaussian with the observable's variance
        # bound; cheap and adequate for landscape jitter studies.
        spread = self._shot_scale()
        return value + rng.normal(0.0, spread / np.sqrt(shots))

    def _shot_scale(self) -> float:
        """Crude per-shot standard-deviation bound: sum of |coeffs|."""
        return float(sum(abs(term.coefficient) for term in self.hamiltonian))

    def cache_spec(self) -> dict:
        """Canonical content description for the landscape store."""
        return {
            "type": "twolocal",
            "reps": self.reps,
            "num_qubits": self.num_qubits,
            "hamiltonian": _pauli_sum_spec(self.hamiltonian),
        }

    def parameter_names(self) -> list[str]:
        return [
            f"theta_{layer}_{qubit}"
            for layer in range(self.reps + 1)
            for qubit in range(self.num_qubits)
        ]


def _pauli_sum_spec(hamiltonian: PauliSum) -> list[list]:
    """Canonical term list of a Pauli-sum observable: sorted
    ``[label, re, im]`` rows (complex coefficients split for JSON)."""
    return [
        [term.label, float(term.coefficient.real), float(term.coefficient.imag)]
        for term in sorted(hamiltonian, key=lambda term: term.label)
    ]
