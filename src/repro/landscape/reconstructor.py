"""OSCAR: compressed-sensing landscape reconstruction (the headline API).

:class:`OscarReconstructor` implements the three-phase workflow of
Fig. 3 of the paper:

1. **Parameter sampling** — draw a small random fraction of grid points;
2. **Circuit execution** — evaluate the cost function only at those
   points (via a :class:`~repro.landscape.generator.LandscapeGenerator`
   or any pre-measured values);
3. **Landscape reconstruction** — solve the L1/DCT sparse-recovery
   problem to produce the full landscape.

High-dimensional grids (p >= 2 QAOA) are reshaped to 2-D by the paper's
axis-concatenation before reconstruction (Sec. 4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cs.reconstruct import ReconstructionConfig, reconstruct_signal
from ..cs.sampling import stratified_indices, uniform_random_indices
from .generator import LandscapeGenerator
from .grid import ParameterGrid
from .landscape import Landscape

__all__ = ["OscarReconstructor", "ReconstructionReport"]


@dataclass(frozen=True)
class ReconstructionReport:
    """Diagnostics of one OSCAR reconstruction.

    Attributes:
        num_samples: circuit executions used.
        grid_size: full grid size the samples were drawn from.
        sampling_fraction: ``num_samples / grid_size``.
        speedup: circuit-execution speedup over a dense grid search.
        solver_iterations: L1 solver iterations.
        solver_converged: whether the solver met its tolerance.
    """

    num_samples: int
    grid_size: int
    sampling_fraction: float
    speedup: float
    solver_iterations: int
    solver_converged: bool


class OscarReconstructor:
    """Reconstructs full landscapes from a sampled fraction of points."""

    def __init__(
        self,
        grid: ParameterGrid,
        config: ReconstructionConfig | None = None,
        sampler: str = "uniform",
        rng: np.random.Generator | int | None = None,
    ):
        if sampler not in ("uniform", "stratified"):
            raise ValueError(f"unknown sampler {sampler!r}")
        self.grid = grid
        self.config = config or ReconstructionConfig()
        self.sampler = sampler
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        self.rng = rng or np.random.default_rng()

    # -- phase 1: sampling ---------------------------------------------------

    def sample_indices(self, fraction: float) -> np.ndarray:
        """Random flat grid indices for a target sampling fraction."""
        if self.sampler == "uniform":
            return uniform_random_indices(self.grid.size, fraction, self.rng)
        return stratified_indices(self.grid.size, fraction, self.rng)

    # -- phase 2+3: execute and reconstruct -----------------------------------

    def reconstruct(
        self,
        generator: LandscapeGenerator,
        fraction: float,
        label: str = "oscar-recon",
    ) -> tuple[Landscape, ReconstructionReport]:
        """Full OSCAR run: sample, execute, reconstruct.

        Args:
            generator: evaluates the cost function at sampled points.
            fraction: sampling fraction in (0, 1].
            label: provenance tag for the output landscape.
        """
        indices = self.sample_indices(fraction)
        values = generator.evaluate_indices(indices)
        return self.reconstruct_from_samples(indices, values, label)

    def reconstruct_from_samples(
        self,
        flat_indices: np.ndarray,
        values: np.ndarray,
        label: str = "oscar-recon",
    ) -> tuple[Landscape, ReconstructionReport]:
        """Phase 3 only: reconstruct from already-measured samples.

        This is the entry point for hardware datasets (Fig. 5/6) and the
        parallel/NCM pipeline, where execution happened elsewhere.
        """
        flat_indices = np.asarray(flat_indices, dtype=int)
        values = np.asarray(values, dtype=float).reshape(-1)
        if flat_indices.shape[0] != values.shape[0]:
            raise ValueError("indices and values must have matching lengths")
        if not np.all(np.isfinite(values)):
            bad = int(np.sum(~np.isfinite(values)))
            raise ValueError(
                f"{bad} sample value(s) are non-finite; failed circuit "
                "executions must be dropped (see eager reconstruction) "
                "before reconstructing"
            )
        if np.unique(flat_indices).shape[0] != flat_indices.shape[0]:
            raise ValueError("sample indices contain duplicates")
        shape = self.grid.reshaped_2d_shape()
        signal, solver_result = reconstruct_signal(
            shape, flat_indices, values, self.config
        )
        landscape = Landscape(
            self.grid,
            signal.reshape(self.grid.shape),
            label=label,
            circuit_executions=int(flat_indices.shape[0]),
        )
        report = ReconstructionReport(
            num_samples=int(flat_indices.shape[0]),
            grid_size=self.grid.size,
            sampling_fraction=flat_indices.shape[0] / self.grid.size,
            speedup=self.grid.size / max(1, flat_indices.shape[0]),
            solver_iterations=solver_result.iterations,
            solver_converged=solver_result.converged,
        )
        return landscape, report
