"""OSCAR: compressed-sensing landscape reconstruction (the headline API).

:class:`OscarReconstructor` implements the three-phase workflow of
Fig. 3 of the paper:

1. **Parameter sampling** — draw a small random fraction of grid points;
2. **Circuit execution** — evaluate the cost function only at those
   points (via a :class:`~repro.landscape.generator.LandscapeGenerator`
   or any pre-measured values);
3. **Landscape reconstruction** — solve the L1/DCT sparse-recovery
   problem to produce the full landscape.

High-dimensional grids (p >= 2 QAOA) are reshaped to 2-D by the paper's
axis-concatenation before reconstruction (Sec. 4.2.4).

Two reconstruction paths are exposed:

- :meth:`~OscarReconstructor.reconstruct_from_samples` solves a single
  landscape through the solver registry of
  :mod:`~repro.cs.reconstruct`; pass ``warm_start=`` (a coefficient
  array, e.g. from :meth:`~OscarReconstructor.coefficients_of`) to seed
  FISTA when re-solving with a grown or perturbed sample set.
- :meth:`~OscarReconstructor.reconstruct_many` solves a whole stack of
  sample sets in one vectorized pass through the batched
  :class:`~repro.cs.engine.ReconstructionEngine` — the fast path for
  experiment sweeps that reconstruct dozens of landscapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cs.dct import transform
from ..cs.engine import ReconstructionEngine
from ..cs.reconstruct import (
    ReconstructionConfig,
    reconstruct_signal,
    validate_sample_set,
)
from ..cs.sampling import stratified_indices, uniform_random_indices
from ..cs.solvers import SolverResult
from .generator import LandscapeGenerator
from .grid import ParameterGrid
from .landscape import Landscape
from ..utils import ensure_rng

__all__ = ["OscarReconstructor", "ReconstructionReport", "sample_and_evaluate"]


def sample_and_evaluate(
    generator: LandscapeGenerator,
    reconstructor: "OscarReconstructor",
    fraction: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw one sample set and evaluate it: ``(flat_indices, values)``.

    The shared phase-1+2 step of every sweep that batches its
    reconstructions (the sampling/mitigation studies, ``oscar-repro
    batch``): sample indices from the reconstructor's rng, evaluate
    them through the generator — which routes through the daemon's
    sparse ``compute_indices`` op when the generator has ``daemon=``
    set — and return the pair ready for
    :meth:`OscarReconstructor.reconstruct_many`.
    """
    flat_indices = reconstructor.sample_indices(fraction)
    return flat_indices, generator.evaluate_indices(flat_indices)


@dataclass(frozen=True)
class ReconstructionReport:
    """Diagnostics of one OSCAR reconstruction.

    Attributes:
        num_samples: circuit executions used.
        grid_size: full grid size the samples were drawn from.
        sampling_fraction: ``num_samples / grid_size``.
        speedup: circuit-execution speedup over a dense grid search.
        solver_iterations: L1 solver iterations.
        solver_converged: whether the solver met its tolerance.
    """

    num_samples: int
    grid_size: int
    sampling_fraction: float
    speedup: float
    solver_iterations: int
    solver_converged: bool


class OscarReconstructor:
    """Reconstructs full landscapes from a sampled fraction of points."""

    def __init__(
        self,
        grid: ParameterGrid,
        config: ReconstructionConfig | None = None,
        sampler: str = "uniform",
        rng: np.random.Generator | int | None = None,
    ):
        if sampler not in ("uniform", "stratified"):
            raise ValueError(f"unknown sampler {sampler!r}")
        self.grid = grid
        self.config = config or ReconstructionConfig()
        self.sampler = sampler
        self.rng = ensure_rng(rng)

    # -- phase 1: sampling ---------------------------------------------------

    def sample_indices(self, fraction: float) -> np.ndarray:
        """Random flat grid indices for a target sampling fraction."""
        if self.sampler == "uniform":
            return uniform_random_indices(self.grid.size, fraction, self.rng)
        return stratified_indices(self.grid.size, fraction, self.rng)

    # -- phase 2+3: execute and reconstruct -----------------------------------

    def reconstruct(
        self,
        generator: LandscapeGenerator,
        fraction: float,
        label: str = "oscar-recon",
    ) -> tuple[Landscape, ReconstructionReport]:
        """Full OSCAR run: sample, execute, reconstruct.

        Args:
            generator: evaluates the cost function at sampled points.
            fraction: sampling fraction in (0, 1].
            label: provenance tag for the output landscape.
        """
        indices = self.sample_indices(fraction)
        values = generator.evaluate_indices(indices)
        return self.reconstruct_from_samples(indices, values, label)

    def reconstruct_from_samples(
        self,
        flat_indices: np.ndarray,
        values: np.ndarray,
        label: str = "oscar-recon",
        warm_start: np.ndarray | None = None,
    ) -> tuple[Landscape, ReconstructionReport]:
        """Phase 3 only: reconstruct from already-measured samples.

        This is the entry point for hardware datasets (Fig. 5/6) and the
        parallel/NCM pipeline, where execution happened elsewhere.

        Args:
            flat_indices: sampled flat grid indices (distinct).
            values: measured values aligned with ``flat_indices``.
            label: provenance tag for the output landscape.
            warm_start: optional initial FISTA coefficients (the
                reshaped-2-D coefficient array), e.g. from
                :meth:`coefficients_of` on a previous reconstruction.
        """
        flat_indices, values = self._validated_samples(flat_indices, values)
        shape = self.grid.reshaped_2d_shape()
        signal, solver_result = reconstruct_signal(
            shape, flat_indices, values, self.config, warm_start
        )
        return self._package(signal, solver_result, flat_indices, label)

    def reconstruct_many(
        self,
        sample_sets: Sequence[tuple[np.ndarray, np.ndarray]],
        labels: Sequence[str] | None = None,
        warm_starts: Sequence[np.ndarray | None] | None = None,
    ) -> list[tuple[Landscape, ReconstructionReport]]:
        """Reconstruct many sample sets in one batched engine pass.

        All sample sets share this reconstructor's grid and solver
        configuration; the engine stacks them along a leading axis and
        runs a single vectorized FISTA loop with per-landscape
        convergence masks (see :mod:`repro.cs.engine`).  Results match
        the serial :meth:`reconstruct_from_samples` per problem.

        Args:
            sample_sets: ``(flat_indices, values)`` per landscape.
            labels: optional provenance tags, one per sample set.
            warm_starts: optional per-landscape initial coefficients.

        Returns:
            ``(landscape, report)`` pairs in input order.
        """
        if labels is not None and len(labels) != len(sample_sets):
            raise ValueError("need one label per sample set")
        # The engine validates every problem (lengths, range,
        # duplicates, finiteness) — no need to repeat it here.  Indices
        # are flattened exactly as the validator flattens them so the
        # packaged reports count samples the same way.
        sample_sets = [
            (np.asarray(flat_indices, dtype=int).reshape(-1), values)
            for flat_indices, values in sample_sets
        ]
        shape = self.grid.reshaped_2d_shape()
        engine = ReconstructionEngine(shape, self.config)
        solved = engine.solve(sample_sets, warm_starts)
        output = []
        for position, (signal, solver_result) in enumerate(solved):
            label = labels[position] if labels is not None else "oscar-recon"
            output.append(
                self._package(
                    signal, solver_result, sample_sets[position][0], label
                )
            )
        return output

    def coefficients_of(self, landscape: Landscape) -> np.ndarray:
        """Basis coefficients of a landscape (for warm-starting).

        Because the basis is orthonormal, the forward transform of a
        reconstructed landscape is exactly the solver's coefficient
        array — pass it as ``warm_start`` to a follow-up solve.
        """
        return transform(landscape.reshaped_2d(), self.config.basis)

    # -- internals -----------------------------------------------------------

    def _validated_samples(
        self, flat_indices: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return validate_sample_set(self.grid.size, flat_indices, values)

    def _package(
        self,
        signal: np.ndarray,
        solver_result: SolverResult,
        flat_indices: np.ndarray,
        label: str,
    ) -> tuple[Landscape, ReconstructionReport]:
        landscape = Landscape(
            self.grid,
            signal.reshape(self.grid.shape),
            label=label,
            circuit_executions=int(flat_indices.shape[0]),
        )
        report = ReconstructionReport(
            num_samples=int(flat_indices.shape[0]),
            grid_size=self.grid.size,
            sampling_fraction=flat_indices.shape[0] / self.grid.size,
            speedup=self.grid.size / max(1, flat_indices.shape[0]),
            solver_iterations=solver_result.iterations,
            solver_converged=solver_result.converged,
        )
        return landscape, report
