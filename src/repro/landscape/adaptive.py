"""Adaptive OSCAR: choose the sampling fraction on the fly.

The paper motivates OSCAR with the observation that debugging budgets
are unknown a priori ("the user does not know a priori how many
executions they will need").  The base reconstructor still requires the
user to pick a sampling fraction.  This extension removes that knob:

1. sample a small initial batch and reconstruct;
2. estimate the reconstruction error *without ground truth* by holdout
   cross-validation — reconstruct from a subset of the samples and
   measure the prediction error on the held-out samples (normalised
   like the paper's NRMSE);
3. if the estimate exceeds the target, draw another batch (from the
   still-unsampled grid points) and repeat, up to a fraction cap.

The validation estimate tracks the true NRMSE well because both are
dominated by the same residual spectrum; the adaptive benchmark
quantifies the tracking quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .generator import LandscapeGenerator
from .landscape import Landscape
from .reconstructor import OscarReconstructor, ReconstructionReport
from ..utils import ensure_rng

__all__ = ["AdaptiveConfig", "AdaptiveOutcome", "adaptive_reconstruct", "holdout_error_estimate"]


def holdout_error_estimate(
    reconstructor: OscarReconstructor,
    flat_indices: np.ndarray,
    values: np.ndarray,
    holdout_fraction: float = 0.25,
    rng: np.random.Generator | None = None,
    warm_start: np.ndarray | None = None,
) -> float:
    """Cross-validated NRMSE-style error estimate from samples alone.

    Reconstructs from a random ``1 - holdout_fraction`` subset and
    scores the prediction on the held-out samples, normalising by the
    interquartile range of the held-out values (mirroring Eq. 1's
    normalisation so estimates are comparable to true NRMSE values).

    ``warm_start`` (a coefficient array from a previous round's
    reconstruction) seeds the internal solve; the adaptive loop uses it
    to make its repeated holdout solves converge in far fewer FISTA
    iterations.
    """
    estimate, _ = _holdout_estimate_with_landscape(
        reconstructor, flat_indices, values, holdout_fraction, rng, warm_start
    )
    return estimate


def _holdout_estimate_with_landscape(
    reconstructor: OscarReconstructor,
    flat_indices: np.ndarray,
    values: np.ndarray,
    holdout_fraction: float = 0.25,
    rng: np.random.Generator | None = None,
    warm_start: np.ndarray | None = None,
) -> tuple[float, Landscape]:
    """Holdout estimate plus the internal reconstruction (for reuse as
    the next round's warm start)."""
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError("holdout fraction must be in (0, 1)")
    rng = ensure_rng(rng)
    count = flat_indices.shape[0]
    if count < 8:
        raise ValueError("need at least 8 samples for a holdout estimate")
    holdout_size = max(2, int(round(holdout_fraction * count)))
    permutation = rng.permutation(count)
    held = permutation[:holdout_size]
    kept = permutation[holdout_size:]
    landscape, _ = reconstructor.reconstruct_from_samples(
        flat_indices[kept], values[kept], label="holdout-recon",
        warm_start=warm_start,
    )
    predicted = landscape.flat()[flat_indices[held]]
    actual = values[held]
    rms = float(np.sqrt(np.mean((predicted - actual) ** 2)))
    q1, q3 = np.percentile(values, (25, 75))
    iqr = q3 - q1
    if iqr <= 1e-12 * max(1.0, float(np.abs(values).max())):
        return (0.0 if rms < 1e-12 else float("inf")), landscape
    return rms / iqr, landscape


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive sampling loop.

    Attributes:
        target_error: stop once the holdout estimate falls below this.
        initial_fraction: first batch size, as a grid fraction.
        growth_factor: each subsequent batch multiplies the total sample
            count by this factor.
        max_fraction: hard cap on the total sampling fraction.
        holdout_fraction: share of samples held out per validation.
    """

    target_error: float = 0.1
    initial_fraction: float = 0.03
    growth_factor: float = 1.5
    max_fraction: float = 0.5
    holdout_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.target_error <= 0:
            raise ValueError("target error must be positive")
        if not 0.0 < self.initial_fraction <= self.max_fraction <= 1.0:
            raise ValueError("need 0 < initial_fraction <= max_fraction <= 1")
        if self.growth_factor <= 1.0:
            raise ValueError("growth factor must exceed 1")


@dataclass(frozen=True)
class AdaptiveOutcome:
    """Result of an adaptive reconstruction run.

    Attributes:
        landscape: the final reconstruction (from all gathered samples).
        report: final reconstruction diagnostics.
        error_estimates: holdout estimate after each round.
        fractions: cumulative sampling fraction after each round.
        met_target: True if the loop stopped because the estimate
            reached the target (False = fraction cap hit).
    """

    landscape: Landscape
    report: ReconstructionReport
    error_estimates: tuple[float, ...]
    fractions: tuple[float, ...]
    met_target: bool


def adaptive_reconstruct(
    reconstructor: OscarReconstructor,
    generator: LandscapeGenerator,
    config: AdaptiveConfig | None = None,
) -> AdaptiveOutcome:
    """Reconstruct with automatically chosen sampling fraction.

    Uses the reconstructor's RNG for all draws, so runs are reproducible
    given a seeded reconstructor.  Each round's holdout solve (and the
    final full solve) is warm-started from the previous round's
    reconstruction, so the repeated FISTA solves over growing sample
    sets converge in a fraction of the cold-start iterations.
    """
    config = config or AdaptiveConfig()
    grid = reconstructor.grid
    rng = reconstructor.rng
    sampled: np.ndarray = np.empty(0, dtype=int)
    values: np.ndarray = np.empty(0)
    estimates: list[float] = []
    fractions: list[float] = []
    met_target = False
    warm_start: np.ndarray | None = None
    target_count = max(8, int(round(config.initial_fraction * grid.size)))

    while True:
        # Draw the shortfall from the not-yet-sampled grid points.
        remaining = np.setdiff1d(np.arange(grid.size), sampled, assume_unique=False)
        needed = min(target_count, int(config.max_fraction * grid.size)) - sampled.size
        if needed > 0 and remaining.size > 0:
            new_indices = rng.choice(
                remaining, size=min(needed, remaining.size), replace=False
            )
            new_values = generator.evaluate_indices(new_indices)
            sampled = np.concatenate([sampled, np.asarray(new_indices, int)])
            values = np.concatenate([values, new_values])
            order = np.argsort(sampled)
            sampled = sampled[order]
            values = values[order]

        estimate, holdout_landscape = _holdout_estimate_with_landscape(
            reconstructor, sampled, values, config.holdout_fraction, rng, warm_start
        )
        warm_start = reconstructor.coefficients_of(holdout_landscape)
        estimates.append(estimate)
        fractions.append(sampled.size / grid.size)
        if estimate <= config.target_error:
            met_target = True
            break
        if sampled.size >= config.max_fraction * grid.size or remaining.size == 0:
            break
        target_count = int(np.ceil(sampled.size * config.growth_factor))

    landscape, report = reconstructor.reconstruct_from_samples(
        sampled, values, label="oscar-adaptive", warm_start=warm_start
    )
    return AdaptiveOutcome(
        landscape=landscape,
        report=report,
        error_estimates=tuple(estimates),
        fractions=tuple(fractions),
        met_target=met_target,
    )
