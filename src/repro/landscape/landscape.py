"""The :class:`Landscape` container.

A landscape is a dense array of cost values over a
:class:`~repro.landscape.grid.ParameterGrid`, plus provenance metadata
(how it was produced, at what cost).  It is the unit every other part
of the library exchanges: generators produce it, OSCAR reconstructs it,
metrics/interpolation/optimizers consume it.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from . import metrics as _metrics
from .grid import GridAxis, ParameterGrid

__all__ = ["Landscape"]


@dataclass
class Landscape:
    """Dense cost values over a parameter grid.

    Attributes:
        grid: the parameter grid the values live on.
        values: cost array with shape ``grid.shape``.
        label: provenance tag ("ground-truth", "oscar-recon", ...).
        circuit_executions: number of circuit evaluations spent
            producing it (grid size for grid search, sample count for
            OSCAR) — the paper's speedup metric is a ratio of these.
    """

    grid: ParameterGrid
    values: np.ndarray
    label: str = "landscape"
    circuit_executions: int = 0

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.shape != self.grid.shape:
            raise ValueError(
                f"values shape {self.values.shape} does not match grid "
                f"shape {self.grid.shape}"
            )

    # -- views -------------------------------------------------------------

    def flat(self) -> np.ndarray:
        """Row-major flattened values."""
        return self.values.reshape(-1)

    def reshaped_2d(self) -> np.ndarray:
        """Values under the paper's high-dim -> 2-D concatenation."""
        return self.values.reshape(self.grid.reshaped_2d_shape())

    def minimum(self) -> tuple[float, np.ndarray]:
        """``(min value, parameter vector at the minimum grid point)``."""
        flat_index = int(np.argmin(self.values))
        return float(self.flat()[flat_index]), self.grid.point_from_flat(flat_index)

    def maximum(self) -> tuple[float, np.ndarray]:
        """``(max value, parameter vector at the maximum grid point)``."""
        flat_index = int(np.argmax(self.values))
        return float(self.flat()[flat_index]), self.grid.point_from_flat(flat_index)

    def value_at(self, parameters: np.ndarray) -> float:
        """Value at the nearest grid point to a parameter vector."""
        return float(self.flat()[self.grid.nearest_flat_index(parameters)])

    # -- metrics -------------------------------------------------------------

    def nrmse_against(self, reference: "Landscape") -> float:
        """NRMSE of this landscape against a reference (true) one."""
        return _metrics.nrmse(reference.values, self.values)

    def second_derivative(self) -> float:
        """Roughness D2 (paper Eq. 2)."""
        return _metrics.second_derivative(self.values)

    def variance_of_gradient(self) -> float:
        """Flatness VoG (paper Eq. 3)."""
        return _metrics.variance_of_gradient(self.values)

    def variance(self) -> float:
        """Value variance (paper Eq. 4)."""
        return _metrics.landscape_variance(self.values)

    def dct_sparsity(self, energy_fraction: float = 0.99) -> float:
        """Fraction of DCT coefficients carrying the energy share."""
        return _metrics.dct_sparsity(self.values, energy_fraction)

    # -- persistence ---------------------------------------------------------

    def _payload_arrays(self) -> dict:
        """The arrays :meth:`save`/:meth:`to_bytes` serialize."""
        return dict(
            values=self.values,
            axis_names=np.array([axis.name for axis in self.grid.axes]),
            axis_lows=np.array([axis.low for axis in self.grid.axes]),
            axis_highs=np.array([axis.high for axis in self.grid.axes]),
            axis_points=np.array([axis.num_points for axis in self.grid.axes]),
            label=np.array(self.label),
            circuit_executions=np.array(self.circuit_executions),
        )

    @classmethod
    def _from_arrays(cls, data) -> "Landscape":
        """Rebuild from the mapping :meth:`_payload_arrays` produced."""
        axes = [
            GridAxis(str(name), float(low), float(high), int(points))
            for name, low, high, points in zip(
                data["axis_names"],
                data["axis_lows"],
                data["axis_highs"],
                data["axis_points"],
            )
        ]
        return cls(
            ParameterGrid(axes),
            data["values"],
            label=str(data["label"]),
            circuit_executions=int(data["circuit_executions"]),
        )

    def save(self, path: str | Path) -> None:
        """Serialise to ``.npz`` (values + axis definitions + metadata).

        Missing parent directories are created, so nested store/result
        layouts save without ceremony.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(path, **self._payload_arrays())

    @classmethod
    def load(cls, path: str | Path) -> "Landscape":
        """Deserialise from :meth:`save` output."""
        with np.load(Path(path), allow_pickle=False) as data:
            return cls._from_arrays(data)

    def to_bytes(self) -> bytes:
        """The :meth:`save` payload as in-memory bytes.

        This is the wire format of the landscape daemon
        (:mod:`repro.service.daemon`): one compressed ``.npz`` blob,
        identical to what :meth:`save` writes, so a served landscape and
        a stored landscape are the same artifact.
        """
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **self._payload_arrays())
        return buffer.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Landscape":
        """Rebuild a landscape from :meth:`to_bytes` output."""
        with np.load(io.BytesIO(blob), allow_pickle=False) as data:
            return cls._from_arrays(data)

    def with_values(self, values: np.ndarray, label: str | None = None) -> "Landscape":
        """A copy on the same grid with different values."""
        return Landscape(
            self.grid,
            values,
            label=label or self.label,
            circuit_executions=self.circuit_executions,
        )
