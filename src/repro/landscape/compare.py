"""Landscape comparison reports.

Debugging with OSCAR constantly answers "how similar are these two
landscapes?" — reconstruction vs truth, device A vs device B, mitigated
vs unmitigated.  :func:`compare_landscapes` bundles every similarity
statistic the paper uses into one report: NRMSE (Eq. 1), pointwise
correlation (the Fig. 5 "perceptually identical" proxy), the three
shape metrics side by side (Fig. 10), and optimum agreement (basin
distance between the two argmins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import metrics as _metrics
from .landscape import Landscape

__all__ = ["LandscapeComparison", "compare_landscapes"]


@dataclass(frozen=True)
class LandscapeComparison:
    """Similarity report between a reference and a candidate landscape.

    Attributes:
        nrmse: Eq. 1 error of the candidate against the reference.
        correlation: Pearson correlation of the flattened values.
        minimum_distance: parameter-space distance between the two
            argmin grid points.
        minimum_value_gap: reference cost at the candidate's argmin
            minus the reference's own minimum (0 = same basin floor).
        d2_ratio: candidate / reference second-derivative roughness.
        vog_ratio: candidate / reference variance-of-gradient.
        variance_ratio: candidate / reference value variance.
    """

    nrmse: float
    correlation: float
    minimum_distance: float
    minimum_value_gap: float
    d2_ratio: float
    vog_ratio: float
    variance_ratio: float

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"NRMSE {self.nrmse:.4f}, correlation {self.correlation:.3f}; "
            f"argmin distance {self.minimum_distance:.3f} "
            f"(value gap {self.minimum_value_gap:+.4f}); "
            f"metric ratios D2 {self.d2_ratio:.2f}, VoG {self.vog_ratio:.2f}, "
            f"variance {self.variance_ratio:.2f}"
        )


def _safe_ratio(numerator: float, denominator: float) -> float:
    if abs(denominator) < 1e-300:
        return float("inf") if abs(numerator) > 1e-300 else 1.0
    return numerator / denominator


def compare_landscapes(reference: Landscape, candidate: Landscape) -> LandscapeComparison:
    """Full similarity report of ``candidate`` against ``reference``.

    Both landscapes must share a grid shape (they normally share the
    grid object itself).
    """
    if reference.values.shape != candidate.values.shape:
        raise ValueError(
            f"landscape shapes differ: {reference.values.shape} vs "
            f"{candidate.values.shape}"
        )
    ref_flat = reference.flat()
    cand_flat = candidate.flat()
    if np.std(ref_flat) > 0 and np.std(cand_flat) > 0:
        correlation = float(np.corrcoef(ref_flat, cand_flat)[0, 1])
    else:
        correlation = 1.0 if np.allclose(ref_flat, cand_flat) else 0.0
    ref_min_value, ref_min_point = reference.minimum()
    _, cand_min_point = candidate.minimum()
    return LandscapeComparison(
        nrmse=_metrics.nrmse(reference.values, candidate.values),
        correlation=correlation,
        minimum_distance=float(np.linalg.norm(ref_min_point - cand_min_point)),
        minimum_value_gap=float(reference.value_at(cand_min_point) - ref_min_value),
        d2_ratio=_safe_ratio(
            _metrics.second_derivative(candidate.values),
            _metrics.second_derivative(reference.values),
        ),
        vog_ratio=_safe_ratio(
            _metrics.variance_of_gradient(candidate.values),
            _metrics.variance_of_gradient(reference.values),
        ),
        variance_ratio=_safe_ratio(
            _metrics.landscape_variance(candidate.values),
            _metrics.landscape_variance(reference.values),
        ),
    )
