"""Landscape generation: grid search (ground truth) and point sampling.

:class:`LandscapeGenerator` evaluates a cost function over a
:class:`~repro.landscape.grid.ParameterGrid`.  The cost function is any
callable ``parameters -> float`` — typically a closure over an
:class:`~repro.ansatz.base.Ansatz` with a fixed noise/shots setting, for
which :func:`cost_function` is the standard factory.

Grid search is what the paper calls the expensive baseline (5k-32k
circuit executions per landscape, Table 1); ``evaluate_indices`` is the
cheap path OSCAR uses (a few percent of the grid).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.noise import NoiseModel
from .grid import ParameterGrid
from .landscape import Landscape

__all__ = ["LandscapeGenerator", "cost_function"]

CostFunction = Callable[[np.ndarray], float]


def cost_function(
    ansatz: Ansatz,
    noise: NoiseModel | None = None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> CostFunction:
    """Bind an ansatz and execution settings into a plain callable."""

    def evaluate(parameters: np.ndarray) -> float:
        return ansatz.expectation(parameters, noise=noise, shots=shots, rng=rng)

    return evaluate


class LandscapeGenerator:
    """Evaluates a cost function on grid points."""

    def __init__(self, function: CostFunction, grid: ParameterGrid):
        self.function = function
        self.grid = grid

    def grid_search(self, label: str = "ground-truth") -> Landscape:
        """Dense evaluation of every grid point (the expensive baseline)."""
        values = np.empty(self.grid.size)
        for flat_index, parameters in self.grid.iter_points():
            values[flat_index] = self.function(parameters)
        return Landscape(
            self.grid,
            values.reshape(self.grid.shape),
            label=label,
            circuit_executions=self.grid.size,
        )

    def evaluate_indices(self, flat_indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Cost values at a subset of grid points (OSCAR's sampling)."""
        flat_indices = np.asarray(flat_indices, dtype=int)
        points = self.grid.points_from_flat(flat_indices)
        return np.array([self.function(point) for point in points])

    def evaluate_point(self, parameters: np.ndarray) -> float:
        """Cost at an arbitrary (off-grid) parameter vector."""
        return self.function(np.asarray(parameters, dtype=float))
