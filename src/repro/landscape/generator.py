"""Landscape generation: grid search (ground truth) and point sampling.

:class:`LandscapeGenerator` evaluates a cost function over a
:class:`~repro.landscape.grid.ParameterGrid`.  The cost function is any
callable ``parameters -> float`` — typically an
:class:`AnsatzCostFunction` binding an :class:`~repro.ansatz.base.Ansatz`
to a fixed noise/shots setting, for which :func:`cost_function` is the
standard factory.

Grid search is what the paper calls the expensive baseline (5k-32k
circuit executions per landscape, Table 1); ``evaluate_indices`` is the
cheap path OSCAR uses (a few percent of the grid).

Execution is batched end to end: when the cost function exposes a
vectorized ``many(points) -> values`` path (every
:class:`AnsatzCostFunction` does, through
:meth:`~repro.ansatz.base.Ansatz.expectation_many`, as do the mitigated
cost functions :class:`~repro.mitigation.zne.ZneCostFunction` and
:class:`~repro.mitigation.cdr.CdrCostFunction`), grid points are
evaluated in memory-capped chunks of ``batch_size`` points per
vectorized pass instead of one Python-level call per point.  Plain
closures without a ``many`` attribute still work and fall back to the
point-at-a-time loop, so custom cost functions need no changes.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.batched import default_batch_size
from ..quantum.noise import NoiseModel
from .grid import ParameterGrid
from .landscape import Landscape

__all__ = ["AnsatzCostFunction", "LandscapeGenerator", "cost_function"]

CostFunction = Callable[[np.ndarray], float]


class AnsatzCostFunction:
    """An ansatz bound to execution settings, callable point by point.

    Instances behave exactly like the closure :func:`cost_function` used
    to return (``function(parameters) -> float``) while additionally
    exposing:

    - :meth:`many` — the vectorized batch path, forwarding to
      :meth:`~repro.ansatz.base.Ansatz.expectation_many`;
    - :attr:`num_qubits` — so the landscape layer can pick a
      memory-capped default batch size.
    """

    def __init__(
        self,
        ansatz: Ansatz,
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.ansatz = ansatz
        self.noise = noise
        self.shots = shots
        self.rng = rng

    @property
    def num_qubits(self) -> int:
        """Width of the underlying circuit (drives batch sizing)."""
        return self.ansatz.num_qubits

    def __call__(self, parameters: np.ndarray) -> float:
        """Cost value at one parameter point."""
        return self.ansatz.expectation(
            parameters, noise=self.noise, shots=self.shots, rng=self.rng
        )

    def many(self, parameters_batch: np.ndarray) -> np.ndarray:
        """Cost values for a ``(B, num_parameters)`` batch of points."""
        return self.ansatz.expectation_many(
            parameters_batch, noise=self.noise, shots=self.shots, rng=self.rng
        )


def cost_function(
    ansatz: Ansatz,
    noise: NoiseModel | None = None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> AnsatzCostFunction:
    """Bind an ansatz and execution settings into a batch-capable callable."""
    return AnsatzCostFunction(ansatz, noise=noise, shots=shots, rng=rng)


class LandscapeGenerator:
    """Evaluates a cost function on grid points, batched where possible.

    Args:
        function: the cost function; if it exposes ``many(points)``
            (see :class:`AnsatzCostFunction`), evaluation is chunked
            through the vectorized path.
        grid: the parameter grid to evaluate on.
        batch_size: grid points per vectorized pass.  ``None`` picks a
            memory-capped default from the cost function's qubit count
            (:func:`~repro.quantum.batched.default_batch_size`),
            divided by the cost function's ``rows_per_point`` when it
            fans points out into several execution rows (batched ZNE).
            An explicit value always counts *points*: with a
            ``rows_per_point`` cost function the folded execution batch
            is ``batch_size * rows_per_point`` rows, so keep explicit
            overrides small on mitigated landscapes.
    """

    def __init__(
        self,
        function: CostFunction,
        grid: ParameterGrid,
        batch_size: int | None = None,
    ):
        self.function = function
        self.grid = grid
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size

    def _resolved_batch_size(self) -> int:
        if self.batch_size is not None:
            return int(self.batch_size)
        # Cost functions that fan each point out into several execution
        # rows (batched ZNE: one row per noise scale) advertise the fold
        # via ``rows_per_point``; shrink the per-chunk point count so
        # the folded batch still fits the backend's cache budget.
        rows = max(1, int(getattr(self.function, "rows_per_point", 1)))
        capacity = default_batch_size(getattr(self.function, "num_qubits", None))
        return max(1, capacity // rows)

    def evaluate_points(self, points: np.ndarray) -> np.ndarray:
        """Cost values for an ``(m, ndim)`` array of parameter vectors.

        Uses the cost function's vectorized ``many`` path in
        ``batch_size``-point chunks when available, else loops.
        """
        points = np.asarray(points, dtype=float)
        if points.shape[0] == 0:
            return np.empty(0)
        many = getattr(self.function, "many", None)
        if many is None:
            return np.array([self.function(point) for point in points])
        chunk = self._resolved_batch_size()
        return np.concatenate(
            [
                np.asarray(many(points[start : start + chunk]), dtype=float)
                for start in range(0, points.shape[0], chunk)
            ]
        )

    def grid_search(self, label: str = "ground-truth") -> Landscape:
        """Dense evaluation of every grid point (the expensive baseline)."""
        points = self.grid.points_from_flat(np.arange(self.grid.size))
        values = self.evaluate_points(points)
        return Landscape(
            self.grid,
            values.reshape(self.grid.shape),
            label=label,
            circuit_executions=self.grid.size,
        )

    def evaluate_indices(self, flat_indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Cost values at a subset of grid points (OSCAR's sampling)."""
        flat_indices = np.asarray(flat_indices, dtype=int)
        return self.evaluate_points(self.grid.points_from_flat(flat_indices))

    def evaluate_point(self, parameters: np.ndarray) -> float:
        """Cost at an arbitrary (off-grid) parameter vector."""
        return self.function(np.asarray(parameters, dtype=float))
