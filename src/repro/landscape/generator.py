"""Landscape generation: grid search (ground truth) and point sampling.

:class:`LandscapeGenerator` evaluates a cost function over a
:class:`~repro.landscape.grid.ParameterGrid`.  The cost function is any
callable ``parameters -> float`` — typically an
:class:`AnsatzCostFunction` binding an :class:`~repro.ansatz.base.Ansatz`
to a fixed noise/shots setting, for which :func:`cost_function` is the
standard factory.

Grid search is what the paper calls the expensive baseline (5k-32k
circuit executions per landscape, Table 1); ``evaluate_indices`` is the
cheap path OSCAR uses (a few percent of the grid).

Execution is batched end to end: when the cost function exposes a
vectorized ``many(points) -> values`` path (every
:class:`AnsatzCostFunction` does, through
:meth:`~repro.ansatz.base.Ansatz.expectation_many`, as do the mitigated
cost functions :class:`~repro.mitigation.zne.ZneCostFunction` and
:class:`~repro.mitigation.cdr.CdrCostFunction`), grid points are
evaluated in memory-capped chunks of ``batch_size`` points per
vectorized pass instead of one Python-level call per point.  Plain
closures without a ``many`` attribute still work and fall back to the
point-at-a-time loop, so custom cost functions need no changes.

On top of the single-process engine sit the service knobs
(:mod:`repro.service`):

- ``workers=`` / ``shard_points=`` / ``seed=`` fan the evaluation out
  across a :class:`~repro.service.shards.ShardedExecutor` — contiguous
  grid shards on a multiprocessing pool, with per-shard
  ``SeedSequence.spawn`` generators when ``seed`` is given so
  shot-noise results are bit-identical for any worker count;
- ``store=`` consults a content-addressed
  :class:`~repro.service.store.LandscapeStore` before running a grid
  search, so repeated requests for the same landscape are file loads;
- ``daemon=`` routes :meth:`LandscapeGenerator.grid_search` through a
  running :class:`~repro.service.daemon.LandscapeDaemon` (shared
  persistent pool + shared cache + request dedup), falling back to the
  in-process path when no daemon is listening.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.batched import default_batch_size
from ..quantum.noise import NoiseModel
from .grid import ParameterGrid, validate_flat_indices
from .landscape import Landscape

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service uses us)
    from ..service.store import LandscapeSpec, LandscapeStore

__all__ = [
    "AnsatzCostFunction",
    "LandscapeGenerator",
    "cost_function",
    "evaluate_points_chunked",
    "resolve_batch_size",
]

CostFunction = Callable[[np.ndarray], float]


def resolve_batch_size(function: CostFunction, batch_size: int | None) -> int:
    """Points per vectorized pass for a cost function.

    ``None`` asks the function itself via its ``batch_capacity()`` hook
    when it has one (every ansatz-backed cost function does — it is
    noise-engine aware, so noisy Two-local/UCCSD grids shrink to the
    density engine's ``4**n``-per-row budget), else falls back to the
    statevector default from the function's qubit count
    (:func:`~repro.quantum.batched.default_batch_size`).  Either
    capacity is divided by ``rows_per_point`` when each landscape point
    fans out into several execution rows (batched ZNE).  An explicit
    value always counts *points*.
    """
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return int(batch_size)
    rows = max(1, int(getattr(function, "rows_per_point", 1)))
    capacity_hook = getattr(function, "batch_capacity", None)
    if capacity_hook is not None:
        capacity = int(capacity_hook())
    else:
        capacity = default_batch_size(getattr(function, "num_qubits", None))
    return max(1, capacity // rows)


def evaluate_points_chunked(
    function: CostFunction, points: np.ndarray, batch_size: int | None = None
) -> np.ndarray:
    """Cost values for ``(m, ndim)`` points, chunked through ``many``.

    The single-process evaluation core, shared by
    :class:`LandscapeGenerator` and the sharded executor's workers
    (each shard runs exactly this).  Functions without a ``many``
    attribute fall back to the point-at-a-time loop.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        return np.empty(0)
    many = getattr(function, "many", None)
    if many is None:
        return np.array([function(point) for point in points])
    chunk = resolve_batch_size(function, batch_size)
    return np.concatenate(
        [
            np.asarray(many(points[start : start + chunk]), dtype=float)
            for start in range(0, points.shape[0], chunk)
        ]
    )


class AnsatzCostFunction:
    """An ansatz bound to execution settings, callable point by point.

    Instances behave exactly like the closure :func:`cost_function` used
    to return (``function(parameters) -> float``) while additionally
    exposing:

    - :meth:`many` — the vectorized batch path, forwarding to
      :meth:`~repro.ansatz.base.Ansatz.expectation_many`;
    - :attr:`num_qubits` — so the landscape layer can pick a
      memory-capped default batch size;
    - :meth:`cache_spec` — the canonical content description the
      landscape store hashes into a cache key.

    ``sampler`` selects the shot-noise sampling strategy of the batch
    path: ``"parity"`` (default) preserves the serial loop's rng draw
    order; ``"multinomial"`` opts into the vectorized multinomial
    sampler (same per-row statistics, different draw order, markedly
    faster on shots-heavy grids — see
    :meth:`~repro.quantum.batched.BatchedStatevector.sample_expectation_diagonal`).
    """

    def __init__(
        self,
        ansatz: Ansatz,
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
        sampler: str = "parity",
    ):
        self.ansatz = ansatz
        self.noise = noise
        self.shots = shots
        self.rng = rng
        self.sampler = Ansatz.validate_sampler(sampler)

    @property
    def num_qubits(self) -> int:
        """Width of the underlying circuit (drives batch sizing)."""
        return self.ansatz.num_qubits

    def batch_capacity(self) -> int:
        """Memory-capped execution rows per chunk (noise-engine aware).

        Delegates to :meth:`~repro.ansatz.base.Ansatz.batch_capacity`,
        so noisy grids on density-engine ansatzes get the smaller
        ``4**n``-per-row chunking automatically.
        """
        return self.ansatz.batch_capacity(self.noise)

    def __call__(self, parameters: np.ndarray) -> float:
        """Cost value at one parameter point."""
        return self.ansatz.expectation(
            parameters, noise=self.noise, shots=self.shots, rng=self.rng
        )

    def many(self, parameters_batch: np.ndarray) -> np.ndarray:
        """Cost values for a ``(B, num_parameters)`` batch of points."""
        return self.ansatz.expectation_many(
            parameters_batch,
            noise=self.noise,
            shots=self.shots,
            rng=self.rng,
            sampler=self.sampler,
        )

    def cache_spec(self) -> dict:
        """Canonical content description for the landscape store.

        Captures everything that determines exact values: the ansatz
        and problem content (:meth:`~repro.ansatz.base.Ansatz.cache_spec`),
        the noise model, and the shot budget.  The sampler only matters
        when shot noise is drawn, so it is recorded only then — exact
        landscapes share one key across sampler settings.
        """
        spec = {
            "kind": "ansatz",
            "ansatz": self.ansatz.cache_spec(),
            "noise": _noise_spec(self.noise),
            "shots": self.shots,
        }
        if self.shots is not None:
            spec["sampler"] = self.sampler
        return spec


def _noise_spec(noise: NoiseModel | None) -> dict | None:
    """Canonical payload of a noise model (``None`` stays ``None``)."""
    return None if noise is None else noise.cache_spec()


def cost_function(
    ansatz: Ansatz,
    noise: NoiseModel | None = None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
    sampler: str = "parity",
) -> AnsatzCostFunction:
    """Bind an ansatz and execution settings into a batch-capable callable."""
    return AnsatzCostFunction(
        ansatz, noise=noise, shots=shots, rng=rng, sampler=sampler
    )


class LandscapeGenerator:
    """Evaluates a cost function on grid points, batched where possible.

    Args:
        function: the cost function; if it exposes ``many(points)``
            (see :class:`AnsatzCostFunction`), evaluation is chunked
            through the vectorized path.
        grid: the parameter grid to evaluate on.
        batch_size: grid points per vectorized pass.  ``None`` picks a
            memory-capped default from the cost function's qubit count
            (:func:`~repro.quantum.batched.default_batch_size`),
            divided by the cost function's ``rows_per_point`` when it
            fans points out into several execution rows (batched ZNE).
            An explicit value always counts *points*: with a
            ``rows_per_point`` cost function the folded execution batch
            is ``batch_size * rows_per_point`` rows, so keep explicit
            overrides small on mitigated landscapes.
        workers: processes for sharded execution (``1`` = in-process).
        shard_points: points per shard for the sharded executor
            (``None`` = its worker-count-independent default).
        seed: root seed for per-shard shot-noise generators.  Required
            for multiprocess shot noise and for caching shot-noise
            landscapes; makes seeded results bit-identical for any
            worker count.  Takes precedence over the cost function's
            bound ``rng`` when set.
        store: a :class:`~repro.service.store.LandscapeStore`;
            :meth:`grid_search` then serves repeated requests from the
            cache (see :meth:`cache_spec`).
        daemon: socket path or ``tcp://host:port`` target of a running
            :class:`~repro.service.daemon.LandscapeDaemon` (or a
            :class:`~repro.service.client.LandscapeClient`);
            :meth:`grid_search` is then served by the daemon — shared
            persistent pool, shared cache, concurrent identical
            requests computed once — and transparently falls back to
            this generator's own in-process path (honouring
            ``workers``/``store``) when no daemon is listening.
        daemon_token: bearer token presented to an authenticated
            daemon (required for ``tcp://`` targets; resolves to a
            tenant store namespace server-side).  Ignored when
            ``daemon=`` is already a client.
        executor_pool: an already-running ``multiprocessing`` pool the
            sharded executor should reuse instead of forking per call
            (how the daemon itself executes requests); the pool's
            lifetime belongs to the caller.

    Example — a dense grid search over a 4-qubit QAOA landscape::

        >>> from repro.ansatz import QaoaAnsatz
        >>> from repro.landscape import LandscapeGenerator, cost_function, qaoa_grid
        >>> from repro.problems import random_3_regular_maxcut
        >>> ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1)
        >>> generator = LandscapeGenerator(
        ...     cost_function(ansatz), qaoa_grid(p=1, resolution=(4, 8))
        ... )
        >>> landscape = generator.grid_search(label="demo")
        >>> landscape.values.shape
        (4, 8)
        >>> landscape.circuit_executions
        32
    """

    def __init__(
        self,
        function: CostFunction,
        grid: ParameterGrid,
        batch_size: int | None = None,
        workers: int = 1,
        shard_points: int | None = None,
        seed: int | None = None,
        store: "LandscapeStore | None" = None,
        daemon=None,
        daemon_token: str | None = None,
        executor_pool=None,
    ):
        self.function = function
        self.grid = grid
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.batch_size = batch_size
        self.workers = int(workers)
        self.shard_points = shard_points
        self.seed = None if seed is None else int(seed)
        self.store = store
        self.daemon = daemon
        self.daemon_token = daemon_token
        self.executor_pool = executor_pool

    def _resolved_batch_size(self) -> int:
        return resolve_batch_size(self.function, self.batch_size)

    def _sharded(self) -> bool:
        """Whether evaluation routes through the sharded executor.

        Any of the service knobs opts in: extra workers, an explicit
        shard layout, or a root seed (which alone switches shot noise
        to the worker-count-independent per-shard seeding scheme).
        """
        return (
            self.workers > 1
            or self.shard_points is not None
            or self.seed is not None
        )

    def _executor(self):
        from ..service.shards import ShardedExecutor

        return ShardedExecutor(
            workers=self.workers,
            shard_points=self.shard_points,
            seed=self.seed,
            pool=self.executor_pool,
        )

    def _client(self):
        """The daemon client for ``daemon=`` (paths become clients)."""
        from ..service.client import LandscapeClient

        if isinstance(self.daemon, LandscapeClient):
            return self.daemon
        return LandscapeClient(self.daemon, token=self.daemon_token)

    def evaluate_points(self, points: np.ndarray) -> np.ndarray:
        """Cost values for an ``(m, ndim)`` array of parameter vectors.

        Uses the cost function's vectorized ``many`` path in
        ``batch_size``-point chunks when available, else loops; with the
        service knobs set, points are fanned out across contiguous
        shards first (see :class:`~repro.service.shards.ShardedExecutor`).
        """
        points = np.asarray(points, dtype=float)
        if points.shape[0] == 0:
            return np.empty(0)
        if self._sharded():
            return self._executor().run(
                self.function, points, batch_size=self.batch_size
            )
        return evaluate_points_chunked(self.function, points, self.batch_size)

    def cache_spec(self) -> "LandscapeSpec":
        """The canonical spec :meth:`grid_search` is cached under.

        Requires a cost function that describes its content via
        ``cache_spec()`` (:class:`AnsatzCostFunction`,
        :class:`~repro.mitigation.zne.ZneCostFunction`).  Shot-noise
        landscapes additionally need ``seed=`` — their values depend on
        the rng plan, which the spec records as ``(seed, shards)``;
        exact landscapes are execution-plan independent and share one
        key across worker counts and shard layouts.
        """
        from ..service.shards import plan_shards
        from ..service.store import LandscapeSpec

        describe = getattr(self.function, "cache_spec", None)
        if describe is None:
            raise TypeError(
                f"{type(self.function).__name__} does not describe itself "
                "for caching (no cache_spec method); the landscape store "
                "needs a content description to derive a key"
            )
        shots = getattr(self.function, "shots", None)
        execution = None
        if shots is not None:
            if self.seed is None:
                raise ValueError(
                    "caching a shot-noise landscape needs seed=: sampled "
                    "values depend on the rng plan, which an unseeded "
                    "generator cannot record in the cache key"
                )
            shards = plan_shards(self.grid.size, self.shard_points)
            # The first shard's size canonically identifies the layout
            # (given the grid size): per-shard generators depend on the
            # shard *boundaries*, so two layouts with equal shard counts
            # but different boundaries must not share a key, while
            # equivalent oversized shard_points settings (one shard
            # either way) should.
            execution = {
                "seed": self.seed,
                "shard_points": shards[0].size if shards else 0,
            }
        return LandscapeSpec.from_parts(
            describe(), self.grid, shots=shots, execution=execution
        )

    def grid_search(self, label: str = "ground-truth") -> Landscape:
        """Dense evaluation of every grid point (the expensive baseline).

        With ``daemon=`` set, the request is served by the landscape
        daemon (its cache, its persistent pool, deduplicated against
        concurrent identical requests), falling back to the local path
        below when no daemon is listening.  With ``store=`` set, the
        store is consulted first: a hit is a file load (relabelled to
        ``label``), a miss computes and persists before returning.
        """
        if self.daemon is not None:
            return self._client().get_or_compute(
                self.function,
                self.grid,
                batch_size=self.batch_size,
                seed=self.seed,
                shard_points=self.shard_points,
                label=label,
                fallback=lambda: self.local_grid_search(label),
            )
        return self.local_grid_search(label)

    def local_grid_search(self, label: str = "ground-truth") -> Landscape:
        """The in-process :meth:`grid_search` path (ignores ``daemon=``).

        This is both the no-daemon fallback and what the daemon itself
        runs server-side; ``store=`` caching still applies.
        """
        if self.store is not None:
            landscape = self.store.get_or_compute(
                self.cache_spec(), lambda: self._grid_search(label)
            )
            if landscape.label != label:
                landscape = replace(landscape, label=label)
            return landscape
        return self._grid_search(label)

    def _grid_search(self, label: str) -> Landscape:
        points = self.grid.points_from_flat(np.arange(self.grid.size))
        values = self.evaluate_points(points)
        return Landscape(
            self.grid,
            values.reshape(self.grid.shape),
            label=label,
            circuit_executions=self.grid.size,
        )

    def evaluate_indices(self, flat_indices: Sequence[int] | np.ndarray) -> np.ndarray:
        """Cost values at a subset of grid points (OSCAR's sampling).

        Indices are bounds-checked first (negative or >= ``grid.size``
        raises ``ValueError`` instead of silently wrapping).  With
        ``daemon=`` set, the subset is evaluated server-side through
        the daemon's ``compute_indices`` op — warm persistent pool,
        read-through from a cached dense landscape when one exists,
        concurrent identical requests computed once — falling back to
        the local path when no daemon is listening.
        """
        flat_indices = validate_flat_indices(self.grid.size, flat_indices)
        if self.daemon is not None:
            return self._client().evaluate_indices(
                self.function,
                self.grid,
                flat_indices,
                batch_size=self.batch_size,
                seed=self.seed,
                shard_points=self.shard_points,
                fallback=lambda: self.local_evaluate_indices(flat_indices),
            )
        return self.local_evaluate_indices(flat_indices)

    def local_evaluate_indices(
        self, flat_indices: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """The in-process :meth:`evaluate_indices` path (ignores
        ``daemon=``).  This is both the no-daemon fallback and what the
        daemon itself runs server-side on a sparse miss."""
        flat_indices = validate_flat_indices(self.grid.size, flat_indices)
        return self.evaluate_points(self.grid.points_from_flat(flat_indices))

    def run_pipeline(self, config, sample_rng=None):
        """One OSCAR loop: sample → evaluate → reconstruct → optimize.

        ``config`` is a :class:`~repro.service.pipeline.PipelineConfig`;
        the result is a :class:`~repro.service.pipeline.PipelineOutcome`
        carrying the reconstructed landscape, its report, the optimizer
        trajectory and per-stage timings.  With ``daemon=`` set, the
        whole loop runs server-side in one request (the ``pipeline``
        op), falling back to the in-process implementation when no
        daemon is listening.
        """
        from ..service.pipeline import run_pipeline

        if self.daemon is not None:
            return self._client().run_pipeline(
                self.function,
                self.grid,
                config,
                sample_rng=sample_rng,
                batch_size=self.batch_size,
                seed=self.seed,
                shard_points=self.shard_points,
                fallback=lambda: run_pipeline(self, config, sample_rng),
            )
        return run_pipeline(self, config, sample_rng)

    def evaluate_point(self, parameters: np.ndarray) -> float:
        """Cost at an arbitrary (off-grid) parameter vector."""
        return self.function(np.asarray(parameters, dtype=float))
