"""Landscape quality and shape metrics.

Implements every metric the paper reports:

- :func:`nrmse` — Eq. 1: RMS error between two landscapes, normalised
  by the interquartile range of the true landscape;
- :func:`second_derivative` — Eq. 2: the roughness statistic
  ``sum_i (x_i - 2 x_{i-1} + x_{i-2})^2 / 4``;
- :func:`variance_of_gradient` — Eq. 3: variance of first differences
  (the barren-plateau / flatness probe);
- :func:`landscape_variance` — Eq. 4: plain variance of the values;
- :func:`dct_sparsity` — Table 4's fraction of DCT coefficients needed
  for 99% of the signal energy.

The paper computes the 1-D formulas "on all dimensions" and averages;
:func:`_mean_over_axes` implements that convention for N-D arrays.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..cs.dct import sparsity_fraction_for_energy

__all__ = [
    "nrmse",
    "second_derivative",
    "variance_of_gradient",
    "landscape_variance",
    "dct_sparsity",
]


def nrmse(true_values: np.ndarray, reconstructed_values: np.ndarray) -> float:
    """Normalised root-mean-square error (paper Eq. 1).

    ``sqrt(mean((x - y)^2)) / (Q3(x) - Q1(x))`` with quartiles taken on
    the true landscape.  Scale-invariant, so errors are comparable
    across problems with different energy ranges.
    """
    x = np.asarray(true_values, dtype=float).reshape(-1)
    y = np.asarray(reconstructed_values, dtype=float).reshape(-1)
    if x.shape != y.shape:
        raise ValueError(
            f"landscape shapes differ: {x.shape} vs {y.shape}"
        )
    rms = np.sqrt(np.mean((x - y) ** 2))
    q1, q3 = np.percentile(x, (25, 75))
    iqr = q3 - q1
    # Guard against (numerically) constant landscapes, where the IQR is
    # zero up to round-off and Eq. 1 would divide by noise.
    scale = max(1.0, float(np.abs(x).max()))
    if iqr <= 1e-12 * scale:
        spread = float(np.ptp(x))
        if spread <= 1e-12 * scale:
            return 0.0 if rms <= 1e-12 * scale else float("inf")
        return float(rms / spread)
    return float(rms / iqr)


def _mean_over_axes(values: np.ndarray, statistic: Callable[[np.ndarray], float]) -> float:
    """Apply a 1-D statistic along every axis (all slices) and average."""
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        return float(statistic(values))
    totals = []
    for axis in range(values.ndim):
        moved = np.moveaxis(values, axis, -1)
        flattened = moved.reshape(-1, values.shape[axis])
        totals.append(np.mean([statistic(row) for row in flattened]))
    return float(np.mean(totals))


def _second_derivative_1d(row: np.ndarray) -> float:
    if row.size < 3:
        return 0.0
    second = row[2:] - 2.0 * row[1:-1] + row[:-2]
    return float(np.sum(second**2) / 4.0)


def second_derivative(values: np.ndarray) -> float:
    """Roughness metric D2 (paper Eq. 2), averaged over dimensions."""
    return _mean_over_axes(values, _second_derivative_1d)


def _variance_of_gradient_1d(row: np.ndarray) -> float:
    if row.size < 2:
        return 0.0
    return float(np.var(np.diff(row)))


def variance_of_gradient(values: np.ndarray) -> float:
    """VoG flatness metric (paper Eq. 3), averaged over dimensions."""
    return _mean_over_axes(values, _variance_of_gradient_1d)


def landscape_variance(values: np.ndarray) -> float:
    """Plain variance of the landscape values (paper Eq. 4)."""
    return float(np.var(np.asarray(values, dtype=float)))


def dct_sparsity(values: np.ndarray, energy_fraction: float = 0.99) -> float:
    """Fraction of DCT coefficients holding the given energy share."""
    return sparsity_fraction_for_energy(values, energy_fraction)
