"""Continuous interpolation of discrete landscapes.

The optimizer use cases (Secs. 7-8) run classical optimizers *on* a
reconstructed landscape instead of on the quantum device.  To allow
continuous-space optimization on the discrete grid, the paper uses
rectangular bivariate spline interpolation; :class:`InterpolatedLandscape`
wraps :class:`scipy.interpolate.RectBivariateSpline` for 2-D grids and
falls back to :class:`scipy.interpolate.RegularGridInterpolator` for
other dimensionalities.

Queries outside the grid are clamped to the boundary — optimizers
occasionally step outside and the landscape is the only oracle we have.
Each call increments a query counter, which the Table 6 experiments use
to count "free" interpolated queries against real QPU queries.
"""

from __future__ import annotations

import numpy as np
from scipy import interpolate as _interpolate

from .landscape import Landscape

__all__ = ["InterpolatedLandscape"]


class InterpolatedLandscape:
    """A continuous, query-counting view of a discrete landscape."""

    def __init__(self, landscape: Landscape, spline_degree: int = 3):
        self.landscape = landscape
        self.query_count = 0
        grid = landscape.grid
        self._lows = np.array([axis.low for axis in grid.axes])
        self._highs = np.array([axis.high for axis in grid.axes])
        if grid.ndim == 2:
            beta_axis, gamma_axis = grid.axis_values
            degree = min(
                spline_degree, len(beta_axis) - 1, len(gamma_axis) - 1
            )
            self._spline = _interpolate.RectBivariateSpline(
                beta_axis, gamma_axis, landscape.values, kx=degree, ky=degree
            )
            self._generic = None
        else:
            self._spline = None
            self._generic = _interpolate.RegularGridInterpolator(
                grid.axis_values,
                landscape.values,
                method="cubic" if min(grid.shape) >= 4 else "linear",
                bounds_error=False,
                fill_value=None,
            )

    def _clamp(self, parameters: np.ndarray) -> np.ndarray:
        return np.clip(parameters, self._lows, self._highs)

    def __call__(self, parameters: np.ndarray) -> float:
        """Interpolated cost at a continuous parameter vector."""
        self.query_count += 1
        point = self._clamp(np.asarray(parameters, dtype=float).reshape(-1))
        if point.shape[0] != self.landscape.grid.ndim:
            raise ValueError(
                f"expected {self.landscape.grid.ndim} parameters, got {point.shape[0]}"
            )
        if self._spline is not None:
            return float(self._spline(point[0], point[1])[0, 0])
        return float(self._generic(point[None, :])[0])

    def gradient(self, parameters: np.ndarray, step: float | None = None) -> np.ndarray:
        """Central finite-difference gradient of the interpolant."""
        point = np.asarray(parameters, dtype=float).reshape(-1)
        if step is None:
            step = 1e-4 * float(np.max(self._highs - self._lows))
        grad = np.empty_like(point)
        for i in range(point.shape[0]):
            forward = point.copy()
            backward = point.copy()
            forward[i] += step
            backward[i] -= step
            grad[i] = (self(forward) - self(backward)) / (2.0 * step)
        return grad

    def dense_resample(self, factor: int = 4) -> np.ndarray:
        """Evaluate the interpolant on a ``factor``-times denser grid.

        This is the "make the grid dense by using interpolation" step of
        Sec. 7; useful for plotting and for seeding optimizers.
        """
        if factor < 1:
            raise ValueError("densification factor must be >= 1")
        grid = self.landscape.grid
        dense_axes = [
            np.linspace(axis.low, axis.high, axis.num_points * factor)
            for axis in grid.axes
        ]
        mesh = np.meshgrid(*dense_axes, indexing="ij")
        points = np.stack([m.reshape(-1) for m in mesh], axis=1)
        if self._spline is not None:
            values = self._spline(dense_axes[0], dense_axes[1])
            self.query_count += points.shape[0]
            return values
        self.query_count += points.shape[0]
        return self._generic(points).reshape([len(a) for a in dense_axes])
