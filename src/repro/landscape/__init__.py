"""Landscape layer: grids, containers, generation, reconstruction, metrics.

This is the public core of the library:

- :class:`~repro.landscape.grid.ParameterGrid` / :func:`~repro.landscape.grid.qaoa_grid`,
- :class:`~repro.landscape.landscape.Landscape`,
- :class:`~repro.landscape.generator.LandscapeGenerator` (grid-search baseline),
- :class:`~repro.landscape.reconstructor.OscarReconstructor` (the paper's method),
- :class:`~repro.landscape.interpolate.InterpolatedLandscape`,
- :mod:`~repro.landscape.metrics` (NRMSE, D2, VoG, variance, DCT sparsity).
"""

from .adaptive import (
    AdaptiveConfig,
    AdaptiveOutcome,
    adaptive_reconstruct,
    holdout_error_estimate,
)
from .analysis import (
    ConvergenceReport,
    InitialPointReport,
    barren_plateau_fraction,
    basin_labels,
    basin_of,
    check_convergence,
    find_local_minima,
    gradient_field,
    gradient_magnitudes,
    initial_point_quality,
)
from .compare import LandscapeComparison, compare_landscapes
from .generator import AnsatzCostFunction, LandscapeGenerator, cost_function
from .grid import GridAxis, ParameterGrid, qaoa_grid, validate_flat_indices
from .interpolate import InterpolatedLandscape
from .landscape import Landscape
from .metrics import (
    dct_sparsity,
    landscape_variance,
    nrmse,
    second_derivative,
    variance_of_gradient,
)
from .reconstructor import (
    OscarReconstructor,
    ReconstructionReport,
    sample_and_evaluate,
)
from .symmetry import (
    half_grid_indices,
    is_centrosymmetric_grid,
    mirror_flat_index,
    mirror_samples,
    symmetrize,
    time_reversal_symmetry_error,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveOutcome",
    "adaptive_reconstruct",
    "holdout_error_estimate",
    "LandscapeComparison",
    "compare_landscapes",
    "ConvergenceReport",
    "InitialPointReport",
    "barren_plateau_fraction",
    "basin_labels",
    "basin_of",
    "check_convergence",
    "find_local_minima",
    "gradient_field",
    "gradient_magnitudes",
    "initial_point_quality",
    "AnsatzCostFunction",
    "LandscapeGenerator",
    "cost_function",
    "GridAxis",
    "ParameterGrid",
    "qaoa_grid",
    "validate_flat_indices",
    "InterpolatedLandscape",
    "Landscape",
    "dct_sparsity",
    "landscape_variance",
    "nrmse",
    "second_derivative",
    "variance_of_gradient",
    "OscarReconstructor",
    "ReconstructionReport",
    "sample_and_evaluate",
    "half_grid_indices",
    "is_centrosymmetric_grid",
    "mirror_flat_index",
    "mirror_samples",
    "symmetrize",
    "time_reversal_symmetry_error",
]
