"""Landscape analysis: what a full landscape lets you debug.

The paper's motivation (Sec. 1) lists what becomes possible once the
complete landscape is available: "calculate the variance of gradient
and probe directly into barren plateaus, check the quality of initial
points and convergence of optimization".  This module implements those
analyses on :class:`~repro.landscape.landscape.Landscape` objects:

- :func:`gradient_field` / :func:`gradient_magnitudes` — finite-
  difference gradients over the grid,
- :func:`barren_plateau_fraction` — the share of parameter space whose
  gradient magnitude is negligible (the barren-plateau probe),
- :func:`find_local_minima` — all strict local minima on the grid
  (local-trap census),
- :func:`basin_labels` / :func:`basin_of` — steepest-descent basin
  decomposition of the grid,
- :func:`initial_point_quality` — percentile rank + basin check for a
  candidate initial point,
- :func:`check_convergence` — did an optimizer path end in the global
  basin, and how far above the landscape minimum?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .landscape import Landscape

__all__ = [
    "gradient_field",
    "gradient_magnitudes",
    "barren_plateau_fraction",
    "find_local_minima",
    "basin_labels",
    "basin_of",
    "InitialPointReport",
    "initial_point_quality",
    "ConvergenceReport",
    "check_convergence",
]


def gradient_field(landscape: Landscape) -> list[np.ndarray]:
    """Per-axis central-difference gradients, in physical units.

    Returns one array of ``landscape.grid.shape`` per axis (the
    components of the gradient at every grid point).
    """
    values = landscape.values
    components = []
    for axis_index, axis in enumerate(landscape.grid.axes):
        components.append(np.gradient(values, axis.step, axis=axis_index))
    return components


def gradient_magnitudes(landscape: Landscape) -> np.ndarray:
    """Euclidean norm of the gradient at every grid point."""
    components = gradient_field(landscape)
    return np.sqrt(sum(component**2 for component in components))


def barren_plateau_fraction(
    landscape: Landscape, relative_threshold: float = 0.05
) -> float:
    """Fraction of the grid where the gradient is negligibly small.

    The threshold is relative to the landscape's value spread per unit
    parameter (so the metric is scale-invariant): a point belongs to a
    plateau when ``|grad| < relative_threshold * ptp(values) / L`` with
    ``L`` the geometric mean axis length.
    """
    if not 0.0 < relative_threshold < 1.0:
        raise ValueError("relative threshold must be in (0, 1)")
    spread = float(np.ptp(landscape.values))
    if spread == 0.0:
        return 1.0
    lengths = [axis.high - axis.low for axis in landscape.grid.axes]
    characteristic_length = float(np.exp(np.mean(np.log(lengths))))
    threshold = relative_threshold * spread / characteristic_length
    magnitudes = gradient_magnitudes(landscape)
    return float(np.mean(magnitudes < threshold))


def _neighbors(index: tuple[int, ...], shape: tuple[int, ...]):
    """Axis-aligned grid neighbours of a multi-index."""
    for axis, position in enumerate(index):
        for delta in (-1, 1):
            moved = position + delta
            if 0 <= moved < shape[axis]:
                neighbor = list(index)
                neighbor[axis] = moved
                yield tuple(neighbor)


def find_local_minima(landscape: Landscape) -> list[tuple[np.ndarray, float]]:
    """All grid points strictly below every axis-aligned neighbour.

    Returns ``[(parameter_vector, value), ...]`` sorted by value; the
    first entry is the global grid minimum.  A long list warns of a
    trap-riddled landscape (the Sec. 7 debugging scenario).
    """
    values = landscape.values
    shape = values.shape
    minima = []
    for flat in range(values.size):
        index = np.unravel_index(flat, shape)
        value = values[index]
        if all(value < values[nb] for nb in _neighbors(index, shape)):
            minima.append((landscape.grid.point(index), float(value)))
    minima.sort(key=lambda item: item[1])
    return minima


def basin_labels(landscape: Landscape) -> np.ndarray:
    """Steepest-descent basin decomposition of the grid.

    Every grid point is labelled by the flat index of the local minimum
    reached by repeatedly stepping to the smallest neighbour.  Points
    in the same basin share a label.
    """
    values = landscape.values
    shape = values.shape
    labels = np.full(values.size, -1, dtype=int)

    def descend(flat: int) -> int:
        trail = []
        current = flat
        while labels[current] == -1:
            trail.append(current)
            index = np.unravel_index(current, shape)
            best = current
            best_value = values[index]
            for neighbor in _neighbors(index, shape):
                neighbor_value = values[neighbor]
                if neighbor_value < best_value:
                    best_value = neighbor_value
                    best = int(np.ravel_multi_index(neighbor, shape))
            if best == current:
                labels[current] = current  # a local minimum
                break
            current = best
        root = labels[current] if labels[current] != -1 else current
        for visited in trail:
            labels[visited] = root
        return root

    for flat in range(values.size):
        descend(flat)
    return labels.reshape(shape)


def basin_of(landscape: Landscape, parameters: np.ndarray) -> int:
    """Basin label (flat index of the attracting minimum) of a point."""
    labels = basin_labels(landscape)
    flat = landscape.grid.nearest_flat_index(parameters)
    return int(labels.reshape(-1)[flat])


@dataclass(frozen=True)
class InitialPointReport:
    """Quality assessment of a candidate initial point.

    Attributes:
        value: landscape value at the nearest grid point.
        percentile: rank of that value among all grid values (0 = best).
        in_global_basin: True if steepest descent from the point
            reaches the landscape's global grid minimum.
        distance_to_optimum: Euclidean parameter distance to the global
            grid minimum.
    """

    value: float
    percentile: float
    in_global_basin: bool
    distance_to_optimum: float


def initial_point_quality(
    landscape: Landscape, parameters: np.ndarray
) -> InitialPointReport:
    """Assess an initial point against the full landscape (Sec. 8)."""
    flat_values = landscape.flat()
    value = landscape.value_at(parameters)
    percentile = float(np.mean(flat_values < value))
    global_flat = int(np.argmin(flat_values))
    labels = basin_labels(landscape).reshape(-1)
    in_global = labels[landscape.grid.nearest_flat_index(parameters)] == labels[global_flat]
    _, optimum = landscape.minimum()
    distance = float(np.linalg.norm(np.asarray(parameters, float) - optimum))
    return InitialPointReport(
        value=value,
        percentile=percentile,
        in_global_basin=bool(in_global),
        distance_to_optimum=distance,
    )


@dataclass(frozen=True)
class ConvergenceReport:
    """Did an optimization run converge to the right place?

    Attributes:
        endpoint_value: landscape value at the path's endpoint.
        excess_over_minimum: endpoint value minus the landscape minimum.
        converged_to_global_basin: endpoint sits in the global basin.
        stuck_in_local_minimum: endpoint is in a non-global basin whose
            minimum it has (nearly) reached — the classic local trap.
        endpoint: the final parameter vector.
    """

    endpoint_value: float
    excess_over_minimum: float
    converged_to_global_basin: bool
    stuck_in_local_minimum: bool
    endpoint: np.ndarray


def check_convergence(
    landscape: Landscape,
    path: np.ndarray,
    local_tolerance: float = 0.05,
) -> ConvergenceReport:
    """Diagnose an optimizer path against the full landscape (Sec. 7).

    Args:
        landscape: the (reconstructed) landscape to judge against.
        path: optimizer iterates, shape ``(steps, ndim)``.
        local_tolerance: how close (relative to the landscape's value
            spread) the endpoint must be to its basin minimum to count
            as "stuck" there.
    """
    path = np.atleast_2d(np.asarray(path, dtype=float))
    endpoint = path[-1]
    endpoint_value = landscape.value_at(endpoint)
    minimum_value, _ = landscape.minimum()
    labels = basin_labels(landscape).reshape(-1)
    endpoint_flat = landscape.grid.nearest_flat_index(endpoint)
    global_flat = int(np.argmin(landscape.flat()))
    in_global = labels[endpoint_flat] == labels[global_flat]
    basin_minimum = float(landscape.flat()[labels[endpoint_flat]])
    spread = float(np.ptp(landscape.values)) or 1.0
    stuck = (not in_global) and (
        endpoint_value - basin_minimum < local_tolerance * spread
    )
    return ConvergenceReport(
        endpoint_value=endpoint_value,
        excess_over_minimum=float(endpoint_value - minimum_value),
        converged_to_global_basin=bool(in_global),
        stuck_in_local_minimum=bool(stuck),
        endpoint=endpoint,
    )
