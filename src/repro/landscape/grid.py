"""Parameter grids for landscape generation.

A :class:`ParameterGrid` is the discretisation of the ansatz parameter
space: one :class:`GridAxis` per circuit parameter, each with a range
and a point count.  Table 1 of the paper defines the reference grids:

- p=1 QAOA: beta in [-pi/4, pi/4] x 50 points, gamma in [-pi/2, pi/2]
  x 100 points (5k points total);
- p=2 QAOA: betas in [-pi/8, pi/8] x 12, gammas in [-pi/4, pi/4] x 15
  (32.4k points total), reconstructed after reshaping 4-D -> 2-D by
  concatenating the beta axes and the gamma axes (Sec. 4.2.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["GridAxis", "ParameterGrid", "qaoa_grid", "validate_flat_indices"]


def validate_flat_indices(
    size: int, flat_indices: Sequence[int] | np.ndarray
) -> np.ndarray:
    """Normalise flat grid indices, rejecting anything out of range.

    Negative indices are rejected rather than wrapped: ``numpy`` fancy
    indexing would silently alias ``-1`` to the last grid point, which
    turns an off-by-one in a sampler into a wrong-but-plausible
    landscape value instead of an error.  Kept as a module function
    (parameterized by ``size``) so duck-typed grid stand-ins that only
    expose ``size``/``points_from_flat`` get the same checks.
    """
    flat = np.asarray(flat_indices, dtype=np.int64)
    if flat.size:
        low = int(flat.min())
        high = int(flat.max())
        if low < 0:
            raise ValueError(
                f"flat index {low} is negative; negative indices would "
                "silently wrap to the end of the grid, so they are "
                "rejected"
            )
        if high >= size:
            raise ValueError(
                f"flat index {high} is out of range for a grid of "
                f"{size} points"
            )
    return flat


@dataclass(frozen=True)
class GridAxis:
    """One discretised parameter axis."""

    name: str
    low: float
    high: float
    num_points: int

    def __post_init__(self) -> None:
        if self.num_points < 2:
            raise ValueError("an axis needs at least two points")
        if not self.high > self.low:
            raise ValueError("axis range must have high > low")

    @property
    def values(self) -> np.ndarray:
        """The axis sample positions (uniform, inclusive of endpoints)."""
        return np.linspace(self.low, self.high, self.num_points)

    @property
    def step(self) -> float:
        """Spacing between consecutive points."""
        return (self.high - self.low) / (self.num_points - 1)


class ParameterGrid:
    """A dense rectangular grid over the ansatz parameter space."""

    def __init__(self, axes: Sequence[GridAxis]):
        if not axes:
            raise ValueError("a grid needs at least one axis")
        self.axes = tuple(axes)

    @property
    def ndim(self) -> int:
        """Number of parameter axes."""
        return len(self.axes)

    @property
    def shape(self) -> tuple[int, ...]:
        """Points per axis."""
        return tuple(axis.num_points for axis in self.axes)

    @property
    def size(self) -> int:
        """Total number of grid points."""
        return int(np.prod(self.shape))

    @property
    def axis_values(self) -> tuple[np.ndarray, ...]:
        """Sample positions along every axis."""
        return tuple(axis.values for axis in self.axes)

    def point(self, grid_index: Sequence[int]) -> np.ndarray:
        """Physical parameter values at a multi-index."""
        if len(grid_index) != self.ndim:
            raise ValueError("grid index arity mismatch")
        return np.array(
            [axis.values[i] for axis, i in zip(self.axes, grid_index)]
        )

    def point_from_flat(self, flat_index: int) -> np.ndarray:
        """Physical parameter values at a flat (row-major) index."""
        return self.point(np.unravel_index(int(flat_index), self.shape))

    def validate_flat_indices(
        self, flat_indices: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Flat indices as an int array, or ``ValueError`` if any index
        is negative or beyond :attr:`size` (see
        :func:`validate_flat_indices`)."""
        return validate_flat_indices(self.size, flat_indices)

    def points_from_flat(self, flat_indices: np.ndarray) -> np.ndarray:
        """Vectorised ``(m, ndim)`` parameter values for flat indices."""
        unraveled = np.unravel_index(np.asarray(flat_indices, dtype=int), self.shape)
        columns = [
            axis.values[index_array]
            for axis, index_array in zip(self.axes, unraveled)
        ]
        return np.stack(columns, axis=1)

    def iter_points(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(flat_index, parameter_vector)`` for the whole grid."""
        for flat in range(self.size):
            yield flat, self.point_from_flat(flat)

    def nearest_flat_index(self, parameters: Sequence[float]) -> int:
        """Flat index of the grid point closest to a parameter vector."""
        if len(parameters) != self.ndim:
            raise ValueError("parameter vector arity mismatch")
        multi = tuple(
            int(np.argmin(np.abs(axis.values - value)))
            for axis, value in zip(self.axes, parameters)
        )
        return int(np.ravel_multi_index(multi, self.shape))

    @property
    def bounds(self) -> list[tuple[float, float]]:
        """Per-axis (low, high) bounds."""
        return [(axis.low, axis.high) for axis in self.axes]

    def reshaped_2d_shape(self) -> tuple[int, int]:
        """The paper's concatenation reshape for high-dim grids.

        A ``2p``-dimensional QAOA grid of shape ``(b, ..., b, g, ..., g)``
        is reshaped to 2-D by merging the first half of the axes and the
        second half — e.g. (12, 12, 15, 15) -> (144, 225).  Grids with
        an odd number of axes (e.g. a 3-parameter UCCSD landscape) are
        split as evenly as possible, the extra axis going to the first
        group.  For an already 2-D grid this is the identity; 1-D grids
        cannot be reshaped.
        """
        if self.ndim == 1:
            raise ValueError("a 1-D grid has no 2-D concatenation reshape")
        if self.ndim == 2:
            return self.shape  # type: ignore[return-value]
        half = (self.ndim + 1) // 2
        first = int(np.prod(self.shape[:half]))
        second = int(np.prod(self.shape[half:]))
        return (first, second)


def qaoa_grid(
    p: int = 1,
    resolution: Sequence[int] | None = None,
    beta_range: tuple[float, float] | None = None,
    gamma_range: tuple[float, float] | None = None,
) -> ParameterGrid:
    """The paper's Table 1 QAOA grids (optionally re-resolved).

    Args:
        p: QAOA depth (1 or 2 in the paper; any p >= 1 accepted).
        resolution: ``(beta_points, gamma_points)`` override.  Defaults
            to Table 1: (50, 100) for p=1, (12, 15) per axis for p=2,
            and (12, 15) for deeper circuits.
        beta_range: override for the beta axis range.
        gamma_range: override for the gamma axis range.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if p == 1:
        default_res, default_beta, default_gamma = (
            (50, 100),
            (-math.pi / 4, math.pi / 4),
            (-math.pi / 2, math.pi / 2),
        )
    else:
        default_res, default_beta, default_gamma = (
            (12, 15),
            (-math.pi / 8, math.pi / 8),
            (-math.pi / 4, math.pi / 4),
        )
    beta_points, gamma_points = resolution or default_res
    beta_low, beta_high = beta_range or default_beta
    gamma_low, gamma_high = gamma_range or default_gamma
    axes = [
        GridAxis(f"beta_{layer}", beta_low, beta_high, beta_points)
        for layer in range(p)
    ] + [
        GridAxis(f"gamma_{layer}", gamma_low, gamma_high, gamma_points)
        for layer in range(p)
    ]
    return ParameterGrid(axes)
