"""QAOA landscape symmetries and symmetry-aware reconstruction.

The paper's related-work section (Sec. 9) surveys a line of work that
exploits landscape symmetry to cut QAOA training cost (Shaydulin & Wild
2021).  This module brings that idea into the OSCAR pipeline:

- **time-reversal symmetry** — for any real cost Hamiltonian the QAOA
  expectation obeys ``C(-beta, -gamma) = C(beta, gamma)`` (complex
  conjugation of the state maps one onto the other), so the standard
  symmetric Table 1 grids are two copies of a half landscape;
- :func:`time_reversal_symmetry_error` verifies the symmetry on a
  measured landscape (a debugging signal in itself: a broken symmetry
  indicates biased hardware noise or a software bug);
- :func:`symmetrize` averages the two halves (a free noise reduction);
- :func:`half_grid_indices` / :func:`mirror_flat_index` support
  **symmetry-folded OSCAR**: sample only in the half-space, mirror the
  samples for free, and reconstruct — doubling the effective sampling
  fraction at no circuit cost (quantified in the symmetry benchmark).
"""

from __future__ import annotations

import numpy as np

from .grid import ParameterGrid
from .landscape import Landscape

__all__ = [
    "is_centrosymmetric_grid",
    "mirror_flat_index",
    "time_reversal_symmetry_error",
    "symmetrize",
    "half_grid_indices",
    "mirror_samples",
]


def is_centrosymmetric_grid(grid: ParameterGrid, atol: float = 1e-9) -> bool:
    """True if every axis is symmetric about zero (low = -high).

    Point reflection through the origin then maps grid points onto grid
    points (index ``i`` onto ``n - 1 - i`` per axis), which the folding
    helpers rely on.
    """
    return all(abs(axis.low + axis.high) <= atol for axis in grid.axes)


def mirror_flat_index(flat_index: int, shape: tuple[int, ...]) -> int:
    """The flat index of the point-reflected grid position."""
    multi = np.unravel_index(int(flat_index), shape)
    mirrored = tuple(n - 1 - i for i, n in zip(multi, shape))
    return int(np.ravel_multi_index(mirrored, shape))


def time_reversal_symmetry_error(landscape: Landscape) -> float:
    """RMS asymmetry ``C(x) - C(-x)``, normalised by the value spread.

    Zero (up to noise) for any correct QAOA landscape of a real cost
    Hamiltonian on a centrosymmetric grid; a large value flags biased
    noise or an implementation bug.
    """
    if not is_centrosymmetric_grid(landscape.grid):
        raise ValueError("symmetry check requires a grid symmetric about zero")
    values = landscape.values
    reflected = values[tuple(slice(None, None, -1) for _ in values.shape)]
    spread = float(np.ptp(values)) or 1.0
    return float(np.sqrt(np.mean((values - reflected) ** 2)) / spread)


def symmetrize(landscape: Landscape) -> Landscape:
    """Average the landscape with its point reflection.

    For a symmetric true landscape this halves independent per-point
    noise variance at zero circuit cost.
    """
    if not is_centrosymmetric_grid(landscape.grid):
        raise ValueError("symmetrisation requires a grid symmetric about zero")
    values = landscape.values
    reflected = values[tuple(slice(None, None, -1) for _ in values.shape)]
    return landscape.with_values(
        0.5 * (values + reflected), label=f"{landscape.label}-symmetrized"
    )


def half_grid_indices(grid: ParameterGrid) -> np.ndarray:
    """Flat indices of one representative per symmetry orbit.

    Keeps index ``k`` iff ``k <= mirror(k)``; self-symmetric central
    points appear once.  Sampling from this set and mirroring covers
    the whole grid with half the circuit executions.
    """
    if not is_centrosymmetric_grid(grid):
        raise ValueError("folding requires a grid symmetric about zero")
    size = grid.size
    keep = [
        flat for flat in range(size) if flat <= mirror_flat_index(flat, grid.shape)
    ]
    return np.asarray(keep, dtype=int)


def mirror_samples(
    grid: ParameterGrid, flat_indices: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Extend samples with their free mirror images.

    Each measured ``(index, value)`` pair contributes its reflection
    ``(mirror(index), value)``; duplicates (self-symmetric points or
    already-present mirrors) are dropped, keeping the first occurrence.
    """
    flat_indices = np.asarray(flat_indices, dtype=int)
    values = np.asarray(values, dtype=float)
    if flat_indices.shape[0] != values.shape[0]:
        raise ValueError("indices and values must align")
    mirrored = np.array(
        [mirror_flat_index(flat, grid.shape) for flat in flat_indices], dtype=int
    )
    all_indices = np.concatenate([flat_indices, mirrored])
    all_values = np.concatenate([values, values])
    unique, first_positions = np.unique(all_indices, return_index=True)
    return unique, all_values[first_positions]
