"""Pauli-string operator algebra.

Molecular Hamiltonians (H2, LiH) and generic observables are sums of
Pauli strings.  :class:`PauliString` is an immutable label like ``"XZI"``
with a coefficient; :class:`PauliSum` is a linear combination with
expectation evaluation against a statevector and dense materialisation
for small systems.

Label convention: index 0 of the label string acts on qubit ``n-1``
(ket order), so ``PauliString("ZI")`` is Z on qubit 1.  This matches how
published Hamiltonian tables are written.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from ..quantum.gates import PAULI_MATRICES
from ..quantum.statevector import Statevector

__all__ = ["PauliString", "PauliSum"]

_VALID = frozenset("IXYZ")

# Single-qubit Pauli multiplication table: (left, right) -> (phase, result)
_MUL: dict[tuple[str, str], tuple[complex, str]] = {}
for _a in "IXYZ":
    _MUL[("I", _a)] = (1.0 + 0j, _a)
    _MUL[(_a, "I")] = (1.0 + 0j, _a)
    _MUL[(_a, _a)] = (1.0 + 0j, "I")
_MUL[("X", "Y")] = (1j, "Z")
_MUL[("Y", "X")] = (-1j, "Z")
_MUL[("Y", "Z")] = (1j, "X")
_MUL[("Z", "Y")] = (-1j, "X")
_MUL[("Z", "X")] = (1j, "Y")
_MUL[("X", "Z")] = (-1j, "Y")


@dataclass(frozen=True)
class PauliString:
    """A weighted Pauli tensor product, e.g. ``0.5 * XZI``."""

    label: str
    coefficient: complex = 1.0

    def __post_init__(self) -> None:
        if not self.label or any(ch not in _VALID for ch in self.label):
            raise ValueError(f"invalid Pauli label {self.label!r}")

    @property
    def num_qubits(self) -> int:
        """Width of the string."""
        return len(self.label)

    @property
    def is_identity(self) -> bool:
        """True for a pure identity string."""
        return set(self.label) == {"I"}

    @property
    def is_diagonal(self) -> bool:
        """True if the string is diagonal in the computational basis."""
        return all(ch in "IZ" for ch in self.label)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return sum(1 for ch in self.label if ch != "I")

    def __mul__(self, other: "PauliString | complex") -> "PauliString":
        if isinstance(other, PauliString):
            if other.num_qubits != self.num_qubits:
                raise ValueError("cannot multiply Pauli strings of different widths")
            phase: complex = 1.0
            chars = []
            for left, right in zip(self.label, other.label):
                factor, result = _MUL[(left, right)]
                phase *= factor
                chars.append(result)
            return PauliString(
                "".join(chars), self.coefficient * other.coefficient * phase
            )
        return PauliString(self.label, self.coefficient * complex(other))

    __rmul__ = __mul__

    def matrix(self) -> np.ndarray:
        """Dense matrix (exponential size; small n only)."""
        out = np.array([[1.0]], dtype=complex)
        for ch in self.label:
            out = np.kron(out, PAULI_MATRICES[ch])
        return self.coefficient * out

    def diagonal(self) -> np.ndarray:
        """Diagonal values for an I/Z-only string, cheaply.

        Entry ``k`` is ``coefficient * prod_q (-1)^{bit_q(k)}`` over the
        qubits where the label has a Z.
        """
        if not self.is_diagonal:
            raise ValueError(f"Pauli string {self.label!r} is not diagonal")
        n = self.num_qubits
        indices = np.arange(1 << n)
        signs = np.ones(1 << n)
        for position, ch in enumerate(self.label):
            if ch == "Z":
                qubit = n - 1 - position  # label index 0 = highest qubit
                bits = (indices >> qubit) & 1
                signs *= 1.0 - 2.0 * bits
        return np.real(self.coefficient) * signs

    def expectation(self, state: Statevector) -> float:
        """``<psi| P |psi>`` without materialising the full matrix.

        Applies the string's single-qubit factors to a copy of the state
        and takes the inner product with the original — O(n 2^n).
        """
        if state.num_qubits != self.num_qubits:
            raise ValueError("state width does not match Pauli string")
        if self.is_diagonal:
            return float(np.dot(state.probabilities(), self.diagonal()))
        rotated = state.copy()
        n = self.num_qubits
        for position, ch in enumerate(self.label):
            if ch == "I":
                continue
            rotated.apply_one_qubit(PAULI_MATRICES[ch], n - 1 - position)
        overlap = np.vdot(state.data, rotated.data)
        return float(np.real(self.coefficient * overlap))


class PauliSum:
    """A linear combination of Pauli strings (a qubit Hamiltonian)."""

    def __init__(self, terms: Iterable[PauliString]):
        terms = list(terms)
        if not terms:
            raise ValueError("a PauliSum needs at least one term")
        width = terms[0].num_qubits
        if any(term.num_qubits != width for term in terms):
            raise ValueError("all terms must act on the same number of qubits")
        self._terms = self._collect(terms)
        self.num_qubits = width

    @staticmethod
    def _collect(terms: list[PauliString]) -> tuple[PauliString, ...]:
        """Merge duplicate labels and drop numerically zero terms."""
        merged: dict[str, complex] = {}
        for term in terms:
            merged[term.label] = merged.get(term.label, 0.0) + term.coefficient
        kept = [
            PauliString(label, coefficient)
            for label, coefficient in merged.items()
            if abs(coefficient) > 1e-14
        ]
        if not kept:  # all terms cancelled; keep an explicit zero
            width = terms[0].num_qubits
            kept = [PauliString("I" * width, 0.0)]
        return tuple(sorted(kept, key=lambda t: t.label))

    @classmethod
    def from_dict(cls, mapping: Mapping[str, complex]) -> "PauliSum":
        """Build from ``{"ZZ": 0.5, "XI": -0.2, ...}``."""
        return cls(PauliString(label, coeff) for label, coeff in mapping.items())

    @property
    def terms(self) -> tuple[PauliString, ...]:
        """The (merged, sorted) term list."""
        return self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[PauliString]:
        return iter(self._terms)

    def __add__(self, other: "PauliSum") -> "PauliSum":
        return PauliSum(list(self._terms) + list(other.terms))

    def __mul__(self, scalar: complex) -> "PauliSum":
        return PauliSum(term * scalar for term in self._terms)

    __rmul__ = __mul__

    @property
    def is_diagonal(self) -> bool:
        """True if every term is I/Z-only."""
        return all(term.is_diagonal for term in self._terms)

    def matrix(self) -> np.ndarray:
        """Dense Hamiltonian matrix (small n only)."""
        return sum(term.matrix() for term in self._terms)

    def diagonal(self) -> np.ndarray:
        """Diagonal values for a diagonal Hamiltonian."""
        return sum(term.diagonal() for term in self._terms)

    def expectation(self, state: Statevector) -> float:
        """``<psi| H |psi>`` as a sum over terms."""
        return sum(term.expectation(state) for term in self._terms)

    def ground_energy(self) -> float:
        """Smallest eigenvalue (dense diagonalisation; small n only)."""
        if self.is_diagonal:
            return float(np.min(self.diagonal()))
        eigenvalues = np.linalg.eigvalsh(self.matrix())
        return float(eigenvalues[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(
            f"{term.coefficient:+.3g}*{term.label}" for term in self._terms[:4]
        )
        suffix = ", ..." if len(self._terms) > 4 else ""
        return f"PauliSum({preview}{suffix})"
