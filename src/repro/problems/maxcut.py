"""MaxCut problem instances.

The paper's main workload is MaxCut on random 3-regular graphs
(Table 1, Fig. 4, and the optimizer/initialization studies) plus the
mesh-graph instances from the Google Sycamore dataset (Fig. 5/6).

MaxCut on graph ``G = (V, E)`` with weights ``w_ij`` maximises the cut
``sum_{(i,j) in E} w_ij (1 - z_i z_j) / 2``.  We express the QAOA *cost*
Hamiltonian to be minimised as ``C = sum w_ij z_i z_j / 2`` (dropping
the constant), so lower expected cost means a larger cut — matching the
landscape plots of the paper where the optimizer minimises.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .ising import IsingProblem

__all__ = [
    "maxcut_from_graph",
    "random_3_regular_maxcut",
    "mesh_maxcut",
    "random_regular_graph",
    "cut_value",
]


def maxcut_from_graph(graph: nx.Graph, name: str = "maxcut") -> IsingProblem:
    """Ising cost Hamiltonian for MaxCut on an arbitrary weighted graph."""
    if graph.number_of_nodes() < 2:
        raise ValueError("MaxCut needs at least two nodes")
    nodes = sorted(graph.nodes())
    relabel = {node: index for index, node in enumerate(nodes)}
    couplings: dict[tuple[int, int], float] = {}
    for u, v, data in graph.edges(data=True):
        weight = float(data.get("weight", 1.0))
        i, j = relabel[u], relabel[v]
        lo, hi = (i, j) if i < j else (j, i)
        couplings[(lo, hi)] = couplings.get((lo, hi), 0.0) + weight / 2.0
    return IsingProblem.from_dicts(
        len(nodes), couplings, offset=0.0, name=name
    )


def random_regular_graph(degree: int, num_nodes: int, seed: int) -> nx.Graph:
    """A random ``degree``-regular graph (networkx, seeded)."""
    if degree * num_nodes % 2 != 0:
        raise ValueError("degree * num_nodes must be even for a regular graph")
    return nx.random_regular_graph(degree, num_nodes, seed=seed)


def random_3_regular_maxcut(num_nodes: int, seed: int = 0) -> IsingProblem:
    """MaxCut on a seeded random 3-regular graph — the paper's workhorse."""
    graph = random_regular_graph(3, num_nodes, seed)
    return maxcut_from_graph(graph, name=f"maxcut-3reg-n{num_nodes}-s{seed}")


def mesh_maxcut(rows: int, cols: int) -> IsingProblem:
    """MaxCut on a 2-D grid ("mesh") graph, as in the Google dataset."""
    graph = nx.grid_2d_graph(rows, cols)
    return maxcut_from_graph(graph, name=f"maxcut-mesh-{rows}x{cols}")


def cut_value(graph: nx.Graph, assignment: dict) -> float:
    """Weight of the cut induced by a node -> {0,1} assignment."""
    total = 0.0
    for u, v, data in graph.edges(data=True):
        if assignment[u] != assignment[v]:
            total += float(data.get("weight", 1.0))
    return total
