"""Generic Ising cost Hamiltonians.

All combinatorial problems the paper evaluates (MaxCut, SK) reduce to a
classical Ising Hamiltonian

    C(z) = sum_{i<j} J_ij z_i z_j + sum_i h_i z_i + offset,   z_i in {+1,-1},

which is diagonal in the computational basis.  :class:`IsingProblem`
stores the couplings and exposes the two things the rest of the library
needs: the full diagonal cost vector (for expectation fast paths) and the
term list (for building the QAOA cost layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .pauli import PauliString, PauliSum

__all__ = ["IsingProblem"]


@dataclass(frozen=True)
class IsingProblem:
    """A diagonal cost Hamiltonian over ``num_qubits`` spins.

    Attributes:
        num_qubits: number of binary variables.
        couplings: mapping ``(i, j) -> J_ij`` with ``i < j``.
        fields: mapping ``i -> h_i`` for linear terms.
        offset: constant energy shift.
        name: human-readable tag ("maxcut-3reg-n12-s0", ...).
    """

    num_qubits: int
    couplings: tuple[tuple[int, int, float], ...]
    fields: tuple[tuple[int, float], ...] = ()
    offset: float = 0.0
    name: str = "ising"

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError("need at least one qubit")
        for i, j, _ in self.couplings:
            if not (0 <= i < j < self.num_qubits):
                raise ValueError(f"invalid coupling pair ({i}, {j})")
        for i, _ in self.fields:
            if not 0 <= i < self.num_qubits:
                raise ValueError(f"invalid field index {i}")

    @classmethod
    def from_dicts(
        cls,
        num_qubits: int,
        couplings: dict[tuple[int, int], float],
        fields: dict[int, float] | None = None,
        offset: float = 0.0,
        name: str = "ising",
    ) -> "IsingProblem":
        """Build from plain dictionaries, normalising pair order."""
        pairs = []
        for (i, j), weight in couplings.items():
            if i == j:
                raise ValueError("self-couplings are not allowed")
            lo, hi = (i, j) if i < j else (j, i)
            pairs.append((lo, hi, float(weight)))
        linear = tuple(sorted((i, float(h)) for i, h in (fields or {}).items()))
        return cls(num_qubits, tuple(sorted(pairs)), linear, offset, name)

    def cost_diagonal(self) -> np.ndarray:
        """Cost of every basis state, as a dense length ``2**n`` vector.

        Basis index bit ``q`` maps to spin ``z_q = 1 - 2*bit_q`` (bit 0
        -> spin +1), the standard Z-eigenvalue convention.
        """
        n = self.num_qubits
        indices = np.arange(1 << n)
        spins = 1.0 - 2.0 * ((indices[:, None] >> np.arange(n)) & 1)
        values = np.full(1 << n, self.offset)
        for i, j, weight in self.couplings:
            values += weight * spins[:, i] * spins[:, j]
        for i, strength in self.fields:
            values += strength * spins[:, i]
        return values

    def cost_of_bitstring(self, bits: str | int) -> float:
        """Cost of one assignment (bitstring label or basis index)."""
        if isinstance(bits, str):
            index = int(bits, 2)
        else:
            index = int(bits)
        spins = [1.0 - 2.0 * ((index >> q) & 1) for q in range(self.num_qubits)]
        value = self.offset
        for i, j, weight in self.couplings:
            value += weight * spins[i] * spins[j]
        for i, strength in self.fields:
            value += strength * spins[i]
        return value

    def to_pauli_sum(self) -> PauliSum:
        """The cost Hamiltonian as an explicit Pauli-Z sum."""
        n = self.num_qubits
        terms = []
        if self.offset != 0.0:
            terms.append(PauliString("I" * n, self.offset))
        for i, j, weight in self.couplings:
            label = "".join(
                "Z" if q in (i, j) else "I" for q in range(n - 1, -1, -1)
            )
            terms.append(PauliString(label, weight))
        for i, strength in self.fields:
            label = "".join("Z" if q == i else "I" for q in range(n - 1, -1, -1))
            terms.append(PauliString(label, strength))
        if not terms:
            terms.append(PauliString("I" * n, 0.0))
        return PauliSum(terms)

    def optimal_cost(self) -> float:
        """Minimum cost over all assignments (exhaustive; small n)."""
        return float(np.min(self.cost_diagonal()))

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """The coupled variable pairs."""
        return tuple((i, j) for i, j, _ in self.couplings)
