"""Molecular qubit Hamiltonians for the chemistry experiments (Table 3).

The paper computes VQE landscapes for the hydrogen molecule (H2) and
lithium hydride (LiH).  The original work derives these from electronic
structure packages; offline we use published reduced qubit Hamiltonians:

- **H2 (2 qubits)** — the parity-mapped, symmetry-reduced Hamiltonian of
  O'Malley et al., *PRX 6, 031007 (2016)* at bond length 0.735 Å:
  ``g0*II + g1*ZI + g2*IZ + g3*ZZ + g4*XX + g5*YY``.
- **LiH (4 qubits)** — a compact effective Hamiltonian with the term
  structure of the frozen-core parity-mapped LiH problem (diagonal
  Z/ZZ terms dominating, weaker XX/YY/XZ exchange terms).  Coefficients
  are representative rather than chemically exact; the landscape
  experiments only require a realistic multi-term, partly off-diagonal
  4-qubit Hamiltonian (see DESIGN.md substitution table).

Both return :class:`~repro.problems.pauli.PauliSum` objects.
"""

from __future__ import annotations

from .pauli import PauliSum

__all__ = ["h2_hamiltonian", "lih_hamiltonian"]

# O'Malley et al. (2016), Table 1, R = 0.7414 A (equilibrium); values in
# Hartree.  Identity coefficient includes nuclear repulsion.
_H2_TERMS = {
    "II": -0.4804,
    "ZI": +0.3435,
    "IZ": -0.4347,
    "ZZ": +0.5716,
    "XX": +0.0910,
    "YY": +0.0910,
}

# Effective 4-qubit LiH Hamiltonian: dominant diagonal core + exchange.
_LIH_TERMS = {
    "IIII": -7.4989,
    "ZIII": +0.1120,
    "IZII": -0.0559,
    "IIZI": +0.1120,
    "IIIZ": -0.0559,
    "ZZII": +0.0850,
    "IZZI": +0.0616,
    "IIZZ": +0.0850,
    "ZIZI": +0.0582,
    "IZIZ": +0.0582,
    "ZIIZ": +0.0616,
    "XXII": +0.0242,
    "IXXI": +0.0131,
    "IIXX": +0.0242,
    "YYII": +0.0242,
    "IYYI": +0.0131,
    "IIYY": +0.0242,
    "XZXI": +0.0108,
    "IXZX": +0.0108,
    "YZYI": +0.0108,
    "IYZY": +0.0108,
}


def h2_hamiltonian() -> PauliSum:
    """The 2-qubit H2 Hamiltonian at equilibrium bond length."""
    return PauliSum.from_dict(_H2_TERMS)


def lih_hamiltonian() -> PauliSum:
    """The effective 4-qubit LiH Hamiltonian (see module docstring)."""
    return PauliSum.from_dict(_LIH_TERMS)
