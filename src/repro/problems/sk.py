"""Sherrington-Kirkpatrick (SK) spin-glass model instances.

The SK model (Sherrington & Kirkpatrick 1975) is a fully connected
Ising spin glass with random couplings:

    C(z) = (1 / sqrt(n)) * sum_{i<j} J_ij z_i z_j,  J_ij ~ {+1, -1} or N(0,1).

The paper evaluates OSCAR on SK landscapes in Table 2 (4 and 6 qubits)
and in the Google Sycamore dataset (Fig. 5/6), where couplings are
+/- 1.  The ``1/sqrt(n)`` normalisation keeps the energy scale
n-independent, matching the Sycamore convention.
"""

from __future__ import annotations

import numpy as np

from .ising import IsingProblem

__all__ = ["sk_problem"]


def sk_problem(
    num_qubits: int,
    seed: int = 0,
    couplings: str = "pm1",
) -> IsingProblem:
    """A random SK instance.

    Args:
        num_qubits: number of spins (fully connected).
        seed: RNG seed for coupling draws.
        couplings: ``"pm1"`` for +/-1 couplings (Sycamore convention) or
            ``"gaussian"`` for N(0, 1) couplings.
    """
    if num_qubits < 2:
        raise ValueError("the SK model needs at least two spins")
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(num_qubits)
    pairs: dict[tuple[int, int], float] = {}
    for i in range(num_qubits):
        for j in range(i + 1, num_qubits):
            if couplings == "pm1":
                value = float(rng.choice((-1.0, 1.0)))
            elif couplings == "gaussian":
                value = float(rng.normal())
            else:
                raise ValueError(f"unknown coupling scheme {couplings!r}")
            pairs[(i, j)] = scale * value
    return IsingProblem.from_dicts(
        num_qubits, pairs, name=f"sk-n{num_qubits}-s{seed}-{couplings}"
    )
