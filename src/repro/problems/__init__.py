"""Problem library: the workloads the paper evaluates OSCAR on.

- :mod:`~repro.problems.pauli` — Pauli-string operator algebra,
- :mod:`~repro.problems.ising` — generic diagonal Ising cost Hamiltonians,
- :mod:`~repro.problems.maxcut` — MaxCut on 3-regular / mesh / arbitrary graphs,
- :mod:`~repro.problems.sk` — Sherrington-Kirkpatrick spin glasses,
- :mod:`~repro.problems.chemistry` — H2 and LiH molecular Hamiltonians.
"""

from .chemistry import h2_hamiltonian, lih_hamiltonian
from .ising import IsingProblem
from .maxcut import (
    cut_value,
    maxcut_from_graph,
    mesh_maxcut,
    random_3_regular_maxcut,
    random_regular_graph,
)
from .pauli import PauliString, PauliSum
from .sk import sk_problem

__all__ = [
    "h2_hamiltonian",
    "lih_hamiltonian",
    "IsingProblem",
    "cut_value",
    "maxcut_from_graph",
    "mesh_maxcut",
    "random_3_regular_maxcut",
    "random_regular_graph",
    "PauliString",
    "PauliSum",
    "sk_problem",
]
