"""Common optimizer interface and run records.

Every optimizer consumes a plain objective ``parameters -> float`` and
produces an :class:`OptimizationResult` that records the full traversed
path and the number of function queries — the two quantities the
paper's use cases measure (optimizer paths in Figs. 11-13, query counts
in Table 6).

:class:`CountingObjective` wraps any objective with query counting and
path recording so scipy-backed optimizers report the same diagnostics
as the from-scratch ones.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

__all__ = ["Objective", "OptimizationResult", "CountingObjective", "Optimizer"]

Objective = Callable[[np.ndarray], float]


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run.

    Attributes:
        parameters: best parameter vector found.
        value: objective value at :attr:`parameters`.
        num_queries: objective evaluations consumed.
        path: sequence of iterates (rows), including the initial point.
        converged: True if the optimizer's own stopping rule fired
            (rather than the iteration cap).
        label: optimizer tag ("adam", "cobyla", ...).
    """

    parameters: np.ndarray
    value: float
    num_queries: int
    path: np.ndarray
    converged: bool
    label: str = ""

    @property
    def endpoint(self) -> np.ndarray:
        """The final iterate (alias for :attr:`parameters`)."""
        return self.parameters


class CountingObjective:
    """Wraps an objective with query counting and iterate recording."""

    def __init__(self, objective: Objective):
        self._objective = objective
        self.num_queries = 0
        self.evaluations: list[tuple[np.ndarray, float]] = []

    def __call__(self, parameters: np.ndarray) -> float:
        parameters = np.asarray(parameters, dtype=float).copy()
        value = float(self._objective(parameters))
        self.num_queries += 1
        self.evaluations.append((parameters, value))
        return value

    def best(self) -> tuple[np.ndarray, float]:
        """Best (parameters, value) seen so far."""
        if not self.evaluations:
            raise RuntimeError("objective was never evaluated")
        parameters, value = min(self.evaluations, key=lambda item: item[1])
        return parameters, value


class Optimizer(abc.ABC):
    """Base class: concrete optimizers implement :meth:`minimize`."""

    #: display tag used in results
    name: str = "optimizer"

    @abc.abstractmethod
    def minimize(
        self, objective: Objective, initial_point: Sequence[float]
    ) -> OptimizationResult:
        """Minimise ``objective`` starting at ``initial_point``."""

    @staticmethod
    def _as_array(initial_point: Sequence[float]) -> np.ndarray:
        point = np.asarray(initial_point, dtype=float).reshape(-1)
        if point.size == 0:
            raise ValueError("initial point must be non-empty")
        return point
