"""Scipy-backed optimizers with OSCAR-compatible diagnostics.

COBYLA is the gradient-free optimizer of the paper's experiments (the
Qiskit ``COBYLA`` is itself a thin wrapper over scipy's).  Nelder-Mead
is included as a second gradient-free option for the optimizer-choice
use case.  Both report query counts and the traversed path through
:class:`~repro.optimizers.base.CountingObjective`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy import optimize as _optimize

from .base import CountingObjective, Objective, OptimizationResult, Optimizer

__all__ = ["Cobyla", "NelderMead"]


class Cobyla(Optimizer):
    """Constrained Optimization BY Linear Approximation (scipy)."""

    name = "cobyla"

    def __init__(self, maxiter: int = 1000, rhobeg: float = 0.3, tolerance: float = 1e-4):
        self.maxiter = maxiter
        self.rhobeg = rhobeg
        self.tolerance = tolerance

    def minimize(
        self, objective: Objective, initial_point: Sequence[float]
    ) -> OptimizationResult:
        counting = CountingObjective(objective)
        point = self._as_array(initial_point)
        outcome = _optimize.minimize(
            counting,
            point,
            method="COBYLA",
            options={
                "maxiter": self.maxiter,
                "rhobeg": self.rhobeg,
                "tol": self.tolerance,
            },
        )
        path = np.array([params for params, _ in counting.evaluations])
        return OptimizationResult(
            parameters=np.asarray(outcome.x, dtype=float),
            value=float(outcome.fun),
            num_queries=counting.num_queries,
            path=np.vstack([point[None, :], path]),
            converged=bool(outcome.success),
            label=self.name,
        )


class NelderMead(Optimizer):
    """Nelder-Mead downhill simplex (scipy)."""

    name = "nelder-mead"

    def __init__(self, maxiter: int = 500, tolerance: float = 1e-5):
        self.maxiter = maxiter
        self.tolerance = tolerance

    def minimize(
        self, objective: Objective, initial_point: Sequence[float]
    ) -> OptimizationResult:
        counting = CountingObjective(objective)
        point = self._as_array(initial_point)
        outcome = _optimize.minimize(
            counting,
            point,
            method="Nelder-Mead",
            options={
                "maxiter": self.maxiter,
                "xatol": self.tolerance,
                "fatol": self.tolerance,
            },
        )
        path = np.array([params for params, _ in counting.evaluations])
        return OptimizationResult(
            parameters=np.asarray(outcome.x, dtype=float),
            value=float(outcome.fun),
            num_queries=counting.num_queries,
            path=np.vstack([point[None, :], path]),
            converged=bool(outcome.success),
            label=self.name,
        )
