"""Simultaneous Perturbation Stochastic Approximation (SPSA).

SPSA estimates the gradient from just two objective queries per step
regardless of dimension, which makes it the standard noisy-hardware
optimizer for VQAs.  The paper's optimizer-selection use case benefits
from having a third optimizer family alongside ADAM (gradient-based)
and COBYLA (model-based, gradient-free).

Gain sequences follow the Spall (1998) guidelines:
``a_k = a / (k + 1 + A)^alpha`` and ``c_k = c / (k + 1)^gamma``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import CountingObjective, Objective, OptimizationResult, Optimizer
from ..utils import ensure_rng

__all__ = ["Spsa"]


class Spsa(Optimizer):
    """SPSA minimiser with Rademacher perturbations."""

    name = "spsa"

    def __init__(
        self,
        maxiter: int = 200,
        a: float = 0.1,
        c: float = 0.1,
        alpha: float = 0.602,
        gamma: float = 0.101,
        stability: float | None = None,
        tolerance: float = 1e-6,
        rng: np.random.Generator | int | None = None,
    ):
        self.maxiter = maxiter
        self.a = a
        self.c = c
        self.alpha = alpha
        self.gamma = gamma
        self.stability = stability if stability is not None else 0.1 * maxiter
        self.tolerance = tolerance
        self.rng = ensure_rng(rng)

    def minimize(
        self, objective: Objective, initial_point: Sequence[float]
    ) -> OptimizationResult:
        counting = CountingObjective(objective)
        point = self._as_array(initial_point)
        path = [point.copy()]
        converged = False
        for step_index in range(self.maxiter):
            a_k = self.a / (step_index + 1 + self.stability) ** self.alpha
            c_k = self.c / (step_index + 1) ** self.gamma
            delta = self.rng.choice((-1.0, 1.0), size=point.shape)
            value_plus = counting(point + c_k * delta)
            value_minus = counting(point - c_k * delta)
            gradient = (value_plus - value_minus) / (2.0 * c_k) * delta
            update = a_k * gradient
            point = point - update
            path.append(point.copy())
            if np.linalg.norm(update) < self.tolerance:
                converged = True
                break
        final_value = counting(point)
        return OptimizationResult(
            parameters=point,
            value=final_value,
            num_queries=counting.num_queries,
            path=np.array(path),
            converged=converged,
            label=self.name,
        )
