"""Classical optimizers with query counting and path recording.

- :class:`~repro.optimizers.adam.Adam` — gradient-based (Qiskit-default
  hyperparameters), the paper's gradient-based reference,
- :class:`~repro.optimizers.scipy_wrappers.Cobyla` — the paper's
  gradient-free reference,
- :class:`~repro.optimizers.adam.GradientDescent`,
  :class:`~repro.optimizers.spsa.Spsa`,
  :class:`~repro.optimizers.scipy_wrappers.NelderMead` — extras used by
  the optimizer-selection use case and ablations.
"""

from .adam import Adam, GradientDescent, finite_difference_gradient
from .base import CountingObjective, Objective, OptimizationResult, Optimizer
from .scipy_wrappers import Cobyla, NelderMead
from .spsa import Spsa

__all__ = [
    "Adam",
    "GradientDescent",
    "finite_difference_gradient",
    "CountingObjective",
    "Objective",
    "OptimizationResult",
    "Optimizer",
    "Cobyla",
    "NelderMead",
    "Spsa",
    "available_optimizers",
    "make_optimizer",
]

#: Name -> class registry behind :func:`make_optimizer`.  Names are what
#: the ``pipeline`` service op and CLI accept, so they must stay stable.
_OPTIMIZERS: dict[str, type[Optimizer]] = {
    "adam": Adam,
    "gradient-descent": GradientDescent,
    "cobyla": Cobyla,
    "nelder-mead": NelderMead,
    "spsa": Spsa,
}


def available_optimizers() -> tuple[str, ...]:
    """The optimizer names :func:`make_optimizer` accepts (sorted)."""
    return tuple(sorted(_OPTIMIZERS))


def make_optimizer(name: str, **options) -> Optimizer:
    """Build an optimizer by registry name.

    ``options`` are passed straight to the constructor (``maxiter``,
    ``tolerance``, ...).  This is how the daemon's ``pipeline`` op and
    the ``oscar-repro pipeline`` subcommand select their optimizer from
    a plain string.
    """
    try:
        factory = _OPTIMIZERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; choose from {available_optimizers()}"
        ) from None
    return factory(**options)
