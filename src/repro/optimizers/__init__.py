"""Classical optimizers with query counting and path recording.

- :class:`~repro.optimizers.adam.Adam` — gradient-based (Qiskit-default
  hyperparameters), the paper's gradient-based reference,
- :class:`~repro.optimizers.scipy_wrappers.Cobyla` — the paper's
  gradient-free reference,
- :class:`~repro.optimizers.adam.GradientDescent`,
  :class:`~repro.optimizers.spsa.Spsa`,
  :class:`~repro.optimizers.scipy_wrappers.NelderMead` — extras used by
  the optimizer-selection use case and ablations.
"""

from .adam import Adam, GradientDescent, finite_difference_gradient
from .base import CountingObjective, Objective, OptimizationResult, Optimizer
from .scipy_wrappers import Cobyla, NelderMead
from .spsa import Spsa

__all__ = [
    "Adam",
    "GradientDescent",
    "finite_difference_gradient",
    "CountingObjective",
    "Objective",
    "OptimizationResult",
    "Optimizer",
    "Cobyla",
    "NelderMead",
    "Spsa",
]
