"""ADAM with finite-difference gradients.

This mirrors Qiskit's ``ADAM`` optimizer (the gradient-based optimizer
of the paper's Secs. 7-8): first-order moments ``m``, second-order
moments ``v``, bias correction, and central finite-difference gradients
when no analytic gradient is available.  Default hyperparameters match
Qiskit's defaults (lr=1e-3, beta1=0.9, beta2=0.99, eps=1e-8, tol=1e-6),
so query counts are comparable with the paper's Table 6.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .base import CountingObjective, Objective, OptimizationResult, Optimizer

__all__ = ["Adam", "GradientDescent", "finite_difference_gradient"]


def finite_difference_gradient(
    objective: Objective, point: np.ndarray, step: float = 1e-3
) -> np.ndarray:
    """Central finite-difference gradient (2 queries per dimension)."""
    gradient = np.empty_like(point)
    for index in range(point.shape[0]):
        forward = point.copy()
        backward = point.copy()
        forward[index] += step
        backward[index] -= step
        gradient[index] = (objective(forward) - objective(backward)) / (2.0 * step)
    return gradient


class Adam(Optimizer):
    """ADAM minimiser with finite-difference gradients."""

    name = "adam"

    def __init__(
        self,
        maxiter: int = 150,
        learning_rate: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.99,
        eps: float = 1e-8,
        tolerance: float = 1e-6,
        gradient_tolerance: float = 1e-3,
        gradient_step: float = 1e-3,
        gradient: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        if maxiter < 1:
            raise ValueError("maxiter must be >= 1")
        self.maxiter = maxiter
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.tolerance = tolerance
        # ADAM's update magnitude is ~learning_rate regardless of the
        # gradient scale (the m/sqrt(v) ratio is scale-invariant), so a
        # step-norm tolerance alone almost never fires.  Convergence is
        # therefore also declared when the raw gradient norm falls
        # below this threshold — the practically useful criterion near
        # an optimum.
        self.gradient_tolerance = gradient_tolerance
        self.gradient_step = gradient_step
        self.gradient = gradient

    def minimize(
        self, objective: Objective, initial_point: Sequence[float]
    ) -> OptimizationResult:
        counting = CountingObjective(objective)
        point = self._as_array(initial_point)
        path = [point.copy()]
        m = np.zeros_like(point)
        v = np.zeros_like(point)
        converged = False
        for step_index in range(1, self.maxiter + 1):
            if self.gradient is not None:
                gradient = np.asarray(self.gradient(point), dtype=float)
            else:
                gradient = finite_difference_gradient(
                    counting, point, self.gradient_step
                )
            if np.linalg.norm(gradient) < self.gradient_tolerance:
                converged = True
                break
            m = self.beta1 * m + (1.0 - self.beta1) * gradient
            v = self.beta2 * v + (1.0 - self.beta2) * gradient**2
            m_hat = m / (1.0 - self.beta1**step_index)
            v_hat = v / (1.0 - self.beta2**step_index)
            update = self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
            point = point - update
            path.append(point.copy())
            if np.linalg.norm(update) < self.tolerance:
                converged = True
                break
        final_value = counting(point)
        return OptimizationResult(
            parameters=point,
            value=final_value,
            num_queries=counting.num_queries,
            path=np.array(path),
            converged=converged,
            label=self.name,
        )


class GradientDescent(Optimizer):
    """Plain gradient descent (finite-difference), for ablations."""

    name = "gd"

    def __init__(
        self,
        maxiter: int = 200,
        learning_rate: float = 0.05,
        tolerance: float = 1e-6,
        gradient_step: float = 1e-3,
    ):
        self.maxiter = maxiter
        self.learning_rate = learning_rate
        self.tolerance = tolerance
        self.gradient_step = gradient_step

    def minimize(
        self, objective: Objective, initial_point: Sequence[float]
    ) -> OptimizationResult:
        counting = CountingObjective(objective)
        point = self._as_array(initial_point)
        path = [point.copy()]
        converged = False
        for _ in range(self.maxiter):
            gradient = finite_difference_gradient(counting, point, self.gradient_step)
            update = self.learning_rate * gradient
            point = point - update
            path.append(point.copy())
            if np.linalg.norm(update) < self.tolerance:
                converged = True
                break
        final_value = counting(point)
        return OptimizationResult(
            parameters=point,
            value=final_value,
            num_queries=counting.num_queries,
            path=np.array(path),
            converged=converged,
            label=self.name,
        )
