"""Small shared helpers that do not belong to any one subsystem.

Currently this is the single home of the random-generator seeding
policy: every module that optionally accepts an ``rng`` routes through
:func:`ensure_rng`, so "what counts as a valid rng argument" (``None``,
an integer seed, or a ready :class:`numpy.random.Generator`) is decided
in exactly one place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng"]


def ensure_rng(
    rng: np.random.Generator | int | None = None,
) -> np.random.Generator:
    """Normalize an optional rng argument into a ready generator.

    Args:
        rng: ``None`` (fresh OS-entropy generator), an integer seed, or
            an existing :class:`numpy.random.Generator` (returned as-is,
            so callers can share one stream across components).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(int(rng))
