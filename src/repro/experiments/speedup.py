"""The headline speedup claim: landscape generation cost, OSCAR vs grid.

The abstract claims "up to 100X speedup" for full-landscape
reconstruction (Sec. 4.3 states 2x-20x for matched accuracy on the
dense grids).  Speedup here is the ratio of circuit executions — the
dominant cost on any real device — between a dense grid search and the
smallest OSCAR sampling fraction that achieves a target NRMSE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.qaoa import QaoaAnsatz
from ..landscape.generator import LandscapeGenerator, cost_function
from ..landscape.grid import qaoa_grid
from ..landscape.metrics import nrmse
from ..landscape.reconstructor import OscarReconstructor
from ..problems.maxcut import random_3_regular_maxcut

__all__ = ["SpeedupResult", "measure_speedup"]


@dataclass(frozen=True)
class SpeedupResult:
    """Outcome of one speedup measurement.

    Attributes:
        grid_executions: circuit runs for the dense grid search.
        oscar_executions: circuit runs at the chosen sampling fraction.
        speedup: their ratio.
        achieved_nrmse: reconstruction error at that fraction.
        target_nrmse: the accuracy bar the search used.
        fraction: the chosen sampling fraction.
    """

    grid_executions: int
    oscar_executions: int
    speedup: float
    achieved_nrmse: float
    target_nrmse: float
    fraction: float


def measure_speedup(
    num_qubits: int = 10,
    resolution: tuple[int, int] = (30, 60),
    target_nrmse: float = 0.05,
    fractions: tuple[float, ...] = (0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2),
    seed: int = 0,
    batch_size: int | None = None,
    workers: int = 1,
    store=None,
    daemon=None,
    daemon_token=None,
) -> SpeedupResult:
    """Find the smallest sampling fraction meeting the accuracy target.

    Sweeps fractions in increasing order and stops at the first whose
    reconstruction meets ``target_nrmse``; the speedup is grid size over
    the samples used.  Falls back to the best fraction tried if none
    meets the target.  ``workers`` shards the (exact) landscape
    evaluation across processes; ``store`` serves the dense ground
    truth from a :class:`~repro.service.store.LandscapeStore` cache;
    ``daemon`` routes it through a running landscape daemon instead
    (shared pool + cache, with in-process fallback; ``daemon_token``
    authenticates against a token-gated daemon).
    """
    problem = random_3_regular_maxcut(num_qubits, seed=seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=resolution)
    generator = LandscapeGenerator(
        cost_function(ansatz),
        grid,
        batch_size=batch_size,
        workers=workers,
        store=store,
        daemon=daemon,
        daemon_token=daemon_token,
    )
    truth = generator.grid_search()

    best: SpeedupResult | None = None
    for fraction in sorted(fractions):
        reconstructor = OscarReconstructor(grid, rng=seed)
        reconstruction, report = reconstructor.reconstruct(generator, fraction)
        error = nrmse(truth.values, reconstruction.values)
        outcome = SpeedupResult(
            grid_executions=grid.size,
            oscar_executions=report.num_samples,
            speedup=grid.size / report.num_samples,
            achieved_nrmse=error,
            target_nrmse=target_nrmse,
            fraction=fraction,
        )
        if error <= target_nrmse:
            return outcome
        if best is None or error < best.achieved_nrmse:
            best = outcome
    assert best is not None
    return best
