"""Runners for the NCM experiments: Fig. 8 and Table 5.

Fig. 8 sweeps the share of samples coming from the reference device
(QPU-1) and reports NRMSE of the mixed-source reconstruction against
QPU-1's true landscape, with and without noise compensation.

Table 5 repeats the protocol for named device pairs (simulated IBM
Lagos/Perth profiles, ideal/noisy simulation) at the paper's four
splits (20/80, 50/50, 80/20, 100/0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.qaoa import QaoaAnsatz
from ..hardware.qpu import QpuPool, SimulatedQPU, device_profile
from ..landscape.generator import LandscapeGenerator, cost_function
from ..landscape.grid import qaoa_grid
from ..landscape.metrics import nrmse
from ..landscape.reconstructor import OscarReconstructor
from ..parallel.scheduler import ParallelSampler
from ..problems.maxcut import random_3_regular_maxcut
from ..quantum.noise import NoiseModel
from .configs import NCM_QPU1, NCM_QPU2

__all__ = ["NcmSweepPoint", "run_fig8_sweep", "Table5Row", "run_table5"]


@dataclass(frozen=True)
class NcmSweepPoint:
    """One cell of the Fig. 8 sweep."""

    num_qubits: int
    qpu1_share: float
    nrmse_uncompensated: float
    nrmse_compensated: float


def _mixed_reconstruction_error(
    num_qubits: int,
    qpu1_share: float,
    qpu1_noise: NoiseModel,
    qpu2_noise: NoiseModel,
    resolution: tuple[int, int],
    total_fraction: float,
    training_fraction: float,
    seed: int,
    batch_size: int | None = None,
) -> tuple[float, float]:
    """NRMSE (uncompensated, compensated) for one device pair/split."""
    problem = random_3_regular_maxcut(num_qubits, seed=seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=resolution)

    # QPU-1's true landscape is the reference (exact noisy expectation).
    reference_generator = LandscapeGenerator(
        cost_function(ansatz, noise=qpu1_noise), grid, batch_size=batch_size
    )
    reference = reference_generator.grid_search(label="qpu1-truth")

    pool = QpuPool(
        [
            SimulatedQPU("qpu1", noise=qpu1_noise, seed=seed),
            SimulatedQPU("qpu2", noise=qpu2_noise, seed=seed + 1),
        ]
    )
    sampler = ParallelSampler(pool, grid, reference="qpu1")
    reconstructor = OscarReconstructor(grid, rng=seed + 2)
    indices = reconstructor.sample_indices(total_fraction)
    rng = np.random.default_rng(seed + 3)
    fractions = [qpu1_share, 1.0 - qpu1_share]

    sample_sets = []
    for compensate in (False, True):
        batch = sampler.run(
            ansatz,
            indices,
            fractions=fractions,
            compensate=compensate,
            ncm_training_fraction=training_fraction,
            rng=rng,
        )
        sample_sets.append((batch.flat_indices, batch.values))
    reconstructions = reconstructor.reconstruct_many(sample_sets)
    errors = [
        nrmse(reference.values, reconstruction.values)
        for reconstruction, _ in reconstructions
    ]
    return errors[0], errors[1]


def run_fig8_sweep(
    qubit_counts: tuple[int, ...] = (8, 10, 12),
    qpu1_shares: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    resolution: tuple[int, int] = (30, 60),
    total_fraction: float = 0.10,
    training_fraction: float = 0.01,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[NcmSweepPoint]:
    """Fig. 8: NRMSE vs QPU-1 sample share, +/- compensation.

    Defaults mirror the paper: 10% total samples, 1% NCM training,
    QPU-1 at (0.1%, 0.5%) and QPU-2 at (0.3%, 0.7%) gate errors.
    """
    points = []
    for num_qubits in qubit_counts:
        for share in qpu1_shares:
            uncompensated, compensated = _mixed_reconstruction_error(
                num_qubits,
                share,
                NCM_QPU1,
                NCM_QPU2,
                resolution,
                total_fraction,
                training_fraction,
                seed,
                batch_size=batch_size,
            )
            points.append(
                NcmSweepPoint(
                    num_qubits=num_qubits,
                    qpu1_share=share,
                    nrmse_uncompensated=uncompensated,
                    nrmse_compensated=compensated,
                )
            )
    return points


@dataclass(frozen=True)
class Table5Row:
    """One device-pair row of Table 5."""

    qpu1: str
    qpu2: str
    split_errors: dict[float, tuple[float, float]]
    """``{qpu1_share: (oscar, oscar+ncm)}`` for the paper's splits."""
    qpu1_only_error: float
    """The 100%-0% column (no mixing, no NCM needed)."""


def run_table5(
    pairs: tuple[tuple[str, str], ...] = (
        ("noisy-sim-i", "noisy-sim-ii"),
        ("noisy-sim-ii", "noisy-sim-i"),
        ("ibm-perth", "ideal-sim"),
        ("ibm-perth", "noisy-sim-ii"),
        ("ibm-perth", "ibm-lagos"),
        ("ibm-lagos", "ibm-perth"),
        ("ideal-sim", "ibm-perth"),
    ),
    num_qubits: int = 6,
    resolution: tuple[int, int] = (20, 40),
    splits: tuple[float, ...] = (0.2, 0.5, 0.8),
    total_fraction: float = 0.10,
    shots: int | None = 2048,
    ncm_training_fraction: float = 0.04,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[Table5Row]:
    """Table 5: device/simulator source combinations, +/- NCM.

    Uses named device profiles; shot noise is applied on the "hardware"
    devices (profiles with a readout entry) to mimic real sampling.
    The NCM training share defaults to 4% of the grid: with shot noise
    on both devices the regression needs a few dozen pairs to average
    the measurement noise out (the paper trains on 1% of a 5k grid =
    50 pairs; 4% of our scaled 800-point grid = 32 pairs).
    """
    rows = []
    for pair_index, (name1, name2) in enumerate(pairs):
        problem = random_3_regular_maxcut(num_qubits, seed=seed)
        ansatz = QaoaAnsatz(problem, p=1)
        grid = qaoa_grid(p=1, resolution=resolution)
        noise1 = device_profile(name1)
        noise2 = device_profile(name2)

        def shots_for(profile_name: str) -> int | None:
            return shots if profile_name.startswith("ibm") else None

        reference_generator = LandscapeGenerator(
            cost_function(ansatz, noise=noise1), grid, batch_size=batch_size
        )
        reference = reference_generator.grid_search()

        pool = QpuPool(
            [
                SimulatedQPU(
                    "qpu1", noise=noise1, shots=shots_for(name1), seed=seed + pair_index
                ),
                SimulatedQPU(
                    "qpu2",
                    noise=noise2,
                    shots=shots_for(name2),
                    seed=seed + pair_index + 100,
                ),
            ]
        )
        sampler = ParallelSampler(pool, grid, reference="qpu1")
        reconstructor = OscarReconstructor(grid, rng=seed + pair_index)
        indices = reconstructor.sample_indices(total_fraction)
        rng = np.random.default_rng(seed + pair_index + 5)

        # Gather every split's batches first (sampler RNG order matches
        # the old serial loop), then reconstruct all 2*len(splits)+1
        # landscapes of this device pair in one engine pass.
        sample_sets = []
        for share in splits:
            for compensate in (False, True):
                batch = sampler.run(
                    ansatz,
                    indices,
                    fractions=[share, 1.0 - share],
                    compensate=compensate,
                    ncm_training_fraction=ncm_training_fraction,
                    rng=rng,
                )
                sample_sets.append((batch.flat_indices, batch.values))
        only_batch = sampler.run(ansatz, indices, fractions=[1.0, 0.0], rng=rng)
        sample_sets.append((only_batch.flat_indices, only_batch.values))
        reconstructions = reconstructor.reconstruct_many(sample_sets)
        errors = [
            nrmse(reference.values, reconstruction.values)
            for reconstruction, _ in reconstructions
        ]

        split_errors: dict[float, tuple[float, float]] = {
            share: (errors[2 * position], errors[2 * position + 1])
            for position, share in enumerate(splits)
        }
        rows.append(
            Table5Row(
                qpu1=name1,
                qpu2=name2,
                split_errors=split_errors,
                qpu1_only_error=errors[-1],
            )
        )
    return rows
