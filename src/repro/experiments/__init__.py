"""Experiment runners that regenerate every table and figure.

Each module maps to paper artifacts (see DESIGN.md's per-experiment
index):

- :mod:`~repro.experiments.tables` — Tables 2, 3, 4,
- :mod:`~repro.experiments.sampling_study` — Figs. 4, 6,
- :mod:`~repro.experiments.ncm_study` — Fig. 8, Table 5,
- :mod:`~repro.experiments.mitigation_study` — Figs. 9, 10,
- :mod:`~repro.experiments.optimizer_study` — Figs. 11-13, Table 6,
- :mod:`~repro.experiments.speedup` — the headline speedup claim,
- :mod:`~repro.experiments.slices` — the 2-parameter slice protocol,
- :mod:`~repro.experiments.configs` — scaled experiment sizes.
"""

from .configs import DEFAULT, FIG4_NOISE, FIG9_NOISE, NCM_QPU1, NCM_QPU2, SMOKE, ExperimentScale
from .mitigation_study import run_mitigation_study
from .ncm_study import run_fig8_sweep, run_table5
from .optimizer_study import (
    run_endpoint_distance_study,
    run_optimizer_choice,
    run_table6_initialization,
)
from .sampling_study import run_fig4_sweep, run_fig6_sycamore
from .slices import SliceSpec, random_slice, slice_generator
from .speedup import measure_speedup
from .tables import run_table2, run_table3, run_table4, slice_reconstruction_error

__all__ = [
    "DEFAULT",
    "FIG4_NOISE",
    "FIG9_NOISE",
    "NCM_QPU1",
    "NCM_QPU2",
    "SMOKE",
    "ExperimentScale",
    "run_mitigation_study",
    "run_fig8_sweep",
    "run_table5",
    "run_endpoint_distance_study",
    "run_optimizer_choice",
    "run_table6_initialization",
    "run_fig4_sweep",
    "run_fig6_sycamore",
    "SliceSpec",
    "random_slice",
    "slice_generator",
    "measure_speedup",
    "run_table2",
    "run_table3",
    "run_table4",
    "slice_reconstruction_error",
]
