"""Runners for the paper's Tables 2, 3 and 4.

Each runner returns a list of result rows mirroring the paper's table
layout so the benchmark harness can print paper-style tables and
EXPERIMENTS.md can record paper-vs-measured values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.base import Ansatz
from ..ansatz.qaoa import QaoaAnsatz
from ..ansatz.twolocal import TwoLocalAnsatz
from ..ansatz.uccsd import UccsdAnsatz
from ..landscape.metrics import dct_sparsity, nrmse
from ..landscape.reconstructor import OscarReconstructor
from ..problems.chemistry import h2_hamiltonian, lih_hamiltonian
from ..problems.maxcut import random_3_regular_maxcut
from ..problems.sk import sk_problem
from .slices import random_slice, slice_generator

__all__ = [
    "SliceReconstructionRow",
    "run_table2",
    "run_table3",
    "run_table4",
    "slice_reconstruction_error",
]


@dataclass(frozen=True)
class SliceReconstructionRow:
    """One row of a Tables 2/3-style result."""

    problem: str
    ansatz: str
    num_qubits: int
    num_parameters: int
    points_per_axis: int
    nrmse: float
    dct_sparsity: float


def _qaoa_for_params(problem, num_parameters: int) -> QaoaAnsatz:
    if num_parameters % 2 != 0:
        raise ValueError("QAOA parameter count must be even")
    return QaoaAnsatz(problem, p=num_parameters // 2)


def _twolocal_for_params(hamiltonian, num_parameters: int) -> TwoLocalAnsatz:
    num_qubits = hamiltonian.num_qubits
    if num_parameters % num_qubits != 0:
        raise ValueError("Two-local parameter count must be a qubit multiple")
    return TwoLocalAnsatz(hamiltonian, reps=num_parameters // num_qubits - 1)


def slice_reconstruction_error(
    ansatz: Ansatz,
    points_per_axis: int,
    sampling_fraction: float = 0.35,
    repeats: int = 3,
    seed: int = 0,
    batch_size: int | None = None,
    workers: int = 1,
    daemon=None,
) -> tuple[float, float]:
    """Median (NRMSE, DCT-sparsity) over random 2-parameter slices.

    This is the Tables 2/3 protocol: repeat (random slice -> dense
    slice grid -> OSCAR reconstruction -> NRMSE) and aggregate.  The
    paper repeats 100 times; callers choose ``repeats`` to fit their
    budget.  Every ansatz here (QAOA, Two-local, UCCSD) has a native
    batched execution path, so the dense slice grids run vectorized in
    ``batch_size``-point chunks rather than a circuit per point.
    """
    rng = np.random.default_rng(seed)
    errors = []
    sparsities = []
    for _ in range(repeats):
        spec = random_slice(ansatz, points_per_axis, rng=rng)
        generator = slice_generator(
            ansatz, spec, batch_size=batch_size, workers=workers, daemon=daemon
        )
        truth = generator.grid_search()
        reconstructor = OscarReconstructor(spec.grid, rng=rng)
        reconstruction, _ = reconstructor.reconstruct(generator, sampling_fraction)
        errors.append(nrmse(truth.values, reconstruction.values))
        sparsities.append(dct_sparsity(truth.values))
    return float(np.median(errors)), float(np.median(sparsities))


def run_table2(
    repeats: int = 3,
    sampling_fraction: float = 0.35,
    seed: int = 0,
    batch_size: int | None = None,
    workers: int = 1,
    daemon=None,
) -> list[SliceReconstructionRow]:
    """Table 2: QAOA vs Two-local on 4/6-qubit MaxCut and SK problems.

    Configuration mirrors the paper: 8 parameters and 7 points/axis at
    n=4; 6 parameters and 14 points/axis at n=6.
    """
    rows = []
    cases = [
        ("3-reg MaxCut", 4, 8, 7),
        ("3-reg MaxCut", 6, 6, 14),
        ("SK Problem", 4, 8, 7),
        ("SK Problem", 6, 6, 14),
    ]
    for problem_name, num_qubits, num_parameters, points in cases:
        if problem_name.startswith("3-reg"):
            problem = random_3_regular_maxcut(num_qubits, seed=seed)
        else:
            problem = sk_problem(num_qubits, seed=seed)
        hamiltonian = problem.to_pauli_sum()
        for ansatz_name, ansatz in (
            ("QAOA", _qaoa_for_params(problem, num_parameters)),
            ("Two-local", _twolocal_for_params(hamiltonian, num_parameters)),
        ):
            error, sparsity = slice_reconstruction_error(
                ansatz,
                points,
                sampling_fraction,
                repeats,
                seed,
                batch_size,
                workers,
                daemon=daemon,
            )
            rows.append(
                SliceReconstructionRow(
                    problem=problem_name,
                    ansatz=ansatz_name,
                    num_qubits=num_qubits,
                    num_parameters=num_parameters,
                    points_per_axis=points,
                    nrmse=error,
                    dct_sparsity=sparsity,
                )
            )
    return rows


def run_table3(
    repeats: int = 3,
    sampling_fraction: float = 0.35,
    seed: int = 0,
    batch_size: int | None = None,
    workers: int = 1,
    daemon=None,
) -> list[SliceReconstructionRow]:
    """Table 3: H2 and LiH with Two-local and UCCSD ansatzes.

    Mirrors the paper's five rows, including the high-resolution
    H2/UCCSD row (50 points per axis) that shows error collapsing with
    a denser slice grid.
    """
    h2 = h2_hamiltonian()
    lih = lih_hamiltonian()
    cases = [
        ("H2", "Two-local", _twolocal_for_params(h2, 4), 14),
        ("LiH", "Two-local", _twolocal_for_params(lih, 8), 7),
        ("H2", "UCCSD", UccsdAnsatz(h2, num_parameters=3), 14),
        ("H2", "UCCSD", UccsdAnsatz(h2, num_parameters=3), 50),
        ("LiH", "UCCSD", UccsdAnsatz(lih, num_parameters=8), 7),
    ]
    rows = []
    for molecule, ansatz_name, ansatz, points in cases:
        error, sparsity = slice_reconstruction_error(
            ansatz,
            points,
            sampling_fraction,
            repeats,
            seed,
            batch_size,
            workers,
            daemon=daemon,
        )
        rows.append(
            SliceReconstructionRow(
                problem=molecule,
                ansatz=ansatz_name,
                num_qubits=ansatz.num_qubits,
                num_parameters=ansatz.num_parameters,
                points_per_axis=points,
                nrmse=error,
                dct_sparsity=sparsity,
            )
        )
    return rows


def run_table4(
    repeats: int = 3,
    seed: int = 0,
    batch_size: int | None = None,
    workers: int = 1,
    daemon=None,
) -> list[SliceReconstructionRow]:
    """Table 4: DCT-sparsity fractions across problems and ansatzes.

    Reports, for every (problem, ansatz) pair the paper covers, the
    median fraction of DCT coefficients needed for 99% of the slice
    landscape's energy.  Reconstruction is skipped (sparsity only).
    """
    rows: list[SliceReconstructionRow] = []
    rng = np.random.default_rng(seed)

    def sparsity_of(ansatz: Ansatz, points: int) -> float:
        fractions = []
        for _ in range(repeats):
            spec = random_slice(ansatz, points, rng=rng)
            truth = slice_generator(
                ansatz, spec, batch_size=batch_size, workers=workers, daemon=daemon
            ).grid_search()
            fractions.append(dct_sparsity(truth.values))
        return float(np.median(fractions))

    combinatorial = [
        ("3-reg MaxCut (n=4)", random_3_regular_maxcut(4, seed=seed), 8, 7),
        ("3-reg MaxCut (n=6)", random_3_regular_maxcut(6, seed=seed), 6, 14),
        ("SK Problem (n=4)", sk_problem(4, seed=seed), 8, 7),
        ("SK Problem (n=6)", sk_problem(6, seed=seed), 6, 14),
    ]
    for name, problem, num_parameters, points in combinatorial:
        hamiltonian = problem.to_pauli_sum()
        for ansatz_name, ansatz in (
            ("QAOA", _qaoa_for_params(problem, num_parameters)),
            ("Two-local", _twolocal_for_params(hamiltonian, num_parameters)),
        ):
            rows.append(
                SliceReconstructionRow(
                    problem=name,
                    ansatz=ansatz_name,
                    num_qubits=problem.num_qubits,
                    num_parameters=num_parameters,
                    points_per_axis=points,
                    nrmse=float("nan"),
                    dct_sparsity=sparsity_of(ansatz, points),
                )
            )
    molecules = [
        ("H2 (n=2)", h2_hamiltonian(), "Two-local", 4, 14),
        ("H2 (n=2)", h2_hamiltonian(), "UCCSD", 3, 14),
        ("LiH (n=4)", lih_hamiltonian(), "Two-local", 8, 7),
        ("LiH (n=4)", lih_hamiltonian(), "UCCSD", 8, 7),
    ]
    for name, hamiltonian, ansatz_name, num_parameters, points in molecules:
        if ansatz_name == "Two-local":
            ansatz = _twolocal_for_params(hamiltonian, num_parameters)
        else:
            ansatz = UccsdAnsatz(hamiltonian, num_parameters=num_parameters)
        rows.append(
            SliceReconstructionRow(
                problem=name,
                ansatz=ansatz_name,
                num_qubits=hamiltonian.num_qubits,
                num_parameters=num_parameters,
                points_per_axis=points,
                nrmse=float("nan"),
                dct_sparsity=sparsity_of(ansatz, points),
            )
        )
    return rows
