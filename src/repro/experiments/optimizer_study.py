"""Runners for the optimizer use cases: Figs. 11-13 and Table 6.

- :func:`run_endpoint_distance_study` (Fig. 12): optimize the same
  instances (a) on the interpolated reconstructed landscape and (b) by
  circuit execution, and measure the Euclidean distance between the
  two optimization endpoints.
- :func:`run_optimizer_choice` (Fig. 13): compare a gradient-based and
  a gradient-free optimizer on a Richardson-mitigated (jagged)
  landscape, where the gradient-free one should win.
- :func:`run_table6_initialization` (Table 6): count QPU queries to
  convergence with random vs OSCAR-chosen initial points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.qaoa import QaoaAnsatz
from ..initialization.initializer import OscarInitializer, random_initial_point
from ..landscape.generator import LandscapeGenerator, cost_function
from ..landscape.grid import qaoa_grid
from ..landscape.interpolate import InterpolatedLandscape
from ..landscape.reconstructor import OscarReconstructor
from ..mitigation.zne import zne_cost_function
from ..optimizers.adam import Adam
from ..optimizers.base import CountingObjective, OptimizationResult, Optimizer
from ..optimizers.scipy_wrappers import Cobyla
from ..problems.maxcut import random_3_regular_maxcut
from ..quantum.noise import NoiseModel
from .configs import FIG4_NOISE
from .mitigation_study import RICHARDSON

__all__ = [
    "EndpointDistance",
    "run_endpoint_distance_study",
    "OptimizerChoiceResult",
    "run_optimizer_choice",
    "Table6Row",
    "run_table6_initialization",
]


@dataclass(frozen=True)
class EndpointDistance:
    """Fig. 12 data point: one instance, one optimizer, one setting."""

    optimizer: str
    noisy: bool
    instance_seed: int
    distance: float
    surrogate_value: float
    circuit_value: float


def _make_optimizer(name: str) -> Optimizer:
    """Optimizers with convergence-based stopping (Table 6 counts
    queries *to convergence*, so the iteration cap must not bind)."""
    if name == "adam":
        return Adam(maxiter=300, tolerance=1e-3, gradient_tolerance=5e-3)
    if name == "cobyla":
        return Cobyla(maxiter=400)
    raise ValueError(f"unknown optimizer {name!r}")


def run_endpoint_distance_study(
    optimizers: tuple[str, ...] = ("adam", "cobyla"),
    noisy_settings: tuple[bool, ...] = (False, True),
    num_qubits: int = 8,
    num_instances: int = 4,
    resolution: tuple[int, int] = (20, 40),
    sampling_fraction: float = 0.10,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[EndpointDistance]:
    """Fig. 12: endpoint distance, surrogate vs circuit optimization.

    Both runs start from the *same* random initial point, so endpoint
    distance isolates the landscape-fidelity effect.
    """
    results = []
    noise = FIG4_NOISE
    for noisy in noisy_settings:
        for instance in range(num_instances):
            instance_seed = seed + instance
            problem = random_3_regular_maxcut(num_qubits, seed=instance_seed)
            ansatz = QaoaAnsatz(problem, p=1)
            grid = qaoa_grid(p=1, resolution=resolution)
            active_noise = noise if noisy else None
            generator = LandscapeGenerator(
                cost_function(ansatz, noise=active_noise), grid, batch_size=batch_size
            )
            reconstructor = OscarReconstructor(grid, rng=instance_seed)
            reconstruction, _ = reconstructor.reconstruct(generator, sampling_fraction)
            surrogate = InterpolatedLandscape(reconstruction)
            rng = np.random.default_rng(instance_seed + 77)
            start = random_initial_point(grid.bounds, rng)
            for optimizer_name in optimizers:
                surrogate_result = _make_optimizer(optimizer_name).minimize(
                    surrogate, start
                )
                circuit_result = _make_optimizer(optimizer_name).minimize(
                    generator.evaluate_point, start
                )
                distance = float(
                    np.linalg.norm(
                        surrogate_result.parameters - circuit_result.parameters
                    )
                )
                results.append(
                    EndpointDistance(
                        optimizer=optimizer_name,
                        noisy=noisy,
                        instance_seed=instance_seed,
                        distance=distance,
                        surrogate_value=surrogate_result.value,
                        circuit_value=circuit_result.value,
                    )
                )
    return results


@dataclass(frozen=True)
class OptimizerChoiceResult:
    """Fig. 13 outcome: optimizer performance on a jagged landscape."""

    optimizer: str
    final_value: float
    num_queries: int
    path: np.ndarray
    start_index: int = 0


def run_optimizer_choice(
    num_qubits: int = 8,
    resolution: tuple[int, int] = (20, 40),
    noise: NoiseModel | None = None,
    shots: int = 512,
    sampling_fraction: float = 0.15,
    num_starts: int = 1,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[OptimizerChoiceResult]:
    """Fig. 13: ADAM vs COBYLA on a Richardson-mitigated landscape.

    The Richardson landscape's salt noise defeats finite-difference
    gradients, so the gradient-free COBYLA reaches a lower final value
    — the paper's optimizer-selection takeaway.  The paper shows one
    illustrative run; pass ``num_starts > 1`` to aggregate the
    comparison over several random initial points (both optimizers
    always share each start).
    """
    noise = noise or NoiseModel(p1=0.001, p2=0.02)
    problem = random_3_regular_maxcut(num_qubits, seed=seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=resolution)
    rng = np.random.default_rng(seed)
    function = zne_cost_function(ansatz, noise, RICHARDSON, shots=shots, rng=rng)
    generator = LandscapeGenerator(function, grid, batch_size=batch_size)
    reconstructor = OscarReconstructor(grid, rng=seed)
    reconstruction, _ = reconstructor.reconstruct(generator, sampling_fraction)
    start_rng = np.random.default_rng(seed + 1)
    outcomes = []
    for start_index in range(num_starts):
        start = random_initial_point(grid.bounds, start_rng)
        for name in ("adam", "cobyla"):
            surrogate = InterpolatedLandscape(reconstruction)
            result = _make_optimizer(name).minimize(surrogate, start)
            outcomes.append(
                OptimizerChoiceResult(
                    optimizer=name,
                    final_value=result.value,
                    num_queries=result.num_queries,
                    path=result.path,
                    start_index=start_index,
                )
            )
    return outcomes


@dataclass(frozen=True)
class Table6Row:
    """One row of Table 6: queries to convergence for one setting."""

    optimizer: str
    noisy: bool
    random_init_queries: float
    oscar_init_queries: float
    oscar_total_queries: float
    """OSCAR optimization queries plus reconstruction queries."""
    random_final_value: float
    oscar_final_value: float


def run_table6_initialization(
    optimizers: tuple[str, ...] = ("adam", "cobyla"),
    noisy_settings: tuple[bool, ...] = (False, True),
    num_qubits: int = 8,
    num_instances: int = 4,
    resolution: tuple[int, int] = (16, 32),
    sampling_fraction: float = 0.08,
    seed: int = 0,
    batch_size: int | None = None,
) -> list[Table6Row]:
    """Table 6: QPU queries with random vs OSCAR initialization.

    For each instance: (a) run the optimizer on the circuit objective
    from a random point; (b) reconstruct the landscape with OSCAR,
    optimize on the interpolation (free), then run the optimizer on the
    circuit objective from the OSCAR point.  Reports mean queries.
    """
    rows = []
    for optimizer_name in optimizers:
        for noisy in noisy_settings:
            random_queries: list[int] = []
            oscar_queries: list[int] = []
            oscar_total: list[int] = []
            random_values: list[float] = []
            oscar_values: list[float] = []
            for instance in range(num_instances):
                instance_seed = seed + instance
                problem = random_3_regular_maxcut(num_qubits, seed=instance_seed)
                ansatz = QaoaAnsatz(problem, p=1)
                grid = qaoa_grid(p=1, resolution=resolution)
                active_noise = FIG4_NOISE if noisy else None
                generator = LandscapeGenerator(
                    cost_function(ansatz, noise=active_noise), grid, batch_size=batch_size
                )
                rng = np.random.default_rng(instance_seed + 13)

                # Baseline: random initialization, circuit execution.
                counting = CountingObjective(generator.evaluate_point)
                start = random_initial_point(grid.bounds, rng)
                baseline = _make_optimizer(optimizer_name).minimize(counting, start)
                random_queries.append(counting.num_queries)
                random_values.append(baseline.value)

                # OSCAR initialization.
                initializer = OscarInitializer(
                    OscarReconstructor(grid, rng=instance_seed),
                    _make_optimizer(optimizer_name),
                    sampling_fraction=sampling_fraction,
                    rng=instance_seed,
                )
                outcome = initializer.choose(generator)
                counting = CountingObjective(generator.evaluate_point)
                refined = _make_optimizer(optimizer_name).minimize(
                    counting, outcome.initial_point
                )
                oscar_queries.append(counting.num_queries)
                oscar_total.append(
                    counting.num_queries + outcome.reconstruction_queries
                )
                oscar_values.append(refined.value)
            rows.append(
                Table6Row(
                    optimizer=optimizer_name,
                    noisy=noisy,
                    random_init_queries=float(np.mean(random_queries)),
                    oscar_init_queries=float(np.mean(oscar_queries)),
                    oscar_total_queries=float(np.mean(oscar_total)),
                    random_final_value=float(np.mean(random_values)),
                    oscar_final_value=float(np.mean(oscar_values)),
                )
            )
    return rows
