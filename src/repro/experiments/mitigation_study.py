"""Runners for the noise-mitigation use case: Figs. 9 and 10.

The study compares QAOA landscapes produced by unmitigated noisy
execution, Richardson-extrapolated ZNE and linear-extrapolated ZNE —
both the original (dense grid) landscapes and their OSCAR
reconstructions — and checks that the reconstruction preserves the
three landscape metrics (D2 roughness, VoG flatness, variance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.qaoa import QaoaAnsatz
from ..landscape.generator import LandscapeGenerator, cost_function
from ..landscape.grid import qaoa_grid
from ..landscape.landscape import Landscape
from ..landscape.metrics import (
    landscape_variance,
    nrmse,
    second_derivative,
    variance_of_gradient,
)
from ..landscape.reconstructor import OscarReconstructor, sample_and_evaluate
from ..mitigation.zne import ZneConfig, zne_cost_function
from ..problems.maxcut import random_3_regular_maxcut
from ..quantum.noise import NoiseModel
from .configs import FIG9_NOISE

__all__ = ["MitigationLandscapes", "MetricsRow", "run_mitigation_study"]

RICHARDSON = ZneConfig(scale_factors=(1.0, 2.0, 3.0), method="richardson")
LINEAR = ZneConfig(scale_factors=(1.0, 3.0), method="linear")


@dataclass
class MitigationLandscapes:
    """Original and reconstructed landscapes per mitigation setting."""

    original: dict[str, Landscape]
    reconstructed: dict[str, Landscape]
    reconstruction_nrmse: dict[str, float]


@dataclass(frozen=True)
class MetricsRow:
    """Fig. 10 metrics for one (setting, original/reconstructed) cell."""

    setting: str
    source: str
    second_derivative: float
    variance_of_gradient: float
    variance: float


def run_mitigation_study(
    num_qubits: int = 10,
    resolution: tuple[int, int] = (20, 40),
    noise: NoiseModel = FIG9_NOISE,
    shots: int = 1024,
    sampling_fraction: float = 0.15,
    seed: int = 0,
    batch_size: int | None = None,
    workers: int = 1,
    daemon=None,
) -> tuple[MitigationLandscapes, list[MetricsRow]]:
    """Generate the Fig. 9 landscapes and the Fig. 10 metric table.

    The Richardson configuration uses scales {1,2,3} and the linear one
    {1,3}, exactly as in the paper.  ``shots`` drives the statistical
    noise that Richardson amplifies into "salt".  ``batch_size`` counts
    landscape *points* per vectorized chunk for every setting; the ZNE
    cost functions fold their noise scales into the batch axis (one
    batched call per chunk covering all scale factors, i.e.
    ``batch_size * num_scales`` execution rows), so the mitigated
    landscapes ride the same vectorized backend as the unmitigated one.
    Leave it ``None`` for a cache-capped default that accounts for the
    fold.
    """
    problem = random_3_regular_maxcut(num_qubits, seed=seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=resolution)
    rng = np.random.default_rng(seed)

    functions = {
        "unmitigated": cost_function(ansatz, noise=noise, shots=shots, rng=rng),
        "richardson": zne_cost_function(
            ansatz, noise, RICHARDSON, shots=shots, rng=rng
        ),
        "linear": zne_cost_function(ansatz, noise, LINEAR, shots=shots, rng=rng),
    }

    original: dict[str, Landscape] = {}
    reconstructed: dict[str, Landscape] = {}
    errors: dict[str, float] = {}
    sample_sets = []
    settings = list(functions)
    for position, (setting, function) in enumerate(functions.items()):
        generator = LandscapeGenerator(
            function,
            grid,
            batch_size=batch_size,
            workers=workers,
            # Multiprocess (or daemon-served) shot noise needs a
            # per-shard seeding plan; in-process runs keep the serial
            # rng threading untouched.
            seed=(seed + 31 * (position + 1))
            if (workers > 1 or daemon is not None)
            else None,
            daemon=daemon,
        )
        truth = generator.grid_search(label=f"{setting}-original")
        # Stable per-setting seed (str hash is randomized per process).
        reconstructor = OscarReconstructor(grid, rng=seed + 101 * (position + 1))
        # Sample from a fresh draw of the *same stochastic process*
        # (new shot noise per query), like re-running hardware.
        sample_sets.append(
            sample_and_evaluate(generator, reconstructor, sampling_fraction)
        )
        original[setting] = truth
    # One batched engine pass reconstructs all three settings at once.
    reconstructions = OscarReconstructor(grid).reconstruct_many(
        sample_sets, labels=[f"{setting}-recon" for setting in settings]
    )
    for setting, (reconstruction, _) in zip(settings, reconstructions):
        reconstructed[setting] = reconstruction
        errors[setting] = nrmse(original[setting].values, reconstruction.values)

    rows = []
    for setting in functions:
        for source, landscape in (
            ("original", original[setting]),
            ("reconstructed", reconstructed[setting]),
        ):
            rows.append(
                MetricsRow(
                    setting=setting,
                    source=source,
                    second_derivative=second_derivative(landscape.values),
                    variance_of_gradient=variance_of_gradient(landscape.values),
                    variance=landscape_variance(landscape.values),
                )
            )
    return (
        MitigationLandscapes(
            original=original, reconstructed=reconstructed, reconstruction_nrmse=errors
        ),
        rows,
    )
