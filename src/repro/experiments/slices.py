"""Two-parameter landscape slices of high-dimensional ansatzes.

Tables 2-4 of the paper evaluate reconstruction on ansatzes with 3-8
parameters.  Because dense grids are exponential in dimension, the
paper "evaluate[s] the reconstruction accuracy by randomly selecting
two varying parameters, fixing the rest to random values".  This module
implements that protocol: build a 2-D :class:`~repro.landscape.grid.ParameterGrid`
over a random pair of parameters and close over the ansatz with the
remaining parameters frozen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.base import Ansatz
from ..landscape.generator import LandscapeGenerator
from ..landscape.grid import GridAxis, ParameterGrid
from ..quantum.noise import NoiseModel
from ..utils import ensure_rng

__all__ = ["SliceSpec", "SliceCostFunction", "random_slice", "slice_generator"]


@dataclass(frozen=True)
class SliceSpec:
    """A 2-D slice through an ansatz's parameter space.

    Attributes:
        varying: the two parameter indices that form the grid axes.
        fixed_values: full-length parameter vector supplying the frozen
            coordinates (the varying two are overwritten per query).
        grid: the 2-D grid over the varying parameters.
    """

    varying: tuple[int, int]
    fixed_values: np.ndarray
    grid: ParameterGrid


def random_slice(
    ansatz: Ansatz,
    points_per_axis: int,
    parameter_range: tuple[float, float] = (-np.pi, np.pi),
    rng: np.random.Generator | None = None,
) -> SliceSpec:
    """Draw a random 2-parameter slice (the Tables 2-3 protocol).

    Args:
        ansatz: the ansatz being sliced.
        points_per_axis: equidistant samples per varying parameter
            (7 or 14 in the paper's tables).
        parameter_range: range for both the grid axes and the random
            frozen values.
        rng: random generator.
    """
    rng = ensure_rng(rng)
    if ansatz.num_parameters < 2:
        raise ValueError("slicing needs an ansatz with at least two parameters")
    low, high = parameter_range
    varying = tuple(
        sorted(rng.choice(ansatz.num_parameters, size=2, replace=False).tolist())
    )
    fixed_values = rng.uniform(low, high, size=ansatz.num_parameters)
    names = ansatz.parameter_names()
    grid = ParameterGrid(
        [
            GridAxis(names[varying[0]], low, high, points_per_axis),
            GridAxis(names[varying[1]], low, high, points_per_axis),
        ]
    )
    return SliceSpec(varying=varying, fixed_values=fixed_values, grid=grid)


class SliceCostFunction:
    """Cost over a 2-D slice: freeze all but two parameters of an ansatz.

    Batch-capable like
    :class:`~repro.landscape.generator.AnsatzCostFunction`: slice points
    are embedded into full parameter vectors and forwarded to
    :meth:`~repro.ansatz.base.Ansatz.expectation_many`, so QAOA,
    Two-local and UCCSD slices all ride their native vectorized
    execution paths (custom ansatzes without one fall back to the base
    class's serial loop with unchanged semantics).
    """

    def __init__(
        self,
        ansatz: Ansatz,
        spec: SliceSpec,
        noise: NoiseModel | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.ansatz = ansatz
        self.spec = spec
        self.noise = noise
        self.shots = shots
        self.rng = rng

    @property
    def num_qubits(self) -> int:
        """Width of the underlying circuit (drives batch sizing)."""
        return self.ansatz.num_qubits

    def batch_capacity(self) -> int:
        """Memory-capped execution rows per chunk (noise-engine aware).

        Noisy slices on density-engine ansatzes (the Tables 2-3 noisy
        protocol) chunk to the ``4**n``-per-row density budget.
        """
        return self.ansatz.batch_capacity(self.noise)

    def _embed(self, slice_points: np.ndarray) -> np.ndarray:
        """Expand ``(m, 2)`` slice points into full parameter vectors."""
        full = np.tile(self.spec.fixed_values, (slice_points.shape[0], 1))
        full[:, self.spec.varying[0]] = slice_points[:, 0]
        full[:, self.spec.varying[1]] = slice_points[:, 1]
        return full

    def __call__(self, slice_point: np.ndarray) -> float:
        """Cost at one 2-D slice point."""
        full = self.spec.fixed_values.copy()
        full[self.spec.varying[0]] = slice_point[0]
        full[self.spec.varying[1]] = slice_point[1]
        return self.ansatz.expectation(
            full, noise=self.noise, shots=self.shots, rng=self.rng
        )

    def many(self, slice_points: np.ndarray) -> np.ndarray:
        """Cost values for an ``(m, 2)`` batch of slice points."""
        return self.ansatz.expectation_many(
            self._embed(np.asarray(slice_points, dtype=float)),
            noise=self.noise,
            shots=self.shots,
            rng=self.rng,
        )

    def cache_spec(self) -> dict:
        """Canonical content description for the landscape store/daemon.

        A slice landscape is determined by the ansatz/problem content,
        the slice geometry (which two parameters vary, what the frozen
        coordinates are), the noise model and the shot budget; the grid
        axes are added by the generator layer.
        """
        return {
            "kind": "slice",
            "ansatz": self.ansatz.cache_spec(),
            "varying": [int(index) for index in self.spec.varying],
            "fixed_values": [float(v) for v in self.spec.fixed_values],
            "noise": None if self.noise is None else self.noise.cache_spec(),
            "shots": self.shots,
        }


def slice_generator(
    ansatz: Ansatz,
    spec: SliceSpec,
    noise: NoiseModel | None = None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
    batch_size: int | None = None,
    workers: int = 1,
    daemon=None,
) -> LandscapeGenerator:
    """A batch-capable :class:`LandscapeGenerator` over the slice's grid.

    ``workers`` fans the slice grid out across the sharded executor
    (exact slices only: shot-noise slices bind their rng here, which
    multiprocess execution would need a ``seed=`` plan for);
    ``daemon`` serves the slice through a running landscape daemon
    (with in-process fallback).
    """
    function = SliceCostFunction(ansatz, spec, noise=noise, shots=shots, rng=rng)
    return LandscapeGenerator(
        function, spec.grid, batch_size=batch_size, workers=workers, daemon=daemon
    )
