"""Scaled experiment configurations.

The paper's experiments run up to 30 qubits on GPU simulators and real
hardware; this reproduction targets one CPU core, so every experiment
has a scaled default configuration here.  Benchmarks import these so
the scaling story lives in exactly one place (and EXPERIMENTS.md
documents the mapping paper-size -> repro-size).

Two tiers are provided: ``SMOKE`` (seconds; used by the test suite and
CI-style runs) and ``FULL`` (minutes; used when regenerating
EXPERIMENTS.md numbers).  Benchmarks default to SMOKE-to-FULL
intermediates chosen to finish in a few minutes total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..quantum.noise import NoiseModel

__all__ = ["ExperimentScale", "SMOKE", "DEFAULT", "FIG4_NOISE", "FIG9_NOISE", "NCM_QPU1", "NCM_QPU2"]


@dataclass(frozen=True)
class ExperimentScale:
    """Sizes shared by the experiment runners.

    Attributes:
        p1_resolution: (beta, gamma) grid points for p=1 landscapes
            (the paper uses (50, 100)).
        p2_resolution: per-axis grid points for p=2 landscapes
            (the paper uses (12, 15) -> 32.4k points).
        qubits_ideal: qubit counts for ideal p=1 sweeps
            (the paper uses 16-30).
        qubits_noisy: qubit counts for noisy p=1 sweeps
            (the paper uses 12-20).
        num_instances: problem instances per sweep point
            (the paper uses 16).
        sampling_fractions: OSCAR sampling fractions swept in Fig. 4.
    """

    p1_resolution: tuple[int, int] = (30, 60)
    p2_resolution: tuple[int, int] = (8, 10)
    qubits_ideal: tuple[int, ...] = (8, 10, 12)
    qubits_noisy: tuple[int, ...] = (6, 8, 10)
    num_instances: int = 4
    sampling_fractions: tuple[float, ...] = (0.04, 0.06, 0.08)


SMOKE = ExperimentScale(
    p1_resolution=(16, 32),
    p2_resolution=(6, 7),
    qubits_ideal=(6, 8),
    qubits_noisy=(6,),
    num_instances=2,
    sampling_fractions=(0.05, 0.08),
)

DEFAULT = ExperimentScale()

# Fig. 4's depolarizing configuration: 1q error 0.003, 2q error 0.007.
FIG4_NOISE = NoiseModel(p1=0.003, p2=0.007)

# Fig. 9's configuration: 1q error 0.001, 2q error 0.02.
FIG9_NOISE = NoiseModel(p1=0.001, p2=0.02)

# Sec. 5.1's two-QPU NCM study: QPU-1 (0.1%, 0.5%), QPU-2 (0.3%, 0.7%).
NCM_QPU1 = NoiseModel(p1=0.001, p2=0.005)
NCM_QPU2 = NoiseModel(p1=0.003, p2=0.007)
