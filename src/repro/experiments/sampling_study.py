"""Runner for Fig. 4 (NRMSE vs sampling fraction) and Fig. 6 (Sycamore).

Fig. 4 sweeps the sampling fraction for p=1 and p=2 QAOA-MaxCut
landscapes, ideal and noisy, across qubit counts, reporting quartiles
over problem instances.  Fig. 6 does the same on the (synthetic)
Sycamore hardware landscapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.qaoa import QaoaAnsatz
from ..datasets.sycamore import sycamore_landscape
from ..landscape.generator import LandscapeGenerator, cost_function
from ..landscape.grid import qaoa_grid
from ..landscape.metrics import nrmse
from ..landscape.reconstructor import OscarReconstructor, sample_and_evaluate
from ..problems.maxcut import random_3_regular_maxcut
from ..quantum.noise import NoiseModel
from .configs import DEFAULT, FIG4_NOISE, ExperimentScale

__all__ = ["FractionSweepPoint", "run_fig4_sweep", "run_fig6_sycamore"]


@dataclass(frozen=True)
class FractionSweepPoint:
    """One (configuration, sampling fraction) cell of Fig. 4 / Fig. 6."""

    p: int
    noisy: bool
    num_qubits: int
    sampling_fraction: float
    nrmse_q1: float
    nrmse_median: float
    nrmse_q3: float


def _instance_errors(
    p: int,
    num_qubits: int,
    noise: NoiseModel | None,
    fraction: float,
    num_instances: int,
    scale: ExperimentScale,
    seed: int,
    shots: int | None,
    batch_size: int | None = None,
    workers: int = 1,
    daemon=None,
) -> np.ndarray:
    """Per-instance NRMSE; sampling/execution stay per-instance (seeded
    identically to the serial path) while the reconstructions of all
    instances run through one batched engine pass."""
    resolution = scale.p1_resolution if p == 1 else scale.p2_resolution
    truths = []
    sample_sets = []
    grid = qaoa_grid(p=p, resolution=resolution)
    for instance in range(num_instances):
        problem = random_3_regular_maxcut(num_qubits, seed=seed + instance)
        ansatz = QaoaAnsatz(problem, p=p)
        rng = np.random.default_rng(seed + 57 * instance)
        generator = LandscapeGenerator(
            cost_function(ansatz, noise=noise, shots=shots, rng=rng),
            grid,
            batch_size=batch_size,
            workers=workers,
            # Multiprocess (or daemon-served) shot noise needs a
            # per-shard seeding plan; in-process runs keep the serial
            # rng threading untouched.
            seed=(seed + 57 * instance)
            if ((workers > 1 or daemon is not None) and shots)
            else None,
            daemon=daemon,
        )
        truths.append(generator.grid_search())
        reconstructor = OscarReconstructor(grid, rng=seed + 101 * instance)
        sample_sets.append(sample_and_evaluate(generator, reconstructor, fraction))
    reconstructions = OscarReconstructor(grid).reconstruct_many(sample_sets)
    return np.asarray(
        [
            nrmse(truth.values, reconstruction.values)
            for truth, (reconstruction, _) in zip(truths, reconstructions)
        ]
    )


def run_fig4_sweep(
    p: int,
    noisy: bool,
    scale: ExperimentScale = DEFAULT,
    qubit_counts: tuple[int, ...] | None = None,
    shots: int | None = 4096,
    seed: int = 0,
    batch_size: int | None = None,
    workers: int = 1,
    daemon=None,
) -> list[FractionSweepPoint]:
    """One panel of Fig. 4: quartile NRMSE vs sampling fraction.

    Args:
        p: QAOA depth (1 or 2).
        noisy: apply the Fig. 4 depolarizing model if True.  Noisy
            execution also samples ``shots`` measurement shots per point
            (pure analytic depolarizing is an affine landscape transform
            that the scale-invariant NRMSE cannot see; shot statistics
            are what make noisy reconstruction genuinely harder).
        scale: experiment sizing (resolutions, instance counts).
        qubit_counts: overrides the scale's qubit list.
        shots: shots per expectation in the noisy setting (ideal panels
            always use exact expectations, as in the paper).
        seed: base seed; instances use ``seed + i``.
        batch_size: grid points per vectorized execution pass (``None``
            picks the memory-capped default).
        workers: processes for sharded landscape evaluation (noisy
            panels switch to per-shard seeded shot noise when > 1).
    """
    noise = FIG4_NOISE if noisy else None
    if qubit_counts is None:
        qubit_counts = scale.qubits_noisy if noisy else scale.qubits_ideal
    points = []
    for num_qubits in qubit_counts:
        for fraction in scale.sampling_fractions:
            errors = _instance_errors(
                p,
                num_qubits,
                noise,
                fraction,
                scale.num_instances,
                scale,
                seed,
                shots if noisy else None,
                batch_size=batch_size,
                workers=workers,
                daemon=daemon,
            )
            q1, median, q3 = np.percentile(errors, (25, 50, 75))
            points.append(
                FractionSweepPoint(
                    p=p,
                    noisy=noisy,
                    num_qubits=num_qubits,
                    sampling_fraction=fraction,
                    nrmse_q1=float(q1),
                    nrmse_median=float(median),
                    nrmse_q3=float(q3),
                )
            )
    return points


def run_fig6_sycamore(
    fractions: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5),
    kinds: tuple[str, ...] = ("mesh", "3-regular", "sk"),
    seed: int = 0,
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 6: reconstruction error vs sampling fraction, per problem.

    Returns ``{kind: [(fraction, nrmse), ...]}`` over the synthetic
    Sycamore landscapes.
    """
    curves: dict[str, list[tuple[float, float]]] = {}
    for kind in kinds:
        hardware, _ = sycamore_landscape(kind, seed=seed)
        grid = hardware.grid
        rng = np.random.default_rng(seed + 17)
        # Sample every fraction first (same RNG draw order as the old
        # serial loop), then reconstruct the whole sweep in one batch.
        reconstructor = OscarReconstructor(grid, rng=rng)
        sample_sets = []
        for fraction in fractions:
            indices = reconstructor.sample_indices(fraction)
            sample_sets.append((indices, hardware.flat()[indices]))
        reconstructions = reconstructor.reconstruct_many(sample_sets)
        curves[kind] = [
            (fraction, nrmse(hardware.values, reconstruction.values))
            for fraction, (reconstruction, _) in zip(fractions, reconstructions)
        ]
    return curves
