"""Random grid-point samplers for OSCAR's parameter-sampling phase.

The paper samples circuit parameters "randomly and uniformly from the
entire parameter space" over the grid.  We implement that scheme plus a
stratified variant (used in the ablation study) that spreads samples
more evenly, and helpers to convert between flat indices, grid indices
and physical parameter values.
"""

from __future__ import annotations

import numpy as np

from ..utils import ensure_rng

__all__ = [
    "sample_count_for_fraction",
    "uniform_random_indices",
    "stratified_indices",
    "flat_to_grid_indices",
]


def sample_count_for_fraction(grid_size: int, fraction: float) -> int:
    """Number of samples for a target sampling fraction (at least 1)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("sampling fraction must be in (0, 1]")
    return max(1, int(round(fraction * grid_size)))


def uniform_random_indices(
    grid_size: int,
    fraction: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Uniformly random distinct flat indices (the paper's scheme)."""
    rng = ensure_rng(rng)
    count = sample_count_for_fraction(grid_size, fraction)
    return np.sort(rng.choice(grid_size, size=count, replace=False))


def stratified_indices(
    grid_size: int,
    fraction: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Stratified sampler: one uniform draw per equal-width stratum.

    Divides ``[0, grid_size)`` into ``count`` *disjoint* contiguous
    strata and samples one point in each, guaranteeing coverage of the
    whole grid and exactly ``count`` distinct indices (so the realized
    sampling fraction always matches the requested one).  Used by the
    sampling-scheme ablation benchmark.
    """
    rng = ensure_rng(rng)
    count = sample_count_for_fraction(grid_size, fraction)
    # Integer stratum edges: strictly increasing (count <= grid_size),
    # so strata are disjoint, non-empty, and tile [0, grid_size).
    edges = (np.arange(count + 1) * grid_size) // count
    return rng.integers(edges[:-1], edges[1:])


def flat_to_grid_indices(
    flat_indices: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Convert flat indices to an ``(m, ndim)`` array of grid indices."""
    unraveled = np.unravel_index(np.asarray(flat_indices, dtype=int), shape)
    return np.stack(unraveled, axis=1)
