"""Signal reconstruction from partial grid samples.

This module connects the DCT basis and the sparse solvers into the
operation OSCAR performs: given the values of a landscape at a small set
of grid indices, recover the full landscape.

The synthesis operator is the orthonormal inverse DCT; the measurement
operator restricts the synthesised signal to the sampled flat indices.
Because the basis is orthonormal, the adjoint embeds the residual at the
sampled indices and applies the forward DCT — both matrix-free.

Solvers are looked up in a small registry (:func:`register_solver` /
:func:`available_solvers`) keyed by :attr:`ReconstructionConfig.solver`,
so new recovery algorithms plug in without touching the dispatch.  The
FISTA path supports warm starts (``warm_start=`` on
:func:`reconstruct_signal`), gradient-based adaptive momentum restart
and a backtracking line search (``lipschitz=None``) — all exposed as
:class:`ReconstructionConfig` fields.  Reconstructing *many* landscapes
at once goes through :class:`~repro.cs.engine.ReconstructionEngine`,
which runs one vectorized FISTA loop over a whole stack of problems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from .dct import BASES, dct_basis_matrix, inverse_transform, transform
from .solvers import SolverResult, basis_pursuit_linprog, fista_lasso, omp

__all__ = [
    "ReconstructionConfig",
    "available_solvers",
    "reconstruct_signal",
    "reconstruction_operators",
    "register_solver",
    "validate_sample_set",
]


def validate_sample_set(
    size: int,
    flat_indices: np.ndarray,
    values: np.ndarray,
    context: str = "",
) -> tuple[np.ndarray, np.ndarray]:
    """Normalise and validate one ``(flat_indices, values)`` sample set.

    The single validator shared by the serial path
    (:meth:`~repro.landscape.reconstructor.OscarReconstructor.reconstruct_from_samples`)
    and the batched engine, so both reject the same inputs with the
    same messages.  ``context`` prefixes errors (e.g. ``"problem 3"``
    when validating a stack).

    Returns:
        The indices as an int array and the values as a flat float
        array.
    """
    flat_indices = np.asarray(flat_indices, dtype=int).reshape(-1)
    values = np.asarray(values, dtype=float).reshape(-1)
    prefix = f"{context}: " if context else ""
    if flat_indices.shape[0] != values.shape[0]:
        raise ValueError(prefix + "indices and values must have matching lengths")
    if flat_indices.size == 0:
        raise ValueError(prefix + "need at least one sample index")
    if flat_indices.min() < 0 or flat_indices.max() >= size:
        raise ValueError(prefix + "sample index out of range for grid shape")
    if np.unique(flat_indices).shape[0] != flat_indices.shape[0]:
        raise ValueError(prefix + "sample indices contain duplicates")
    if not np.all(np.isfinite(values)):
        bad = int(np.sum(~np.isfinite(values)))
        raise ValueError(
            prefix + f"{bad} sample value(s) are non-finite; failed circuit "
            "executions must be dropped (see eager reconstruction) "
            "before reconstructing"
        )
    return flat_indices, values


@dataclass(frozen=True)
class ReconstructionConfig:
    """Knobs of the CS reconstruction.

    Attributes:
        solver: a registered solver name — ``"fista"`` (default),
            ``"omp"`` or ``"bp"`` (see :func:`available_solvers`).
        lam: L1 penalty for FISTA; ``None`` = auto heuristic.
        max_iterations: FISTA iteration cap.
        tolerance: FISTA relative-change stopping tolerance.
        max_atoms: OMP atom cap; ``None`` = measurements // 4.
        basis: sparsifying basis, ``"dct"`` (paper default) or ``"dst"``
            (the basis-choice ablation).
        penalize_dc: whether the L1 shrinkage (and the auto-``lam``
            heuristic's max) applies to the flat-index-0 coefficient.
            ``None`` (default) resolves by basis: the DCT's index 0 is
            the DC term carrying the landscape mean, so it is exempt;
            the DST has no DC component, so everything is penalized.
        adaptive_restart: enable FISTA's gradient-based momentum
            restart (off by default to match the paper's plain FISTA).
        lipschitz: Lipschitz constant of the measurement operator —
            exactly 1 for a subsampled orthonormal basis.  ``None``
            enables the backtracking line search.
    """

    solver: str = "fista"
    lam: float | None = None
    max_iterations: int = 400
    tolerance: float = 1e-6
    max_atoms: int | None = None
    basis: str = "dct"
    penalize_dc: bool | None = None
    adaptive_restart: bool = False
    lipschitz: float | None = 1.0

    def __post_init__(self) -> None:
        if self.basis not in BASES:
            raise ValueError(f"unknown basis {self.basis!r}; choose from {BASES}")

    def resolved_penalize_dc(self) -> bool:
        """The effective DC-penalty choice (basis-dependent default)."""
        if self.penalize_dc is not None:
            return self.penalize_dc
        return self.basis != "dct"


def reconstruction_operators(
    shape: tuple[int, ...], flat_indices: np.ndarray, basis: str = "dct"
):
    """Build the matrix-free ``A`` and ``A^T`` for a sampled grid.

    Returns:
        ``(forward, adjoint)`` where ``forward`` maps a coefficient
        array of ``shape`` to the sampled values and ``adjoint`` maps a
        sample vector back to coefficient space.
    """
    flat_indices = np.asarray(flat_indices, dtype=int)
    size = int(np.prod(shape))
    if flat_indices.size == 0:
        raise ValueError("need at least one sample index")
    if flat_indices.min() < 0 or flat_indices.max() >= size:
        raise ValueError("sample index out of range for grid shape")

    def forward(coefficients: np.ndarray) -> np.ndarray:
        signal = inverse_transform(coefficients.reshape(shape), basis)
        return signal.reshape(-1)[flat_indices]

    def adjoint(residual: np.ndarray) -> np.ndarray:
        embedded = np.zeros(size)
        embedded[flat_indices] = residual
        return transform(embedded.reshape(shape), basis)

    return forward, adjoint


class _SolverEntry(Protocol):
    def __call__(
        self,
        shape: tuple[int, ...],
        flat_indices: np.ndarray,
        values: np.ndarray,
        config: ReconstructionConfig,
        warm_start: np.ndarray | None,
    ) -> SolverResult: ...


_SOLVER_REGISTRY: dict[str, _SolverEntry] = {}


def register_solver(name: str, solve: _SolverEntry) -> None:
    """Register a named solver backend for :func:`reconstruct_signal`.

    ``solve`` receives ``(shape, flat_indices, values, config,
    warm_start)`` and returns a
    :class:`~repro.cs.solvers.SolverResult` whose coefficients live in
    ``config.basis``.  Registering an existing name replaces it.
    """
    _SOLVER_REGISTRY[name] = solve


def available_solvers() -> tuple[str, ...]:
    """Names accepted by :attr:`ReconstructionConfig.solver`."""
    return tuple(sorted(_SOLVER_REGISTRY))


def reconstruct_signal(
    shape: tuple[int, ...],
    flat_indices: np.ndarray,
    values: np.ndarray,
    config: ReconstructionConfig | None = None,
    warm_start: np.ndarray | None = None,
) -> tuple[np.ndarray, SolverResult]:
    """Recover a full signal from samples at ``flat_indices``.

    Args:
        shape: full grid shape of the signal.
        flat_indices: sampled positions (flat, row-major).
        values: measured signal values at those positions.
        config: solver configuration.
        warm_start: optional initial coefficient array (FISTA only) —
            e.g. the previous solution when re-solving with a grown
            sample set, as the adaptive reconstructor does.

    Returns:
        ``(signal, solver_result)`` — the reconstructed array of
        ``shape`` and the solver diagnostics.
    """
    config = config or ReconstructionConfig()
    flat_indices = np.asarray(flat_indices, dtype=int)
    values = np.asarray(values, dtype=float).reshape(-1)
    if flat_indices.shape[0] != values.shape[0]:
        raise ValueError("indices and values must have matching lengths")
    try:
        solve = _SOLVER_REGISTRY[config.solver]
    except KeyError:
        raise ValueError(
            f"unknown solver {config.solver!r}; "
            f"registered: {available_solvers()}"
        ) from None
    result = solve(shape, flat_indices, values, config, warm_start)
    signal = inverse_transform(result.coefficients.reshape(shape), config.basis)
    return signal, result


def _solve_fista(
    shape: tuple[int, ...],
    flat_indices: np.ndarray,
    values: np.ndarray,
    config: ReconstructionConfig,
    warm_start: np.ndarray | None,
) -> SolverResult:
    """Registry entry: matrix-free FISTA (the landscape-scale default)."""
    forward, adjoint = reconstruction_operators(shape, flat_indices, config.basis)
    return fista_lasso(
        forward,
        adjoint,
        values,
        shape,
        lam=config.lam,
        max_iterations=config.max_iterations,
        tolerance=config.tolerance,
        lipschitz=config.lipschitz,
        penalize_dc=config.resolved_penalize_dc(),
        initial=warm_start,
        adaptive_restart=config.adaptive_restart,
    )


def _solve_omp(
    shape: tuple[int, ...],
    flat_indices: np.ndarray,
    values: np.ndarray,
    config: ReconstructionConfig,
    warm_start: np.ndarray | None,
) -> SolverResult:
    """Registry entry: orthogonal matching pursuit (ablations)."""
    forward, adjoint = reconstruction_operators(shape, flat_indices, config.basis)
    return omp(forward, adjoint, values, shape, max_atoms=config.max_atoms)


def _solve_basis_pursuit(
    shape: tuple[int, ...],
    flat_indices: np.ndarray,
    values: np.ndarray,
    config: ReconstructionConfig,
    warm_start: np.ndarray | None,
) -> SolverResult:
    """Registry entry: dense basis-pursuit LP (small grids only)."""
    if config.basis != "dct":
        raise ValueError("basis pursuit path only supports the DCT basis")
    size = int(np.prod(shape))
    if size > 4096:
        raise ValueError(
            "basis pursuit materialises the dense sensing matrix; "
            f"grid of {size} points is too large (limit 4096)"
        )
    # Dense synthesis matrix for the N-D separable DCT via Kronecker.
    synthesis = np.array([[1.0]])
    for length in shape:
        synthesis = np.kron(synthesis, dct_basis_matrix(length))
    sensing = synthesis[flat_indices, :]
    result = basis_pursuit_linprog(sensing, values)
    return SolverResult(
        result.coefficients.reshape(shape),
        result.iterations,
        result.converged,
        result.objective,
    )


register_solver("fista", _solve_fista)
register_solver("omp", _solve_omp)
register_solver("bp", _solve_basis_pursuit)
