"""Signal reconstruction from partial grid samples.

This module connects the DCT basis and the sparse solvers into the
operation OSCAR performs: given the values of a landscape at a small set
of grid indices, recover the full landscape.

The synthesis operator is the orthonormal inverse DCT; the measurement
operator restricts the synthesised signal to the sampled flat indices.
Because the basis is orthonormal, the adjoint embeds the residual at the
sampled indices and applies the forward DCT — both matrix-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dct import BASES, dct_basis_matrix, inverse_transform, transform
from .solvers import SolverResult, basis_pursuit_linprog, fista_lasso, omp

__all__ = ["ReconstructionConfig", "reconstruct_signal", "reconstruction_operators"]


@dataclass(frozen=True)
class ReconstructionConfig:
    """Knobs of the CS reconstruction.

    Attributes:
        solver: ``"fista"`` (default), ``"omp"`` or ``"bp"``.
        lam: L1 penalty for FISTA; ``None`` = auto heuristic.
        max_iterations: FISTA iteration cap.
        tolerance: FISTA relative-change stopping tolerance.
        max_atoms: OMP atom cap; ``None`` = measurements // 4.
        basis: sparsifying basis, ``"dct"`` (paper default) or ``"dst"``
            (the basis-choice ablation).
    """

    solver: str = "fista"
    lam: float | None = None
    max_iterations: int = 400
    tolerance: float = 1e-6
    max_atoms: int | None = None
    basis: str = "dct"

    def __post_init__(self) -> None:
        if self.basis not in BASES:
            raise ValueError(f"unknown basis {self.basis!r}; choose from {BASES}")


def reconstruction_operators(
    shape: tuple[int, ...], flat_indices: np.ndarray, basis: str = "dct"
):
    """Build the matrix-free ``A`` and ``A^T`` for a sampled grid.

    Returns:
        ``(forward, adjoint)`` where ``forward`` maps a coefficient
        array of ``shape`` to the sampled values and ``adjoint`` maps a
        sample vector back to coefficient space.
    """
    flat_indices = np.asarray(flat_indices, dtype=int)
    size = int(np.prod(shape))
    if flat_indices.size == 0:
        raise ValueError("need at least one sample index")
    if flat_indices.min() < 0 or flat_indices.max() >= size:
        raise ValueError("sample index out of range for grid shape")

    def forward(coefficients: np.ndarray) -> np.ndarray:
        signal = inverse_transform(coefficients.reshape(shape), basis)
        return signal.reshape(-1)[flat_indices]

    def adjoint(residual: np.ndarray) -> np.ndarray:
        embedded = np.zeros(size)
        embedded[flat_indices] = residual
        return transform(embedded.reshape(shape), basis)

    return forward, adjoint


def reconstruct_signal(
    shape: tuple[int, ...],
    flat_indices: np.ndarray,
    values: np.ndarray,
    config: ReconstructionConfig | None = None,
) -> tuple[np.ndarray, SolverResult]:
    """Recover a full signal from samples at ``flat_indices``.

    Args:
        shape: full grid shape of the signal.
        flat_indices: sampled positions (flat, row-major).
        values: measured signal values at those positions.
        config: solver configuration.

    Returns:
        ``(signal, solver_result)`` — the reconstructed array of
        ``shape`` and the solver diagnostics.
    """
    config = config or ReconstructionConfig()
    flat_indices = np.asarray(flat_indices, dtype=int)
    values = np.asarray(values, dtype=float).reshape(-1)
    if flat_indices.shape[0] != values.shape[0]:
        raise ValueError("indices and values must have matching lengths")
    forward, adjoint = reconstruction_operators(shape, flat_indices, config.basis)
    if config.solver == "fista":
        result = fista_lasso(
            forward,
            adjoint,
            values,
            shape,
            lam=config.lam,
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
        )
    elif config.solver == "omp":
        result = omp(
            forward,
            adjoint,
            values,
            shape,
            max_atoms=config.max_atoms,
        )
    elif config.solver == "bp":
        if config.basis != "dct":
            raise ValueError("basis pursuit path only supports the DCT basis")
        result = _solve_basis_pursuit(shape, flat_indices, values)
    else:
        raise ValueError(f"unknown solver {config.solver!r}")
    signal = inverse_transform(result.coefficients.reshape(shape), config.basis)
    return signal, result


def _solve_basis_pursuit(
    shape: tuple[int, ...], flat_indices: np.ndarray, values: np.ndarray
) -> SolverResult:
    """Dense basis-pursuit path (small grids only)."""
    size = int(np.prod(shape))
    if size > 4096:
        raise ValueError(
            "basis pursuit materialises the dense sensing matrix; "
            f"grid of {size} points is too large (limit 4096)"
        )
    # Dense synthesis matrix for the N-D separable DCT via Kronecker.
    synthesis = np.array([[1.0]])
    for length in shape:
        synthesis = np.kron(synthesis, dct_basis_matrix(length))
    sensing = synthesis[flat_indices, :]
    result = basis_pursuit_linprog(sensing, values)
    return SolverResult(
        result.coefficients.reshape(shape),
        result.iterations,
        result.converged,
        result.objective,
    )
