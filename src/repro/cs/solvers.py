"""Sparse-recovery solvers for compressed sensing.

The measurement model is ``y = A s`` where ``A = R . Psi``: ``Psi`` is
the orthonormal (inverse-)DCT synthesis operator and ``R`` restricts the
full signal to the sampled grid indices.  The solvers below recover a
sparse ``s`` from far fewer measurements than unknowns:

- :func:`fista_lasso` — FISTA (accelerated proximal gradient) on the
  Lasso objective ``1/2 ||A s - y||^2 + lam ||s||_1``; the default and
  the only solver used at landscape scale (matrix-free).
- :func:`omp` — Orthogonal Matching Pursuit, greedy column selection;
  exact for very sparse signals, used for ablations.
- :func:`basis_pursuit_linprog` — equality-constrained basis pursuit as
  a linear program (scipy HiGHS); the classical formulation in the
  paper's Eq. 7, practical only for small systems so used in tests and
  ablations.

All operators are passed as callables so no ``n x n`` matrix is formed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import optimize

__all__ = [
    "SolverResult",
    "auto_lambda",
    "fista_lasso",
    "omp",
    "basis_pursuit_linprog",
    "soft_threshold",
]

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SolverResult:
    """Outcome of a sparse-recovery solve.

    Attributes:
        coefficients: recovered sparse coefficient array.
        iterations: iterations actually performed.
        converged: True if the stopping tolerance was met.
        objective: final objective value (solver-specific).
    """

    coefficients: np.ndarray
    iterations: int
    converged: bool
    objective: float


def soft_threshold(values: np.ndarray, threshold: float) -> np.ndarray:
    """Proximal operator of ``threshold * ||.||_1`` (soft shrinkage)."""
    return np.sign(values) * np.maximum(np.abs(values) - threshold, 0.0)


def auto_lambda(
    correlation: np.ndarray, penalize_dc: bool = False, scale_factor: float = 0.01
) -> float:
    """The continuation-free L1-penalty heuristic ``0.01 * ||A^T y||_inf``.

    Under the DCT basis (``penalize_dc=False``) the DC coefficient is
    excluded from the max — it carries the landscape mean and would
    otherwise dominate the scale.  Bases without a DC component (DST)
    must pass ``penalize_dc=True`` so every coefficient participates.
    """
    magnitudes = np.abs(correlation).reshape(-1)
    if penalize_dc or magnitudes.size == 1:
        scale = float(np.max(magnitudes))
    else:
        scale = float(np.max(magnitudes[1:]))
    return scale_factor * scale if scale > 0 else 1e-12


def fista_lasso(
    forward: Operator,
    adjoint: Operator,
    measurements: np.ndarray,
    shape: tuple[int, ...],
    lam: float | None = None,
    max_iterations: int = 400,
    tolerance: float = 1e-6,
    lipschitz: float | None = 1.0,
    penalize_dc: bool = False,
    initial: np.ndarray | None = None,
    adaptive_restart: bool = False,
) -> SolverResult:
    """FISTA on the Lasso objective, matrix-free.

    Args:
        forward: ``A``: coefficient array of ``shape`` -> measurement vector.
        adjoint: ``A^T``: measurement vector -> coefficient array.
        measurements: observed values ``y``.
        shape: coefficient-array shape (the landscape grid shape).
        lam: L1 penalty.  ``None`` selects ``0.01 * ||A^T y||_inf``
            (excluding the DC term under the DCT, see
            :func:`auto_lambda`), a standard continuation-free heuristic
            that tracks the measurement scale.
        max_iterations: iteration cap.
        tolerance: relative-change stopping tolerance on the iterate.
        lipschitz: Lipschitz constant of ``A^T A`` — exactly 1 for a
            subsampled orthonormal basis, the common case.  Pass
            ``None`` when the constant is unknown to enable a
            backtracking line search on the step size.
        penalize_dc: if False (default) the DC (all-zeros index)
            coefficient is not shrunk; landscapes have a large mean and
            shrinking it biases the reconstruction down.  Must be True
            for bases without a DC component (DST).
        initial: warm-start coefficients of ``shape`` (default zeros).
            Repeated solves over growing sample sets converge in far
            fewer iterations when seeded with the previous solution.
        adaptive_restart: enable the gradient-based momentum restart of
            O'Donoghue & Candes — whenever the momentum direction
            opposes the descent direction, the momentum weight resets,
            avoiding FISTA's characteristic convergence ripples.
    """
    measurements = np.asarray(measurements, dtype=float).reshape(-1)
    if lam is None:
        lam = auto_lambda(adjoint(measurements), penalize_dc)
    backtracking = lipschitz is None
    step = 1.0 if backtracking else 1.0 / lipschitz
    if initial is None:
        coefficients = np.zeros(shape)
    else:
        coefficients = np.array(initial, dtype=float).reshape(shape)
    momentum = coefficients.copy()
    t_previous = 1.0
    converged = False
    iteration = 0
    dc_index = (0,) * len(shape)
    for iteration in range(1, max_iterations + 1):
        residual = forward(momentum) - measurements
        gradient = adjoint(residual)
        while True:
            candidate = momentum - step * gradient
            updated = soft_threshold(candidate, lam * step)
            if not penalize_dc:
                updated[dc_index] = candidate[dc_index]
            if not backtracking:
                break
            # Sufficient-decrease check: shrink the step until the
            # quadratic model at `momentum` upper-bounds f(updated).
            new_residual = forward(updated) - measurements
            difference = updated - momentum
            quadratic = (
                0.5 * float(residual @ residual)
                + float(np.sum(gradient * difference))
                + 0.5 / step * float(np.sum(difference * difference))
            )
            if 0.5 * float(new_residual @ new_residual) <= quadratic + 1e-12:
                break
            step *= 0.5
        if adaptive_restart and float(
            np.sum((momentum - updated) * (updated - coefficients))
        ) > 0.0:
            t_previous = 1.0
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_previous**2))
        momentum = updated + ((t_previous - 1.0) / t_next) * (updated - coefficients)
        change = np.linalg.norm(updated - coefficients)
        reference = max(np.linalg.norm(coefficients), 1e-12)
        coefficients = updated
        t_previous = t_next
        if change / reference < tolerance:
            converged = True
            break
    final_residual = forward(coefficients) - measurements
    objective = 0.5 * float(final_residual @ final_residual) + lam * float(
        np.abs(coefficients).sum()
    )
    return SolverResult(coefficients, iteration, converged, objective)


def omp(
    forward: Operator,
    adjoint: Operator,
    measurements: np.ndarray,
    shape: tuple[int, ...],
    max_atoms: int | None = None,
    residual_tolerance: float = 1e-8,
) -> SolverResult:
    """Orthogonal Matching Pursuit, matrix-free column generation.

    Greedily selects the coefficient most correlated with the residual,
    then re-fits all selected coefficients by least squares.  Columns of
    ``A`` are generated on demand by pushing unit coefficient arrays
    through ``forward``.
    """
    measurements = np.asarray(measurements, dtype=float).reshape(-1)
    size = int(np.prod(shape))
    if max_atoms is None:
        max_atoms = max(1, measurements.size // 4)
    max_atoms = min(max_atoms, measurements.size, size)
    selected: list[int] = []
    columns: list[np.ndarray] = []
    residual = measurements.copy()
    solution = np.zeros(0)
    initial_norm = max(float(np.linalg.norm(measurements)), 1e-300)
    converged = False
    iteration = 0
    for iteration in range(1, max_atoms + 1):
        correlation = adjoint(residual).reshape(-1)
        correlation[selected] = 0.0
        best = int(np.argmax(np.abs(correlation)))
        if abs(correlation[best]) < 1e-14:
            converged = True
            break
        selected.append(best)
        unit = np.zeros(size)
        unit[best] = 1.0
        columns.append(forward(unit.reshape(shape)))
        matrix = np.stack(columns, axis=1)
        solution, *_ = np.linalg.lstsq(matrix, measurements, rcond=None)
        residual = measurements - matrix @ solution
        if np.linalg.norm(residual) / initial_norm < residual_tolerance:
            converged = True
            break
    coefficients = np.zeros(size)
    if selected:
        coefficients[selected] = solution
    return SolverResult(
        coefficients.reshape(shape),
        iteration,
        converged,
        float(np.linalg.norm(residual)),
    )


def basis_pursuit_linprog(
    sensing_matrix: np.ndarray,
    measurements: np.ndarray,
) -> SolverResult:
    """Equality-constrained basis pursuit ``min ||s||_1 s.t. As = y``.

    Standard LP lift: write ``s = u - v`` with ``u, v >= 0`` and
    minimise ``1^T (u + v)``.  Requires the dense sensing matrix, so
    this is for small problems (tests, ablations).
    """
    sensing_matrix = np.asarray(sensing_matrix, dtype=float)
    measurements = np.asarray(measurements, dtype=float).reshape(-1)
    m, n = sensing_matrix.shape
    if measurements.shape[0] != m:
        raise ValueError("measurement length does not match sensing matrix")
    cost = np.ones(2 * n)
    equality = np.hstack([sensing_matrix, -sensing_matrix])
    outcome = optimize.linprog(
        cost,
        A_eq=equality,
        b_eq=measurements,
        bounds=[(0, None)] * (2 * n),
        method="highs",
    )
    if not outcome.success:
        return SolverResult(np.zeros(n), 0, False, float("inf"))
    solution = outcome.x[:n] - outcome.x[n:]
    return SolverResult(
        solution, int(outcome.nit), True, float(np.abs(solution).sum())
    )
