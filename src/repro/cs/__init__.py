"""Compressed-sensing core: DCT basis, sparse solvers, reconstruction.

- :mod:`~repro.cs.dct` — orthonormal DCT transforms and sparsity metrics,
- :mod:`~repro.cs.solvers` — FISTA-Lasso, OMP, basis-pursuit LP,
- :mod:`~repro.cs.sampling` — random/stratified grid samplers,
- :mod:`~repro.cs.reconstruct` — partial-sample signal recovery and the
  solver registry,
- :mod:`~repro.cs.engine` — the batched multi-landscape reconstruction
  engine (one vectorized FISTA loop over a stack of problems).
"""

from .dct import (
    BASES,
    dct_basis_matrix,
    dct_transform,
    dst_transform,
    energy_fraction_coefficients,
    idct_transform,
    idst_transform,
    inverse_transform,
    sparsity_fraction_for_energy,
    transform,
)
from .engine import ReconstructionEngine, reconstruct_signals
from .reconstruct import (
    ReconstructionConfig,
    available_solvers,
    reconstruct_signal,
    reconstruction_operators,
    register_solver,
)
from .sampling import (
    flat_to_grid_indices,
    sample_count_for_fraction,
    stratified_indices,
    uniform_random_indices,
)
from .solvers import (
    SolverResult,
    auto_lambda,
    basis_pursuit_linprog,
    fista_lasso,
    omp,
    soft_threshold,
)

__all__ = [
    "BASES",
    "dct_basis_matrix",
    "dct_transform",
    "dst_transform",
    "idst_transform",
    "inverse_transform",
    "transform",
    "energy_fraction_coefficients",
    "idct_transform",
    "sparsity_fraction_for_energy",
    "ReconstructionConfig",
    "ReconstructionEngine",
    "available_solvers",
    "reconstruct_signal",
    "reconstruct_signals",
    "reconstruction_operators",
    "register_solver",
    "flat_to_grid_indices",
    "sample_count_for_fraction",
    "stratified_indices",
    "uniform_random_indices",
    "SolverResult",
    "auto_lambda",
    "basis_pursuit_linprog",
    "fista_lasso",
    "omp",
    "soft_threshold",
]
