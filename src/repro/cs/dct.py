"""Orthonormal DCT basis operations.

OSCAR reconstructs landscapes in the type-II Discrete Cosine Transform
basis (Appendix A of the paper): a landscape ``x`` is modelled as
``x = idct(s)`` with sparse coefficients ``s``.  All transforms here use
``norm="ortho"`` so the basis is orthonormal — the adjoint of the
synthesis operator is exactly the forward DCT, which the L1 solvers rely
on for their gradient steps.

Functions operate on N-dimensional arrays via :func:`scipy.fft.dctn`,
so 1-D signals, 2-D landscapes and the reshaped 4-D p=2 landscapes all
go through the same code path.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as _fft

__all__ = [
    "dct_transform",
    "idct_transform",
    "dst_transform",
    "idst_transform",
    "transform",
    "inverse_transform",
    "dct_basis_matrix",
    "energy_fraction_coefficients",
    "sparsity_fraction_for_energy",
    "BASES",
]

BASES = ("dct", "dst")


def dct_transform(
    values: np.ndarray, axes: tuple[int, ...] | None = None
) -> np.ndarray:
    """Forward orthonormal DCT-II over every axis (or a subset).

    ``axes`` restricts the transform to the given axes — the batched
    reconstruction engine transforms a ``(B, *shape)`` stack over the
    trailing axes only, leaving the problem axis untouched.
    """
    return _fft.dctn(np.asarray(values, dtype=float), norm="ortho", axes=axes)


def idct_transform(
    coefficients: np.ndarray, axes: tuple[int, ...] | None = None
) -> np.ndarray:
    """Inverse orthonormal DCT (synthesis: coefficients -> signal)."""
    return _fft.idctn(np.asarray(coefficients, dtype=float), norm="ortho", axes=axes)


def dst_transform(
    values: np.ndarray, axes: tuple[int, ...] | None = None
) -> np.ndarray:
    """Forward orthonormal DST-II (the basis-choice ablation).

    The sine basis implies odd (zero) boundary extension, which VQA
    landscapes do not satisfy — the ablation benchmark quantifies the
    resulting penalty versus the DCT's even extension.
    """
    return _fft.dstn(np.asarray(values, dtype=float), norm="ortho", axes=axes)


def idst_transform(
    coefficients: np.ndarray, axes: tuple[int, ...] | None = None
) -> np.ndarray:
    """Inverse orthonormal DST (synthesis)."""
    return _fft.idstn(np.asarray(coefficients, dtype=float), norm="ortho", axes=axes)


def transform(
    values: np.ndarray, basis: str = "dct", axes: tuple[int, ...] | None = None
) -> np.ndarray:
    """Forward transform in a named orthonormal basis."""
    if basis == "dct":
        return dct_transform(values, axes)
    if basis == "dst":
        return dst_transform(values, axes)
    raise ValueError(f"unknown basis {basis!r}; choose from {BASES}")


def inverse_transform(
    coefficients: np.ndarray, basis: str = "dct", axes: tuple[int, ...] | None = None
) -> np.ndarray:
    """Inverse transform in a named orthonormal basis."""
    if basis == "dct":
        return idct_transform(coefficients, axes)
    if basis == "dst":
        return idst_transform(coefficients, axes)
    raise ValueError(f"unknown basis {basis!r}; choose from {BASES}")


def dct_basis_matrix(length: int) -> np.ndarray:
    """Dense 1-D orthonormal DCT-II synthesis matrix ``Psi``.

    Column ``k`` is the k-th cosine basis vector, so ``x = Psi @ s``.
    Used by the basis-pursuit linear program and by tests; the iterative
    solvers never materialise it.
    """
    identity = np.eye(length)
    return np.stack(
        [_fft.idct(identity[:, k], norm="ortho") for k in range(length)], axis=1
    )


def energy_fraction_coefficients(values: np.ndarray, fraction: float = 0.99) -> int:
    """Minimum number of DCT coefficients holding ``fraction`` of energy.

    This is the paper's Table 4 statistic: sort squared DCT coefficients
    in decreasing order and count how many are needed to reach the given
    fraction of the total squared norm.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    coefficients = dct_transform(values).reshape(-1)
    energy = np.sort(coefficients**2)[::-1]
    total = energy.sum()
    if total == 0.0:
        return 0
    cumulative = np.cumsum(energy) / total
    return int(np.searchsorted(cumulative, fraction) + 1)


def sparsity_fraction_for_energy(values: np.ndarray, fraction: float = 0.99) -> float:
    """Table 4's reported quantity: coefficient count / signal size."""
    values = np.asarray(values)
    count = energy_fraction_coefficients(values, fraction)
    return count / values.size
