"""Batched multi-landscape reconstruction engine.

Every experiment in the suite reconstructs *many* landscapes — one per
problem instance, sampling fraction, device pair or mitigation setting —
and the serial path pays the full FISTA iteration overhead (two FFTs
plus Python dispatch per iteration) for each one.
:class:`ReconstructionEngine` amortises that cost: it stacks B
coefficient arrays along a leading axis and runs a **single** vectorized
FISTA loop, evaluating ``scipy.fft.dctn`` over the trailing axes of the
whole ``(B, *shape)`` stack at once.

Key properties:

- **Exact per-problem semantics.**  Each stacked problem performs the
  same iterates, the same auto-``lam`` heuristic and the same stopping
  test as :func:`~repro.cs.reconstruct.reconstruct_signal`, so batched
  and serial results agree to floating-point noise.
- **Convergence masks.**  Problems converge independently; finished
  rows are compacted out of the working stack so they stop contributing
  FFT work while the stragglers iterate on.
- **Warm starts.**  Per-problem initial coefficients (e.g. the previous
  solution when re-solving with a grown sample set) cut iteration
  counts dramatically for repeated solves.
- **Graceful fallback.**  Non-FISTA solvers ("omp", "bp") and the
  backtracking line-search mode (``lipschitz=None``) have no batched
  formulation; the engine transparently solves those problems serially
  so callers can always batch.

The per-sample measurement operator is expressed densely per problem:
the measured values are embedded into a zero grid (``targets``) with a
boolean support mask (``masks``), which makes the forward/adjoint pair
uniform across problems with different sample counts — the whole stack
is just ``mask * idctn(coeffs) - target`` followed by ``dctn``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .dct import inverse_transform, transform
from .reconstruct import (
    _SOLVER_REGISTRY,
    _solve_fista,
    ReconstructionConfig,
    reconstruct_signal,
    validate_sample_set,
)
from .solvers import SolverResult, auto_lambda

__all__ = ["ReconstructionEngine", "reconstruct_signals"]


class ReconstructionEngine:
    """Reconstructs a stack of landscapes in one vectorized solve.

    Attributes:
        shape: the (reshaped 2-D) grid shape every stacked problem
            shares.
        config: the reconstruction configuration applied to every
            problem in the stack.
    """

    def __init__(
        self, shape: tuple[int, ...], config: ReconstructionConfig | None = None
    ):
        self.shape = tuple(int(n) for n in shape)
        if any(n < 1 for n in self.shape):
            raise ValueError(f"invalid grid shape {shape!r}")
        self.size = int(np.prod(self.shape))
        self.config = config or ReconstructionConfig()

    # -- validation ----------------------------------------------------------

    def _validated(
        self, problems: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Normalise and validate every (indices, values) problem."""
        return [
            validate_sample_set(
                self.size, flat_indices, values, context=f"problem {position}"
            )
            for position, (flat_indices, values) in enumerate(problems)
        ]

    # -- solving ---------------------------------------------------------------

    def solve(
        self,
        problems: Sequence[tuple[np.ndarray, np.ndarray]],
        warm_starts: Sequence[np.ndarray | None] | None = None,
    ) -> list[tuple[np.ndarray, SolverResult]]:
        """Reconstruct every ``(flat_indices, values)`` problem.

        Args:
            problems: per-landscape sample sets; sample counts may
                differ between problems.
            warm_starts: optional per-problem initial coefficient
                arrays (``None`` entries start from zeros).

        Returns:
            One ``(signal, solver_result)`` pair per problem, in input
            order — the same contract as
            :func:`~repro.cs.reconstruct.reconstruct_signal`.
        """
        problems = self._validated(problems)
        if warm_starts is not None and len(warm_starts) != len(problems):
            raise ValueError("need one warm start (or None) per problem")
        if not problems:
            return []
        # The batched loop replicates the *built-in* FISTA exactly; a
        # registry override of "fista", a non-FISTA solver, or the
        # backtracking mode (lipschitz=None) all route serially.
        if (
            self.config.solver != "fista"
            or self.config.lipschitz is None
            or _SOLVER_REGISTRY.get("fista") is not _solve_fista
        ):
            return self._solve_serial(problems, warm_starts)
        coefficients, iterations, converged, lambdas = self._solve_batched_fista(
            problems, warm_starts
        )
        axes = tuple(range(1, len(self.shape) + 1))
        signals = inverse_transform(coefficients, self.config.basis, axes)
        results = self._results(
            coefficients, signals, iterations, converged, lambdas, problems
        )
        return [
            (signals[index], results[index]) for index in range(len(problems))
        ]

    def _solve_serial(
        self,
        problems: list[tuple[np.ndarray, np.ndarray]],
        warm_starts: Sequence[np.ndarray | None] | None,
    ) -> list[tuple[np.ndarray, SolverResult]]:
        """Fallback for solvers with no batched formulation (omp, bp,
        or FISTA with a backtracking line search)."""
        output = []
        for position, (flat_indices, values) in enumerate(problems):
            warm = warm_starts[position] if warm_starts is not None else None
            output.append(
                reconstruct_signal(self.shape, flat_indices, values, self.config, warm)
            )
        return output

    # -- the batched FISTA loop --------------------------------------------------

    def _embed(
        self, problems: list[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(targets, masks)`` stacks for the measurement model.

        Masks are float (1.0 on the sampled support) so the restriction
        operator is a single in-place multiply in the hot loop.
        """
        batch = len(problems)
        targets = np.zeros((batch, self.size))
        masks = np.zeros((batch, self.size))
        for row, (flat_indices, values) in enumerate(problems):
            targets[row, flat_indices] = values
            masks[row, flat_indices] = 1.0
        return (
            targets.reshape((batch, *self.shape)),
            masks.reshape((batch, *self.shape)),
        )

    def _lambdas(self, targets: np.ndarray) -> np.ndarray:
        """Per-problem L1 penalties (the serial auto heuristic, rowwise)."""
        batch = targets.shape[0]
        if self.config.lam is not None:
            return np.full(batch, float(self.config.lam))
        axes = tuple(range(1, len(self.shape) + 1))
        # adjoint(y) == transform of the embedded measurements.
        correlation = transform(targets, self.config.basis, axes)
        return np.array(
            [
                auto_lambda(correlation[row], self.config.resolved_penalize_dc())
                for row in range(batch)
            ]
        )

    def _solve_batched_fista(
        self,
        problems: list[tuple[np.ndarray, np.ndarray]],
        warm_starts: Sequence[np.ndarray | None] | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One vectorized FISTA loop over the whole problem stack.

        Returns ``(coefficients, iterations, converged, lambdas)`` —
        the final ``(B, *shape)`` coefficient stack plus per-problem
        diagnostics, all in input order.
        """
        config = self.config
        batch = len(problems)
        ndim = len(self.shape)
        axes = tuple(range(1, ndim + 1))
        column = (slice(None),) + (np.newaxis,) * ndim  # (A,) -> (A, 1, ..., 1)
        penalize_dc = config.resolved_penalize_dc()
        step = 1.0 / config.lipschitz

        targets, masks = self._embed(problems)
        lambdas = self._lambdas(targets)
        all_lambdas = lambdas.copy()

        coefficients = np.zeros((batch, *self.shape))
        if warm_starts is not None:
            for row, warm in enumerate(warm_starts):
                if warm is not None:
                    coefficients[row] = np.asarray(warm, dtype=float).reshape(
                        self.shape
                    )
        momentum = coefficients.copy()
        t_previous = np.ones(batch)

        # Final outputs, filled in as rows converge and leave the stack.
        final = coefficients.copy()
        iterations = np.zeros(batch, dtype=int)
        converged = np.zeros(batch, dtype=bool)

        # The working stack holds only still-active problems; `rows`
        # maps working positions back to input positions.
        rows = np.arange(batch)

        # The iterates below mirror fista_lasso exactly but run the
        # whole active stack through each numpy call, buffer-reusing to
        # keep per-iteration allocations to four (B, *shape) arrays.
        for iteration in range(1, config.max_iterations + 1):
            active = rows.size
            residual = inverse_transform(momentum, config.basis, axes)
            residual *= masks
            residual -= targets
            candidate = transform(residual, config.basis, axes)
            candidate *= -step
            candidate += momentum
            if not penalize_dc:
                dc_values = candidate.reshape(active, -1)[:, 0].copy()
            updated = np.abs(candidate)
            updated -= (lambdas * step)[column]
            np.maximum(updated, 0.0, out=updated)
            np.copysign(updated, candidate, out=updated)
            if not penalize_dc:
                updated.reshape(active, -1)[:, 0] = dc_values
            if config.adaptive_restart:
                flat_momentum = momentum.reshape(active, -1)
                flat_updated = updated.reshape(active, -1)
                flat_previous = coefficients.reshape(active, -1)
                alignment = np.einsum(
                    "ab,ab->a", flat_momentum - flat_updated,
                    flat_updated - flat_previous,
                )
                t_previous[alignment > 0.0] = 1.0
            t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t_previous**2))
            difference = updated - coefficients
            flat_difference = difference.reshape(active, -1)
            flat_coefficients = coefficients.reshape(active, -1)
            change = np.sqrt(
                np.einsum("ab,ab->a", flat_difference, flat_difference)
            )
            reference = np.maximum(
                np.sqrt(
                    np.einsum("ab,ab->a", flat_coefficients, flat_coefficients)
                ),
                1e-12,
            )
            momentum = difference
            momentum *= ((t_previous - 1.0) / t_next)[column]
            momentum += updated
            coefficients = updated
            t_previous = t_next
            iterations[rows] = iteration
            done = change / reference < config.tolerance
            if np.any(done):
                finished = rows[done]
                final[finished] = coefficients[done]
                converged[finished] = True
                keep = ~done
                rows = rows[keep]
                if not rows.size:
                    break
                coefficients = coefficients[keep]
                momentum = momentum[keep]
                targets = targets[keep]
                masks = masks[keep]
                lambdas = lambdas[keep]
                t_previous = t_previous[keep]
        if rows.size:
            final[rows] = coefficients
        return final, iterations, converged, all_lambdas

    def _results(
        self,
        coefficients: np.ndarray,
        signals: np.ndarray,
        iterations: np.ndarray,
        converged: np.ndarray,
        lambdas: np.ndarray,
        problems: list[tuple[np.ndarray, np.ndarray]],
    ) -> list[SolverResult]:
        """Per-problem diagnostics matching the serial SolverResult."""
        flat_signals = signals.reshape(len(problems), -1)
        results = []
        for row, (flat_indices, values) in enumerate(problems):
            residual = flat_signals[row, flat_indices] - values
            objective = 0.5 * float(residual @ residual) + float(
                lambdas[row]
            ) * float(np.abs(coefficients[row]).sum())
            results.append(
                SolverResult(
                    coefficients[row],
                    int(iterations[row]),
                    bool(converged[row]),
                    objective,
                )
            )
        return results


def reconstruct_signals(
    shape: tuple[int, ...],
    problems: Sequence[tuple[np.ndarray, np.ndarray]],
    config: ReconstructionConfig | None = None,
    warm_starts: Sequence[np.ndarray | None] | None = None,
) -> list[tuple[np.ndarray, SolverResult]]:
    """Batched counterpart of :func:`~repro.cs.reconstruct.reconstruct_signal`.

    Convenience wrapper constructing a one-shot
    :class:`ReconstructionEngine`; prefer holding an engine instance
    when solving several stacks over the same grid.
    """
    return ReconstructionEngine(shape, config).solve(problems, warm_starts)
