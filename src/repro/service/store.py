"""Content-addressed on-disk landscape store.

A generated :class:`~repro.landscape.landscape.Landscape` is a pure
function of *what* was executed: the ansatz and problem content, the
grid, the noise model, the shot budget and mitigation config, and — for
shot-noise landscapes — the rng plan (root seed + shard layout).
:class:`LandscapeSpec` captures exactly that as a canonical, JSON-able
payload; its deterministic serialization is hashed into the cache key,
so two processes that describe the same experiment derive the same key
and share the same artifact.

Store layout (one directory, two files per entry)::

    <root>/
        <key>.npz    # Landscape.save payload (values + axes + metadata)
        <key>.json   # manifest: spec payload, label, sizes, access stamp

The manifest keeps the full spec next to the payload so entries are
self-describing (``oscar-repro cache list`` prints them).  Eviction is
LRU over a byte budget: every read bumps a monotonically increasing
access stamp (persisted in the manifest, so recency survives process
restarts), and :meth:`LandscapeStore.put` drops the least recently used
entries until the store fits ``max_bytes`` again.  The entry being
written is exempt, so a single landscape larger than the budget still
caches.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..landscape.grid import ParameterGrid
from ..landscape.landscape import Landscape

__all__ = ["LandscapeSpec", "LandscapeStore", "StoreEntry", "TenantStores"]

#: Hex characters of the sha256 digest used as the cache key (128 bits:
#: collision-safe for any realistic store size, short enough for ls).
_KEY_HEX = 32


def _canonical(value: Any) -> Any:
    """Normalize a spec payload fragment for deterministic hashing.

    Numbers are canonicalized (bools stay bools, integral floats stay
    floats — ``2.0`` and ``2`` are *different* content), sequences become
    lists, mappings keep string keys.  Anything else is rejected so a
    non-serializable object can never silently weaken the cache key.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, Mapping):
        out = {}
        for key in value:
            if not isinstance(key, str):
                raise TypeError(f"spec mapping keys must be str, got {key!r}")
            out[key] = _canonical(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    # numpy scalars quack like their python twins.
    if hasattr(value, "item"):
        return _canonical(value.item())
    raise TypeError(f"spec payloads must be JSON-able, got {type(value).__name__}")


@dataclass(frozen=True)
class LandscapeSpec:
    """Canonical description of one landscape-generation request.

    Attributes:
        ansatz: content description of the bound cost function — ansatz
            class, structural parameters, and the full problem content
            (couplings / Pauli terms), as produced by
            :meth:`repro.ansatz.base.Ansatz.cache_spec`.  For mitigated
            cost functions this nests the mitigation config too (see
            ``ZneCostFunction.cache_spec``).
        grid: one ``{name, low, high, num_points}`` mapping per axis.
        shots: per-query measurement shots (``None`` = exact).
        execution: the rng plan for shot-noise landscapes —
            ``{"seed": int, "shard_points": int}`` (the effective shard
            layout) — because sampled values depend on it.  ``None``
            for exact landscapes, whose values
            are execution-plan independent (the same key is shared by
            any worker count or shard layout).

    Two specs with the same content resolve to the same key no matter
    which process (or machine) derived them::

        >>> from repro.landscape import qaoa_grid
        >>> from repro.service import LandscapeSpec
        >>> grid = qaoa_grid(p=1, resolution=(4, 8))
        >>> content = {"kind": "demo", "couplings": [[0, 1, 1.0]]}
        >>> first = LandscapeSpec.from_parts(content, grid)
        >>> second = LandscapeSpec.from_parts(dict(content), grid)
        >>> first.key() == second.key()
        True
        >>> first.key() == LandscapeSpec.from_parts(content, grid, shots=100).key()
        False
    """

    ansatz: Mapping[str, Any]
    grid: tuple[Mapping[str, Any], ...]
    shots: int | None = None
    execution: Mapping[str, Any] | None = None

    @classmethod
    def from_parts(
        cls,
        function_spec: Mapping[str, Any],
        grid: ParameterGrid,
        shots: int | None = None,
        execution: Mapping[str, Any] | None = None,
    ) -> "LandscapeSpec":
        """Assemble a spec from a cost-function description and a grid."""
        axes = tuple(
            {
                "name": axis.name,
                "low": float(axis.low),
                "high": float(axis.high),
                "num_points": int(axis.num_points),
            }
            for axis in grid.axes
        )
        return cls(
            ansatz=dict(function_spec),
            grid=axes,
            shots=None if shots is None else int(shots),
            execution=None if execution is None else dict(execution),
        )

    def payload(self) -> dict[str, Any]:
        """The canonical nested payload (what gets serialized + hashed)."""
        return _canonical(
            {
                "ansatz": self.ansatz,
                "grid": list(self.grid),
                "shots": self.shots,
                "execution": self.execution,
            }
        )

    def canonical_json(self) -> str:
        """Deterministic serialization: sorted keys, no whitespace.

        ``json.dumps`` with ``sort_keys`` is stable across processes and
        platforms (float repr is exact shortest-roundtrip in Python 3),
        which is what makes the derived key content-addressed rather
        than process-addressed.
        """
        return json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    def key(self) -> str:
        """The content-addressed cache key (truncated sha256 hex)."""
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:_KEY_HEX]


@dataclass(frozen=True)
class StoreEntry:
    """One cached landscape as listed by :meth:`LandscapeStore.entries`."""

    key: str
    label: str
    payload_bytes: int
    access: int
    created: float
    spec_payload: Mapping[str, Any]
    path: Path


class LandscapeStore:
    """Size-bounded, content-addressed cache of generated landscapes.

    Args:
        root: directory holding the payloads and manifests (created on
            first use, parents included).
        max_bytes: LRU byte budget over the ``.npz`` payloads; ``None``
            means unbounded.

    The instance counts :attr:`hits` and :attr:`misses` across
    :meth:`get_or_compute` calls so callers (benchmarks, the CLI) can
    report cache effectiveness.

    Example — the second identical request is a file load, not a
    recompute::

        >>> import tempfile
        >>> from repro.ansatz import QaoaAnsatz
        >>> from repro.landscape import LandscapeGenerator, cost_function, qaoa_grid
        >>> from repro.problems import random_3_regular_maxcut
        >>> from repro.service import LandscapeStore
        >>> ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1)
        >>> root = tempfile.mkdtemp()
        >>> store = LandscapeStore(root)
        >>> generator = LandscapeGenerator(
        ...     cost_function(ansatz), qaoa_grid(p=1, resolution=(4, 8)), store=store
        ... )
        >>> first = generator.grid_search()    # miss: computes + persists
        >>> second = generator.grid_search()   # hit: loads the artifact
        >>> (store.hits, store.misses)
        (1, 1)
        >>> bool((first.values == second.values).all())
        True
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0

    # -- key/path plumbing -------------------------------------------------

    @staticmethod
    def key_for(spec: LandscapeSpec) -> str:
        """The cache key a spec resolves to."""
        return spec.key()

    def _payload_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def _manifest_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    @staticmethod
    def _resolve_key(spec_or_key: LandscapeSpec | str) -> str:
        if isinstance(spec_or_key, LandscapeSpec):
            return spec_or_key.key()
        return str(spec_or_key)

    def _read_manifest(self, path: Path) -> dict[str, Any] | None:
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _write_atomic(self, path: Path, writer: Callable[[Path], None]) -> None:
        """Write through a same-suffix temp file + ``os.replace``.

        Readers race writers in a shared store; rename is atomic on
        POSIX, so they see either the old or the new artifact, never a
        truncated one.  The temp name keeps the real suffix because
        ``np.savez`` appends ``.npz`` to anything else.
        """
        temp = path.with_name(f"{path.stem}.tmp-{os.getpid()}{path.suffix}")
        try:
            writer(temp)
            os.replace(temp, path)
        finally:
            temp.unlink(missing_ok=True)

    def _next_access_stamp(self) -> int:
        """Monotone LRU stamp from an O(1) counter file.

        The read-modify-write runs under an advisory ``flock`` on a
        sidecar lock file where the platform provides one, so
        concurrent processes never hand out duplicate stamps (which
        would let eviction's tie-break drop a just-read entry).  Falls
        back to a manifest scan when the counter is missing or damaged
        (hand-pruned store), so recency never resets to zero.
        """
        counter_path = self.root / "_counter.json"

        def bump() -> int:
            try:
                stamp = int(json.loads(counter_path.read_text())["next"])
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                stamps = [entry.access for entry in self.entries()]
                stamp = (max(stamps) + 1) if stamps else 1
            self._write_atomic(
                counter_path,
                lambda path: path.write_text(json.dumps({"next": stamp + 1})),
            )
            return stamp

        try:
            import fcntl
        except ImportError:  # non-POSIX: unlocked last-writer-wins
            return bump()
        with open(self.root / "_counter.lock", "a+") as lock_file:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            try:
                return bump()
            finally:
                fcntl.flock(lock_file, fcntl.LOCK_UN)

    # -- core operations ---------------------------------------------------

    def contains(self, spec_or_key: LandscapeSpec | str) -> bool:
        """Whether both payload and manifest exist for the key."""
        key = self._resolve_key(spec_or_key)
        return self._payload_path(key).exists() and self._manifest_path(key).exists()

    def get(self, spec_or_key: LandscapeSpec | str) -> Landscape | None:
        """Load a cached landscape (bumping its LRU stamp), or ``None``.

        Any read failure — a concurrent writer or eviction racing this
        load, a damaged payload — degrades to a cache miss rather than
        an exception, so the caller simply recomputes.
        """
        key = self._resolve_key(spec_or_key)
        if not self.contains(key):
            return None
        manifest = self._read_manifest(self._manifest_path(key))
        if manifest is None:
            return None
        try:
            landscape = Landscape.load(self._payload_path(key))
        except Exception:
            return None
        manifest["access"] = self._next_access_stamp()
        self._write_atomic(
            self._manifest_path(key),
            lambda path: path.write_text(json.dumps(manifest, indent=1)),
        )
        return landscape

    def put(self, spec: LandscapeSpec, landscape: Landscape) -> str:
        """Cache a landscape under its spec's key; returns the key.

        Payload and manifest are written atomically (temp + rename), so
        concurrent readers never observe a truncated artifact.  Evicts
        least-recently-used entries afterwards if the store exceeds
        ``max_bytes`` (the entry just written is exempt).
        """
        key = spec.key()
        payload_path = self._payload_path(key)
        self._write_atomic(payload_path, landscape.save)
        manifest = {
            "key": key,
            "spec": spec.payload(),
            "label": landscape.label,
            "circuit_executions": int(landscape.circuit_executions),
            "payload_bytes": payload_path.stat().st_size,
            "access": self._next_access_stamp(),
            "created": time.time(),
        }
        self._write_atomic(
            self._manifest_path(key),
            lambda path: path.write_text(json.dumps(manifest, indent=1)),
        )
        self._evict(exempt=key)
        return key

    def get_or_compute(
        self, spec: LandscapeSpec, compute: Callable[[], Landscape]
    ) -> Landscape:
        """The service path: return the cached landscape or compute+cache.

        ``compute`` is only invoked on a miss; its result is persisted
        before being returned, so the next identical spec is a pure
        file load.
        """
        cached = self.get(spec)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        landscape = compute()
        self.put(spec, landscape)
        return landscape

    # -- maintenance -------------------------------------------------------

    def invalidate(self, spec_or_key: LandscapeSpec | str) -> bool:
        """Drop one entry; returns whether anything was removed."""
        key = self._resolve_key(spec_or_key)
        removed = False
        for path in (self._payload_path(key), self._manifest_path(key)):
            if path.exists():
                path.unlink()
                removed = True
        return removed

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        keys = [entry.key for entry in self.entries()]
        for key in keys:
            self.invalidate(key)
        return len(keys)

    def entries(self) -> list[StoreEntry]:
        """All cached entries, least recently used first."""
        out = []
        for manifest_path in sorted(self.root.glob("*.json")):
            if ".tmp-" in manifest_path.name or manifest_path.name.startswith("_"):
                continue  # in-flight writes and the access counter
            manifest = self._read_manifest(manifest_path)
            if manifest is None or "key" not in manifest:
                continue
            key = str(manifest["key"])
            payload_path = self._payload_path(key)
            if not payload_path.exists():
                continue
            out.append(
                StoreEntry(
                    key=key,
                    label=str(manifest.get("label", "")),
                    payload_bytes=int(manifest.get("payload_bytes", 0)),
                    access=int(manifest.get("access", 0)),
                    created=float(manifest.get("created", 0.0)),
                    spec_payload=manifest.get("spec", {}),
                    path=payload_path,
                )
            )
        out.sort(key=lambda entry: entry.access)
        return out

    def total_bytes(self) -> int:
        """Total payload bytes currently cached."""
        return sum(entry.payload_bytes for entry in self.entries())

    def stats(self) -> dict[str, Any]:
        """A JSON-able summary of the store (for ``cache stats`` / the
        daemon's ``stats`` op): root, entry count, payload bytes, byte
        budget, and this instance's hit/miss counters."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "payload_bytes": sum(entry.payload_bytes for entry in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def _evict(self, exempt: str) -> None:
        if self.max_bytes is None:
            return
        entries = self.entries()
        total = sum(entry.payload_bytes for entry in entries)
        for entry in entries:  # least recently used first
            if total <= self.max_bytes:
                break
            if entry.key == exempt:
                continue
            self.invalidate(entry.key)
            total -= entry.payload_bytes


class TenantStores:
    """Per-tenant store namespaces over one cache root.

    The daemon's multi-tenant front (wire protocol v2 + token auth)
    routes every tenant to its **own** :class:`LandscapeStore` rooted at
    ``<root>/tenants/<tenant>/``, while the legacy/default tenant
    (:data:`~repro.service.protocol.DEFAULT_TENANT`, i.e. unauthenticated
    Unix-socket traffic) keeps using the daemon's original store at the
    cache root itself — existing on-disk caches keep working unchanged.

    Isolation and sharing rules:

    - **raw keys never cross namespaces**: ``get`` / ``invalidate`` /
      ``entries`` operate on the named tenant's store only, so tenant A
      cannot read or drop tenant B's entries by key;
    - **byte quotas are per tenant**: each namespace store carries its
      own ``max_bytes`` (the credential's ``quota_bytes``, else the
      daemon-wide default quota), so one tenant filling its budget
      evicts only its own entries;
    - **exact specs read through across namespaces**
      (:meth:`read_through`): the content-addressed key means an
      identical exact spec identifies byte-identical content, so a
      landscape any tenant already computed can be copied into the
      requester's namespace instead of recomputed.  This never leaks:
      the requester supplied the full spec, i.e. already knows exactly
      what the values describe — only raw-key access is namespaced.
      Shot-noise specs are excluded to keep the sharing rule aligned
      with the daemon's sparse read-through policy (exact content only).
    """

    def __init__(
        self,
        default_store: LandscapeStore | None = None,
        root: str | Path | None = None,
        quotas: Mapping[str, int | None] | None = None,
        default_quota: int | None = None,
        default_tenant: str = "local",
    ):
        if root is None and default_store is not None:
            root = default_store.root / "tenants"
        self.root = None if root is None else Path(root)
        self.default_store = default_store
        self.default_tenant = default_tenant
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self._stores: dict[str, LandscapeStore] = {}

    def store_for(self, tenant: str) -> LandscapeStore | None:
        """The tenant's namespace store (created lazily), or ``None``
        when the daemon runs without a cache."""
        if tenant == self.default_tenant:
            return self.default_store
        if self.root is None:
            return None
        if tenant not in self._stores:
            self._stores[tenant] = LandscapeStore(
                self.root / tenant,
                max_bytes=self.quotas.get(tenant, self.default_quota),
            )
        return self._stores[tenant]

    def tenants(self) -> list[str]:
        """Every namespace that currently exists (instantiated this
        process or persisted on disk), default tenant first."""
        names = []
        if self.default_store is not None:
            names.append(self.default_tenant)
        on_disk = set(self._stores)
        if self.root is not None and self.root.exists():
            on_disk.update(
                path.name for path in self.root.iterdir() if path.is_dir()
            )
        names.extend(sorted(on_disk - {self.default_tenant}))
        return names

    def read_through(
        self, spec: LandscapeSpec, tenant: str
    ) -> tuple[Landscape | None, str | None]:
        """An identical **exact** spec cached by any other tenant.

        Returns ``(landscape, owner_tenant)`` on a cross-namespace hit,
        ``(None, None)`` otherwise.  Shot-noise specs never read
        through (see the class docstring); the caller is responsible
        for copying the hit into the requesting tenant's own namespace
        (so its quota accounts for it) and for holding the store lock.
        """
        if spec.shots is not None:
            return None, None
        for other in self.tenants():
            if other == tenant:
                continue
            store = self.store_for(other)
            if store is None:
                continue
            landscape = store.get(spec)
            if landscape is not None:
                return landscape, other
        return None, None

    def stats(self) -> dict[str, Any]:
        """Per-tenant store summaries (quota included) keyed by tenant."""
        out = {}
        for tenant in self.tenants():
            store = self.store_for(tenant)
            if store is not None:
                out[tenant] = store.stats()
        return out
