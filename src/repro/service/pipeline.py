"""The one-request OSCAR pipeline: sample → reconstruct → optimize.

This module is the *shared implementation* behind the daemon's
``pipeline`` op and the client-side fallback: both call
:func:`run_pipeline` with the same :class:`PipelineConfig`, so a
pipeline served over the socket and one composed locally execute the
exact same code path — which is why the returned optimizer trajectory
is bit-identical between the two under the parity rng regime (gated in
``benchmarks/test_sparse_service.py``).

The stages map onto the paper's workflow (Fig. 3 + the Sec. 7/8
optimizer use cases):

1. **sample** — draw a random index subset via
   :class:`~repro.landscape.reconstructor.OscarReconstructor`'s sampler
   (``uniform`` / ``stratified``);
2. **evaluate** — cost values at those indices.  Locally this is
   :meth:`~repro.landscape.generator.LandscapeGenerator.local_evaluate_indices`;
   the daemon injects its own sparse path here (warm pool + store
   read-through) via the ``evaluate`` hook;
3. **reconstruct** — the batched FISTA engine
   (:class:`~repro.cs.engine.ReconstructionEngine`, via
   ``reconstruct_many`` with a one-problem stack);
4. **optimize** — a registry optimizer
   (:func:`~repro.optimizers.make_optimizer`) minimizing the
   interpolated reconstruction
   (:class:`~repro.landscape.interpolate.InterpolatedLandscape`),
   starting from the reconstruction's grid minimum unless the config
   pins an initial point.

Every stage is timed (``PipelineOutcome.timings``); the daemon returns
those server-side timings so the transport-overhead gate can compare
request wall clock against the sum of the actual work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..cs.reconstruct import ReconstructionConfig
from ..landscape.interpolate import InterpolatedLandscape
from ..landscape.landscape import Landscape
from ..landscape.reconstructor import OscarReconstructor, ReconstructionReport
from ..optimizers import OptimizationResult, available_optimizers, make_optimizer
from ..utils import ensure_rng

__all__ = ["PipelineConfig", "PipelineOutcome", "run_pipeline"]

#: Samplers understood by :class:`OscarReconstructor` (validated here
#: too so a bad config fails before any circuit executes).
_SAMPLERS = ("uniform", "stratified")


@dataclass(frozen=True)
class PipelineConfig:
    """Everything the pipeline needs beyond the generator itself.

    Attributes:
        fraction: sampling fraction in (0, 1].
        sampler: index sampler, ``"uniform"`` or ``"stratified"``.
        reconstruction: CS solver knobs (``None`` = paper defaults).
        optimizer: registry name (see
            :func:`~repro.optimizers.available_optimizers`).
        optimizer_options: constructor kwargs for the optimizer
            (``maxiter``, ``tolerance``, ...).
        initial_point: optimizer start; ``None`` starts from the
            reconstructed landscape's grid minimum (the OSCAR
            initialization idiom).
        label: provenance tag for the reconstructed landscape.
    """

    fraction: float
    sampler: str = "uniform"
    reconstruction: ReconstructionConfig | None = None
    optimizer: str = "cobyla"
    optimizer_options: Mapping[str, Any] | None = None
    initial_point: tuple[float, ...] | None = None
    label: str = "oscar-pipeline"

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.sampler not in _SAMPLERS:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; choose from {_SAMPLERS}"
            )
        if self.optimizer.lower() not in available_optimizers():
            raise ValueError(
                f"unknown optimizer {self.optimizer!r}; choose from "
                f"{available_optimizers()}"
            )


@dataclass
class PipelineOutcome:
    """Everything one pipeline run produced.

    Attributes:
        landscape: the reconstructed landscape.
        report: reconstruction diagnostics (samples, speedup, solver).
        optimization: the full optimizer trajectory on the interpolated
            reconstruction.
        flat_indices: sampled flat grid indices (request order).
        values: measured cost values aligned with ``flat_indices``.
        timings: per-stage wall seconds (``sample`` / ``evaluate`` /
            ``reconstruct`` / ``optimize``).
        key: the daemon store key the reconstruction was cached under,
            or ``None`` (no store, or a non-reproducible request).
        served_by: ``"local"`` or ``"daemon"`` (set by the client).
    """

    landscape: Landscape
    report: ReconstructionReport
    optimization: OptimizationResult
    flat_indices: np.ndarray
    values: np.ndarray
    timings: dict[str, float] = field(default_factory=dict)
    key: str | None = None
    served_by: str = "local"

    @property
    def total_stage_seconds(self) -> float:
        """Sum of the recorded per-stage timings."""
        return float(sum(self.timings.values()))


def run_pipeline(
    generator,
    config: PipelineConfig,
    sample_rng: np.random.Generator | int | None = None,
    evaluate: Callable[[np.ndarray], np.ndarray] | None = None,
) -> PipelineOutcome:
    """Execute the full OSCAR loop against a landscape generator.

    Args:
        generator: a :class:`~repro.landscape.generator.LandscapeGenerator`
            (its ``daemon=`` setting is ignored here — daemon routing
            happens one level up in ``LandscapeGenerator.run_pipeline``).
        config: the pipeline configuration.
        sample_rng: generator or seed for index sampling.  Pass an int
            for a reproducible (and daemon-cacheable) sample set.
        evaluate: override for the evaluation stage; the daemon injects
            its sparse service path (read-through + counters) here.
            Defaults to the generator's local index evaluation.
    """
    timings: dict[str, float] = {}

    start = time.perf_counter()
    reconstructor = OscarReconstructor(
        generator.grid,
        config=config.reconstruction,
        sampler=config.sampler,
        rng=ensure_rng(sample_rng),
    )
    flat_indices = reconstructor.sample_indices(config.fraction)
    timings["sample"] = time.perf_counter() - start

    start = time.perf_counter()
    if evaluate is None:
        evaluate = generator.local_evaluate_indices
    values = np.asarray(evaluate(flat_indices), dtype=float)
    timings["evaluate"] = time.perf_counter() - start

    start = time.perf_counter()
    ((landscape, report),) = reconstructor.reconstruct_many(
        [(flat_indices, values)], labels=[config.label]
    )
    timings["reconstruct"] = time.perf_counter() - start

    start = time.perf_counter()
    surrogate = InterpolatedLandscape(landscape)
    if config.initial_point is not None:
        initial_point = np.asarray(config.initial_point, dtype=float)
    else:
        initial_point = landscape.minimum()[1]
    optimizer = make_optimizer(
        config.optimizer, **dict(config.optimizer_options or {})
    )
    optimization = optimizer.minimize(surrogate, initial_point)
    timings["optimize"] = time.perf_counter() - start

    return PipelineOutcome(
        landscape=landscape,
        report=report,
        optimization=optimization,
        flat_indices=flat_indices,
        values=values,
        timings=timings,
    )


def pipeline_spec(generator, config: PipelineConfig, sample_seed: int):
    """The store spec a reproducible pipeline reconstruction caches under.

    Only defined when the whole run is content-addressable: the sample
    set must come from an integer seed and the evaluation must be
    deterministic (exact, or seeded shot noise — the same rule as dense
    landscapes).  Callers catch ``TypeError`` / ``ValueError`` from the
    underlying :meth:`~repro.landscape.generator.LandscapeGenerator.cache_spec`
    to mean "not cacheable".
    """
    from dataclasses import asdict

    from .store import LandscapeSpec

    dense_spec = generator.cache_spec()
    reconstruction = config.reconstruction or ReconstructionConfig()
    content = {
        "kind": "oscar-pipeline",
        "dense": dense_spec.payload(),
        "sampler": config.sampler,
        "fraction": float(config.fraction),
        "sample_seed": int(sample_seed),
        "reconstruction": asdict(reconstruction),
    }
    return LandscapeSpec.from_parts(
        content,
        generator.grid,
        shots=getattr(generator.function, "shots", None),
        execution=dense_spec.execution,
    )
