"""Sharded (multiprocess) landscape execution.

:class:`ShardedExecutor` splits a flat run of grid points into
contiguous shards and evaluates them through the existing batched
engine — in-process, or fanned out across a ``multiprocessing`` pool.
Merging is trivial because shards are contiguous: the per-shard value
arrays concatenate back into the original point order.

Reproducibility contract (the part worth being precise about):

- **Exact landscapes** (``shots=None``) involve no rng, so any worker
  count and any shard layout produce values identical to the serial
  and batched engines.
- **Parity mode** (``workers=1`` and no ``seed``): shards are evaluated
  sequentially in-process, threading the *caller's* generator through
  them in shard order.  Because every engine draws shot noise one
  row-block at a time in batch order (the cross-engine rng contract,
  see ``tests/equivalence/harness.py``), this consumes the rng stream
  exactly as the unsharded batched path would — values and final
  stream position are bit-identical to the serial loop.  This is the
  configuration registered in the equivalence harness, which inherits
  the whole cross-engine parity matrix.
- **Spawn mode** (``seed=`` given): each shard gets its own generator,
  spawned from a root ``SeedSequence`` built from ``seed`` plus a
  fingerprint of the evaluated points.  The shard layout depends only
  on the point count and ``shard_points`` — never on the worker count
  — so shot-noise results are bit-identical for any ``workers``
  (1, 2, 4, ...), at the price of a different draw order than the
  serial loop.  The landscape store records ``(seed, shard layout)`` in
  the cache key for exactly this reason.  Folding the point
  fingerprint into the root keeps *different* evaluations under one
  seed statistically independent — a full grid search and a later
  OSCAR sample run must not replay the same streams, or sampled shot
  noise would correlate with the ground truth — while identical
  requests (the thing the store caches) remain bit-reproducible.
- **Multiprocess shot noise without a seed is refused**: shipping one
  generator to N processes would either correlate shards or depend on
  scheduling order, so the executor raises instead of guessing.
"""

from __future__ import annotations

import copy
import hashlib
import math
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..landscape.generator import evaluate_points_chunked

__all__ = ["Shard", "ShardedExecutor", "plan_shards", "DEFAULT_MAX_SHARDS"]

#: Default shard-count ceiling.  The layout must not depend on the
#: worker count (that is what makes seeded shot noise worker-count
#: independent), so the default splits any run into at most this many
#: contiguous shards and lets the pool schedule them.
DEFAULT_MAX_SHARDS = 16


@dataclass(frozen=True)
class Shard:
    """One contiguous half-open range ``[start, stop)`` of flat points."""

    index: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        """Number of points in the shard."""
        return self.stop - self.start


def plan_shards(size: int, shard_points: int | None = None) -> list[Shard]:
    """Split ``size`` flat indices into contiguous shards.

    The plan is a pure function of ``(size, shard_points)`` — crucially
    *not* of the worker count — so a seeded run's per-shard generators,
    and therefore its shot-noise draws, are identical no matter how many
    workers execute the plan.  ``shard_points=None`` picks the smallest
    per-shard point count that keeps the plan within
    :data:`DEFAULT_MAX_SHARDS` shards.
    """
    if size < 0:
        raise ValueError(f"size must be >= 0, got {size}")
    if size == 0:
        return []
    if shard_points is None:
        shard_points = math.ceil(size / DEFAULT_MAX_SHARDS)
    shard_points = int(shard_points)
    if shard_points < 1:
        raise ValueError(f"shard_points must be >= 1, got {shard_points}")
    return [
        Shard(index, start, min(start + shard_points, size))
        for index, start in enumerate(range(0, size, shard_points))
    ]


def _with_rng(function: Callable, rng: np.random.Generator) -> Callable:
    """A shallow copy of a cost function with its bound rng replaced.

    Cost functions bind their generator at construction
    (``AnsatzCostFunction.rng``, ``ZneCostFunction.rng``); per-shard
    seeding swaps it on a copy so the caller's object is untouched.
    """
    if not hasattr(function, "rng"):
        raise TypeError(
            f"{type(function).__name__} has no 'rng' attribute to reseed; "
            "seeded sharded execution needs a cost function that binds "
            "its generator (AnsatzCostFunction, ZneCostFunction, ...)"
        )
    clone = copy.copy(function)
    clone.rng = rng
    return clone


def _run_function_shard(
    task: tuple[Callable, np.ndarray, int | None, np.random.SeedSequence | None],
) -> np.ndarray:
    """Worker entry: evaluate one shard of points through a cost function."""
    function, points, batch_size, seed_sequence = task
    if seed_sequence is not None:
        function = _with_rng(function, np.random.default_rng(seed_sequence))
    return evaluate_points_chunked(function, points, batch_size)


def _run_ansatz_shard(
    task: tuple[
        Ansatz, np.ndarray, Any, int | None, np.random.SeedSequence | None
    ],
) -> np.ndarray:
    """Worker entry: evaluate one shard through ``expectation_many``."""
    ansatz, rows, noise, shots, seed_sequence = task
    rng = (
        np.random.default_rng(seed_sequence)
        if seed_sequence is not None
        else None
    )
    return ansatz.expectation_many(rows, noise=noise, shots=shots, rng=rng)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits the parent's modules);
    spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ShardedExecutor:
    """Fans contiguous grid shards out across a process pool.

    Args:
        workers: process count.  ``1`` evaluates shards sequentially
            in-process (no pool, no pickling) — with no ``seed`` this is
            *parity mode*, bit-identical to the unsharded batched path.
        shard_points: points per shard.  ``None`` = the
            :func:`plan_shards` default (at most
            :data:`DEFAULT_MAX_SHARDS` shards).  The layout never
            depends on ``workers``.
        seed: root seed for per-shard generators
            (``SeedSequence(seed).spawn``) — *spawn mode*, required for
            multiprocess shot noise, and what makes seeded results
            identical for any worker count.
        pool: an already-running ``multiprocessing`` pool to reuse
            instead of forking a fresh one per call.  This is how the
            landscape daemon (:mod:`repro.service.daemon`) amortizes
            pool startup across requests; the pool's lifetime belongs
            to the caller (it is never closed here).  Ignored when a
            run resolves to a single shard (evaluated inline).

    Example — sharded evaluation matches the unsharded batch path to
    machine precision (the cross-engine contract, ``ATOL = 1e-10``)::

        >>> import numpy as np
        >>> from repro.ansatz import QaoaAnsatz
        >>> from repro.landscape import cost_function
        >>> from repro.problems import random_3_regular_maxcut
        >>> from repro.service import ShardedExecutor
        >>> function = cost_function(QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1))
        >>> points = np.linspace(0.0, 1.0, 12).reshape(6, 2)
        >>> sharded = ShardedExecutor(workers=1, shard_points=2).run(function, points)
        >>> bool(np.allclose(sharded, function.many(points), rtol=0.0, atol=1e-10))
        True
    """

    def __init__(
        self,
        workers: int = 1,
        shard_points: int | None = None,
        seed: int | None = None,
        pool=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_points is not None and shard_points < 1:
            raise ValueError(f"shard_points must be >= 1, got {shard_points}")
        self.workers = int(workers)
        self.shard_points = shard_points
        self.seed = None if seed is None else int(seed)
        self.pool = pool

    # -- seeding -----------------------------------------------------------

    def shard_seed_sequences(
        self, num_shards: int, points: np.ndarray
    ) -> list[np.random.SeedSequence] | None:
        """Spawned per-shard seed sequences, or ``None`` in parity mode.

        The spawn root mixes ``seed`` with a fingerprint of the
        evaluated points (via ``SeedSequence``'s ``spawn_key``), so two
        different evaluations under the same seed — the dense
        ground-truth grid and a sampled subset of it, say — draw from
        independent streams instead of replaying each other, while the
        same request always reproduces bit-identically for any worker
        count.
        """
        if self.seed is None:
            return None
        digest = hashlib.sha256(
            np.ascontiguousarray(points, dtype=float).tobytes()
        ).digest()
        fingerprint = tuple(
            int.from_bytes(digest[offset : offset + 4], "little")
            for offset in range(0, 16, 4)
        )
        root = np.random.SeedSequence(self.seed, spawn_key=fingerprint)
        return root.spawn(num_shards)

    def _check_stochastic(self, stochastic: bool) -> None:
        if stochastic and self.workers > 1 and self.seed is None:
            raise ValueError(
                "multiprocess shot-noise execution needs seed=: one shared "
                "generator cannot be threaded across processes without "
                "either correlating shards or depending on scheduling "
                "order (pass seed= to spawn per-shard generators)"
            )

    def _map(self, worker: Callable, tasks: list) -> list[np.ndarray]:
        """Run shard tasks on the pool (or inline for a single task).

        A caller-supplied persistent pool (``pool=``) is reused as-is;
        otherwise an ephemeral pool is forked for this call and torn
        down afterwards.
        """
        if len(tasks) == 1:
            return [worker(tasks[0])]
        if self.pool is not None:
            return self.pool.map(worker, tasks)
        context = _pool_context()
        processes = min(self.workers, len(tasks))
        with context.Pool(processes=processes) as pool:
            return pool.map(worker, tasks)

    # -- cost-function level (the LandscapeGenerator path) -----------------

    def run(
        self,
        function: Callable,
        points: np.ndarray,
        batch_size: int | None = None,
    ) -> np.ndarray:
        """Evaluate an ``(m, ndim)`` point array through a cost function.

        ``function`` is anything :class:`~repro.landscape.generator.LandscapeGenerator`
        accepts (its batched ``many`` path is used when present, in
        ``batch_size``-point chunks per shard).  Returns the ``(m,)``
        values in the original point order.
        """
        points = np.asarray(points, dtype=float)
        shards = plan_shards(points.shape[0], self.shard_points)
        if not shards:
            return np.empty(0)
        stochastic = getattr(function, "shots", None) is not None
        self._check_stochastic(stochastic)
        sequences = self.shard_seed_sequences(len(shards), points)
        if self.workers == 1:
            parts = []
            for shard in shards:
                shard_function = function
                if sequences is not None:
                    shard_function = _with_rng(
                        function, np.random.default_rng(sequences[shard.index])
                    )
                parts.append(
                    evaluate_points_chunked(
                        shard_function,
                        points[shard.start : shard.stop],
                        batch_size,
                    )
                )
            return np.concatenate(parts)
        tasks = [
            (
                function,
                points[shard.start : shard.stop],
                batch_size,
                None if sequences is None else sequences[shard.index],
            )
            for shard in shards
        ]
        return np.concatenate(self._map(_run_function_shard, tasks))

    # -- ansatz level (the equivalence-harness path) -----------------------

    def run_ansatz(
        self,
        ansatz: Ansatz,
        batch: np.ndarray,
        noise=None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sharded ``expectation_many`` with the cross-engine signature.

        Accepts the same shared-or-per-row ``noise`` spec as
        :meth:`repro.ansatz.base.Ansatz.expectation_many` (per-row
        sequences are sliced alongside the point shards).  In parity
        mode the caller's ``rng`` threads through shards sequentially,
        which is what lets this path register in
        ``tests/equivalence/harness.py`` and pass the full value + rng
        stream-position matrix against the serial engine.
        """
        batch = np.asarray(batch, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        shards = plan_shards(batch.shape[0], self.shard_points)
        if not shards:
            return np.empty(0)
        noise_rows: Sequence | None = None
        if noise is not None and not hasattr(noise, "is_ideal"):
            noise_rows = list(noise)
            if len(noise_rows) != batch.shape[0]:
                raise ValueError(
                    f"per-row noise needs {batch.shape[0]} entries, "
                    f"got {len(noise_rows)}"
                )
        self._check_stochastic(shots is not None)
        sequences = self.shard_seed_sequences(len(shards), batch)

        def shard_noise(shard: Shard):
            if noise_rows is None:
                return noise
            return noise_rows[shard.start : shard.stop]

        if self.workers == 1:
            parts = []
            for shard in shards:
                shard_rng = rng
                if sequences is not None:
                    shard_rng = np.random.default_rng(sequences[shard.index])
                parts.append(
                    ansatz.expectation_many(
                        batch[shard.start : shard.stop],
                        noise=shard_noise(shard),
                        shots=shots,
                        rng=shard_rng,
                    )
                )
            return np.concatenate(parts)
        tasks = [
            (
                ansatz,
                batch[shard.start : shard.stop],
                shard_noise(shard),
                shots,
                None if sequences is None else sequences[shard.index],
            )
            for shard in shards
        ]
        return np.concatenate(self._map(_run_ansatz_shard, tasks))
