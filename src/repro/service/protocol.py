"""Wire protocol v2: versioned, pickle-free JSON messages.

Protocol v1 (the original daemon wire format) shipped **pickled** task
payloads, which confines it to the Unix socket's filesystem trust
boundary: anyone who can connect can execute code.  v2 removes that
assumption so the daemon can face a network:

- every message carries ``"version": 2``; unversioned or wrong-version
  frames get a structured ``unsupported-version`` error;
- requests are **declarative JSON specs** — the same canonical payloads
  :class:`~repro.service.store.LandscapeSpec` hashes into cache keys
  (``Ansatz.cache_spec`` / ``NoiseModel.cache_spec`` / the cost-function
  ``cache_spec``) — resolved server-side by the registry in this module
  (:func:`ansatz_from_spec`, :func:`function_from_spec`,
  :func:`grid_from_spec`).  Nothing on the v2 path ever unpickles;
- binary payloads are explicit codecs: landscapes stay
  ``Landscape.to_bytes``/``from_bytes`` (base64 ``.npz``), numeric
  arrays are :func:`encode_array`/:func:`decode_array` (dtype-allowlisted
  raw bytes), rng state is :func:`encode_rng_state` (the numpy
  bit-generator state dict, JSON-ified);
- failures are structured ``{"code", "type", "message", "retryable"}``
  error objects (codes in :data:`ERROR_CODES`), so clients can
  distinguish an auth failure from an overload shed from a bad spec.

The module also owns the **bearer-token** model of the TCP front:
:func:`load_tokens` parses a tenant→token file and
:func:`authenticate` performs the constant-time lookup
(:func:`hmac.compare_digest` against every credential, so timing never
reveals which token prefix matched).
"""

from __future__ import annotations

import base64
import hmac
import json
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ERROR_CODES",
    "DEFAULT_TENANT",
    "ProtocolError",
    "TenantCredential",
    "load_tokens",
    "authenticate",
    "encode_array",
    "decode_array",
    "encode_rng_state",
    "decode_rng_state",
    "apply_rng_state",
    "rng_from_state",
    "grid_to_spec",
    "grid_from_spec",
    "noise_to_spec",
    "noise_from_spec",
    "ansatz_from_spec",
    "ansatz_to_spec",
    "function_from_spec",
    "function_to_spec",
    "validate_function_spec",
]

#: The current wire protocol version; every v2 message carries it.
PROTOCOL_VERSION = 2

#: Versions this server generation understands.  v1 (unversioned pickle
#: frames) is deliberately absent: it is transport-gated, not
#: version-negotiated — the Unix socket accepts it for one more release,
#: TCP never does.
SUPPORTED_VERSIONS = (PROTOCOL_VERSION,)

#: Structured error codes a v2 response may carry.
ERROR_CODES = (
    "auth",  # missing/unknown/expired bearer token
    "unsupported-version",  # missing or unknown "version" field
    "malformed",  # not JSON, not an object, wrong field type
    "unknown-op",  # op not in the v2 dispatch table
    "invalid-spec",  # declarative spec failed server-side resolution
    "too-large",  # frame exceeds the payload limit
    "overloaded",  # connection/request cap shed (retryable)
    "internal",  # handler raised something unstructured
)

#: The implicit tenant of unauthenticated Unix-socket requests — the
#: daemon's legacy single-namespace store keeps serving under this name.
DEFAULT_TENANT = "local"

#: Tenant names become store path components, so they are restricted to
#: a conservative slug alphabet (no separators, no dot-dot, no hidden
#: files).
_TENANT_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")

#: Bit generators whose state dicts the rng codec round-trips.  numpy's
#: stock generators only — restoring state never executes anything, but
#: an allowlist keeps the wire format explicit.
_BIT_GENERATORS = ("PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64")

#: dtypes :func:`decode_array` will materialize.  Raw numeric buffers
#: only — never object arrays, so the codec cannot smuggle pickles.
_ARRAY_DTYPES = ("float64", "int64")


class ProtocolError(Exception):
    """A structured wire-protocol failure.

    Args:
        code: one of :data:`ERROR_CODES`.
        message: human-readable detail.
        retryable: whether the client may simply retry (load sheds are,
            malformed requests are not).
    """

    def __init__(self, code: str, message: str, retryable: bool = False):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.retryable = bool(retryable)


# -- token auth ---------------------------------------------------------------


@dataclass(frozen=True)
class TenantCredential:
    """One tenant's bearer token plus its store policy.

    Attributes:
        tenant: namespace name (store path component, counter key).
        token: the bearer secret presented on every request.
        quota_bytes: per-tenant store byte budget (``None`` = the
            daemon's default tenant quota).
        expires: Unix timestamp after which the token stops
            authenticating (``None`` = never).
    """

    tenant: str
    token: str
    quota_bytes: int | None = None
    expires: float | None = None


def load_tokens(path: str | Path) -> tuple[TenantCredential, ...]:
    """Parse a tokens file into :class:`TenantCredential` entries.

    The file is one JSON object mapping tenant name to either the bare
    token string or ``{"token": ..., "quota_bytes": ..., "expires":
    ...}``::

        {
          "alice": "alice-secret",
          "bob": {"token": "bob-secret", "quota_bytes": 4194304}
        }
    """
    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, dict) or not raw:
        raise ValueError(f"tokens file {path} must be a non-empty JSON object")
    credentials = []
    seen_tokens: set[str] = set()
    for tenant, entry in raw.items():
        if not isinstance(tenant, str) or not _TENANT_NAME.match(tenant):
            raise ValueError(
                f"invalid tenant name {tenant!r} in {path}: tenant names "
                "are [A-Za-z0-9][A-Za-z0-9._-]* and at most 64 characters"
            )
        if isinstance(entry, str):
            entry = {"token": entry}
        if not isinstance(entry, dict) or not isinstance(entry.get("token"), str):
            raise ValueError(
                f"tenant {tenant!r} in {path} needs a string token "
                "(bare or under a 'token' key)"
            )
        token = entry["token"]
        if not token:
            raise ValueError(f"tenant {tenant!r} in {path} has an empty token")
        if token in seen_tokens:
            raise ValueError(
                f"duplicate token in {path}: two tenants sharing a secret "
                "would make authentication ambiguous"
            )
        seen_tokens.add(token)
        quota = entry.get("quota_bytes")
        expires = entry.get("expires")
        credentials.append(
            TenantCredential(
                tenant=tenant,
                token=token,
                quota_bytes=None if quota is None else int(quota),
                expires=None if expires is None else float(expires),
            )
        )
    return tuple(credentials)


def authenticate(
    credentials: Sequence[TenantCredential],
    token: str,
    now: float | None = None,
) -> TenantCredential:
    """Constant-time bearer-token lookup.

    Every credential is compared with :func:`hmac.compare_digest` and
    the scan never exits early, so response timing does not reveal
    which token (or token prefix) exists.  Raises
    :class:`ProtocolError` with code ``auth`` for unknown and expired
    tokens alike.
    """
    presented = token.encode("utf-8")
    matched: TenantCredential | None = None
    for credential in credentials:
        if hmac.compare_digest(credential.token.encode("utf-8"), presented):
            matched = credential
    if matched is None:
        raise ProtocolError("auth", "unknown bearer token")
    if matched.expires is not None:
        if (time.time() if now is None else now) > matched.expires:
            raise ProtocolError("auth", "bearer token has expired")
    return matched


# -- binary codecs ------------------------------------------------------------


def encode_array(values: np.ndarray) -> dict[str, Any]:
    """Numeric array -> JSON-safe ``{dtype, shape, data}`` payload."""
    values = np.ascontiguousarray(values)
    dtype = str(values.dtype)
    if dtype not in _ARRAY_DTYPES:
        values = np.ascontiguousarray(values, dtype=float)
        dtype = "float64"
    return {
        "dtype": dtype,
        "shape": [int(n) for n in values.shape],
        "data": base64.b64encode(values.tobytes()).decode("ascii"),
    }


def decode_array(payload: Any) -> np.ndarray:
    """Inverse of :func:`encode_array`; rejects non-numeric dtypes."""
    if not isinstance(payload, dict):
        raise ProtocolError("malformed", "array payload must be an object")
    dtype = payload.get("dtype")
    if dtype not in _ARRAY_DTYPES:
        raise ProtocolError(
            "malformed",
            f"array dtype must be one of {_ARRAY_DTYPES}, got {dtype!r}",
        )
    shape = payload.get("shape")
    if not isinstance(shape, list) or not all(
        isinstance(n, int) and n >= 0 for n in shape
    ):
        raise ProtocolError("malformed", "array shape must be a list of ints")
    try:
        data = base64.b64decode(str(payload.get("data", "")).encode("ascii"))
        flat = np.frombuffer(data, dtype=np.dtype(dtype))
        return flat.reshape(shape).copy()
    except (ValueError, TypeError) as error:
        raise ProtocolError("malformed", f"undecodable array payload: {error}")


def _jsonify(value: Any) -> Any:
    """Make a numpy bit-generator state dict JSON-able (arrays become
    tagged lists — MT19937/Philox keys are uint arrays)."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _unjsonify(value: Any) -> Any:
    """Inverse of :func:`_jsonify`."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.array(value["__ndarray__"], dtype=np.dtype(value["dtype"]))
        return {key: _unjsonify(item) for key, item in value.items()}
    return value


def encode_rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """Generator -> JSON-safe bit-generator state payload."""
    state = rng.bit_generator.state
    return {
        "bit_generator": state["bit_generator"],
        "state": _jsonify(state),
    }


def decode_rng_state(payload: Any) -> dict[str, Any]:
    """Validate and un-JSON-ify an rng state payload."""
    if not isinstance(payload, dict):
        raise ProtocolError("malformed", "rng payload must be an object")
    name = payload.get("bit_generator")
    if name not in _BIT_GENERATORS:
        raise ProtocolError(
            "malformed",
            f"rng bit generator must be one of {_BIT_GENERATORS}, got {name!r}",
        )
    state = _unjsonify(payload.get("state"))
    if not isinstance(state, dict) or state.get("bit_generator") != name:
        raise ProtocolError("malformed", "rng state does not match its bit generator")
    return state


def rng_from_state(payload: Any) -> np.random.Generator:
    """Build a fresh generator positioned at the encoded state."""
    state = decode_rng_state(payload)
    bit_generator = getattr(np.random, state["bit_generator"])()
    try:
        bit_generator.state = state
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError("malformed", f"invalid rng state: {error}")
    return np.random.Generator(bit_generator)


def apply_rng_state(rng: np.random.Generator, payload: Any) -> None:
    """Advance the caller's generator to the encoded state (the
    client-side write-back after a server-side evaluation)."""
    state = decode_rng_state(payload)
    if state["bit_generator"] != rng.bit_generator.state["bit_generator"]:
        raise ProtocolError(
            "malformed",
            "returned rng state uses a different bit generator than the "
            "caller's generator",
        )
    rng.bit_generator.state = state


# -- grid and noise specs -----------------------------------------------------


def grid_to_spec(grid: Any) -> list[dict[str, Any]] | None:
    """Grid -> per-axis spec list, or ``None`` for duck-typed grids.

    The axis shape is exactly what
    :meth:`~repro.service.store.LandscapeSpec.from_parts` records, so a
    v2 request and the server-derived cache key describe the grid
    identically.  Stand-in grids (test doubles with only
    ``points_from_flat``) are not declaratively describable — callers
    fall back to the legacy pickle path on the Unix socket.
    """
    from ..landscape.grid import ParameterGrid

    if not isinstance(grid, ParameterGrid):
        return None
    return [
        {
            "name": axis.name,
            "low": float(axis.low),
            "high": float(axis.high),
            "num_points": int(axis.num_points),
        }
        for axis in grid.axes
    ]


def grid_from_spec(axes: Any):
    """Per-axis spec list -> :class:`~repro.landscape.grid.ParameterGrid`."""
    from ..landscape.grid import GridAxis, ParameterGrid

    if not isinstance(axes, list) or not axes:
        raise ProtocolError("invalid-spec", "grid spec must be a non-empty list")
    built = []
    for axis in axes:
        if not isinstance(axis, dict):
            raise ProtocolError("invalid-spec", "each grid axis must be an object")
        try:
            built.append(
                GridAxis(
                    name=str(axis["name"]),
                    low=float(axis["low"]),
                    high=float(axis["high"]),
                    num_points=int(axis["num_points"]),
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError("invalid-spec", f"invalid grid axis: {error}")
    return ParameterGrid(tuple(built))


def noise_to_spec(noise: Any) -> Any:
    """Noise model(s) -> spec; handles ``None``, one model, or a
    per-row sequence.  Returns the models' own canonical
    ``cache_spec`` payloads."""
    if noise is None:
        return None
    if isinstance(noise, (list, tuple)):
        return [noise_to_spec(model) for model in noise]
    return noise.cache_spec()


def noise_from_spec(payload: Any):
    """Inverse of :func:`noise_to_spec`."""
    from ..quantum.noise import NoiseModel

    if payload is None:
        return None
    if isinstance(payload, list):
        return [noise_from_spec(item) for item in payload]
    if not isinstance(payload, dict):
        raise ProtocolError("invalid-spec", "noise spec must be an object or null")
    try:
        return NoiseModel(
            p1=float(payload.get("p1", 0.0)),
            p2=float(payload.get("p2", 0.0)),
            readout=float(payload.get("readout", 0.0)),
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError("invalid-spec", f"invalid noise spec: {error}")


# -- the ansatz / cost-function registry --------------------------------------


def _pauli_sum_from_spec(rows: Any):
    """``[[label, re, im], ...]`` (the ``_pauli_sum_spec`` shape) ->
    :class:`~repro.problems.pauli.PauliSum`.  Deterministic: the sum
    sorts and merges terms itself, so rebuild order cannot differ from
    the original."""
    from ..problems.pauli import PauliString, PauliSum

    if not isinstance(rows, list) or not rows:
        raise ProtocolError(
            "invalid-spec", "hamiltonian spec must be a non-empty term list"
        )
    try:
        return PauliSum(
            PauliString(str(label), complex(float(re), float(im)))
            for label, re, im in rows
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError("invalid-spec", f"invalid hamiltonian spec: {error}")


def _qaoa_from_spec(spec: Mapping[str, Any]):
    from ..ansatz import QaoaAnsatz
    from ..problems.ising import IsingProblem

    problem = spec.get("problem")
    if not isinstance(problem, dict):
        raise ProtocolError("invalid-spec", "qaoa spec needs a 'problem' object")
    try:
        ising = IsingProblem(
            num_qubits=int(spec["num_qubits"]),
            couplings=tuple(
                (int(i), int(j), float(w))
                for i, j, w in problem.get("couplings", [])
            ),
            fields=tuple(
                (int(i), float(h)) for i, h in problem.get("fields", [])
            ),
            offset=float(problem.get("offset", 0.0)),
            name="wire",
        )
        return QaoaAnsatz(ising, p=int(spec["p"]))
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError("invalid-spec", f"invalid qaoa spec: {error}")


def _twolocal_from_spec(spec: Mapping[str, Any]):
    from ..ansatz import TwoLocalAnsatz

    try:
        return TwoLocalAnsatz(
            _pauli_sum_from_spec(spec.get("hamiltonian")),
            reps=int(spec["reps"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError("invalid-spec", f"invalid twolocal spec: {error}")


def _uccsd_from_spec(spec: Mapping[str, Any]):
    from ..ansatz import UccsdAnsatz

    excitations = spec.get("excitations")
    if not isinstance(excitations, list):
        raise ProtocolError("invalid-spec", "uccsd spec needs an excitation list")
    try:
        return UccsdAnsatz(
            _pauli_sum_from_spec(spec.get("hamiltonian")),
            num_parameters=int(spec["num_parameters"]),
            excitations=[tuple(int(q) for q in exc) for exc in excitations],
            initial_bitstring=spec.get("initial_bitstring"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError("invalid-spec", f"invalid uccsd spec: {error}")


#: Ansatz registry: ``cache_spec()["type"]`` -> builder.  The specs are
#: exactly the canonical payloads the store hashes, so anything the
#: cache can key, the wire can ship.
ANSATZ_BUILDERS: dict[str, Callable[[Mapping[str, Any]], Any]] = {
    "qaoa": _qaoa_from_spec,
    "twolocal": _twolocal_from_spec,
    "uccsd": _uccsd_from_spec,
}


def ansatz_from_spec(spec: Any):
    """Resolve an ansatz ``cache_spec`` payload into a live instance."""
    if not isinstance(spec, Mapping):
        raise ProtocolError("invalid-spec", "ansatz spec must be an object")
    kind = spec.get("type")
    builder = ANSATZ_BUILDERS.get(kind) if isinstance(kind, str) else None
    if builder is None:
        raise ProtocolError(
            "invalid-spec",
            f"unknown ansatz type {kind!r}; registered: "
            f"{sorted(ANSATZ_BUILDERS)}",
        )
    return builder(spec)


def _ansatz_function_from_spec(
    spec: Mapping[str, Any], rng: np.random.Generator | None
):
    from ..landscape.generator import AnsatzCostFunction

    shots = spec.get("shots")
    return AnsatzCostFunction(
        ansatz_from_spec(spec.get("ansatz")),
        noise=noise_from_spec(spec.get("noise")),
        shots=None if shots is None else int(shots),
        rng=rng,
        sampler=str(spec.get("sampler", "parity")),
    )


def _zne_function_from_spec(
    spec: Mapping[str, Any], rng: np.random.Generator | None
):
    from ..mitigation.zne import ZneConfig, ZneCostFunction

    noise = noise_from_spec(spec.get("noise"))
    if noise is None:
        raise ProtocolError("invalid-spec", "zne spec needs a noise model")
    mitigation = spec.get("mitigation")
    if not isinstance(mitigation, Mapping):
        raise ProtocolError("invalid-spec", "zne spec needs a 'mitigation' object")
    shots = spec.get("shots")
    try:
        config = ZneConfig(
            scale_factors=tuple(
                float(scale) for scale in mitigation["scale_factors"]
            ),
            method=str(mitigation["method"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError("invalid-spec", f"invalid zne mitigation spec: {error}")
    return ZneCostFunction(
        ansatz_from_spec(spec.get("ansatz")),
        noise,
        config=config,
        shots=None if shots is None else int(shots),
        rng=rng,
        sampler=str(spec.get("sampler", "parity")),
    )


#: Cost-function registry: ``cache_spec()["kind"]`` -> builder.
FUNCTION_BUILDERS: dict[str, Callable[..., Any]] = {
    "ansatz": _ansatz_function_from_spec,
    "zne": _zne_function_from_spec,
}


def function_from_spec(spec: Any, rng: np.random.Generator | None = None):
    """Resolve a cost-function ``cache_spec`` payload into a callable.

    ``rng`` (decoded from the request's rng state, if any) is bound to
    the resolved function exactly where a local construction would bind
    it, preserving the draw-order contract over the wire.
    """
    if not isinstance(spec, Mapping):
        raise ProtocolError("invalid-spec", "function spec must be an object")
    kind = spec.get("kind")
    builder = FUNCTION_BUILDERS.get(kind) if isinstance(kind, str) else None
    if builder is None:
        raise ProtocolError(
            "invalid-spec",
            f"unknown cost-function kind {kind!r}; registered: "
            f"{sorted(FUNCTION_BUILDERS)}",
        )
    try:
        sampler = spec.get("sampler", "parity")
        if not isinstance(sampler, str):
            raise ProtocolError("invalid-spec", "sampler must be a string")
    except AttributeError:  # pragma: no cover - Mapping guarantees .get
        raise ProtocolError("invalid-spec", "function spec must be an object")
    return builder(spec, rng)


def validate_function_spec(spec: Any) -> None:
    """Structural check that :func:`function_from_spec` could resolve
    ``spec`` (registered kind + registered ansatz type).  Raises
    :class:`ProtocolError` otherwise — the client uses this to decide
    v2 vs the legacy pickle fallback without building anything."""
    if not isinstance(spec, Mapping):
        raise ProtocolError("invalid-spec", "function spec must be an object")
    kind = spec.get("kind")
    if not isinstance(kind, str) or kind not in FUNCTION_BUILDERS:
        raise ProtocolError(
            "invalid-spec", f"unknown cost-function kind {kind!r}"
        )
    ansatz = spec.get("ansatz")
    if not isinstance(ansatz, Mapping):
        raise ProtocolError("invalid-spec", "function spec needs an ansatz object")
    ansatz_type = ansatz.get("type")
    if not isinstance(ansatz_type, str) or ansatz_type not in ANSATZ_BUILDERS:
        raise ProtocolError(
            "invalid-spec", f"unknown ansatz type {ansatz_type!r}"
        )


def function_to_spec(function: Any) -> dict[str, Any] | None:
    """Cost function -> declarative spec, or ``None`` when the function
    cannot describe itself in registry terms (a plain closure, a test
    double) — the caller then falls back to the legacy pickle path."""
    describe = getattr(function, "cache_spec", None)
    if describe is None:
        return None
    try:
        spec = describe()
        validate_function_spec(spec)
    except (ProtocolError, TypeError, ValueError, AttributeError):
        return None
    return spec


def ansatz_to_spec(ansatz: Any) -> dict[str, Any] | None:
    """Ansatz -> declarative spec, or ``None`` when unregistered."""
    describe = getattr(ansatz, "cache_spec", None)
    if describe is None:
        return None
    try:
        spec = describe()
    except (TypeError, ValueError, AttributeError):
        return None
    kind = spec.get("type") if isinstance(spec, dict) else None
    if not isinstance(kind, str) or kind not in ANSATZ_BUILDERS:
        return None
    return spec
