"""The landscape daemon: a persistent-pool service front over the store.

:class:`LandscapeDaemon` is a long-running server that owns **one**
persistent ``multiprocessing`` pool and **one**
:class:`~repro.service.store.LandscapeStore`, and serves landscape
requests to any number of local clients over a Unix-domain socket.
Compared with each client running its own
:class:`~repro.service.shards.ShardedExecutor`, the daemon

- **amortizes pool startup**: workers fork once at daemon start and
  stay warm, so a request pays only the socket round trip instead of
  per-call pool creation (gated in ``benchmarks/test_daemon.py``);
- **single-flights identical requests**: concurrent ``compute``
  requests for the same :class:`~repro.service.store.LandscapeSpec`
  key join one in-flight computation instead of racing the pool — the
  leader computes, followers wait on the result;
- **makes LRU accounting single-writer**: every store read/write runs
  under the daemon's store lock in one process, which closes the
  documented last-writer-wins hazard of multiple processes bumping the
  access counter independently (the ``flock`` fallback in the store
  remains for direct multi-process use without a daemon).

Wire protocol — **JSON lines** over ``AF_UNIX``: each request is a
single newline-terminated JSON object; each response is a single JSON
object with ``"ok": true`` plus op-specific fields, or ``"ok": false``
and a structured ``"error": {"type", "message"}`` (a malformed request
gets an error response; it never kills the server).  A connection may
issue any number of requests sequentially.

==================  =========================================================
op                  meaning
==================  =========================================================
``ping``            liveness probe; returns pid/workers/uptime
``compute``         ``get_or_compute`` for a pickled ``(function, grid,
                    ...)`` task: store hit, else single-flighted
                    computation on the persistent pool; returns the
                    landscape as base64 ``.npz``
``compute_indices`` sparse evaluation of an arbitrary flat-index set
                    (OSCAR's sampling path) through the persistent
                    pool.  Function-shaped tasks get the full service
                    treatment — bounds validation, a read-through fast
                    path answering exact requests from a cached dense
                    landscape without touching the pool, and
                    single-flight dedup keyed on (dense spec key,
                    canonicalized index set) — while ansatz-shaped
                    tasks mirror ``evaluate`` (rng round-trip, per-row
                    noise), which is how the ``daemon-sparse``
                    equivalence engine registers
``pipeline``        the whole paper loop in one request: sample →
                    reconstruct (batched FISTA) → optimize, returning
                    the reconstructed landscape (plus its store key
                    when reproducible) and the full optimizer
                    trajectory with per-stage timings
``get``             store lookup by spec key (no computation)
``evaluate``        raw (uncached) batch evaluation of a pickled ansatz
                    task; threads the caller's pickled rng through and
                    returns its final state, which is what lets the
                    daemon-backed path register in
                    ``tests/equivalence/harness.py``
``invalidate``      drop one store entry by key
``index``           list cached entries (key, label, bytes, access)
``stats``           per-op counters (dense hits, sparse read-through
                    hits, pipeline runs, dedups, errors) + store summary
``shutdown``        stop serving (the socket file is removed on close)
==================  =========================================================

Tasks are **pickled** by the client.  The
trust boundary is the socket file's filesystem permissions: anyone who
can connect can execute code in the daemon process, exactly like any
local pickle-based worker pool (``multiprocessing`` itself included).
Keep the socket in a directory only the owning user can write.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import socketserver
import threading
import time
import traceback
from pathlib import Path
from typing import Any, BinaryIO, Callable

import numpy as np

from ..landscape.grid import validate_flat_indices
from .shards import ShardedExecutor, _pool_context, plan_shards
from .store import LandscapeStore

__all__ = ["LandscapeDaemon", "DEFAULT_SOCKET"]

#: Default Unix-socket path (relative to the working directory) shared
#: by ``oscar-repro serve`` and the ``--daemon`` client flags.
DEFAULT_SOCKET = "oscar-repro.sock"


def encode_blob(data: bytes) -> str:
    """Binary payload -> JSON-safe base64 string (wire helper)."""
    return base64.b64encode(data).decode("ascii")


def decode_blob(text: str) -> bytes:
    """Inverse of :func:`encode_blob`."""
    return base64.b64decode(text.encode("ascii"))


def read_response(stream: BinaryIO) -> dict[str, Any]:
    """Read one JSON-lines protocol message from a binary stream.

    Raises ``ConnectionError`` on EOF (the peer vanished mid-request),
    which the client maps to its unavailable/fallback path.
    """
    line = stream.readline()
    if not line:
        raise ConnectionError("daemon closed the connection mid-request")
    return json.loads(line)


def write_message(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Write one JSON-lines protocol message to a binary stream."""
    stream.write(json.dumps(message).encode("utf-8") + b"\n")
    stream.flush()


class _Flight:
    """One in-flight computation that concurrent identical requests join.

    ``result`` is whatever the leader's producer returned — a
    ``(landscape, hit)`` pair for ``compute``, a ``(values,
    readthrough)`` pair for ``compute_indices`` — so the single-flight
    machinery is shared across ops.
    """

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    """Threading Unix-socket server holding a back-reference to the daemon."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: str, landscape_daemon: "LandscapeDaemon"):
        self.landscape_daemon = landscape_daemon
        super().__init__(socket_path, _Handler)


class _Handler(socketserver.StreamRequestHandler):
    """Per-connection handler: one JSON line in, one JSON line out."""

    def handle(self) -> None:
        daemon = self.server.landscape_daemon
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            response = daemon.handle_line(line)
            try:
                write_message(self.wfile, response)
            except (BrokenPipeError, ConnectionResetError):
                return  # client went away; nothing to report to


class LandscapeDaemon:
    """Long-running landscape server over a Unix-domain socket.

    Args:
        socket_path: where to bind the ``AF_UNIX`` socket (the file is
            created on :meth:`start` and removed on :meth:`close`; keep
            it under ~100 characters, the kernel's path limit).
        workers: process count for the persistent pool.  ``1`` serves
            every request in-process (no pool) — still useful for the
            shared cache, single-flight dedup, and single-writer LRU.
        cache_dir: directory for the daemon's
            :class:`~repro.service.store.LandscapeStore`.  ``None``
            (and no ``store``) disables caching: every ``compute``
            computes, but identical concurrent requests still
            single-flight.
        store: an existing store instance (overrides ``cache_dir``).
        max_bytes: LRU byte budget passed to the store built from
            ``cache_dir``.
        shard_points: default shard layout for requests that do not
            bring their own (see
            :func:`~repro.service.shards.plan_shards`).

    Typical embedding (tests, examples) runs the daemon on a background
    thread::

        daemon = LandscapeDaemon("d.sock", workers=2, cache_dir="cache")
        daemon.start()          # binds + serves on a thread
        ...                     # clients connect via LandscapeClient
        daemon.close()          # stop serving, join, release the pool

    ``oscar-repro serve`` runs :meth:`serve_forever` in the foreground
    instead.
    """

    def __init__(
        self,
        socket_path: str | Path,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        store: LandscapeStore | None = None,
        max_bytes: int | None = None,
        shard_points: int | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.socket_path = Path(socket_path)
        self.workers = int(workers)
        self.shard_points = shard_points
        if store is None and cache_dir is not None:
            store = LandscapeStore(cache_dir, max_bytes=max_bytes)
        self.store = store
        self._store_lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}
        self._inflight_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "hits": 0,
            "misses": 0,
            "computed": 0,
            "deduped": 0,
            "evaluations": 0,
            "sparse_hits": 0,
            "sparse_computed": 0,
            "sparse_deduped": 0,
            "pipeline_runs": 0,
            "errors": 0,
        }
        self._pool = None
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None
        self._started = time.time()

    # -- lifecycle ---------------------------------------------------------

    def _bind(self) -> None:
        """Create the pool and bind the socket (idempotent)."""
        if self._server is not None:
            return
        if self.workers > 1 and self._pool is None:
            # Fork the workers before any serving thread exists:
            # fork-under-threads is the classic multiprocessing hazard
            # the persistent pool is designed to avoid.
            self._pool = _pool_context().Pool(processes=self.workers)
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = _Server(str(self.socket_path), self)
        # Owner-only: anyone who can connect can execute pickled tasks,
        # so do not rely on the umask to keep other users out.
        os.chmod(self.socket_path, 0o600)
        self._started = time.time()

    def start(self) -> None:
        """Bind the socket and serve on a background thread."""
        self._bind()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="landscape-daemon",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Bind the socket and serve in the calling thread (the CLI
        foreground path); returns after :meth:`close` or a ``shutdown``
        op."""
        self._bind()
        try:
            self._server.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        """Stop serving, join the server thread, release pool + socket."""
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.socket_path.unlink(missing_ok=True)

    def __enter__(self) -> "LandscapeDaemon":
        """Context-manager entry: :meth:`start` on a background thread."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # -- request plumbing --------------------------------------------------

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[counter] += amount

    def handle_line(self, line: bytes) -> dict[str, Any]:
        """One raw request line -> one response object.

        Every failure — unparseable JSON, an unknown op, a bad task, an
        exception inside the computation — becomes a structured
        ``{"ok": false, "error": ...}`` response; the server never dies
        on a request.
        """
        self._bump("requests")
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise TypeError("request must be a JSON object")
            op = request.get("op")
            handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
            if handler is None or (isinstance(op, str) and op.startswith("_")):
                raise ValueError(f"unknown op {op!r}")
            response = handler(request)
            response["ok"] = True
            return response
        except BaseException as error:  # noqa: BLE001 - protocol boundary
            self._bump("errors")
            return {
                "ok": False,
                "error": {
                    "type": type(error).__name__,
                    "message": str(error) or traceback.format_exc(limit=1),
                },
            }

    @staticmethod
    def _load_task(request: dict[str, Any]) -> dict[str, Any]:
        task = request.get("task")
        if not isinstance(task, str):
            raise ValueError("request is missing its base64 'task' payload")
        loaded = pickle.loads(decode_blob(task))
        if not isinstance(loaded, dict):
            raise TypeError("task payload must unpickle to a dict")
        return loaded

    # -- ops ---------------------------------------------------------------

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        """Liveness probe."""
        return {
            "pid": os.getpid(),
            "workers": self.workers,
            "uptime": time.time() - self._started,
        }

    def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        """Counters + store summary."""
        with self._counter_lock:
            counters = dict(self._counters)
        store_stats = None
        if self.store is not None:
            with self._store_lock:
                store_stats = self.store.stats()
        return {
            "pid": os.getpid(),
            "workers": self.workers,
            "uptime": time.time() - self._started,
            "counters": counters,
            "store": store_stats,
        }

    def _op_index(self, request: dict[str, Any]) -> dict[str, Any]:
        """Store index listing (LRU first); empty without a store."""
        if self.store is None:
            return {"entries": []}
        with self._store_lock:
            entries = self.store.entries()
        return {
            "entries": [
                {
                    "key": entry.key,
                    "label": entry.label,
                    "payload_bytes": entry.payload_bytes,
                    "access": entry.access,
                    "created": entry.created,
                }
                for entry in entries
            ]
        }

    def _op_get(self, request: dict[str, Any]) -> dict[str, Any]:
        """Store lookup by key; never computes."""
        key = request.get("key")
        if not isinstance(key, str):
            raise ValueError("get needs a string 'key'")
        landscape = None
        if self.store is not None:
            with self._store_lock:
                landscape = self.store.get(key)
        return {
            "landscape": None
            if landscape is None
            else encode_blob(landscape.to_bytes())
        }

    def _op_invalidate(self, request: dict[str, Any]) -> dict[str, Any]:
        """Drop one store entry by key."""
        key = request.get("key")
        if not isinstance(key, str):
            raise ValueError("invalidate needs a string 'key'")
        removed = False
        if self.store is not None:
            with self._store_lock:
                removed = self.store.invalidate(key)
        return {"removed": removed}

    def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        """Acknowledge, then stop the serve loop from a side thread."""
        threading.Thread(target=self.close, daemon=True).start()
        return {"stopping": True}

    def _op_evaluate(self, request: dict[str, Any]) -> dict[str, Any]:
        """Raw batch evaluation with rng round-tripping (uncached).

        The task dict carries ``ansatz``, ``batch`` and optionally
        ``noise``/``shots``/``rng``/``shard_points``/``seed``.  The
        caller's generator (if any) is consumed here and shipped back,
        so the client can restore its own generator to the exact stream
        position — the property the equivalence harness probes.
        """
        task = self._load_task(request)
        executor = ShardedExecutor(
            workers=self.workers,
            shard_points=self._resolve_shard_points(task),
            seed=task.get("seed"),
            pool=self._pool,
        )
        rng = task.get("rng")
        values = executor.run_ansatz(
            task["ansatz"],
            task["batch"],
            noise=task.get("noise"),
            shots=task.get("shots"),
            rng=rng,
        )
        self._bump("evaluations")
        return {
            "values": encode_blob(pickle.dumps(np.asarray(values))),
            "rng": None if rng is None else encode_blob(pickle.dumps(rng)),
        }

    def _op_compute(self, request: dict[str, Any]) -> dict[str, Any]:
        """The service path: store hit, else single-flighted compute.

        The spec (and therefore the dedup/cache key) is derived *here*
        from the pickled task, never trusted from the client, so the
        in-flight table and the store can never disagree about what a
        request means.
        """
        task = self._load_task(request)
        generator = self._generator_for(task)
        spec = generator.cache_spec()

        def produce() -> tuple[Any, bool]:
            landscape = None
            if self.store is not None:
                with self._store_lock:
                    landscape = self.store.get(spec)
            if landscape is not None:
                self._bump("hits")
                return landscape, True
            self._bump("misses")
            self._bump("computed")
            landscape = generator.local_grid_search(
                str(task.get("label", "landscape"))
            )
            if self.store is not None:
                with self._store_lock:
                    self.store.put(spec, landscape)
            return landscape, False

        (landscape, hit), deduped = self._single_flight(spec.key(), produce)
        return {
            "landscape": encode_blob(landscape.to_bytes()),
            "hit": hit,
            "deduped": deduped,
        }

    def _op_compute_indices(self, request: dict[str, Any]) -> dict[str, Any]:
        """Sparse evaluation of a flat-index set (OSCAR's sampling path).

        Two task shapes, dispatched on what the task carries:

        - **function-shaped** (``function``/``grid``/``indices``) — the
          service path used by
          :meth:`~repro.landscape.generator.LandscapeGenerator.evaluate_indices`:
          indices are bounds-validated, exact requests are answered
          from a cached dense landscape in the store when one exists
          (read-through — no pool touch), and deterministic requests
          single-flight on (dense spec key, canonicalized index set);
        - **ansatz-shaped** (``ansatz``/``grid``/``indices`` +
          ``noise``/``shots``/``rng``) — the raw path mirroring
          ``evaluate``: index points resolve server-side and run
          through the sharded executor with the caller's rng threaded
          through and shipped back.  Per-row noise sequences align with
          the index list.  This is the ``daemon-sparse`` equivalence
          engine's path.

        Either way the caller's generator (when bound) is consumed here
        and its final state returned, preserving the cross-engine rng
        draw-order contract over the wire.
        """
        task = self._load_task(request)
        if "grid" not in task:
            raise ValueError("compute_indices task needs 'grid' and 'indices'")
        grid = task["grid"]
        flat_indices = validate_flat_indices(int(grid.size), task.get("indices"))

        if "ansatz" in task:
            executor = ShardedExecutor(
                workers=self.workers,
                shard_points=self._resolve_shard_points(task),
                seed=task.get("seed"),
                pool=self._pool,
            )
            rng = task.get("rng")
            values = executor.run_ansatz(
                task["ansatz"],
                grid.points_from_flat(flat_indices),
                noise=task.get("noise"),
                shots=task.get("shots"),
                rng=rng,
            )
            self._bump("evaluations")
            return {
                "values": encode_blob(pickle.dumps(np.asarray(values))),
                "rng": None if rng is None else encode_blob(pickle.dumps(rng)),
                "readthrough": False,
                "deduped": False,
            }

        generator = self._generator_for(task)
        values, readthrough, deduped = self._sparse_values(generator, flat_indices)
        rng = getattr(generator.function, "rng", None)
        return {
            "values": encode_blob(pickle.dumps(np.asarray(values))),
            "rng": None if rng is None else encode_blob(pickle.dumps(rng)),
            "readthrough": readthrough,
            "deduped": deduped,
        }

    def _op_pipeline(self, request: dict[str, Any]) -> dict[str, Any]:
        """The whole paper loop, server-side, in one request.

        Runs :func:`~repro.service.pipeline.run_pipeline` on the
        daemon's resources, with the evaluation stage routed through
        the same sparse service path as ``compute_indices`` (so a
        cached dense landscape read-throughs here too).  The
        reconstruction is cached under a pipeline spec when the request
        is reproducible (integer sample seed + deterministic
        evaluation), and its store key returned as a handle.  Pipeline
        requests are *not* single-flighted: an unseeded sampling rng
        makes two byte-identical requests legitimately different runs.
        """
        from .pipeline import PipelineConfig, pipeline_spec, run_pipeline

        task = self._load_task(request)
        config = task.get("config")
        if not isinstance(config, PipelineConfig):
            raise TypeError("pipeline task needs a PipelineConfig 'config'")
        generator = self._generator_for(task)
        sample_rng = task.get("sample_rng")
        outcome = run_pipeline(
            generator,
            config,
            sample_rng,
            evaluate=lambda indices: self._sparse_values(generator, indices)[0],
        )
        self._bump("pipeline_runs")

        key = None
        if self.store is not None and isinstance(sample_rng, int):
            try:
                spec = pipeline_spec(generator, config, sample_rng)
            except (TypeError, ValueError, AttributeError):
                spec = None
            if spec is not None:
                with self._store_lock:
                    self.store.put(spec, outcome.landscape)
                key = spec.key()

        rng = getattr(generator.function, "rng", None)
        result = {
            "report": outcome.report,
            "optimization": outcome.optimization,
            "flat_indices": outcome.flat_indices,
            "values": outcome.values,
        }
        return {
            "landscape": encode_blob(outcome.landscape.to_bytes()),
            "result": encode_blob(pickle.dumps(result)),
            "timings": {name: float(t) for name, t in outcome.timings.items()},
            "key": key,
            "rng": None if rng is None else encode_blob(pickle.dumps(rng)),
            "sample_rng": (
                encode_blob(pickle.dumps(sample_rng))
                if isinstance(sample_rng, np.random.Generator)
                else None
            ),
        }

    # -- compute helpers ---------------------------------------------------

    def _single_flight(
        self,
        key: str,
        produce: Callable[[], Any],
        counter: str = "deduped",
    ) -> tuple[Any, bool]:
        """Run ``produce`` once per key; concurrent callers share the
        outcome (or the leader's exception).  Returns ``(result,
        deduped)``; ``counter`` names which dedup counter followers
        bump."""
        with self._inflight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[key] = flight

        if not leader:
            self._bump(counter)
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, True

        try:
            flight.result = produce()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.done.set()
        return flight.result, False

    def _sparse_identity(
        self, generator, flat_indices: np.ndarray
    ) -> tuple[str | None, Any]:
        """``(single-flight key, dense spec)`` of a sparse request.

        The key recipe (documented in ``service/README.md``): sha256
        over the *dense* landscape spec key, the first sparse shard's
        size (the rng plan over the index list, relevant under seeded
        shot noise), and the raw little-endian int64 bytes of the index
        array — order-preserving, because response values align with
        request order and seeded draws depend on point order.

        Returns ``(None, None)`` when the request has no stable
        identity: a live rng (unseeded shot noise — every run is a
        different draw), a cost function that cannot describe itself,
        or a duck-typed grid the spec cannot canonicalize.  Those
        requests skip dedup and read-through and just evaluate.
        """
        try:
            dense_spec = generator.cache_spec()
        except (TypeError, ValueError, AttributeError):
            return None, None
        shards = plan_shards(int(flat_indices.size), generator.shard_points)
        digest = hashlib.sha256()
        digest.update(dense_spec.key().encode("ascii"))
        digest.update(str(shards[0].size if shards else 0).encode("ascii"))
        digest.update(np.ascontiguousarray(flat_indices, dtype=np.int64).tobytes())
        return "sparse:" + digest.hexdigest()[:32], dense_spec

    def _sparse_values(
        self, generator, flat_indices: np.ndarray
    ) -> tuple[np.ndarray, bool, bool]:
        """Values at ``flat_indices``: read-through, dedup, or compute.

        Returns ``(values, readthrough, deduped)``.  The read-through
        fast path only answers **exact** requests: a cached shot-noise
        landscape's draws were seeded by the dense grid's point
        fingerprint, so its values at the sampled indices are a
        *different* stochastic draw than evaluating the subset — serving
        them would silently correlate OSCAR's samples with the ground
        truth (the exact property the spawn-mode fingerprint exists to
        prevent).
        """
        flat_indices = np.ascontiguousarray(flat_indices, dtype=np.int64)
        key, dense_spec = self._sparse_identity(generator, flat_indices)

        def produce() -> tuple[np.ndarray, bool]:
            if (
                dense_spec is not None
                and self.store is not None
                and getattr(generator.function, "shots", None) is None
            ):
                with self._store_lock:
                    cached = self.store.get(dense_spec)
                if cached is not None:
                    self._bump("sparse_hits")
                    return np.asarray(cached.flat()[flat_indices], dtype=float), True
            self._bump("sparse_computed")
            return generator.local_evaluate_indices(flat_indices), False

        if key is None:
            values, readthrough = produce()
            return values, readthrough, False
        (values, readthrough), deduped = self._single_flight(
            key, produce, counter="sparse_deduped"
        )
        return values, readthrough, deduped

    def _resolve_shard_points(self, task: dict[str, Any]) -> int | None:
        """The task's shard layout, else the daemon's default.

        Clients serialize an explicit ``shard_points: None`` when the
        caller did not choose a layout, so a plain ``dict.get`` default
        would never apply ``--shard-points``.
        """
        shard_points = task.get("shard_points")
        return self.shard_points if shard_points is None else shard_points

    def _generator_for(self, task: dict[str, Any]):
        """A generator executing this task on the daemon's resources.

        Worker count comes from the daemon (results are worker-count
        independent by the sharded-executor contract); the rng plan
        (``seed``/``shard_points``) comes from the task, falling back
        to the daemon's default layout — it is part of the cache key
        for shot-noise landscapes.
        """
        from ..landscape.generator import LandscapeGenerator

        if "function" not in task or "grid" not in task:
            raise ValueError("compute task needs 'function' and 'grid'")
        return LandscapeGenerator(
            task["function"],
            task["grid"],
            batch_size=task.get("batch_size"),
            workers=self.workers,
            shard_points=self._resolve_shard_points(task),
            seed=task.get("seed"),
            executor_pool=self._pool,
        )

