"""The landscape daemon: a persistent-pool service front over the store.

:class:`LandscapeDaemon` is a long-running server that owns **one**
persistent ``multiprocessing`` pool and **one**
:class:`~repro.service.store.LandscapeStore`, and serves landscape
requests to any number of local clients over a Unix-domain socket.
Compared with each client running its own
:class:`~repro.service.shards.ShardedExecutor`, the daemon

- **amortizes pool startup**: workers fork once at daemon start and
  stay warm, so a request pays only the socket round trip instead of
  per-call pool creation (gated in ``benchmarks/test_daemon.py``);
- **single-flights identical requests**: concurrent ``compute``
  requests for the same :class:`~repro.service.store.LandscapeSpec`
  key join one in-flight computation instead of racing the pool — the
  leader computes, followers wait on the result;
- **makes LRU accounting single-writer**: every store read/write runs
  under the daemon's store lock in one process, which closes the
  documented last-writer-wins hazard of multiple processes bumping the
  access counter independently (the ``flock`` fallback in the store
  remains for direct multi-process use without a daemon).

Wire protocol — **JSON lines** over ``AF_UNIX``: each request is a
single newline-terminated JSON object; each response is a single JSON
object with ``"ok": true`` plus op-specific fields, or ``"ok": false``
and a structured ``"error": {"type", "message"}`` (a malformed request
gets an error response; it never kills the server).  A connection may
issue any number of requests sequentially.

==================  =========================================================
op                  meaning
==================  =========================================================
``ping``            liveness probe; returns pid/workers/uptime
``compute``         ``get_or_compute`` for a pickled ``(function, grid,
                    ...)`` task: store hit, else single-flighted
                    computation on the persistent pool; returns the
                    landscape as base64 ``.npz``
``compute_indices`` sparse evaluation of an arbitrary flat-index set
                    (OSCAR's sampling path) through the persistent
                    pool.  Function-shaped tasks get the full service
                    treatment — bounds validation, a read-through fast
                    path answering exact requests from a cached dense
                    landscape without touching the pool, and
                    single-flight dedup keyed on (dense spec key,
                    canonicalized index set) — while ansatz-shaped
                    tasks mirror ``evaluate`` (rng round-trip, per-row
                    noise), which is how the ``daemon-sparse``
                    equivalence engine registers
``pipeline``        the whole paper loop in one request: sample →
                    reconstruct (batched FISTA) → optimize, returning
                    the reconstructed landscape (plus its store key
                    when reproducible) and the full optimizer
                    trajectory with per-stage timings
``get``             store lookup by spec key (no computation)
``evaluate``        raw (uncached) batch evaluation of a pickled ansatz
                    task; threads the caller's pickled rng through and
                    returns its final state, which is what lets the
                    daemon-backed path register in
                    ``tests/equivalence/harness.py``
``invalidate``      drop one store entry by key
``index``           list cached entries (key, label, bytes, access)
``stats``           per-op counters (dense hits, sparse read-through
                    hits, pipeline runs, dedups, errors) + store summary
``shutdown``        stop serving (the socket file is removed on close)
==================  =========================================================

**Two protocol generations, two transports.**  The table above is
protocol **v1**: unversioned frames whose tasks are **pickled** by the
client.  Its trust boundary is the socket file's filesystem
permissions: anyone who can connect can execute code in the daemon
process, exactly like any local pickle-based worker pool
(``multiprocessing`` itself included) — keep the socket in a directory
only the owning user can write.  v1 is accepted **only on the Unix
socket**, and only for one more release.

Protocol **v2** (:mod:`repro.service.protocol`) is versioned and
pickle-free: every frame carries ``"version": 2``, tasks are
declarative JSON specs resolved server-side from the ansatz/function
registry, and every failure is a structured ``{"code", "type",
"message", "retryable"}`` error.  v2 works on both transports and is
the only protocol spoken on the **TCP listener** (``tcp=``), an asyncio
front with per-connection idle timeouts, a max-payload limit, a
connection cap that sheds load with a retryable ``overloaded`` error,
and graceful drain on shutdown.  TCP requires **bearer-token auth**
(``tokens_file=``): tokens resolve to tenants, each tenant gets its own
store namespace and byte quota
(:class:`~repro.service.store.TenantStores`), and identical exact specs
still dedupe compute across tenants through the content-addressed key.
Unauthenticated Unix-socket requests keep operating on the default
namespace, so existing callers and on-disk caches are untouched.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import pickle
import socketserver
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, BinaryIO, Callable

import numpy as np

from ..landscape.grid import validate_flat_indices
from .protocol import (
    DEFAULT_TENANT,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ProtocolError,
    ansatz_from_spec,
    authenticate,
    decode_array,
    encode_array,
    encode_rng_state,
    function_from_spec,
    grid_from_spec,
    load_tokens,
    noise_from_spec,
    rng_from_state,
)
from .shards import ShardedExecutor, _pool_context, plan_shards
from .store import LandscapeStore, TenantStores

__all__ = ["LandscapeDaemon", "DEFAULT_SOCKET", "DEFAULT_MAX_PAYLOAD_BYTES"]

#: Default Unix-socket path (relative to the working directory) shared
#: by ``oscar-repro serve`` and the ``--daemon`` client flags.
DEFAULT_SOCKET = "oscar-repro.sock"

#: Default per-frame byte limit on the TCP listener (requests and
#: responses are single JSON lines; 32 MiB covers paper-sized grids
#: with room to spare while bounding a hostile frame).
DEFAULT_MAX_PAYLOAD_BYTES = 32 * 1024 * 1024


def encode_blob(data: bytes) -> str:
    """Binary payload -> JSON-safe base64 string (wire helper)."""
    return base64.b64encode(data).decode("ascii")


def decode_blob(text: str) -> bytes:
    """Inverse of :func:`encode_blob`."""
    return base64.b64decode(text.encode("ascii"))


def _parse_tcp(value: str | int | tuple) -> tuple[str, int]:
    """Normalize a ``tcp=`` setting to ``(host, port)``.

    Accepts ``(host, port)``, a bare port, ``"host:port"``, ``":port"``
    (localhost) and the client's ``tcp://host:port`` scheme.
    """
    if isinstance(value, int):
        return ("127.0.0.1", value)
    if isinstance(value, (tuple, list)):
        host, port = value
        return (str(host), int(port))
    text = str(value)
    if text.startswith("tcp://"):
        text = text[len("tcp://") :]
    host, _, port = text.rpartition(":")
    if not port:
        raise ValueError(f"tcp address {value!r} needs a port (host:port)")
    return (host or "127.0.0.1", int(port))


def read_response(stream: BinaryIO) -> dict[str, Any]:
    """Read one JSON-lines protocol message from a binary stream.

    Raises ``ConnectionError`` on EOF (the peer vanished mid-request),
    which the client maps to its unavailable/fallback path.
    """
    line = stream.readline()
    if not line:
        raise ConnectionError("daemon closed the connection mid-request")
    return json.loads(line)


def write_message(stream: BinaryIO, message: dict[str, Any]) -> None:
    """Write one JSON-lines protocol message to a binary stream."""
    stream.write(json.dumps(message).encode("utf-8") + b"\n")
    stream.flush()


class _Flight:
    """One in-flight computation that concurrent identical requests join.

    ``result`` is whatever the leader's producer returned — a
    ``(landscape, hit)`` pair for ``compute``, a ``(values,
    readthrough)`` pair for ``compute_indices`` — so the single-flight
    machinery is shared across ops.
    """

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    """Threading Unix-socket server holding a back-reference to the daemon."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: str, landscape_daemon: "LandscapeDaemon"):
        self.landscape_daemon = landscape_daemon
        super().__init__(socket_path, _Handler)


class _Handler(socketserver.StreamRequestHandler):
    """Per-connection handler: one JSON line in, one JSON line out."""

    def handle(self) -> None:
        daemon = self.server.landscape_daemon
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            response = daemon.handle_line(line)
            try:
                write_message(self.wfile, response)
            except (BrokenPipeError, ConnectionResetError):
                return  # client went away; nothing to report to


class LandscapeDaemon:
    """Long-running landscape server over a Unix-domain socket.

    Args:
        socket_path: where to bind the ``AF_UNIX`` socket (the file is
            created on :meth:`start` and removed on :meth:`close`; keep
            it under ~100 characters, the kernel's path limit).
        workers: process count for the persistent pool.  ``1`` serves
            every request in-process (no pool) — still useful for the
            shared cache, single-flight dedup, and single-writer LRU.
        cache_dir: directory for the daemon's
            :class:`~repro.service.store.LandscapeStore`.  ``None``
            (and no ``store``) disables caching: every ``compute``
            computes, but identical concurrent requests still
            single-flight.
        store: an existing store instance (overrides ``cache_dir``).
        max_bytes: LRU byte budget passed to the store built from
            ``cache_dir``.
        shard_points: default shard layout for requests that do not
            bring their own (see
            :func:`~repro.service.shards.plan_shards`).
        tcp: optionally also listen on TCP — ``"host:port"`` (or
            ``(host, port)`` / a bare port); port ``0`` binds an
            ephemeral port, readable from :attr:`tcp_address` after
            :meth:`start`.  TCP speaks wire protocol v2 only and
            **requires** ``tokens_file``.
        tokens_file: path to the bearer-token file (see
            :func:`~repro.service.protocol.load_tokens`).  Tokens
            resolve to tenants; each tenant gets its own store
            namespace under ``<cache root>/tenants/<tenant>/``.
        tenant_quota_bytes: default per-tenant store byte budget for
            tenants whose credential does not carry ``quota_bytes``
            (``None`` = unbounded).
        max_payload_bytes: per-frame byte limit on the TCP listener.
        max_connections: concurrent TCP connection cap; connections
            beyond it are shed with a retryable ``overloaded`` error.
        max_concurrent_requests: TCP requests executing at once;
            excess requests queue (bounded worker pool), they are not
            shed.
        idle_timeout: seconds a TCP connection may sit idle between
            requests before the daemon disconnects it.
        drain_timeout: seconds :meth:`close` waits for in-flight TCP
            requests to finish before cancelling their connections.

    Typical embedding (tests, examples) runs the daemon on a background
    thread::

        daemon = LandscapeDaemon("d.sock", workers=2, cache_dir="cache")
        daemon.start()          # binds + serves on a thread
        ...                     # clients connect via LandscapeClient
        daemon.close()          # stop serving, join, release the pool

    ``oscar-repro serve`` runs :meth:`serve_forever` in the foreground
    instead.
    """

    def __init__(
        self,
        socket_path: str | Path,
        workers: int = 1,
        cache_dir: str | Path | None = None,
        store: LandscapeStore | None = None,
        max_bytes: int | None = None,
        shard_points: int | None = None,
        tcp: str | int | tuple | None = None,
        tokens_file: str | Path | None = None,
        tenant_quota_bytes: int | None = None,
        max_payload_bytes: int = DEFAULT_MAX_PAYLOAD_BYTES,
        max_connections: int = 64,
        max_concurrent_requests: int = 8,
        idle_timeout: float = 60.0,
        drain_timeout: float = 5.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.socket_path = Path(socket_path)
        self.workers = int(workers)
        self.shard_points = shard_points
        if store is None and cache_dir is not None:
            store = LandscapeStore(cache_dir, max_bytes=max_bytes)
        self.store = store
        self.credentials = () if tokens_file is None else load_tokens(tokens_file)
        self.tenants = TenantStores(
            default_store=store,
            quotas={
                credential.tenant: credential.quota_bytes
                for credential in self.credentials
                if credential.quota_bytes is not None
            },
            default_quota=tenant_quota_bytes,
            default_tenant=DEFAULT_TENANT,
        )
        self._tcp_config = None if tcp is None else _parse_tcp(tcp)
        if self._tcp_config is not None and not self.credentials:
            raise ValueError(
                "TCP serving requires tokens_file=: the network front "
                "authenticates every request with a bearer token"
            )
        if max_payload_bytes < 1024:
            raise ValueError(
                f"max_payload_bytes must be >= 1024, got {max_payload_bytes}"
            )
        self.max_payload_bytes = int(max_payload_bytes)
        self.max_connections = int(max_connections)
        self.max_concurrent_requests = max(1, int(max_concurrent_requests))
        self.idle_timeout = float(idle_timeout)
        self.drain_timeout = float(drain_timeout)
        self._store_lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}
        self._inflight_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "hits": 0,
            "misses": 0,
            "computed": 0,
            "deduped": 0,
            "evaluations": 0,
            "sparse_hits": 0,
            "sparse_computed": 0,
            "sparse_deduped": 0,
            "pipeline_runs": 0,
            "errors": 0,
        }
        self._tenant_counters: dict[str, dict[str, int]] = {}
        self._pool = None
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None
        self._started = time.time()
        # TCP listener state (all None/empty until _bind with tcp=).
        self._tcp_thread: threading.Thread | None = None
        self._tcp_loop: asyncio.AbstractEventLoop | None = None
        self._tcp_stop: asyncio.Event | None = None
        self._tcp_ready = threading.Event()
        self._tcp_error: BaseException | None = None
        self._tcp_address: tuple[str, int] | None = None
        self._tcp_connections = 0
        self._tcp_connection_lock = threading.Lock()
        self._request_executor: ThreadPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------

    def _bind(self) -> None:
        """Create the pool and bind the socket (idempotent)."""
        if self._server is not None:
            return
        if self.workers > 1 and self._pool is None:
            # Fork the workers before any serving thread exists:
            # fork-under-threads is the classic multiprocessing hazard
            # the persistent pool is designed to avoid.
            self._pool = _pool_context().Pool(processes=self.workers)
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = _Server(str(self.socket_path), self)
        # Owner-only: anyone who can connect can execute pickled tasks,
        # so do not rely on the umask to keep other users out.
        os.chmod(self.socket_path, 0o600)
        if self._tcp_config is not None:
            self._start_tcp()
        self._started = time.time()

    @property
    def tcp_address(self) -> tuple[str, int] | None:
        """The TCP listener's bound ``(host, port)`` (``None`` without
        ``tcp=`` or before :meth:`start`).  With port ``0`` this is how
        callers discover the ephemeral port."""
        return self._tcp_address

    def _start_tcp(self) -> None:
        """Run the asyncio TCP front on its own thread (idempotent)."""
        if self._tcp_thread is not None:
            return
        self._request_executor = ThreadPoolExecutor(
            max_workers=self.max_concurrent_requests,
            thread_name_prefix="landscape-daemon-req",
        )
        self._tcp_ready.clear()
        self._tcp_error = None
        self._tcp_thread = threading.Thread(
            target=lambda: asyncio.run(self._tcp_serve()),
            name="landscape-daemon-tcp",
            daemon=True,
        )
        self._tcp_thread.start()
        if not self._tcp_ready.wait(timeout=10.0):
            raise RuntimeError("TCP listener failed to start within 10s")
        if self._tcp_error is not None:
            error, self._tcp_error = self._tcp_error, None
            self._tcp_thread.join(timeout=1.0)
            self._tcp_thread = None
            raise error

    def _stop_tcp(self) -> None:
        """Signal the TCP loop to drain and stop, then join its thread."""
        thread, self._tcp_thread = self._tcp_thread, None
        if thread is None:
            return
        loop, stop = self._tcp_loop, self._tcp_stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # loop already closed
                pass
        thread.join(timeout=self.drain_timeout + 10.0)
        self._tcp_loop = None
        self._tcp_stop = None
        self._tcp_address = None
        if self._request_executor is not None:
            self._request_executor.shutdown(wait=False)
            self._request_executor = None

    def start(self) -> None:
        """Bind the socket and serve on a background thread."""
        self._bind()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="landscape-daemon",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Bind the socket and serve in the calling thread (the CLI
        foreground path); returns after :meth:`close` or a ``shutdown``
        op."""
        self._bind()
        try:
            self._server.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        """Stop serving (TCP drains gracefully first), join the server
        threads, release pool + socket."""
        self._stop_tcp()
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.socket_path.unlink(missing_ok=True)

    def __enter__(self) -> "LandscapeDaemon":
        """Context-manager entry: :meth:`start` on a background thread."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # -- request plumbing --------------------------------------------------

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[counter] += amount

    def _bump_tenant(self, tenant: str, op: str) -> None:
        """Per-tenant per-op accounting (surfaces in ``stats``)."""
        with self._counter_lock:
            ops = self._tenant_counters.setdefault(tenant, {})
            ops[op] = ops.get(op, 0) + 1

    @staticmethod
    def _error_payload(error: BaseException) -> dict[str, Any]:
        """Structured error object: v1's ``{type, message}`` plus the v2
        ``code``/``retryable`` fields (harmless extras to v1 clients)."""
        payload: dict[str, Any] = {
            "type": type(error).__name__,
            "message": str(error) or traceback.format_exc(limit=1),
        }
        if isinstance(error, ProtocolError):
            payload["code"] = error.code
            payload["retryable"] = error.retryable
        else:
            payload["code"] = (
                "malformed"
                if isinstance(error, (json.JSONDecodeError, UnicodeDecodeError))
                else "internal"
            )
            payload["retryable"] = False
        return payload

    def handle_line(self, line: bytes, transport: str = "unix") -> dict[str, Any]:
        """One raw request line -> one response object.

        Version dispatch happens here: frames carrying a ``"version"``
        field take the v2 (pickle-free) path on either transport;
        unversioned frames are legacy v1 and are **only** accepted from
        the Unix socket — over TCP they get a structured
        ``unsupported-version`` error without touching any handler.

        Every failure — unparseable JSON, an unknown op, a bad spec, an
        exception inside the computation — becomes a structured
        ``{"ok": false, "error": ...}`` response; the server never dies
        on a request.
        """
        self._bump("requests")
        request: Any = None
        try:
            try:
                request = json.loads(line)
            except UnicodeDecodeError as error:
                raise ProtocolError(
                    "malformed", f"request is not UTF-8 JSON: {error}"
                ) from error
            if not isinstance(request, dict):
                raise ProtocolError("malformed", "request must be a JSON object")
            if "version" in request or transport != "unix":
                return self._handle_v2(request, transport)
            return self._handle_v1(request)
        except BaseException as error:  # noqa: BLE001 - protocol boundary
            self._bump("errors")
            response: dict[str, Any] = {
                "ok": False,
                "error": self._error_payload(error),
            }
            if transport != "unix" or (
                isinstance(request, dict) and "version" in request
            ):
                response["version"] = PROTOCOL_VERSION
            return response

    def _handle_v1(self, request: dict[str, Any]) -> dict[str, Any]:
        """The legacy unversioned dispatch (pickled tasks, Unix only)."""
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            raise ValueError(f"unknown op {op!r}")
        response = handler(request)
        response["ok"] = True
        return response

    def _handle_v2(self, request: dict[str, Any], transport: str) -> dict[str, Any]:
        """The versioned, pickle-free dispatch (both transports)."""
        version = request.get("version")
        if version is None:
            raise ProtocolError(
                "unsupported-version",
                "every TCP message needs a 'version' field; the legacy "
                "unversioned pickle protocol is accepted on the Unix "
                "socket only",
            )
        if not isinstance(version, int) or version not in SUPPORTED_VERSIONS:
            raise ProtocolError(
                "unsupported-version",
                f"unsupported protocol version {version!r}; this daemon "
                f"speaks {list(SUPPORTED_VERSIONS)}",
            )
        op = request.get("op")
        handler = V2_OPS.get(op) if isinstance(op, str) else None
        if handler is None:
            raise ProtocolError(
                "unknown-op",
                f"unknown v2 op {op!r}; supported: {sorted(V2_OPS)}",
            )
        tenant = self._authenticate(request, transport)
        self._bump_tenant(tenant, op)
        response = handler(self, request, tenant)
        response["ok"] = True
        response["version"] = PROTOCOL_VERSION
        return response

    def _authenticate(self, request: dict[str, Any], transport: str) -> str:
        """Resolve the request's tenant (before any pool/store work).

        TCP requires a valid bearer token.  Unix-socket requests keep
        the filesystem trust boundary: no token means the default
        tenant, but a *presented* token must still be valid — callers
        never silently fall back to another tenant's namespace.
        """
        token = request.get("token")
        if token is not None and not isinstance(token, str):
            raise ProtocolError("auth", "token must be a string")
        if token is None:
            if transport == "unix":
                return DEFAULT_TENANT
            raise ProtocolError("auth", "missing bearer token")
        if not self.credentials:
            raise ProtocolError(
                "auth", "this daemon has no tokens configured"
            )
        return authenticate(self.credentials, token).tenant

    @staticmethod
    def _load_task(request: dict[str, Any]) -> dict[str, Any]:
        task = request.get("task")
        if not isinstance(task, str):
            raise ValueError("request is missing its base64 'task' payload")
        loaded = pickle.loads(decode_blob(task))
        if not isinstance(loaded, dict):
            raise TypeError("task payload must unpickle to a dict")
        return loaded

    # -- ops ---------------------------------------------------------------

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        """Liveness probe."""
        return {
            "pid": os.getpid(),
            "workers": self.workers,
            "uptime": time.time() - self._started,
        }

    def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        """Counters + store summary + per-tenant accounting."""
        with self._counter_lock:
            counters = dict(self._counters)
            tenant_ops = {
                tenant: dict(ops) for tenant, ops in self._tenant_counters.items()
            }
        store_stats = None
        with self._store_lock:
            if self.store is not None:
                store_stats = self.store.stats()
            tenant_stores = self.tenants.stats()
        tenants = {
            tenant: {
                "ops": tenant_ops.get(tenant, {}),
                "store": tenant_stores.get(tenant),
            }
            for tenant in sorted(set(tenant_ops) | set(tenant_stores))
        }
        return {
            "pid": os.getpid(),
            "workers": self.workers,
            "uptime": time.time() - self._started,
            "counters": counters,
            "store": store_stats,
            "tenants": tenants,
        }

    def _op_index(self, request: dict[str, Any]) -> dict[str, Any]:
        """Store index listing (LRU first); empty without a store."""
        if self.store is None:
            return {"entries": []}
        with self._store_lock:
            entries = self.store.entries()
        return {
            "entries": [
                {
                    "key": entry.key,
                    "label": entry.label,
                    "payload_bytes": entry.payload_bytes,
                    "access": entry.access,
                    "created": entry.created,
                }
                for entry in entries
            ]
        }

    def _op_get(self, request: dict[str, Any]) -> dict[str, Any]:
        """Store lookup by key; never computes."""
        key = request.get("key")
        if not isinstance(key, str):
            raise ValueError("get needs a string 'key'")
        landscape = None
        if self.store is not None:
            with self._store_lock:
                landscape = self.store.get(key)
        return {
            "landscape": None
            if landscape is None
            else encode_blob(landscape.to_bytes())
        }

    def _op_invalidate(self, request: dict[str, Any]) -> dict[str, Any]:
        """Drop one store entry by key."""
        key = request.get("key")
        if not isinstance(key, str):
            raise ValueError("invalidate needs a string 'key'")
        removed = False
        if self.store is not None:
            with self._store_lock:
                removed = self.store.invalidate(key)
        return {"removed": removed}

    def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        """Acknowledge, then stop the serve loop from a side thread."""
        threading.Thread(target=self.close, daemon=True).start()
        return {"stopping": True}

    def _op_evaluate(self, request: dict[str, Any]) -> dict[str, Any]:
        """Raw batch evaluation with rng round-tripping (uncached).

        The task dict carries ``ansatz``, ``batch`` and optionally
        ``noise``/``shots``/``rng``/``shard_points``/``seed``.  The
        caller's generator (if any) is consumed here and shipped back,
        so the client can restore its own generator to the exact stream
        position — the property the equivalence harness probes.
        """
        task = self._load_task(request)
        executor = ShardedExecutor(
            workers=self.workers,
            shard_points=self._resolve_shard_points(task),
            seed=task.get("seed"),
            pool=self._pool,
        )
        rng = task.get("rng")
        values = executor.run_ansatz(
            task["ansatz"],
            task["batch"],
            noise=task.get("noise"),
            shots=task.get("shots"),
            rng=rng,
        )
        self._bump("evaluations")
        return {
            "values": encode_blob(pickle.dumps(np.asarray(values))),
            "rng": None if rng is None else encode_blob(pickle.dumps(rng)),
        }

    def _op_compute(self, request: dict[str, Any]) -> dict[str, Any]:
        """The service path: store hit, else single-flighted compute.

        The spec (and therefore the dedup/cache key) is derived *here*
        from the pickled task, never trusted from the client, so the
        in-flight table and the store can never disagree about what a
        request means.
        """
        task = self._load_task(request)
        generator = self._generator_for(task)
        spec = generator.cache_spec()

        def produce() -> tuple[Any, bool]:
            landscape = None
            if self.store is not None:
                with self._store_lock:
                    landscape = self.store.get(spec)
            if landscape is not None:
                self._bump("hits")
                return landscape, True
            self._bump("misses")
            self._bump("computed")
            landscape = generator.local_grid_search(
                str(task.get("label", "landscape"))
            )
            if self.store is not None:
                with self._store_lock:
                    self.store.put(spec, landscape)
            return landscape, False

        (landscape, hit), deduped = self._single_flight(spec.key(), produce)
        return {
            "landscape": encode_blob(landscape.to_bytes()),
            "hit": hit,
            "deduped": deduped,
        }

    def _op_compute_indices(self, request: dict[str, Any]) -> dict[str, Any]:
        """Sparse evaluation of a flat-index set (OSCAR's sampling path).

        Two task shapes, dispatched on what the task carries:

        - **function-shaped** (``function``/``grid``/``indices``) — the
          service path used by
          :meth:`~repro.landscape.generator.LandscapeGenerator.evaluate_indices`:
          indices are bounds-validated, exact requests are answered
          from a cached dense landscape in the store when one exists
          (read-through — no pool touch), and deterministic requests
          single-flight on (dense spec key, canonicalized index set);
        - **ansatz-shaped** (``ansatz``/``grid``/``indices`` +
          ``noise``/``shots``/``rng``) — the raw path mirroring
          ``evaluate``: index points resolve server-side and run
          through the sharded executor with the caller's rng threaded
          through and shipped back.  Per-row noise sequences align with
          the index list.  This is the ``daemon-sparse`` equivalence
          engine's path.

        Either way the caller's generator (when bound) is consumed here
        and its final state returned, preserving the cross-engine rng
        draw-order contract over the wire.
        """
        task = self._load_task(request)
        if "grid" not in task:
            raise ValueError("compute_indices task needs 'grid' and 'indices'")
        grid = task["grid"]
        flat_indices = validate_flat_indices(int(grid.size), task.get("indices"))

        if "ansatz" in task:
            executor = ShardedExecutor(
                workers=self.workers,
                shard_points=self._resolve_shard_points(task),
                seed=task.get("seed"),
                pool=self._pool,
            )
            rng = task.get("rng")
            values = executor.run_ansatz(
                task["ansatz"],
                grid.points_from_flat(flat_indices),
                noise=task.get("noise"),
                shots=task.get("shots"),
                rng=rng,
            )
            self._bump("evaluations")
            return {
                "values": encode_blob(pickle.dumps(np.asarray(values))),
                "rng": None if rng is None else encode_blob(pickle.dumps(rng)),
                "readthrough": False,
                "deduped": False,
            }

        generator = self._generator_for(task)
        values, readthrough, deduped = self._sparse_values(
            generator, flat_indices, self.store
        )
        rng = getattr(generator.function, "rng", None)
        return {
            "values": encode_blob(pickle.dumps(np.asarray(values))),
            "rng": None if rng is None else encode_blob(pickle.dumps(rng)),
            "readthrough": readthrough,
            "deduped": deduped,
        }

    def _op_pipeline(self, request: dict[str, Any]) -> dict[str, Any]:
        """The whole paper loop, server-side, in one request.

        Runs :func:`~repro.service.pipeline.run_pipeline` on the
        daemon's resources, with the evaluation stage routed through
        the same sparse service path as ``compute_indices`` (so a
        cached dense landscape read-throughs here too).  The
        reconstruction is cached under a pipeline spec when the request
        is reproducible (integer sample seed + deterministic
        evaluation), and its store key returned as a handle.  Pipeline
        requests are *not* single-flighted: an unseeded sampling rng
        makes two byte-identical requests legitimately different runs.
        """
        from .pipeline import PipelineConfig, pipeline_spec, run_pipeline

        task = self._load_task(request)
        config = task.get("config")
        if not isinstance(config, PipelineConfig):
            raise TypeError("pipeline task needs a PipelineConfig 'config'")
        generator = self._generator_for(task)
        sample_rng = task.get("sample_rng")
        outcome = run_pipeline(
            generator,
            config,
            sample_rng,
            evaluate=lambda indices: self._sparse_values(
                generator, indices, self.store
            )[0],
        )
        self._bump("pipeline_runs")

        key = None
        if self.store is not None and isinstance(sample_rng, int):
            try:
                spec = pipeline_spec(generator, config, sample_rng)
            except (TypeError, ValueError, AttributeError):
                spec = None
            if spec is not None:
                with self._store_lock:
                    self.store.put(spec, outcome.landscape)
                key = spec.key()

        rng = getattr(generator.function, "rng", None)
        result = {
            "report": outcome.report,
            "optimization": outcome.optimization,
            "flat_indices": outcome.flat_indices,
            "values": outcome.values,
        }
        return {
            "landscape": encode_blob(outcome.landscape.to_bytes()),
            "result": encode_blob(pickle.dumps(result)),
            "timings": {name: float(t) for name, t in outcome.timings.items()},
            "key": key,
            "rng": None if rng is None else encode_blob(pickle.dumps(rng)),
            "sample_rng": (
                encode_blob(pickle.dumps(sample_rng))
                if isinstance(sample_rng, np.random.Generator)
                else None
            ),
        }

    # -- compute helpers ---------------------------------------------------

    def _single_flight(
        self,
        key: str,
        produce: Callable[[], Any],
        counter: str = "deduped",
    ) -> tuple[Any, bool]:
        """Run ``produce`` once per key; concurrent callers share the
        outcome (or the leader's exception).  Returns ``(result,
        deduped)``; ``counter`` names which dedup counter followers
        bump."""
        with self._inflight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[key] = flight

        if not leader:
            self._bump(counter)
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, True

        try:
            flight.result = produce()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.done.set()
        return flight.result, False

    def _sparse_identity(
        self, generator, flat_indices: np.ndarray
    ) -> tuple[str | None, Any]:
        """``(single-flight key, dense spec)`` of a sparse request.

        The key recipe (documented in ``service/README.md``): sha256
        over the *dense* landscape spec key, the first sparse shard's
        size (the rng plan over the index list, relevant under seeded
        shot noise), and the raw little-endian int64 bytes of the index
        array — order-preserving, because response values align with
        request order and seeded draws depend on point order.

        Returns ``(None, None)`` when the request has no stable
        identity: a live rng (unseeded shot noise — every run is a
        different draw), a cost function that cannot describe itself,
        or a duck-typed grid the spec cannot canonicalize.  Those
        requests skip dedup and read-through and just evaluate.
        """
        try:
            dense_spec = generator.cache_spec()
        except (TypeError, ValueError, AttributeError):
            return None, None
        shards = plan_shards(int(flat_indices.size), generator.shard_points)
        digest = hashlib.sha256()
        digest.update(dense_spec.key().encode("ascii"))
        digest.update(str(shards[0].size if shards else 0).encode("ascii"))
        digest.update(np.ascontiguousarray(flat_indices, dtype=np.int64).tobytes())
        return "sparse:" + digest.hexdigest()[:32], dense_spec

    def _sparse_values(
        self, generator, flat_indices: np.ndarray, store: LandscapeStore | None
    ) -> tuple[np.ndarray, bool, bool]:
        """Values at ``flat_indices``: read-through, dedup, or compute.

        Returns ``(values, readthrough, deduped)``.  The read-through
        fast path only answers **exact** requests: a cached shot-noise
        landscape's draws were seeded by the dense grid's point
        fingerprint, so its values at the sampled indices are a
        *different* stochastic draw than evaluating the subset — serving
        them would silently correlate OSCAR's samples with the ground
        truth (the exact property the spawn-mode fingerprint exists to
        prevent).
        """
        flat_indices = np.ascontiguousarray(flat_indices, dtype=np.int64)
        key, dense_spec = self._sparse_identity(generator, flat_indices)

        def produce() -> tuple[np.ndarray, bool]:
            if (
                dense_spec is not None
                and store is not None
                and getattr(generator.function, "shots", None) is None
            ):
                with self._store_lock:
                    cached = store.get(dense_spec)
                if cached is not None:
                    self._bump("sparse_hits")
                    return np.asarray(cached.flat()[flat_indices], dtype=float), True
            self._bump("sparse_computed")
            return generator.local_evaluate_indices(flat_indices), False

        if key is None:
            values, readthrough = produce()
            return values, readthrough, False
        (values, readthrough), deduped = self._single_flight(
            key, produce, counter="sparse_deduped"
        )
        return values, readthrough, deduped

    def _resolve_shard_points(self, task: dict[str, Any]) -> int | None:
        """The task's shard layout, else the daemon's default.

        Clients serialize an explicit ``shard_points: None`` when the
        caller did not choose a layout, so a plain ``dict.get`` default
        would never apply ``--shard-points``.
        """
        shard_points = task.get("shard_points")
        return self.shard_points if shard_points is None else shard_points

    def _generator_for(self, task: dict[str, Any]):
        """A generator executing this task on the daemon's resources.

        Worker count comes from the daemon (results are worker-count
        independent by the sharded-executor contract); the rng plan
        (``seed``/``shard_points``) comes from the task, falling back
        to the daemon's default layout — it is part of the cache key
        for shot-noise landscapes.
        """
        from ..landscape.generator import LandscapeGenerator

        if "function" not in task or "grid" not in task:
            raise ValueError("compute task needs 'function' and 'grid'")
        return LandscapeGenerator(
            task["function"],
            task["grid"],
            batch_size=task.get("batch_size"),
            workers=self.workers,
            shard_points=self._resolve_shard_points(task),
            seed=task.get("seed"),
            executor_pool=self._pool,
        )

    # -- v2 ops (pickle-free; the only handlers reachable over TCP) --------

    @staticmethod
    def _int_field(request: dict[str, Any], name: str) -> int | None:
        """An optional integer field, strictly typed (bools rejected)."""
        value = request.get(name)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                "malformed", f"{name!r} must be an integer or null"
            )
        return value

    def _v2_rng(self, request: dict[str, Any]) -> np.random.Generator | None:
        """The request's rng state resolved into a live generator."""
        payload = request.get("rng")
        return None if payload is None else rng_from_state(payload)

    def _v2_generator(
        self, request: dict[str, Any], rng: np.random.Generator | None = None
    ):
        """A generator resolved from declarative v2 specs — the spec
        registry (:mod:`repro.service.protocol`) is the only way a TCP
        request turns into code, so nothing on this path unpickles."""
        from ..landscape.generator import LandscapeGenerator

        function = function_from_spec(request.get("function"), rng=rng)
        grid = grid_from_spec(request.get("grid"))
        return LandscapeGenerator(
            function,
            grid,
            batch_size=self._int_field(request, "batch_size"),
            workers=self.workers,
            shard_points=self._resolve_shard_points(request),
            seed=self._int_field(request, "seed"),
            executor_pool=self._pool,
        )

    def _v2_spec_for(self, generator):
        """The generator's canonical spec; spec problems are the
        client's fault, not an internal error."""
        try:
            return generator.cache_spec()
        except (TypeError, ValueError) as error:
            raise ProtocolError("invalid-spec", str(error))

    def _v2_ping(self, request: dict[str, Any], tenant: str) -> dict[str, Any]:
        """Liveness probe (authenticated identity echoed back)."""
        return {
            "pid": os.getpid(),
            "workers": self.workers,
            "uptime": time.time() - self._started,
            "tenant": tenant,
            "protocol": PROTOCOL_VERSION,
        }

    def _v2_stats(self, request: dict[str, Any], tenant: str) -> dict[str, Any]:
        """Same counters as v1 ``stats`` (tenant section included)."""
        return self._op_stats(request)

    def _v2_index(self, request: dict[str, Any], tenant: str) -> dict[str, Any]:
        """Index listing over the caller's namespace only."""
        store = self.tenants.store_for(tenant)
        if store is None:
            return {"entries": []}
        with self._store_lock:
            entries = store.entries()
        return {
            "entries": [
                {
                    "key": entry.key,
                    "label": entry.label,
                    "payload_bytes": entry.payload_bytes,
                    "access": entry.access,
                    "created": entry.created,
                }
                for entry in entries
            ]
        }

    def _v2_get(self, request: dict[str, Any], tenant: str) -> dict[str, Any]:
        """Raw-key lookup — namespaced, never crosses tenants."""
        key = request.get("key")
        if not isinstance(key, str):
            raise ProtocolError("malformed", "get needs a string 'key'")
        store = self.tenants.store_for(tenant)
        landscape = None
        if store is not None:
            with self._store_lock:
                landscape = store.get(key)
        return {
            "landscape": None
            if landscape is None
            else encode_blob(landscape.to_bytes())
        }

    def _v2_invalidate(
        self, request: dict[str, Any], tenant: str
    ) -> dict[str, Any]:
        """Raw-key invalidation — namespaced, never crosses tenants."""
        key = request.get("key")
        if not isinstance(key, str):
            raise ProtocolError("malformed", "invalidate needs a string 'key'")
        store = self.tenants.store_for(tenant)
        removed = False
        if store is not None:
            with self._store_lock:
                removed = store.invalidate(key)
        return {"removed": removed}

    def _v2_shutdown(
        self, request: dict[str, Any], tenant: str
    ) -> dict[str, Any]:
        """Acknowledge, then stop both fronts from a side thread."""
        threading.Thread(target=self.close, daemon=True).start()
        return {"stopping": True}

    def _v2_evaluate(
        self, request: dict[str, Any], tenant: str
    ) -> dict[str, Any]:
        """Raw batch evaluation from declarative specs (uncached).

        Mirrors v1 ``evaluate`` — ansatz/noise resolve through the spec
        registry, the batch travels as a typed array codec, and the
        caller's rng state round-trips so client-side generators land
        on the exact stream position a local run would."""
        ansatz = ansatz_from_spec(request.get("ansatz"))
        batch = decode_array(request.get("batch"))
        if batch.ndim != 2:
            raise ProtocolError(
                "malformed", f"batch must be 2-D, got shape {batch.shape}"
            )
        rng = self._v2_rng(request)
        executor = ShardedExecutor(
            workers=self.workers,
            shard_points=self._resolve_shard_points(request),
            seed=self._int_field(request, "seed"),
            pool=self._pool,
        )
        values = executor.run_ansatz(
            ansatz,
            batch,
            noise=noise_from_spec(request.get("noise")),
            shots=self._int_field(request, "shots"),
            rng=rng,
        )
        self._bump("evaluations")
        return {
            "values": encode_array(np.asarray(values, dtype=float)),
            "rng": None if rng is None else encode_rng_state(rng),
        }

    def _v2_compute(
        self, request: dict[str, Any], tenant: str
    ) -> dict[str, Any]:
        """The v2 service path: tenant store hit, cross-tenant
        read-through for exact specs, else single-flighted compute.

        The single-flight key is the content-addressed spec key —
        tenant-independent on purpose, so two tenants racing the same
        spec compute it once; each still lands a copy in its own
        namespace (quota-accounted)."""
        generator = self._v2_generator(request)
        spec = self._v2_spec_for(generator)
        label = str(request.get("label", "landscape"))
        store = self.tenants.store_for(tenant)

        def produce() -> tuple[Any, bool]:
            if store is not None:
                with self._store_lock:
                    cached = store.get(spec)
                if cached is not None:
                    self._bump("hits")
                    return cached, True
            with self._store_lock:
                shared, _owner = self.tenants.read_through(spec, tenant)
                if shared is not None and store is not None:
                    store.put(spec, shared)
            if shared is not None:
                self._bump("hits")
                return shared, True
            self._bump("misses")
            self._bump("computed")
            landscape = generator.local_grid_search(label)
            if store is not None:
                with self._store_lock:
                    store.put(spec, landscape)
            return landscape, False

        (landscape, hit), deduped = self._single_flight(spec.key(), produce)
        if deduped and store is not None:
            # A follower joined another tenant's flight: the result
            # belongs in this tenant's namespace too.
            with self._store_lock:
                if store.get(spec) is None:
                    store.put(spec, landscape)
        return {
            "landscape": encode_blob(landscape.to_bytes()),
            "key": spec.key(),
            "hit": hit,
            "deduped": deduped,
        }

    def _v2_compute_indices(
        self, request: dict[str, Any], tenant: str
    ) -> dict[str, Any]:
        """Sparse evaluation from declarative specs.

        The same two shapes as v1 ``compute_indices`` (function-shaped
        service path with read-through/dedup against the caller's
        namespace; ansatz-shaped raw path), with indices as a typed
        int64 array or a plain JSON list."""
        grid = grid_from_spec(request.get("grid"))
        indices = request.get("indices")
        if isinstance(indices, dict):
            indices = decode_array(indices)
        try:
            flat_indices = validate_flat_indices(int(grid.size), indices)
        except (TypeError, ValueError) as error:
            raise ProtocolError("invalid-spec", str(error))

        rng = self._v2_rng(request)
        if "ansatz" in request:
            ansatz = ansatz_from_spec(request.get("ansatz"))
            executor = ShardedExecutor(
                workers=self.workers,
                shard_points=self._resolve_shard_points(request),
                seed=self._int_field(request, "seed"),
                pool=self._pool,
            )
            values = executor.run_ansatz(
                ansatz,
                grid.points_from_flat(flat_indices),
                noise=noise_from_spec(request.get("noise")),
                shots=self._int_field(request, "shots"),
                rng=rng,
            )
            self._bump("evaluations")
            return {
                "values": encode_array(np.asarray(values, dtype=float)),
                "rng": None if rng is None else encode_rng_state(rng),
                "readthrough": False,
                "deduped": False,
            }

        function = function_from_spec(request.get("function"), rng=rng)
        from ..landscape.generator import LandscapeGenerator

        generator = LandscapeGenerator(
            function,
            grid,
            batch_size=self._int_field(request, "batch_size"),
            workers=self.workers,
            shard_points=self._resolve_shard_points(request),
            seed=self._int_field(request, "seed"),
            executor_pool=self._pool,
        )
        store = self.tenants.store_for(tenant)
        values, readthrough, deduped = self._sparse_values(
            generator, flat_indices, store
        )
        rng = getattr(generator.function, "rng", None)
        return {
            "values": encode_array(np.asarray(values, dtype=float)),
            "rng": None if rng is None else encode_rng_state(rng),
            "readthrough": readthrough,
            "deduped": deduped,
        }

    def _v2_pipeline(
        self, request: dict[str, Any], tenant: str
    ) -> dict[str, Any]:
        """The whole paper loop from a declarative request.

        Mirrors v1 ``pipeline`` (sparse service path for evaluation,
        reproducible runs cached under the pipeline spec in the
        caller's namespace) with a JSON-only result shape: report and
        optimization come back as field dicts, arrays as typed codecs."""
        from dataclasses import asdict

        from ..cs.reconstruct import ReconstructionConfig
        from .pipeline import PipelineConfig, pipeline_spec, run_pipeline

        payload = request.get("config")
        if not isinstance(payload, dict):
            raise ProtocolError(
                "invalid-spec", "pipeline needs a 'config' object"
            )
        reconstruction = payload.get("reconstruction")
        initial_point = payload.get("initial_point")
        try:
            config = PipelineConfig(
                fraction=float(payload["fraction"]),
                sampler=str(payload.get("sampler", "uniform")),
                reconstruction=None
                if reconstruction is None
                else ReconstructionConfig(**reconstruction),
                optimizer=str(payload.get("optimizer", "cobyla")),
                optimizer_options=payload.get("optimizer_options"),
                initial_point=None
                if initial_point is None
                else tuple(float(x) for x in initial_point),
                label=str(payload.get("label", "oscar-pipeline")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                "invalid-spec", f"invalid pipeline config: {error}"
            )

        rng = self._v2_rng(request)
        generator = self._v2_generator(request, rng=rng)
        sample_payload = request.get("sample_rng")
        if sample_payload is None:
            sample_rng: Any = None
        elif isinstance(sample_payload, int) and not isinstance(
            sample_payload, bool
        ):
            sample_rng = sample_payload
        elif isinstance(sample_payload, dict):
            sample_rng = rng_from_state(sample_payload)
        else:
            raise ProtocolError(
                "malformed",
                "'sample_rng' must be an integer seed, an rng state "
                "object, or null",
            )
        store = self.tenants.store_for(tenant)
        outcome = run_pipeline(
            generator,
            config,
            sample_rng,
            evaluate=lambda indices: self._sparse_values(
                generator, indices, store
            )[0],
        )
        self._bump("pipeline_runs")

        key = None
        if store is not None and isinstance(sample_rng, int):
            try:
                spec = pipeline_spec(generator, config, sample_rng)
            except (TypeError, ValueError, AttributeError):
                spec = None
            if spec is not None:
                with self._store_lock:
                    store.put(spec, outcome.landscape)
                key = spec.key()

        rng = getattr(generator.function, "rng", None)
        optimization = outcome.optimization
        return {
            "landscape": encode_blob(outcome.landscape.to_bytes()),
            "report": asdict(outcome.report),
            "optimization": {
                "parameters": encode_array(
                    np.asarray(optimization.parameters, dtype=float)
                ),
                "value": float(optimization.value),
                "num_queries": int(optimization.num_queries),
                "path": encode_array(np.asarray(optimization.path, dtype=float)),
                "converged": bool(optimization.converged),
                "label": str(optimization.label),
            },
            "flat_indices": encode_array(
                np.ascontiguousarray(outcome.flat_indices, dtype=np.int64)
            ),
            "values": encode_array(np.asarray(outcome.values, dtype=float)),
            "timings": {name: float(t) for name, t in outcome.timings.items()},
            "key": key,
            "rng": None if rng is None else encode_rng_state(rng),
            "sample_rng": (
                encode_rng_state(sample_rng)
                if isinstance(sample_rng, np.random.Generator)
                else None
            ),
        }

    # -- the TCP front -----------------------------------------------------

    async def _tcp_serve(self) -> None:
        """The asyncio TCP front, run via ``asyncio.run`` on a
        dedicated thread.

        Binds, publishes the bound address, then parks on the stop
        event.  Shutdown is a graceful drain: stop accepting, give
        in-flight connections ``drain_timeout`` seconds to finish their
        current response, then cancel stragglers."""
        self._tcp_loop = asyncio.get_running_loop()
        self._tcp_stop = asyncio.Event()
        self._tcp_tasks: set[asyncio.Task] = set()
        host, port = self._tcp_config
        try:
            server = await asyncio.start_server(
                self._tcp_connection,
                host=host,
                port=port,
                limit=self.max_payload_bytes,
            )
        except OSError as error:
            self._tcp_error = error
            self._tcp_ready.set()
            return
        self._tcp_address = server.sockets[0].getsockname()[:2]
        self._tcp_ready.set()
        try:
            await self._tcp_stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            deadline = self._tcp_loop.time() + self.drain_timeout
            while self._tcp_tasks and self._tcp_loop.time() < deadline:
                await asyncio.sleep(0.02)
            for task in list(self._tcp_tasks):
                task.cancel()
            if self._tcp_tasks:
                await asyncio.gather(*self._tcp_tasks, return_exceptions=True)

    @staticmethod
    async def _tcp_send(
        writer: asyncio.StreamWriter, message: dict[str, Any]
    ) -> None:
        writer.write(json.dumps(message).encode("utf-8") + b"\n")
        await writer.drain()

    def _tcp_error_frame(
        self, code: str, message: str, retryable: bool = False
    ) -> dict[str, Any]:
        self._bump("errors")
        return {
            "ok": False,
            "version": PROTOCOL_VERSION,
            "error": {
                "type": "ProtocolError",
                "message": message,
                "code": code,
                "retryable": retryable,
            },
        }

    async def _tcp_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Per-connection wrapper: cap accounting + cleanup."""
        task = asyncio.current_task()
        if task is not None:
            self._tcp_tasks.add(task)
        with self._tcp_connection_lock:
            shed = self._tcp_connections >= self.max_connections
            if not shed:
                self._tcp_connections += 1
        try:
            if shed:
                await self._tcp_send(
                    writer,
                    self._tcp_error_frame(
                        "overloaded",
                        f"connection cap ({self.max_connections}) reached; "
                        "retry shortly",
                        retryable=True,
                    ),
                )
            else:
                await self._tcp_session(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # drain deadline hit; just close
        finally:
            if not shed:
                with self._tcp_connection_lock:
                    self._tcp_connections -= 1
            if task is not None:
                self._tcp_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _tcp_session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames until idle/EOF/over-limit; answer each one.

        Request handling is blocking (it may fork work into the
        process pool), so it runs on the bounded request executor —
        beyond ``max_concurrent_requests`` in-flight requests, new
        frames queue rather than spawn unbounded threads."""
        loop = asyncio.get_running_loop()
        while not self._tcp_stop.is_set():
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.idle_timeout
                )
            except asyncio.TimeoutError:
                return  # idle disconnect
            except ValueError:
                # StreamReader's limit tripped: the frame exceeds
                # max_payload_bytes and cannot be resynchronized —
                # answer, then drop the connection.
                await self._tcp_send(
                    writer,
                    self._tcp_error_frame(
                        "too-large",
                        "frame exceeds max_payload_bytes "
                        f"({self.max_payload_bytes}); connection closing",
                    ),
                )
                return
            if not line:
                return  # EOF
            if not line.strip():
                continue
            response = await loop.run_in_executor(
                self._request_executor, self.handle_line, line, "tcp"
            )
            await self._tcp_send(writer, response)


#: v2 dispatch table: the **only** way a versioned (and therefore any
#: TCP) request reaches code.  Every handler resolves declarative specs
#: through :mod:`repro.service.protocol`'s registries — none of them
#: touches ``pickle`` (a conformance test greps exactly this table).
V2_OPS: dict[str, Callable[..., dict[str, Any]]] = {
    "ping": LandscapeDaemon._v2_ping,
    "stats": LandscapeDaemon._v2_stats,
    "index": LandscapeDaemon._v2_index,
    "get": LandscapeDaemon._v2_get,
    "invalidate": LandscapeDaemon._v2_invalidate,
    "shutdown": LandscapeDaemon._v2_shutdown,
    "evaluate": LandscapeDaemon._v2_evaluate,
    "compute": LandscapeDaemon._v2_compute,
    "compute_indices": LandscapeDaemon._v2_compute_indices,
    "pipeline": LandscapeDaemon._v2_pipeline,
}

