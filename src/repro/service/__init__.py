"""Landscape service layer: sharded execution + a content-addressed store.

The library below this package is a fast single-process engine; this
package is the first step toward a system that serves repeated traffic:

- :mod:`repro.service.store` — a content-addressed on-disk cache of
  generated landscapes, keyed by a canonical :class:`LandscapeSpec`
  (ansatz/problem content, grid, noise, shots, mitigation, rng plan),
  with LRU eviction and an index listing;
- :mod:`repro.service.shards` — a :class:`ShardedExecutor` that splits
  a grid into contiguous shards and fans them out across a
  ``multiprocessing`` pool, with `SeedSequence.spawn`-style per-shard
  seeding so shot-noise results are bit-identical for any worker count.

- :mod:`repro.service.daemon` / :mod:`repro.service.client` — a
  long-running :class:`LandscapeDaemon` owning one persistent pool and
  one store behind a Unix-domain socket (JSON-lines protocol) and,
  with ``tcp=`` + ``tokens_file=``, an authenticated asyncio TCP
  listener speaking the pickle-free v2 protocol, and the
  :class:`LandscapeClient` library that talks to either (Unix path or
  ``tcp://host:port`` target) with transparent in-process fallback;
- :mod:`repro.service.protocol` — the v2 wire protocol itself: the
  declarative spec registry (ansatz/function/grid/noise specs resolved
  server-side), typed array + rng-state codecs, bearer-token
  credentials and the structured :class:`ProtocolError` codes.

All of it wires into :class:`repro.landscape.generator.LandscapeGenerator`
through its ``workers=``, ``shard_points=``, ``seed=``, ``store=`` and
``daemon=`` knobs; see ``README.md`` in this directory for the store
layout and the reproducibility contract, and ``docs/architecture.md``
for the layer map.
"""

from .client import DaemonError, DaemonUnavailable, LandscapeClient
from .daemon import DEFAULT_SOCKET, LandscapeDaemon
from .pipeline import PipelineConfig, PipelineOutcome, run_pipeline
from .protocol import (
    DEFAULT_TENANT,
    ERROR_CODES,
    PROTOCOL_VERSION,
    ProtocolError,
    TenantCredential,
    authenticate,
    load_tokens,
)
from .shards import Shard, ShardedExecutor, plan_shards
from .store import LandscapeSpec, LandscapeStore, StoreEntry, TenantStores

__all__ = [
    "Shard",
    "ShardedExecutor",
    "plan_shards",
    "LandscapeSpec",
    "LandscapeStore",
    "StoreEntry",
    "TenantStores",
    "LandscapeDaemon",
    "LandscapeClient",
    "DaemonError",
    "DaemonUnavailable",
    "DEFAULT_SOCKET",
    "DEFAULT_TENANT",
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "ProtocolError",
    "TenantCredential",
    "authenticate",
    "load_tokens",
    "PipelineConfig",
    "PipelineOutcome",
    "run_pipeline",
]
