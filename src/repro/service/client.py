"""Client library for the landscape daemon.

:class:`LandscapeClient` talks the JSON-lines protocol of
:class:`~repro.service.daemon.LandscapeDaemon` over its Unix-domain
socket **or** its authenticated TCP front (``tcp://host:port`` targets).
The headline call is :meth:`LandscapeClient.get_or_compute`, which ships
a cost function + grid to the daemon and gets a
:class:`~repro.landscape.landscape.Landscape` back — served from the
daemon's shared store when cached, computed once on its persistent pool
otherwise (concurrent identical requests are deduplicated server-side).

Two protocol generations live behind one API:

- requests that can describe themselves declaratively (registered
  ansatz/cost-function/grid/noise types) travel as **pickle-free v2
  frames** built from the :mod:`repro.service.protocol` spec registry —
  the only dialect the TCP front accepts;
- requests that cannot (closures, duck-typed test grids) fall back to
  the **legacy pickled v1 frames**, which the daemon only honours on the
  Unix socket.  Over TCP such requests fail client-side with a
  :class:`DaemonError` rather than ship un-describable payloads.

The client **falls back transparently** to in-process execution when no
daemon is listening (socket missing, connection refused, daemon gone
mid-request), so library code can pass ``daemon=`` unconditionally: with
a daemon running requests share one pool and one cache, without one they
behave exactly as before.  Server-side *errors* (a malformed task, shot
noise without a seed, a bad token) are raised as :class:`DaemonError`
instead — a reachable daemon rejecting a request is a bug to surface,
not a reason to silently recompute.

Example — no daemon on this socket, so the call computes locally::

    >>> from repro.ansatz import QaoaAnsatz
    >>> from repro.landscape import cost_function, qaoa_grid
    >>> from repro.problems import random_3_regular_maxcut
    >>> from repro.service import LandscapeClient
    >>> client = LandscapeClient("definitely-not-listening.sock")
    >>> client.is_alive()
    False
    >>> ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1)
    >>> landscape = client.get_or_compute(
    ...     cost_function(ansatz), qaoa_grid(p=1, resolution=(4, 8))
    ... )
    >>> landscape.values.shape, client.fallbacks
    ((4, 8), 1)
"""

from __future__ import annotations

import pickle
import socket
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..landscape.landscape import Landscape
from .daemon import decode_blob, encode_blob, read_response, write_message
from .protocol import (
    PROTOCOL_VERSION,
    ansatz_to_spec,
    apply_rng_state,
    decode_array,
    encode_array,
    encode_rng_state,
    function_to_spec,
    grid_to_spec,
    noise_to_spec,
)

__all__ = ["DaemonError", "DaemonUnavailable", "LandscapeClient"]


class DaemonUnavailable(ConnectionError):
    """No daemon is reachable on the target (triggers local fallback)."""


class DaemonError(RuntimeError):
    """The daemon answered with a structured error response."""

    def __init__(
        self,
        kind: str,
        message: str,
        code: str | None = None,
        retryable: bool = False,
    ):
        super().__init__(f"{kind}: {message}")
        #: exception type name reported by the daemon
        self.kind = kind
        #: v2 machine-readable error code (``None`` from v1 daemons)
        self.code = code
        #: whether the daemon marked the failure as safe to retry
        self.retryable = retryable


def _parse_target(target: str | Path) -> tuple[Path | None, tuple[str, int] | None]:
    """``(socket_path, tcp_address)`` — exactly one is non-``None``."""
    if isinstance(target, str) and target.startswith("tcp://"):
        rest = target[len("tcp://") :]
        host, separator, port = rest.rpartition(":")
        if not separator or not port.isdigit():
            raise ValueError(
                f"TCP target must look like tcp://host:port, got {target!r}"
            )
        return None, (host or "127.0.0.1", int(port))
    return Path(target), None


class LandscapeClient:
    """Talks to a :class:`~repro.service.daemon.LandscapeDaemon`.

    Args:
        target: the daemon's Unix-socket path, or ``tcp://host:port``
            for the authenticated TCP front.
        timeout: per-request socket timeout in seconds (``None`` waits
            indefinitely — computes can legitimately take minutes).
        fallback: whether :meth:`get_or_compute` computes in-process
            when no daemon is reachable.  ``False`` raises
            :class:`DaemonUnavailable` instead (the equivalence harness
            uses this so a dead daemon fails loudly).
        token: bearer token attached to every v2 frame.  Required for
            TCP targets; optional on the Unix socket (where it selects
            a tenant namespace instead of the default one).

    The instance counts :attr:`fallbacks` (requests served locally) and
    remembers :attr:`last_served_by` (``"daemon-hit"``,
    ``"daemon-computed"``, ``"daemon-deduped"`` or ``"local"``) so
    callers and tests can see where a landscape came from.
    """

    def __init__(
        self,
        target: str | Path,
        timeout: float | None = None,
        fallback: bool = True,
        token: str | None = None,
    ):
        self.socket_path, self.tcp_address = _parse_target(target)
        self.timeout = timeout
        self.fallback = fallback
        self.token = token
        self.fallbacks = 0
        self.last_served_by: str | None = None

    @property
    def target(self) -> str:
        """Human-readable form of wherever this client points."""
        if self.tcp_address is not None:
            return f"tcp://{self.tcp_address[0]}:{self.tcp_address[1]}"
        return str(self.socket_path)

    # -- transport ---------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self.tcp_address is not None:
            return socket.create_connection(self.tcp_address, timeout=self.timeout)
        connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            connection.settimeout(self.timeout)
            connection.connect(str(self.socket_path))
        except BaseException:
            connection.close()
            raise
        return connection

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip on a fresh connection.

        Connectivity failures raise :class:`DaemonUnavailable`;
        protocol-level failures raise :class:`DaemonError`.
        """
        try:
            with self._connect() as connection:
                with connection.makefile("rwb") as stream:
                    write_message(stream, payload)
                    response = read_response(stream)
        except (OSError, ConnectionError) as error:
            raise DaemonUnavailable(
                f"no landscape daemon reachable on {self.target}: {error}"
            ) from error
        if not response.get("ok"):
            error = response.get("error") or {}
            raise DaemonError(
                str(error.get("type", "UnknownError")),
                str(error.get("message", "")),
                code=error.get("code"),
                retryable=bool(error.get("retryable", False)),
            )
        return response

    def _v2_frame(self, op: str, **fields: Any) -> dict[str, Any]:
        """A versioned frame with the client's token attached."""
        frame: dict[str, Any] = {"version": PROTOCOL_VERSION, "op": op}
        if self.token is not None:
            frame["token"] = self.token
        frame.update(fields)
        return frame

    def _v1_frame(self, op: str, task: dict[str, Any], **fields: Any) -> dict[str, Any]:
        """A legacy pickled frame — refused client-side over TCP.

        The TCP front never unpickles, so shipping a pickled task there
        would only earn an ``unknown-op`` from the daemon; failing here
        names the actual problem (the payload cannot be described
        declaratively).
        """
        if self.tcp_address is not None:
            raise DaemonError(
                "ProtocolError",
                f"{op}: this request cannot be expressed as a declarative "
                "v2 spec (unregistered cost function, ansatz, or grid "
                "type), and the legacy pickle protocol is Unix-socket "
                "only",
                code="invalid-spec",
            )
        return {"op": op, "task": encode_blob(pickle.dumps(task)), **fields}

    # -- probes and maintenance --------------------------------------------

    def is_alive(self) -> bool:
        """Whether a daemon answers a ``ping`` on the target."""
        try:
            self.ping()
            return True
        except DaemonUnavailable:
            return False

    def ping(self) -> dict[str, Any]:
        """The daemon's ``ping`` response (pid, workers, uptime)."""
        return self._request(self._v2_frame("ping"))

    def stats(self) -> dict[str, Any]:
        """Request/hit/miss/dedup counters plus the store summary."""
        response = self._request(self._v2_frame("stats"))
        response.pop("ok", None)
        response.pop("version", None)
        return response

    def index(self) -> list[dict[str, Any]]:
        """The daemon store's entry listing (LRU first), scoped to this
        client's tenant namespace."""
        return list(self._request(self._v2_frame("index"))["entries"])

    def invalidate(self, key: str) -> bool:
        """Drop one cached entry by key; returns whether it existed."""
        return bool(
            self._request(self._v2_frame("invalidate", key=key))["removed"]
        )

    def get(self, key: str) -> Landscape | None:
        """Fetch a cached landscape by key without ever computing."""
        blob = self._request(self._v2_frame("get", key=key))["landscape"]
        return None if blob is None else Landscape.from_bytes(decode_blob(blob))

    def shutdown(self) -> None:
        """Ask the daemon to stop serving (best-effort, returns after
        the daemon acknowledges)."""
        self._request(self._v2_frame("shutdown"))

    # -- the service path --------------------------------------------------

    def get_or_compute(
        self,
        function: Callable,
        grid,
        batch_size: int | None = None,
        seed: int | None = None,
        shard_points: int | None = None,
        label: str = "landscape",
        fallback: Callable[[], Landscape] | None = None,
    ) -> Landscape:
        """A dense landscape for ``(function, grid)``, served or computed.

        Ships the cost function and grid to the daemon — declaratively
        when both can describe themselves (v2), pickled otherwise
        (Unix-only v1) — which derives the canonical
        :class:`~repro.service.store.LandscapeSpec` itself, serves a
        store hit, or computes once on its persistent pool
        (deduplicating concurrent identical requests).  ``seed`` /
        ``shard_points`` fix the rng plan exactly as they do on
        :class:`~repro.landscape.generator.LandscapeGenerator` — shot
        noise needs ``seed=`` to be cacheable at all.

        With no daemon reachable and ``fallback`` enabled, the request
        is computed in-process: by the ``fallback`` callable when given
        (:class:`~repro.landscape.generator.LandscapeGenerator` passes
        its own local path, preserving its ``workers``/``store``
        settings), else by a plain single-process generator.
        """
        task = {
            "function": function,
            "grid": grid,
            "batch_size": batch_size,
            "seed": seed,
            "shard_points": shard_points,
            "label": label,
        }
        try:
            response = self._request(self._compute_frame(task, label))
        except DaemonUnavailable:
            # fallback=False is the loud-failure configuration: it wins
            # even when the caller supplied a fallback callable (the
            # generator wiring always does).
            if not self.fallback:
                raise
            self.fallbacks += 1
            self.last_served_by = "local"
            if fallback is not None:
                return fallback()
            return self._local_compute(task)
        landscape = Landscape.from_bytes(decode_blob(response["landscape"]))
        if response.get("deduped"):
            self.last_served_by = "daemon-deduped"
        elif response.get("hit"):
            self.last_served_by = "daemon-hit"
        else:
            self.last_served_by = "daemon-computed"
        if landscape.label != label:
            landscape = replace(landscape, label=label)
        return landscape

    def _compute_frame(self, task: dict[str, Any], label: str) -> dict[str, Any]:
        function_spec = function_to_spec(task["function"])
        grid_spec = grid_to_spec(task["grid"])
        if function_spec is not None and grid_spec is not None:
            return self._v2_frame(
                "compute",
                function=function_spec,
                grid=grid_spec,
                batch_size=task["batch_size"],
                seed=task["seed"],
                shard_points=task["shard_points"],
                label=label,
            )
        return self._v1_frame("compute", task, label=label)

    @staticmethod
    def _local_compute(task: dict[str, Any]) -> Landscape:
        from ..landscape.generator import LandscapeGenerator

        generator = LandscapeGenerator(
            task["function"],
            task["grid"],
            batch_size=task["batch_size"],
            seed=task["seed"],
            shard_points=task["shard_points"],
        )
        return generator.local_grid_search(task["label"])

    @staticmethod
    def _local_generator(task: dict[str, Any]):
        from ..landscape.generator import LandscapeGenerator

        return LandscapeGenerator(
            task["function"],
            task["grid"],
            batch_size=task["batch_size"],
            seed=task["seed"],
            shard_points=task["shard_points"],
        )

    @staticmethod
    def _writeback_rng(
        rng: np.random.Generator | None, response: dict[str, Any], field: str = "rng"
    ) -> None:
        """Restore a caller generator to the daemon-advanced position.

        v2 responses carry a JSON rng state; v1 responses carry the
        pickled generator itself.  Either way the *caller's* object is
        mutated in place, never replaced.
        """
        if rng is None:
            return
        payload = response.get(field)
        if payload is None:
            return
        if isinstance(payload, dict):
            apply_rng_state(rng, payload)
        else:
            advanced = pickle.loads(decode_blob(payload))
            rng.bit_generator.state = advanced.bit_generator.state

    @staticmethod
    def _decode_values(payload: Any) -> np.ndarray:
        """Values from either wire generation (typed codec vs pickle)."""
        if isinstance(payload, dict):
            return decode_array(payload)
        return np.asarray(pickle.loads(decode_blob(payload)))

    # -- sparse evaluation (OSCAR's sampling path) -------------------------

    def evaluate_indices(
        self,
        function: Callable,
        grid,
        flat_indices: np.ndarray | Sequence[int],
        batch_size: int | None = None,
        seed: int | None = None,
        shard_points: int | None = None,
        fallback: Callable[[], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Cost values at a flat-index subset, served by the daemon.

        Ships the cost function, grid and index set to the daemon's
        ``compute_indices`` op: indices are bounds-validated
        server-side, exact requests read through a cached dense
        landscape when the store holds one (no pool touch), and
        deterministic requests dedup against concurrent identical index
        sets.  The function's bound ``rng`` (if any) is consumed
        server-side and its final state written back, preserving the
        draw-order contract.  Falls back in-process like
        :meth:`get_or_compute` when no daemon is reachable.
        """
        indices = np.asarray(flat_indices, dtype=np.int64)
        task = {
            "function": function,
            "grid": grid,
            "indices": indices,
            "batch_size": batch_size,
            "seed": seed,
            "shard_points": shard_points,
        }
        rng = getattr(function, "rng", None)
        function_spec = function_to_spec(function)
        grid_spec = grid_to_spec(grid)
        if function_spec is not None and grid_spec is not None:
            frame = self._v2_frame(
                "compute_indices",
                function=function_spec,
                grid=grid_spec,
                indices=encode_array(indices),
                batch_size=batch_size,
                seed=seed,
                shard_points=shard_points,
                rng=None if rng is None else encode_rng_state(rng),
            )
        else:
            frame = self._v1_frame("compute_indices", task)
        try:
            response = self._request(frame)
        except DaemonUnavailable:
            if not self.fallback:
                raise
            self.fallbacks += 1
            self.last_served_by = "local"
            if fallback is not None:
                return np.asarray(fallback())
            return self._local_generator(task).local_evaluate_indices(indices)
        values = self._decode_values(response["values"])
        self._writeback_rng(rng, response)
        if response.get("readthrough"):
            self.last_served_by = "daemon-readthrough"
        elif response.get("deduped"):
            self.last_served_by = "daemon-deduped"
        else:
            self.last_served_by = "daemon-computed"
        return values

    def evaluate_ansatz_indices(
        self,
        ansatz: Ansatz,
        grid,
        flat_indices: np.ndarray | Sequence[int],
        noise=None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Uncached sparse evaluation at the ansatz level.

        The ``compute_indices`` counterpart of :meth:`evaluate_ansatz`:
        index points resolve server-side, per-row ``noise`` sequences
        align with the index list, and the caller's ``rng`` state
        round-trips — the ``daemon-sparse`` and ``daemon-tcp`` engines
        in ``tests/equivalence/harness.py`` are this call.  Never falls
        back (a dead daemon must fail the parity matrix loudly).
        """
        indices = np.asarray(flat_indices, dtype=np.int64)
        frame = self._sparse_ansatz_frame(ansatz, grid, indices, noise, shots, rng)
        if frame is None:
            frame = self._v1_frame(
                "compute_indices",
                {
                    "ansatz": ansatz,
                    "grid": grid,
                    "indices": indices,
                    "noise": noise,
                    "shots": shots,
                    "rng": rng,
                },
            )
        response = self._request(frame)
        values = self._decode_values(response["values"])
        self._writeback_rng(rng, response)
        return values

    def _sparse_ansatz_frame(
        self, ansatz, grid, indices, noise, shots, rng
    ) -> dict[str, Any] | None:
        ansatz_spec = ansatz_to_spec(ansatz)
        grid_spec = grid_to_spec(grid)
        if ansatz_spec is None or grid_spec is None:
            return None
        try:
            noise_spec = noise_to_spec(noise)
        except (AttributeError, TypeError, ValueError):
            return None
        return self._v2_frame(
            "compute_indices",
            ansatz=ansatz_spec,
            grid=grid_spec,
            indices=encode_array(indices),
            noise=noise_spec,
            shots=shots,
            rng=None if rng is None else encode_rng_state(rng),
        )

    # -- the one-request pipeline ------------------------------------------

    def run_pipeline(
        self,
        function: Callable,
        grid,
        config,
        sample_rng=None,
        batch_size: int | None = None,
        seed: int | None = None,
        shard_points: int | None = None,
        fallback: Callable[[], Any] | None = None,
    ):
        """Sample → reconstruct → optimize in one daemon request.

        Returns a :class:`~repro.service.pipeline.PipelineOutcome`.
        Both the caller's sampling generator (when ``sample_rng`` is a
        ``Generator``) and the cost function's bound ``rng`` round-trip
        over the wire, so a daemon-served pipeline leaves the caller's
        streams exactly where a local run would — and its trajectory is
        bit-identical to the client-composed sequence.  Falls back to
        the in-process :func:`~repro.service.pipeline.run_pipeline`
        when no daemon is reachable.
        """
        from .pipeline import PipelineOutcome, run_pipeline

        task = {
            "function": function,
            "grid": grid,
            "config": config,
            "sample_rng": sample_rng,
            "batch_size": batch_size,
            "seed": seed,
            "shard_points": shard_points,
        }
        rng = getattr(function, "rng", None)
        frame = self._pipeline_frame(task)
        try:
            response = self._request(frame)
        except DaemonUnavailable:
            if not self.fallback:
                raise
            self.fallbacks += 1
            self.last_served_by = "local"
            if fallback is not None:
                return fallback()
            return run_pipeline(self._local_generator(task), config, sample_rng)
        landscape = Landscape.from_bytes(decode_blob(response["landscape"]))
        self._writeback_rng(rng, response)
        if isinstance(sample_rng, np.random.Generator):
            self._writeback_rng(sample_rng, response, field="sample_rng")
        self.last_served_by = "daemon-pipeline"
        if "result" in response:  # v1: pickled report/optimization/arrays
            result = pickle.loads(decode_blob(response["result"]))
            report = result["report"]
            optimization = result["optimization"]
            flat_indices = np.asarray(result["flat_indices"])
            values = np.asarray(result["values"])
        else:  # v2: field dicts + typed array codecs
            from ..landscape.reconstructor import ReconstructionReport
            from ..optimizers.base import OptimizationResult

            opt = response["optimization"]
            report = ReconstructionReport(**response["report"])
            optimization = OptimizationResult(
                parameters=decode_array(opt["parameters"]),
                value=float(opt["value"]),
                num_queries=int(opt["num_queries"]),
                path=decode_array(opt["path"]),
                converged=bool(opt["converged"]),
                label=str(opt["label"]),
            )
            flat_indices = decode_array(response["flat_indices"])
            values = decode_array(response["values"])
        return PipelineOutcome(
            landscape=landscape,
            report=report,
            optimization=optimization,
            flat_indices=flat_indices,
            values=values,
            timings=dict(response.get("timings") or {}),
            key=response.get("key"),
            served_by="daemon",
        )

    def _pipeline_frame(self, task: dict[str, Any]) -> dict[str, Any]:
        from dataclasses import asdict, is_dataclass

        function_spec = function_to_spec(task["function"])
        grid_spec = grid_to_spec(task["grid"])
        config = task["config"]
        sample_rng = task["sample_rng"]
        if (
            function_spec is None
            or grid_spec is None
            or not is_dataclass(config)
        ):
            return self._v1_frame("pipeline", task)
        payload = asdict(config)
        if isinstance(payload.get("initial_point"), tuple):
            payload["initial_point"] = list(payload["initial_point"])
        if isinstance(sample_rng, np.random.Generator):
            sample_payload: Any = encode_rng_state(sample_rng)
        else:
            sample_payload = sample_rng
        return self._v2_frame(
            "pipeline",
            function=function_spec,
            grid=grid_spec,
            config=payload,
            sample_rng=sample_payload,
            batch_size=task["batch_size"],
            seed=task["seed"],
            shard_points=task["shard_points"],
            rng=None
            if getattr(task["function"], "rng", None) is None
            else encode_rng_state(task["function"].rng),
        )

    # -- raw evaluation (the equivalence-harness path) ---------------------

    def evaluate_ansatz(
        self,
        ansatz: Ansatz,
        batch: np.ndarray | Sequence[Sequence[float]],
        noise=None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Uncached batch evaluation through the daemon.

        The caller's ``rng`` (if any) ships over — as a JSON state on
        the v2 path, pickled on the legacy path — is consumed by the
        daemon's executor, and its final state is written back into the
        caller's generator, so values *and* rng stream position match
        an in-process evaluation exactly.  This is the call the
        ``daemon`` and ``daemon-tcp`` engines in
        ``tests/equivalence/harness.py`` are built on; it never falls
        back (a dead daemon must fail the parity matrix, not silently
        pass it).
        """
        batch = np.asarray(batch, dtype=float)
        frame = self._evaluate_frame(ansatz, batch, noise, shots, rng)
        if frame is None:
            frame = self._v1_frame(
                "evaluate",
                {
                    "ansatz": ansatz,
                    "batch": batch,
                    "noise": noise,
                    "shots": shots,
                    "rng": rng,
                },
            )
        response = self._request(frame)
        values = self._decode_values(response["values"])
        self._writeback_rng(rng, response)
        return values

    def _evaluate_frame(
        self, ansatz, batch, noise, shots, rng
    ) -> dict[str, Any] | None:
        ansatz_spec = ansatz_to_spec(ansatz)
        if ansatz_spec is None:
            return None
        try:
            noise_spec = noise_to_spec(noise)
        except (AttributeError, TypeError, ValueError):
            return None
        return self._v2_frame(
            "evaluate",
            ansatz=ansatz_spec,
            batch=encode_array(batch),
            noise=noise_spec,
            shots=shots,
            rng=None if rng is None else encode_rng_state(rng),
        )
