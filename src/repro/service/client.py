"""Client library for the landscape daemon.

:class:`LandscapeClient` talks the JSON-lines protocol of
:class:`~repro.service.daemon.LandscapeDaemon` over its Unix-domain
socket.  The headline call is :meth:`LandscapeClient.get_or_compute`,
which ships a cost function + grid to the daemon and gets a
:class:`~repro.landscape.landscape.Landscape` back — served from the
daemon's shared store when cached, computed once on its persistent pool
otherwise (concurrent identical requests are deduplicated server-side).

The client **falls back transparently** to in-process execution when no
daemon is listening (socket missing, connection refused, daemon gone
mid-request), so library code can pass ``daemon=`` unconditionally: with
a daemon running requests share one pool and one cache, without one they
behave exactly as before.  Server-side *errors* (a malformed task, shot
noise without a seed) are raised as :class:`DaemonError` instead — a
reachable daemon rejecting a request is a bug to surface, not a reason
to silently recompute.

Example — no daemon on this socket, so the call computes locally::

    >>> from repro.ansatz import QaoaAnsatz
    >>> from repro.landscape import cost_function, qaoa_grid
    >>> from repro.problems import random_3_regular_maxcut
    >>> from repro.service import LandscapeClient
    >>> client = LandscapeClient("definitely-not-listening.sock")
    >>> client.is_alive()
    False
    >>> ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1)
    >>> landscape = client.get_or_compute(
    ...     cost_function(ansatz), qaoa_grid(p=1, resolution=(4, 8))
    ... )
    >>> landscape.values.shape, client.fallbacks
    ((4, 8), 1)
"""

from __future__ import annotations

import pickle
import socket
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..landscape.landscape import Landscape
from .daemon import decode_blob, encode_blob, read_response, write_message

__all__ = ["DaemonError", "DaemonUnavailable", "LandscapeClient"]


class DaemonUnavailable(ConnectionError):
    """No daemon is reachable on the socket (triggers local fallback)."""


class DaemonError(RuntimeError):
    """The daemon answered with a structured error response."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        #: exception type name reported by the daemon
        self.kind = kind


class LandscapeClient:
    """Talks to a :class:`~repro.service.daemon.LandscapeDaemon`.

    Args:
        socket_path: the daemon's Unix-socket path.
        timeout: per-request socket timeout in seconds (``None`` waits
            indefinitely — computes can legitimately take minutes).
        fallback: whether :meth:`get_or_compute` computes in-process
            when no daemon is reachable.  ``False`` raises
            :class:`DaemonUnavailable` instead (the equivalence harness
            uses this so a dead daemon fails loudly).

    The instance counts :attr:`fallbacks` (requests served locally) and
    remembers :attr:`last_served_by` (``"daemon-hit"``,
    ``"daemon-computed"``, ``"daemon-deduped"`` or ``"local"``) so
    callers and tests can see where a landscape came from.
    """

    def __init__(
        self,
        socket_path: str | Path,
        timeout: float | None = None,
        fallback: bool = True,
    ):
        self.socket_path = Path(socket_path)
        self.timeout = timeout
        self.fallback = fallback
        self.fallbacks = 0
        self.last_served_by: str | None = None

    # -- transport ---------------------------------------------------------

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response round trip on a fresh connection.

        Connectivity failures raise :class:`DaemonUnavailable`;
        protocol-level failures raise :class:`DaemonError`.
        """
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as connection:
                connection.settimeout(self.timeout)
                connection.connect(str(self.socket_path))
                with connection.makefile("rwb") as stream:
                    write_message(stream, payload)
                    response = read_response(stream)
        except (OSError, ConnectionError) as error:
            raise DaemonUnavailable(
                f"no landscape daemon reachable on {self.socket_path}: {error}"
            ) from error
        if not response.get("ok"):
            error = response.get("error") or {}
            raise DaemonError(
                str(error.get("type", "UnknownError")),
                str(error.get("message", "")),
            )
        return response

    # -- probes and maintenance --------------------------------------------

    def is_alive(self) -> bool:
        """Whether a daemon answers a ``ping`` on the socket."""
        try:
            self._request({"op": "ping"})
            return True
        except DaemonUnavailable:
            return False

    def ping(self) -> dict[str, Any]:
        """The daemon's ``ping`` response (pid, workers, uptime)."""
        return self._request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        """Request/hit/miss/dedup counters plus the store summary."""
        response = self._request({"op": "stats"})
        response.pop("ok", None)
        return response

    def index(self) -> list[dict[str, Any]]:
        """The daemon store's entry listing (LRU first)."""
        return list(self._request({"op": "index"})["entries"])

    def invalidate(self, key: str) -> bool:
        """Drop one cached entry by key; returns whether it existed."""
        return bool(self._request({"op": "invalidate", "key": key})["removed"])

    def get(self, key: str) -> Landscape | None:
        """Fetch a cached landscape by key without ever computing."""
        blob = self._request({"op": "get", "key": key})["landscape"]
        return None if blob is None else Landscape.from_bytes(decode_blob(blob))

    def shutdown(self) -> None:
        """Ask the daemon to stop serving (best-effort, returns after
        the daemon acknowledges)."""
        self._request({"op": "shutdown"})

    # -- the service path --------------------------------------------------

    def get_or_compute(
        self,
        function: Callable,
        grid,
        batch_size: int | None = None,
        seed: int | None = None,
        shard_points: int | None = None,
        label: str = "landscape",
        fallback: Callable[[], Landscape] | None = None,
    ) -> Landscape:
        """A dense landscape for ``(function, grid)``, served or computed.

        Ships the pickled cost function and grid to the daemon, which
        derives the canonical :class:`~repro.service.store.LandscapeSpec`
        itself, serves a store hit, or computes once on its persistent
        pool (deduplicating concurrent identical requests).  ``seed`` /
        ``shard_points`` fix the rng plan exactly as they do on
        :class:`~repro.landscape.generator.LandscapeGenerator` — shot
        noise needs ``seed=`` to be cacheable at all.

        With no daemon reachable and ``fallback`` enabled, the request
        is computed in-process: by the ``fallback`` callable when given
        (:class:`~repro.landscape.generator.LandscapeGenerator` passes
        its own local path, preserving its ``workers``/``store``
        settings), else by a plain single-process generator.
        """
        task = {
            "function": function,
            "grid": grid,
            "batch_size": batch_size,
            "seed": seed,
            "shard_points": shard_points,
            "label": label,
        }
        try:
            response = self._request(
                {"op": "compute", "task": encode_blob(pickle.dumps(task)), "label": label}
            )
        except DaemonUnavailable:
            # fallback=False is the loud-failure configuration: it wins
            # even when the caller supplied a fallback callable (the
            # generator wiring always does).
            if not self.fallback:
                raise
            self.fallbacks += 1
            self.last_served_by = "local"
            if fallback is not None:
                return fallback()
            return self._local_compute(task)
        landscape = Landscape.from_bytes(decode_blob(response["landscape"]))
        if response.get("deduped"):
            self.last_served_by = "daemon-deduped"
        elif response.get("hit"):
            self.last_served_by = "daemon-hit"
        else:
            self.last_served_by = "daemon-computed"
        if landscape.label != label:
            landscape = replace(landscape, label=label)
        return landscape

    @staticmethod
    def _local_compute(task: dict[str, Any]) -> Landscape:
        from ..landscape.generator import LandscapeGenerator

        generator = LandscapeGenerator(
            task["function"],
            task["grid"],
            batch_size=task["batch_size"],
            seed=task["seed"],
            shard_points=task["shard_points"],
        )
        return generator.local_grid_search(task["label"])

    @staticmethod
    def _local_generator(task: dict[str, Any]):
        from ..landscape.generator import LandscapeGenerator

        return LandscapeGenerator(
            task["function"],
            task["grid"],
            batch_size=task["batch_size"],
            seed=task["seed"],
            shard_points=task["shard_points"],
        )

    # -- sparse evaluation (OSCAR's sampling path) -------------------------

    def evaluate_indices(
        self,
        function: Callable,
        grid,
        flat_indices: np.ndarray | Sequence[int],
        batch_size: int | None = None,
        seed: int | None = None,
        shard_points: int | None = None,
        fallback: Callable[[], np.ndarray] | None = None,
    ) -> np.ndarray:
        """Cost values at a flat-index subset, served by the daemon.

        Ships the pickled cost function, grid and index set to the
        daemon's ``compute_indices`` op: indices are bounds-validated
        server-side, exact requests read through a cached dense
        landscape when the store holds one (no pool touch), and
        deterministic requests dedup against concurrent identical index
        sets.  The function's bound ``rng`` (if any) is consumed
        server-side and its final state written back, preserving the
        draw-order contract.  Falls back in-process like
        :meth:`get_or_compute` when no daemon is reachable.
        """
        task = {
            "function": function,
            "grid": grid,
            "indices": np.asarray(flat_indices, dtype=np.int64),
            "batch_size": batch_size,
            "seed": seed,
            "shard_points": shard_points,
        }
        try:
            response = self._request(
                {"op": "compute_indices", "task": encode_blob(pickle.dumps(task))}
            )
        except DaemonUnavailable:
            if not self.fallback:
                raise
            self.fallbacks += 1
            self.last_served_by = "local"
            if fallback is not None:
                return np.asarray(fallback())
            return self._local_generator(task).local_evaluate_indices(
                task["indices"]
            )
        values = np.asarray(pickle.loads(decode_blob(response["values"])))
        rng = getattr(function, "rng", None)
        if rng is not None and response.get("rng") is not None:
            advanced = pickle.loads(decode_blob(response["rng"]))
            rng.bit_generator.state = advanced.bit_generator.state
        if response.get("readthrough"):
            self.last_served_by = "daemon-readthrough"
        elif response.get("deduped"):
            self.last_served_by = "daemon-deduped"
        else:
            self.last_served_by = "daemon-computed"
        return values

    def evaluate_ansatz_indices(
        self,
        ansatz: Ansatz,
        grid,
        flat_indices: np.ndarray | Sequence[int],
        noise=None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Uncached sparse evaluation at the ansatz level.

        The ``compute_indices`` counterpart of :meth:`evaluate_ansatz`:
        index points resolve server-side, per-row ``noise`` sequences
        align with the index list, and the caller's ``rng`` state
        round-trips — the ``daemon-sparse`` engine in
        ``tests/equivalence/harness.py`` is this call.  Never falls
        back (a dead daemon must fail the parity matrix loudly).
        """
        task = {
            "ansatz": ansatz,
            "grid": grid,
            "indices": np.asarray(flat_indices, dtype=np.int64),
            "noise": noise,
            "shots": shots,
            "rng": rng,
        }
        response = self._request(
            {"op": "compute_indices", "task": encode_blob(pickle.dumps(task))}
        )
        values = pickle.loads(decode_blob(response["values"]))
        if rng is not None and response.get("rng") is not None:
            advanced = pickle.loads(decode_blob(response["rng"]))
            rng.bit_generator.state = advanced.bit_generator.state
        return np.asarray(values)

    # -- the one-request pipeline ------------------------------------------

    def run_pipeline(
        self,
        function: Callable,
        grid,
        config,
        sample_rng=None,
        batch_size: int | None = None,
        seed: int | None = None,
        shard_points: int | None = None,
        fallback: Callable[[], Any] | None = None,
    ):
        """Sample → reconstruct → optimize in one daemon request.

        Returns a :class:`~repro.service.pipeline.PipelineOutcome`.
        Both the caller's sampling generator (when ``sample_rng`` is a
        ``Generator``) and the cost function's bound ``rng`` round-trip
        over the wire, so a daemon-served pipeline leaves the caller's
        streams exactly where a local run would — and its trajectory is
        bit-identical to the client-composed sequence.  Falls back to
        the in-process :func:`~repro.service.pipeline.run_pipeline`
        when no daemon is reachable.
        """
        from .pipeline import PipelineOutcome, run_pipeline

        task = {
            "function": function,
            "grid": grid,
            "config": config,
            "sample_rng": sample_rng,
            "batch_size": batch_size,
            "seed": seed,
            "shard_points": shard_points,
        }
        try:
            response = self._request(
                {"op": "pipeline", "task": encode_blob(pickle.dumps(task))}
            )
        except DaemonUnavailable:
            if not self.fallback:
                raise
            self.fallbacks += 1
            self.last_served_by = "local"
            if fallback is not None:
                return fallback()
            return run_pipeline(self._local_generator(task), config, sample_rng)
        landscape = Landscape.from_bytes(decode_blob(response["landscape"]))
        result = pickle.loads(decode_blob(response["result"]))
        rng = getattr(function, "rng", None)
        if rng is not None and response.get("rng") is not None:
            advanced = pickle.loads(decode_blob(response["rng"]))
            rng.bit_generator.state = advanced.bit_generator.state
        if (
            isinstance(sample_rng, np.random.Generator)
            and response.get("sample_rng") is not None
        ):
            advanced = pickle.loads(decode_blob(response["sample_rng"]))
            sample_rng.bit_generator.state = advanced.bit_generator.state
        self.last_served_by = "daemon-pipeline"
        return PipelineOutcome(
            landscape=landscape,
            report=result["report"],
            optimization=result["optimization"],
            flat_indices=np.asarray(result["flat_indices"]),
            values=np.asarray(result["values"]),
            timings=dict(response.get("timings") or {}),
            key=response.get("key"),
            served_by="daemon",
        )

    # -- raw evaluation (the equivalence-harness path) ---------------------

    def evaluate_ansatz(
        self,
        ansatz: Ansatz,
        batch: np.ndarray | Sequence[Sequence[float]],
        noise=None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Uncached batch evaluation through the daemon.

        The caller's ``rng`` (if any) is pickled over, consumed by the
        daemon's executor, and its final state is written back into the
        caller's generator — so values *and* rng stream position match
        an in-process evaluation exactly.  This is the call the
        ``daemon`` engine in ``tests/equivalence/harness.py`` is built
        on; it never falls back (a dead daemon must fail the parity
        matrix, not silently pass it).
        """
        task = {
            "ansatz": ansatz,
            "batch": np.asarray(batch, dtype=float),
            "noise": noise,
            "shots": shots,
            "rng": rng,
        }
        response = self._request(
            {"op": "evaluate", "task": encode_blob(pickle.dumps(task))}
        )
        values = pickle.loads(decode_blob(response["values"]))
        if rng is not None and response.get("rng") is not None:
            advanced = pickle.loads(decode_blob(response["rng"]))
            rng.bit_generator.state = advanced.bit_generator.state
        return np.asarray(values)
