"""Synthetic stand-in for the Google Sycamore QAOA dataset.

The paper's hardware evaluation (Figs. 5-6) uses the landscapes that
Harrigan et al. (Nature Physics 2021) measured on the 53-qubit Sycamore
processor: 50 x 50 (beta, gamma) grids for MaxCut on 3-regular and mesh
("hardware grid") graphs and for the SK model.  That dataset is not
available offline, so — per the substitution rule in DESIGN.md — we
generate landscapes with the same grid shape and noise character:

1. compute the exact p=1 QAOA landscape for the matching problem class
   with the fast statevector evaluator;
2. contract it toward its mean (global depolarizing effect of a deep
   hardware circuit);
3. add a smooth low-frequency drift field (calibration drift across the
   parameter sweep, generated as a truncated random DCT field);
4. add heteroscedastic shot noise and sparse salt outliers (readout
   glitches), strongest for SK, whose fully connected circuits are the
   deepest — matching the paper's observation that the SK landscape is
   the noisiest of the three.

The resulting reconstruction-error-vs-fraction behaviour mirrors
Fig. 6: errors fall steeply with sampling fraction and SK needs the
largest fraction for a given error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.qaoa import QaoaAnsatz
from ..cs.dct import idct_transform
from ..landscape.generator import LandscapeGenerator, cost_function
from ..landscape.grid import qaoa_grid
from ..landscape.landscape import Landscape
from ..problems.ising import IsingProblem
from ..problems.maxcut import mesh_maxcut, random_3_regular_maxcut
from ..problems.sk import sk_problem

__all__ = ["SycamoreConfig", "sycamore_landscape", "SYCAMORE_PROBLEMS"]

SYCAMORE_PROBLEMS = ("mesh", "3-regular", "sk")


@dataclass(frozen=True)
class SycamoreConfig:
    """Knobs of the synthetic hardware-landscape generator.

    Attributes:
        resolution: grid points per axis (the dataset is 50 x 50).
        num_qubits: problem size of the underlying ideal landscape
            (scaled down from Sycamore's 11-23 qubit instances).
        contraction: how far the signal contracts toward its mean
            (0 = no noise damping, 1 = fully flat).
        drift_amplitude: RMS of the smooth drift field, relative to the
            ideal landscape's standard deviation.
        shot_noise: white-noise sigma, relative to the ideal std.
        salt_probability: fraction of grid points hit by salt outliers.
        salt_amplitude: outlier magnitude, relative to the ideal std.
    """

    resolution: int = 50
    num_qubits: int = 10
    contraction: float = 0.55
    drift_amplitude: float = 0.25
    shot_noise: float = 0.12
    salt_probability: float = 0.01
    salt_amplitude: float = 1.5


_PROBLEM_NOISE = {
    # SK circuits are fully connected hence deepest -> noisiest.
    "mesh": dict(contraction=0.5, shot_noise=0.10, salt_probability=0.008),
    "3-regular": dict(contraction=0.55, shot_noise=0.12, salt_probability=0.01),
    "sk": dict(contraction=0.65, shot_noise=0.22, salt_probability=0.02),
}


def _problem_instance(kind: str, num_qubits: int, seed: int) -> IsingProblem:
    if kind == "mesh":
        # Nearest 2-D grid to the requested size.
        rows = max(2, int(np.sqrt(num_qubits)))
        cols = max(2, int(np.ceil(num_qubits / rows)))
        return mesh_maxcut(rows, cols)
    if kind == "3-regular":
        size = num_qubits if num_qubits % 2 == 0 else num_qubits + 1
        return random_3_regular_maxcut(size, seed=seed)
    if kind == "sk":
        return sk_problem(num_qubits, seed=seed)
    raise ValueError(f"unknown Sycamore problem kind {kind!r}; choose from {SYCAMORE_PROBLEMS}")


def _smooth_drift(shape: tuple[int, int], rng: np.random.Generator, modes: int = 4) -> np.ndarray:
    """A smooth random field from a few low-frequency DCT modes."""
    coefficients = np.zeros(shape)
    coefficients[:modes, :modes] = rng.normal(size=(modes, modes))
    coefficients[0, 0] = 0.0  # drift has no DC component
    field = idct_transform(coefficients)
    std = field.std()
    return field / std if std > 0 else field


def sycamore_landscape(
    kind: str,
    seed: int = 0,
    config: SycamoreConfig | None = None,
    batch_size: int | None = None,
    workers: int = 1,
    store=None,
    daemon=None,
    daemon_token=None,
) -> tuple[Landscape, Landscape]:
    """Generate a (hardware-like, ideal) landscape pair.

    Args:
        kind: one of ``"mesh"``, ``"3-regular"``, ``"sk"``.
        seed: controls the problem instance and all noise draws.
        config: generator knobs; problem-specific noise defaults are
            applied on top of :class:`SycamoreConfig` defaults unless a
            custom config is supplied.
        batch_size: grid points per vectorized execution pass for the
            underlying ideal landscape (``None`` = memory-capped default).
        workers: processes for sharded generation of the ideal
            landscape (``1`` = in-process).
        store: optional :class:`~repro.service.store.LandscapeStore`;
            the (exact) ideal landscape is then served from cache on
            repeated calls, leaving only the cheap noise synthesis.
        daemon: socket path, ``tcp://host:port`` target (or client) of
            a running landscape daemon; the ideal landscape is then
            served by the daemon's shared pool/cache, with in-process
            fallback.
        daemon_token: bearer token for an authenticated daemon
            (required for ``tcp://`` targets).

    Returns:
        ``(hardware, ideal)`` landscapes on the same 50 x 50 grid.
    """
    if config is None:
        config = SycamoreConfig(**_PROBLEM_NOISE.get(kind, {}))
    rng = np.random.default_rng(seed + 7919 * SYCAMORE_PROBLEMS.index(kind))
    problem = _problem_instance(kind, config.num_qubits, seed)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=(config.resolution, config.resolution))
    generator = LandscapeGenerator(
        cost_function(ansatz),
        grid,
        batch_size=batch_size,
        workers=workers,
        store=store,
        daemon=daemon,
        daemon_token=daemon_token,
    )
    ideal = generator.grid_search(label=f"sycamore-{kind}-ideal")

    values = ideal.values
    mean = values.mean()
    std = values.std() if values.std() > 0 else 1.0
    hardware = mean + (1.0 - config.contraction) * (values - mean)
    hardware = hardware + config.drift_amplitude * std * _smooth_drift(
        values.shape, rng
    )
    hardware = hardware + rng.normal(0.0, config.shot_noise * std, size=values.shape)
    salt_mask = rng.random(values.shape) < config.salt_probability
    salt_signs = rng.choice((-1.0, 1.0), size=values.shape)
    hardware = np.where(
        salt_mask, hardware + config.salt_amplitude * std * salt_signs, hardware
    )
    noisy = Landscape(
        grid,
        hardware,
        label=f"sycamore-{kind}-hardware",
        circuit_executions=grid.size,
    )
    return noisy, ideal
