"""Datasets: synthetic hardware landscapes.

:mod:`~repro.datasets.sycamore` generates Google-Sycamore-like 50x50
QAOA landscapes (mesh / 3-regular / SK) for the Fig. 5-6 experiments.
"""

from .sycamore import SYCAMORE_PROBLEMS, SycamoreConfig, sycamore_landscape

__all__ = ["SYCAMORE_PROBLEMS", "SycamoreConfig", "sycamore_landscape"]
