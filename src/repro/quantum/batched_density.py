"""Batched exact density-matrix simulation with Kraus noise channels.

:class:`BatchedDensityMatrix` holds ``B`` density operators as one
``(B, 2**n, 2**n)`` complex stack and applies gates and noise channels
to all of them in a single vectorized pass — the noisy twin of
:class:`~repro.quantum.batched.BatchedStatevector`.  It exists to close
the last serial island in the execution stack: mitigation studies (ZNE
folds, CDR training, noisy Table-2/Table-3 slices) fan out into many
noisy rows, and before this module each row paid a Python-level
``simulate_density`` loop.

Operator application mirrors the batched statevector engine — reshape
to a rank-``2n`` tensor behind the leading batch axis, move the target
qubit axes to the front, contract — so no operator is ever embedded
into the full ``2**n x 2**n`` space.  A density matrix has two index
groups (rows and columns); gathering a gate's row *and* column axes
together exposes the row-major vectorised ``(d**2,)`` local block, on
which a conjugation ``U rho U^dag`` is one matmul with the
``(d**2, d**2)`` superoperator ``U (x) conj(U)`` and a whole Kraus
channel is one matmul with ``sum_k E_k (x) conj(E_k)``.  Circuit
replay composes each gate's superoperator with its noise channel's, so
a (gate, channel) pair costs a single contraction pass.  Every
operation accepts a shared ``(d, d)`` operand or a per-row ``(B, d, d)``
stack, and Kraus channels accept shared ``(K, d, d)`` or per-row
``(B, K, d, d)`` stacks — the shape per-row noise models (batched
ZNE's scale factors) fold into.

The serial :class:`~repro.quantum.density.DensityMatrix` delegates to
the same kernels (:func:`conjugate_stack` / :func:`apply_kraus_stack`
with ``B = 1``), so the reference oracle and the batched engine share
one contraction implementation.

Memory: each row holds ``4**n`` complex entries — the square of a
statevector row — so :func:`default_density_batch_size` shrinks the
cache-capped default batch accordingly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .batched import DEFAULT_MAX_BATCH
from .circuit import QuantumCircuit
from .gates import gate_matrix_many
from .noise import NoiseModel, kraus_superop

__all__ = [
    "BatchedDensityMatrix",
    "apply_kraus_stack",
    "conjugate_stack",
    "default_density_batch_size",
    "kraus_superop_from_stack",
    "unitary_superop",
]

#: Complex-entry budget per density batch (rows x 4**n entries).  2**17
#: entries is 2 MiB of complex128 — the density analogue of the batched
#: statevector's L2-residency budget, scaled up because a density chunk
#: makes fewer passes per entry (one conjugation touches each entry
#: twice) and the serial alternative re-enters Python per row.
DENSITY_ENTRY_BUDGET = 1 << 17


def default_density_batch_size(
    num_qubits: int | None = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    entry_budget: int = DENSITY_ENTRY_BUDGET,
) -> int:
    """Cache-capped default batch size for ``num_qubits``-wide densities.

    Each row costs ``4**n`` complex entries (vs ``2**n`` for a
    statevector row), so for the same budget the density default is the
    statevector default squared-down: ``entry_budget >> 2n``.

    Args:
        num_qubits: width of the simulated register; ``None`` (unknown)
            returns ``max_batch``.
        max_batch: upper bound on rows per batch.
        entry_budget: maximum total complex entries per batch.
    """
    if num_qubits is None:
        return max_batch
    return max(1, min(max_batch, entry_budget >> (2 * int(num_qubits))))


def _gather(
    data: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> tuple[np.ndarray, tuple]:
    """Pull the row- and column-local axes of ``qubits`` to the front.

    ``data`` is a ``(B, 2**n, 2**n)`` stack.  Returns a contiguous
    ``(B, d, d, rest)`` view with ``d = 2**len(qubits)`` — axis 1 the
    combined *row* index of the targeted qubits, axis 2 the combined
    *column* index, ``rest`` all remaining indices — plus the scatter
    recipe to undo the move.  The qubit order follows the ``|q1 q0>``
    basis of :mod:`repro.quantum.gates` for pairs (``qubits[1]`` is the
    high bit).
    """
    n = int(num_qubits)
    batch = data.shape[0]
    arity = len(qubits)
    if arity == 1:
        (qubit,) = qubits
        local = (n - 1 - qubit,)
    elif arity == 2:
        qubit0, qubit1 = qubits  # q1 is the high bit of the matrix basis
        local = (n - 1 - qubit1, n - 1 - qubit0)
    else:
        raise ValueError(f"unsupported operator arity {arity}")
    source = tuple(1 + axis for axis in local) + tuple(
        1 + n + axis for axis in local
    )
    destination = tuple(range(1, 1 + 2 * arity))
    tensor = np.moveaxis(
        data.reshape([batch] + [2] * n + [2] * n), source, destination
    )
    shape = tensor.shape
    flat = tensor.reshape(batch, 1 << arity, 1 << arity, -1)
    return flat, (shape, source, destination, batch, n)


def _scatter(flat: np.ndarray, recipe: tuple) -> np.ndarray:
    """Undo :func:`_gather`: back to a contiguous ``(B, 2**n, 2**n)``."""
    shape, source, destination, batch, n = recipe
    tensor = np.moveaxis(flat.reshape(shape), destination, source)
    return np.ascontiguousarray(tensor).reshape(batch, 1 << n, 1 << n)


def _apply_superop(
    data: np.ndarray,
    superop: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """One matmul with a local superoperator on every row of a stack.

    ``superop`` is a shared ``(d**2, d**2)`` matrix or a per-row
    ``(B, d**2, d**2)`` stack acting on the row-major vectorisation of
    the targeted qubits' ``(d, d)`` block — the combined (row, column)
    index the gather produces at axes 1-2.  One gather, one broadcast
    matmul (BLAS for shared and per-row operands alike), one scatter.
    """
    flat, recipe = _gather(data, qubits, num_qubits)
    batch, d = flat.shape[0], flat.shape[1]
    out = np.matmul(superop, flat.reshape(batch, d * d, -1))
    return _scatter(out.reshape(flat.shape), recipe)


def unitary_superop(matrix: np.ndarray) -> np.ndarray:
    """``M (x) conj(M)``: the conjugation ``rho -> M rho M^dag`` as a
    superoperator on the row-major vectorised local block.

    Shared ``(d, d)`` input gives ``(d**2, d**2)``; a per-row
    ``(B, d, d)`` stack gives ``(B, d**2, d**2)``.
    """
    if matrix.ndim == 2:
        return np.kron(matrix, np.conj(matrix))
    batch, dim = matrix.shape[0], matrix.shape[-1]
    return np.einsum("bim,bjl->bijml", matrix, np.conj(matrix)).reshape(
        batch, dim * dim, dim * dim
    )


def kraus_superop_from_stack(stack: np.ndarray) -> np.ndarray:
    """``sum_k E_k (x) conj(E_k)`` for a shared ``(K, d, d)`` or per-row
    ``(B, K, d, d)`` Kraus stack (channel analogue of
    :func:`unitary_superop`)."""
    dim = stack.shape[-1]
    if stack.ndim == 3:
        return np.einsum("kim,kjl->ijml", stack, np.conj(stack)).reshape(
            dim * dim, dim * dim
        )
    return np.einsum("bkim,bkjl->bijml", stack, np.conj(stack)).reshape(
        stack.shape[0], dim * dim, dim * dim
    )


def conjugate_stack(
    data: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """``M rho M^dag`` on ``qubits`` of every row of a density stack.

    The shared conjugation kernel: ``data`` is ``(B, 2**n, 2**n)``,
    ``matrix`` is shared ``(d, d)`` or per-row ``(B, d, d)``.  Returns a
    new contiguous stack (out of place).
    """
    return _apply_superop(data, unitary_superop(matrix), qubits, num_qubits)


def apply_kraus_stack(
    data: np.ndarray,
    stack: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """``sum_k E_k rho E_k^dag`` on ``qubits`` of every row.

    ``stack`` is a shared ``(K, d, d)`` Kraus stack or a per-row
    ``(B, K, d, d)`` stack (one channel instance per row — the per-row
    noise-model shape).  Returns a new stack (out of place).  The whole
    channel is a single superoperator matmul, not one pass per Kraus
    operator.
    """
    return _apply_superop(
        data, kraus_superop_from_stack(stack), qubits, num_qubits
    )


def _resolve_models(
    noise: NoiseModel | Sequence[NoiseModel | None] | None, batch_size: int
) -> list[NoiseModel | None]:
    """Normalize a shared-or-per-row noise spec to one model per row."""
    if noise is None or isinstance(noise, NoiseModel):
        return [noise] * batch_size
    models = list(noise)
    if len(models) != batch_size:
        raise ValueError(
            f"per-row noise needs {batch_size} entries, got {len(models)}"
        )
    return models


class BatchedDensityMatrix:
    """``B`` density operators in one ``(B, 2**n, 2**n)`` stack."""

    def __init__(
        self,
        num_qubits: int,
        batch_size: int | None = None,
        data: np.ndarray | None = None,
    ):
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            if batch_size is None:
                raise ValueError("provide either batch_size or data")
            self._data = np.zeros((int(batch_size), dim, dim), dtype=complex)
            self._data[:, 0, 0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.ndim != 3 or data.shape[1:] != (dim, dim):
                raise ValueError(
                    f"data must have shape (B, {dim}, {dim}) for "
                    f"{num_qubits} qubits, got {data.shape}"
                )
            if batch_size is not None and data.shape[0] != batch_size:
                raise ValueError("batch_size does not match data rows")
            self._data = data.copy()

    @classmethod
    def from_statevectors(cls, amplitudes: np.ndarray) -> "BatchedDensityMatrix":
        """Pure-state stack ``|psi_b><psi_b|`` from ``(B, 2**n)`` rows."""
        amplitudes = np.asarray(amplitudes, dtype=complex)
        if amplitudes.ndim != 2:
            raise ValueError(
                f"amplitudes must be a (B, 2**n) stack, got {amplitudes.shape}"
            )
        num_qubits = int(np.log2(amplitudes.shape[1]))
        data = np.einsum("bi,bj->bij", amplitudes, amplitudes.conj())
        return cls(num_qubits, data=data)

    @property
    def data(self) -> np.ndarray:
        """The underlying ``(B, 2**n, 2**n)`` stack (a live view)."""
        return self._data

    @property
    def batch_size(self) -> int:
        """Number of stacked density operators ``B``."""
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**n``."""
        return self._data.shape[1]

    def copy(self) -> "BatchedDensityMatrix":
        """An independent copy of the stacked operators."""
        return BatchedDensityMatrix(self.num_qubits, data=self._data)

    def row(self, index: int):
        """The single-operator view of row ``index`` (as a copy)."""
        from .density import DensityMatrix

        return DensityMatrix(self.num_qubits, self._data[index])

    def traces(self) -> np.ndarray:
        """Per-row real trace (stays 1 for valid evolution)."""
        return np.real(np.einsum("bii->b", self._data))

    def purities(self) -> np.ndarray:
        """Per-row ``Tr(rho^2)``; 1 for pure, ``2**-n`` for maximally mixed."""
        return np.real(np.einsum("bij,bji->b", self._data, self._data))

    # -- channel application --------------------------------------------

    def _validate_operand(self, matrix: np.ndarray, arity: int, kraus: bool) -> None:
        d = 1 << arity
        if kraus:
            shared = matrix.ndim == 3 and matrix.shape[1:] == (d, d)
            per_row = (
                matrix.ndim == 4
                and matrix.shape[0] == self.batch_size
                and matrix.shape[2:] == (d, d)
            )
            expected = f"(K, {d}, {d}) or ({self.batch_size}, K, {d}, {d})"
        else:
            shared = matrix.shape == (d, d)
            per_row = matrix.shape == (self.batch_size, d, d)
            expected = f"({d}, {d}) or ({self.batch_size}, {d}, {d})"
        if not (shared or per_row):
            raise ValueError(
                f"operand must have shape {expected}, got {matrix.shape}"
            )

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Conjugate every row by a local unitary in place.

        ``matrix`` is one shared ``(d, d)`` unitary or a per-row
        ``(B, d, d)`` stack (the parameter-broadcasting path), in the
        ``|q1 q0>`` basis for pairs (``qubits[1]`` is the high bit).
        """
        matrix = np.asarray(matrix, dtype=complex)
        self._validate_operand(matrix, len(qubits), kraus=False)
        self._data = conjugate_stack(
            self._data, matrix, tuple(qubits), self.num_qubits
        )

    def apply_kraus(
        self, kraus_operators: Sequence[np.ndarray] | np.ndarray, qubits: Sequence[int]
    ) -> None:
        """Apply a quantum channel to every row in place.

        ``kraus_operators`` is a sequence of ``(d, d)`` operators, a
        shared ``(K, d, d)`` stack, or a per-row ``(B, K, d, d)`` stack
        applying a different channel instance to every row.
        """
        stack = np.asarray(kraus_operators, dtype=complex)
        self._validate_operand(stack, len(qubits), kraus=True)
        self._data = apply_kraus_stack(
            self._data, stack, tuple(qubits), self.num_qubits
        )

    def evolve_circuits(
        self,
        circuits: Iterable[QuantumCircuit],
        noise: NoiseModel | Sequence[NoiseModel | None] | None = None,
    ) -> "BatchedDensityMatrix":
        """Replay ``B`` structurally identical circuits, one per row.

        The circuits must share their gate skeleton — same names and
        operands at every position — and may differ only in bound
        parameter values: parameterless gates apply as one shared
        operator, parameterized positions stack into per-row operands.
        After each gate, rows whose noise model attaches a depolarizing
        probability get the corresponding Kraus channel.  Each gate's
        conjugation superoperator is composed with its channel's cached
        superoperator (:func:`repro.quantum.noise.kraus_superop`) so a
        (gate, channel) pair costs one contraction pass; when rows
        disagree on the probability the composition is per-row.
        Matches :meth:`repro.quantum.density.DensityMatrix.evolve` row
        for row.
        """
        circuits = list(circuits)
        if len(circuits) != self.batch_size:
            raise ValueError(
                f"need {self.batch_size} circuits (one per row), "
                f"got {len(circuits)}"
            )
        models = _resolve_models(noise, self.batch_size)
        instruction_rows = [circuit.instructions for circuit in circuits]
        skeleton = [
            (instruction.name, instruction.qubits)
            for instruction in instruction_rows[0]
        ]
        parameterized = [
            bool(instruction.params) for instruction in instruction_rows[0]
        ]
        for instructions in instruction_rows[1:]:
            structure = [
                (instruction.name, instruction.qubits)
                for instruction in instructions
            ]
            if structure != skeleton:
                raise ValueError(
                    "evolve_circuits needs structurally identical circuits "
                    "(same gate names and operands at every position)"
                )
        # Parameterless positions resolve once (shared operator);
        # parameterized positions resolve for the whole batch via the
        # vectorized gate constructors — never one matrix per row in
        # Python.
        reference = list(circuits[0].resolved_operations())
        gate_probabilities = {
            arity: np.array(
                [
                    0.0 if model is None else model.error_probability(arity)
                    for model in models
                ]
            )
            for arity in (1, 2)
        }
        for position, (name, qubits) in enumerate(skeleton):
            if parameterized[position]:
                matrix = gate_matrix_many(
                    name,
                    [
                        instructions[position].bound_params(None)
                        for instructions in instruction_rows
                    ],
                )
            else:
                matrix = np.asarray(reference[position][2], dtype=complex)
            if name in ("cx", "cnot"):
                operands = (qubits[1], qubits[0])  # control is the high bit
            else:
                operands = tuple(qubits)
            superop = unitary_superop(matrix)
            probabilities = gate_probabilities[len(qubits)]
            if probabilities.any():
                kind = (
                    "depolarizing"
                    if len(qubits) == 1
                    else "two_qubit_depolarizing"
                )
                if np.all(probabilities == probabilities[0]):
                    channel = kraus_superop(kind, float(probabilities[0]))
                else:
                    channel = np.stack(
                        [kraus_superop(kind, float(p)) for p in probabilities]
                    )
                superop = np.matmul(channel, superop)
            self._data = _apply_superop(
                self._data, superop, operands, self.num_qubits
            )
        return self

    # -- measurement -----------------------------------------------------

    def probabilities(
        self, readout_error: float | np.ndarray = 0.0
    ) -> np.ndarray:
        """Per-row diagonal outcome probabilities, shape ``(B, 2**n)``.

        ``readout_error`` is a shared scalar or a per-row ``(B,)``
        array of symmetric flip probabilities; each row matches
        :meth:`repro.quantum.density.DensityMatrix.probabilities` with
        that row's value.
        """
        probs = np.real(np.einsum("bii->bi", self._data)).copy()
        np.clip(probs, 0.0, None, out=probs)
        totals = probs.sum(axis=1, keepdims=True)
        np.divide(probs, totals, out=probs, where=totals > 0)
        flip = np.asarray(readout_error, dtype=float)
        if np.any(flip > 0.0):
            probs = self._apply_readout(probs, flip)
        return probs

    def _apply_readout(self, probs: np.ndarray, flip: np.ndarray) -> np.ndarray:
        """Per-axis symmetric bit-flip mixing with per-row probabilities.

        The batched twin of
        :func:`repro.quantum.noise.apply_readout_noise_to_probabilities`:
        ``n`` sequential single-bit mixing passes (O(B n 2^n)) with the
        flip probability broadcast as ``(B, 1, ..., 1)``.
        """
        n = self.num_qubits
        batch = probs.shape[0]
        flip = np.broadcast_to(flip, (batch,)).reshape([batch] + [1] * n)
        keep = 1.0 - flip
        tensor = probs.reshape([batch] + [2] * n)
        for axis in range(1, n + 1):
            kept = np.take(tensor, [0, 1], axis=axis)
            flipped = np.take(tensor, [1, 0], axis=axis)
            tensor = keep * kept + flip * flipped
        return tensor.reshape(batch, -1)

    def expectation_diagonal(
        self,
        diagonal_values: np.ndarray,
        readout_error: float | np.ndarray = 0.0,
    ) -> np.ndarray:
        """Per-row expectation of a diagonal observable, shape ``(B,)``."""
        return self.probabilities(readout_error) @ np.asarray(
            diagonal_values, dtype=float
        )

    def expectation_matrix(self, observable: np.ndarray) -> np.ndarray:
        """Per-row ``Tr(rho_b O)`` for a dense Hermitian observable.

        One ``O(B 4**n)`` elementwise contraction — no matrix product.
        """
        observable = np.asarray(observable)
        return np.real(np.einsum("bij,ji->b", self._data, observable))
