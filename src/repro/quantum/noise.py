"""Noise models for noisy circuit simulation.

The paper's noisy experiments use depolarizing noise attached to every
gate (1q error 0.003 / 2q error 0.007 in Fig. 4; 0.001 / 0.02 in Fig. 9)
plus device configurations for the NCM study (QPU-1: 0.1%/0.5%, QPU-2:
0.3%/0.7%).  :class:`NoiseModel` captures exactly this: per-arity
depolarizing probabilities plus an optional symmetric readout-flip
probability.

Three consumers share this model:

- :mod:`repro.quantum.density` applies the exact Kraus channels,
- :mod:`repro.quantum.trajectories` samples Pauli-error trajectories,
- :func:`global_depolarizing_factor` gives the analytic contraction of a
  traceless observable's expectation under the model, which is how large
  landscapes are made noisy without exponential density matrices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .circuit import QuantumCircuit
from .gates import I, X, Y, Z

__all__ = [
    "NoiseModel",
    "depolarizing_kraus",
    "two_qubit_depolarizing_kraus",
    "amplitude_damping_kraus",
    "phase_damping_kraus",
    "kraus_stack",
    "kraus_superop",
    "global_depolarizing_factor",
    "readout_confusion_matrix",
    "apply_readout_noise_to_probabilities",
    "IDEAL",
]


def depolarizing_kraus(probability: float) -> list[np.ndarray]:
    """Single-qubit depolarizing channel Kraus operators.

    With probability ``p`` the qubit state is replaced by one of X/Y/Z
    errors uniformly (the "Pauli error" convention, matching Qiskit's
    ``depolarizing_error(p, 1)`` up to reparametrisation p' = 4p/3).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    p_each = probability / 3.0
    return [
        math.sqrt(1.0 - probability) * I,
        math.sqrt(p_each) * X,
        math.sqrt(p_each) * Y,
        math.sqrt(p_each) * Z,
    ]


def two_qubit_depolarizing_kraus(probability: float) -> list[np.ndarray]:
    """Two-qubit depolarizing channel: the 15 non-identity Pauli pairs
    each occur with probability ``p / 15``."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    paulis = [I, X, Y, Z]
    kraus = [math.sqrt(1.0 - probability) * np.kron(I, I)]
    p_each = probability / 15.0
    for i, left in enumerate(paulis):
        for j, right in enumerate(paulis):
            if i == 0 and j == 0:
                continue
            kraus.append(math.sqrt(p_each) * np.kron(left, right))
    return kraus


def amplitude_damping_kraus(gamma: float) -> list[np.ndarray]:
    """Amplitude damping (T1 relaxation) Kraus operators.

    With probability ``gamma`` an excited qubit decays to the ground
    state.  Not part of the paper's depolarizing studies, but provided
    so the density-matrix engine can model realistic relaxation; the
    test suite validates trace preservation and the |1> decay rate.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be within [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=complex)
    return [k0, k1]


def phase_damping_kraus(lam: float) -> list[np.ndarray]:
    """Pure dephasing (T2) Kraus operators.

    With probability ``lam`` the qubit's phase information is lost
    (off-diagonal density-matrix elements scale by ``sqrt(1 - lam)``)
    while populations are untouched.
    """
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be within [0, 1]")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1.0 - lam)]], dtype=complex)
    k1 = np.array([[0.0, 0.0], [0.0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


#: Channel builders addressable by :func:`kraus_stack`.
_KRAUS_BUILDERS = {
    "depolarizing": depolarizing_kraus,
    "two_qubit_depolarizing": two_qubit_depolarizing_kraus,
    "amplitude_damping": amplitude_damping_kraus,
    "phase_damping": phase_damping_kraus,
}

#: (channel kind, probability) -> read-only ``(K, d, d)`` Kraus stack.
_KRAUS_STACKS: dict[tuple[str, float], np.ndarray] = {}


def kraus_stack(kind: str, probability: float) -> np.ndarray:
    """Cached, read-only ``(K, d, d)`` Kraus stack for a channel.

    The density engines apply the same channel after every gate of a
    circuit (and across every row of a batch), so the operator lists
    are memoized per ``(kind, probability)`` — the channel analogue of
    the per-(ansatz, noise) depolarizing-contraction cache in
    :class:`repro.ansatz.qaoa.QaoaAnsatz`.  ``kind`` is one of
    ``"depolarizing"``, ``"two_qubit_depolarizing"``,
    ``"amplitude_damping"``, ``"phase_damping"``.  The returned array
    is marked read-only; callers must not mutate it.
    """
    key = (kind, float(probability))
    stack = _KRAUS_STACKS.get(key)
    if stack is None:
        builder = _KRAUS_BUILDERS.get(kind)
        if builder is None:
            raise ValueError(
                f"unknown channel kind {kind!r}; "
                f"choose from {sorted(_KRAUS_BUILDERS)}"
            )
        stack = np.stack(builder(key[1])).astype(complex)
        stack.setflags(write=False)
        _KRAUS_STACKS[key] = stack
    return stack


#: (channel kind, probability) -> read-only ``(d**2, d**2)`` superoperator.
_KRAUS_SUPEROPS: dict[tuple[str, float], np.ndarray] = {}


def kraus_superop(kind: str, probability: float) -> np.ndarray:
    """Cached ``sum_k E_k (x) conj(E_k)`` superoperator for a channel.

    Acting on the row-major vectorisation of a density matrix's local
    block, one matmul with this ``(d**2, d**2)`` matrix applies the
    whole channel — the form the batched density engine composes with
    gate superoperators so each (gate, channel) pair costs a single
    contraction pass.  Cached per ``(kind, probability)`` like
    :func:`kraus_stack`; the returned array is read-only.
    """
    key = (kind, float(probability))
    superop = _KRAUS_SUPEROPS.get(key)
    if superop is None:
        stack = kraus_stack(kind, key[1])
        dim = stack.shape[-1]
        superop = np.einsum("kim,kjl->ijml", stack, np.conj(stack)).reshape(
            dim * dim, dim * dim
        )
        superop.setflags(write=False)
        _KRAUS_SUPEROPS[key] = superop
    return superop


@dataclass(frozen=True)
class NoiseModel:
    """Gate-attached depolarizing noise plus readout error.

    Attributes:
        p1: depolarizing probability after every single-qubit gate.
        p2: depolarizing probability after every two-qubit gate.
        readout: probability of a classical bit flip on measurement.
        seed_tag: free-form label used by hardware configs ("lagos"...).
    """

    p1: float = 0.0
    p2: float = 0.0
    readout: float = 0.0
    seed_tag: str = ""

    def __post_init__(self) -> None:
        for name in ("p1", "p2", "readout"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")

    @property
    def is_ideal(self) -> bool:
        """True if the model introduces no errors at all."""
        return self.p1 == 0.0 and self.p2 == 0.0 and self.readout == 0.0

    def error_probability(self, arity: int) -> float:
        """Depolarizing probability for a gate of the given arity."""
        if arity == 1:
            return self.p1
        if arity == 2:
            return self.p2
        raise ValueError(f"unsupported gate arity {arity}")

    def cache_spec(self) -> dict:
        """Canonical content payload for the landscape store.

        The single source of the ``{p1, p2, readout}`` serialization —
        every cost function's ``cache_spec`` delegates here so noise
        content always hashes identically (``seed_tag`` is a display
        label, not content).
        """
        return {
            "p1": float(self.p1),
            "p2": float(self.p2),
            "readout": float(self.readout),
        }

    def scaled(self, factor: float) -> "NoiseModel":
        """Noise model with all error rates multiplied by ``factor``.

        Used by ZNE noise scaling; probabilities are clamped to [0, 1].
        """
        return NoiseModel(
            p1=min(1.0, self.p1 * factor),
            p2=min(1.0, self.p2 * factor),
            readout=min(1.0, self.readout * factor),
            seed_tag=self.seed_tag,
        )


IDEAL = NoiseModel()


def global_depolarizing_factor(circuit: QuantumCircuit, noise: NoiseModel) -> float:
    """Contraction factor of a traceless observable under the model.

    Each single-qubit depolarizing event with probability ``p`` scales
    Pauli expectations on that qubit by ``1 - 4p/3``; each two-qubit
    event scales involved Pauli pairs by ``1 - 16p/15``.  Treating
    errors as acting globally (a standard white-noise approximation for
    deep entangling circuits such as QAOA), the expected value of a
    traceless cost Hamiltonian contracts by the product over all gates.

    This is exact for a global depolarizing channel and a very good
    model of how depolarizing noise flattens QAOA landscapes, which is
    the phenomenon the paper's noisy experiments exercise.
    """
    if noise.is_ideal:
        return 1.0
    counts = {1: 0, 2: 0}
    for instruction in circuit.instructions:
        counts[len(instruction.qubits)] += 1
    factor_1q = 1.0 - (4.0 / 3.0) * noise.p1
    factor_2q = 1.0 - (16.0 / 15.0) * noise.p2
    factor = (factor_1q ** counts[1]) * (factor_2q ** counts[2])
    return float(max(factor, 0.0))


def readout_confusion_matrix(num_qubits: int, flip_probability: float) -> np.ndarray:
    """Full ``2**n x 2**n`` symmetric readout confusion matrix.

    Entry ``(observed, true)`` is the probability of reading ``observed``
    given the device was in ``true``; independent symmetric bit flips.
    """
    single = np.array(
        [
            [1.0 - flip_probability, flip_probability],
            [flip_probability, 1.0 - flip_probability],
        ]
    )
    matrix = np.array([[1.0]])
    for _ in range(num_qubits):
        matrix = np.kron(single, matrix)
    return matrix


def apply_readout_noise_to_probabilities(
    probabilities: np.ndarray, flip_probability: float
) -> np.ndarray:
    """Push basis-outcome probabilities through the readout channel.

    Implemented as ``n`` sequential single-bit mixing steps (O(n 2^n))
    instead of materialising the full confusion matrix (O(4^n)).
    """
    if flip_probability == 0.0:
        return probabilities
    probs = np.asarray(probabilities, dtype=float)
    num_qubits = int(round(math.log2(probs.shape[0])))
    tensor = probs.reshape([2] * num_qubits)
    for axis in range(num_qubits):
        kept = np.take(tensor, [0, 1], axis=axis)
        flipped = np.take(tensor, [1, 0], axis=axis)
        tensor = (1.0 - flip_probability) * kept + flip_probability * flipped
    return tensor.reshape(-1)
