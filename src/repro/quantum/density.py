"""Exact density-matrix simulation with Kraus noise channels.

This is the reference noisy simulator: it applies each circuit gate as a
unitary conjugation and, when a :class:`~repro.quantum.noise.NoiseModel`
is supplied, follows it with the corresponding depolarizing channel on
the touched qubits.  Memory is ``O(4**n)`` so it is intended for the
small-n experiments (Tables 2-3 run at 4-6 qubits) and as the oracle
that the scalable trajectory simulator is validated against.

Operator application delegates to the local-contraction kernels shared
with :class:`~repro.quantum.batched_density.BatchedDensityMatrix`
(``B = 1``): a gate on ``k`` qubits is two rank-``2n`` tensor
contractions instead of a full ``2**n x 2**n`` embedding, so the serial
oracle is ``O(4**n)`` per gate rather than ``O(8**n)`` — same values,
one shared implementation.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .batched_density import apply_kraus_stack, conjugate_stack
from .circuit import QuantumCircuit
from .noise import (
    NoiseModel,
    apply_readout_noise_to_probabilities,
    kraus_stack,
)
from .parameters import Parameter

__all__ = ["DensityMatrix", "simulate_density"]


class DensityMatrix:
    """A ``2**n x 2**n`` density operator with channel application."""

    def __init__(self, num_qubits: int, data: np.ndarray | None = None):
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            self._data = np.zeros((dim, dim), dtype=complex)
            self._data[0, 0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (dim, dim):
                raise ValueError(
                    f"density matrix shape {data.shape} does not match {num_qubits} qubits"
                )
            self._data = data.copy()

    @classmethod
    def from_statevector(cls, amplitudes: np.ndarray) -> "DensityMatrix":
        """Pure-state density matrix ``|psi><psi|``."""
        amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        num_qubits = int(np.log2(amplitudes.shape[0]))
        return cls(num_qubits, np.outer(amplitudes, amplitudes.conj()))

    @property
    def data(self) -> np.ndarray:
        """The underlying matrix (live view)."""
        return self._data

    def trace(self) -> float:
        """Real part of the trace (should stay 1 for valid evolution)."""
        return float(np.real(np.trace(self._data)))

    def purity(self) -> float:
        """``Tr(rho^2)``; 1 for pure states, 1/2**n for maximally mixed."""
        return float(np.real(np.sum(self._data * self._data.T)))

    # -- channel application --------------------------------------------

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Conjugate the state by a local unitary.

        ``matrix`` is interpreted with the first operand as the low
        index bit when ``len(qubits) == 1`` and in ``|q1 q0>`` order for
        pairs (``qubits[1]`` high bit), matching
        :mod:`repro.quantum.gates`.  Applied as two local tensor
        contractions — the operator is never embedded into the full
        Hilbert space.
        """
        matrix = np.asarray(matrix, dtype=complex)
        self._data = conjugate_stack(
            self._data[None], matrix, tuple(qubits), self.num_qubits
        )[0]

    def apply_kraus(
        self, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int]
    ) -> None:
        """Apply a quantum channel given by local Kraus operators."""
        stack = np.asarray(kraus_operators, dtype=complex)
        self._data = apply_kraus_stack(
            self._data[None], stack, tuple(qubits), self.num_qubits
        )[0]

    def evolve(
        self,
        circuit: QuantumCircuit,
        noise: NoiseModel | None = None,
        bindings: Mapping[Parameter, float] | None = None,
    ) -> "DensityMatrix":
        """Apply the circuit, inserting noise channels after each gate.

        Channel operator lists come from the per-(kind, probability)
        cache (:func:`repro.quantum.noise.kraus_stack`), so repeated
        gates at the same error rate share one stack.
        """
        noise = noise or NoiseModel()
        for name, qubits, matrix in circuit.resolved_operations(
            dict(bindings) if bindings else None
        ):
            if name in ("cx", "cnot"):
                operands = (qubits[1], qubits[0])  # control is the high bit
            else:
                operands = tuple(qubits)
            self.apply_unitary(matrix, operands)
            probability = noise.error_probability(len(qubits))
            if probability > 0.0:
                kind = (
                    "depolarizing"
                    if len(qubits) == 1
                    else "two_qubit_depolarizing"
                )
                self.apply_kraus(kraus_stack(kind, probability), operands)
        return self

    # -- measurement -----------------------------------------------------

    def probabilities(self, readout_error: float = 0.0) -> np.ndarray:
        """Diagonal outcome probabilities, optionally readout-corrupted."""
        probs = np.real(np.diag(self._data)).copy()
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        if total > 0:
            probs /= total
        if readout_error > 0.0:
            probs = apply_readout_noise_to_probabilities(probs, readout_error)
        return probs

    def expectation_diagonal(
        self, diagonal_values: np.ndarray, readout_error: float = 0.0
    ) -> float:
        """Expectation of a diagonal observable (cost Hamiltonian)."""
        return float(np.dot(self.probabilities(readout_error), diagonal_values))

    def expectation_matrix(self, observable: np.ndarray) -> float:
        """``Tr(rho O)`` for a dense Hermitian observable.

        ``Tr(rho O) = sum_ij rho_ij O_ji``, computed as one ``O(4**n)``
        elementwise sum — a full ``rho @ O`` matmul would cost
        ``O(8**n)`` to produce off-diagonal entries the trace discards.
        """
        observable = np.asarray(observable)
        return float(np.real(np.sum(self._data * observable.T)))


def simulate_density(
    circuit: QuantumCircuit,
    noise: NoiseModel | None = None,
    bindings: Mapping[Parameter, float] | None = None,
) -> DensityMatrix:
    """Run a circuit from ``|0...0><0...0|`` under a noise model."""
    return DensityMatrix(circuit.num_qubits).evolve(circuit, noise, bindings)
