"""Exact density-matrix simulation with Kraus noise channels.

This is the reference noisy simulator: it applies each circuit gate as a
unitary conjugation and, when a :class:`~repro.quantum.noise.NoiseModel`
is supplied, follows it with the corresponding depolarizing channel on
the touched qubits.  Memory is ``O(4**n)`` so it is intended for the
small-n experiments (Tables 2-3 run at 4-6 qubits) and as the oracle
that the scalable trajectory simulator is validated against.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .circuit import QuantumCircuit
from .noise import (
    NoiseModel,
    apply_readout_noise_to_probabilities,
    depolarizing_kraus,
    two_qubit_depolarizing_kraus,
)
from .parameters import Parameter

__all__ = ["DensityMatrix", "simulate_density"]


class DensityMatrix:
    """A ``2**n x 2**n`` density operator with channel application."""

    def __init__(self, num_qubits: int, data: np.ndarray | None = None):
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            self._data = np.zeros((dim, dim), dtype=complex)
            self._data[0, 0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (dim, dim):
                raise ValueError(
                    f"density matrix shape {data.shape} does not match {num_qubits} qubits"
                )
            self._data = data.copy()

    @classmethod
    def from_statevector(cls, amplitudes: np.ndarray) -> "DensityMatrix":
        """Pure-state density matrix ``|psi><psi|``."""
        amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        num_qubits = int(np.log2(amplitudes.shape[0]))
        return cls(num_qubits, np.outer(amplitudes, amplitudes.conj()))

    @property
    def data(self) -> np.ndarray:
        """The underlying matrix (live view)."""
        return self._data

    def trace(self) -> float:
        """Real part of the trace (should stay 1 for valid evolution)."""
        return float(np.real(np.trace(self._data)))

    def purity(self) -> float:
        """``Tr(rho^2)``; 1 for pure states, 1/2**n for maximally mixed."""
        return float(np.real(np.trace(self._data @ self._data)))

    # -- operator embedding ---------------------------------------------

    def _embed(self, matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Expand a small operator on ``qubits`` to the full Hilbert space.

        ``matrix`` is interpreted with the first operand as the low index
        bit when ``len(qubits) == 1`` and in ``|q1 q0>`` order for pairs,
        matching :mod:`repro.quantum.gates`.
        """
        n = self.num_qubits
        dim = 1 << n
        if len(qubits) == 1:
            (qubit,) = qubits
            full = np.ones(1, dtype=complex)
            # Build via tensor reshaping: act on the qubit axis directly.
            op = np.eye(dim, dtype=complex).reshape([2] * n + [2] * n)
            # Cheaper: construct by kron products in qubit order n-1..0.
            full = np.array([[1.0]], dtype=complex)
            for position in range(n - 1, -1, -1):
                full = np.kron(full, matrix if position == qubit else np.eye(2))
            return full
        if len(qubits) == 2:
            q0, q1 = qubits  # q1 high bit, q0 low bit in `matrix`
            tensor = matrix.reshape(2, 2, 2, 2)  # (q1', q0', q1, q0)
            full = np.zeros((dim, dim), dtype=complex)
            others = [q for q in range(n) if q not in (q0, q1)]
            for b1 in range(2):
                for b0 in range(2):
                    for a1 in range(2):
                        for a0 in range(2):
                            amplitude = tensor[b1, b0, a1, a0]
                            if amplitude == 0:
                                continue
                            # All basis pairs differing only on q0/q1.
                            base = np.arange(1 << len(others))
                            row = np.zeros_like(base)
                            col = np.zeros_like(base)
                            for bit_position, qubit in enumerate(others):
                                bit = (base >> bit_position) & 1
                                row |= bit << qubit
                                col |= bit << qubit
                            row_idx = row | (b1 << q1) | (b0 << q0)
                            col_idx = col | (a1 << q1) | (a0 << q0)
                            full[row_idx, col_idx] += amplitude
            return full
        raise ValueError(f"unsupported operator arity {len(qubits)}")

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Conjugate the state by an embedded unitary."""
        full = self._embed(matrix, qubits)
        self._data = full @ self._data @ full.conj().T

    def apply_kraus(self, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int]) -> None:
        """Apply a quantum channel given by local Kraus operators."""
        total = np.zeros_like(self._data)
        for kraus in kraus_operators:
            full = self._embed(kraus, qubits)
            total += full @ self._data @ full.conj().T
        self._data = total

    def evolve(
        self,
        circuit: QuantumCircuit,
        noise: NoiseModel | None = None,
        bindings: Mapping[Parameter, float] | None = None,
    ) -> "DensityMatrix":
        """Apply the circuit, inserting noise channels after each gate."""
        noise = noise or NoiseModel()
        for name, qubits, matrix in circuit.resolved_operations(
            dict(bindings) if bindings else None
        ):
            if name in ("cx", "cnot"):
                operands = (qubits[1], qubits[0])  # control is the high bit
            else:
                operands = tuple(qubits)
            self.apply_unitary(matrix, operands)
            probability = noise.error_probability(len(qubits))
            if probability > 0.0:
                if len(qubits) == 1:
                    self.apply_kraus(depolarizing_kraus(probability), operands)
                else:
                    self.apply_kraus(two_qubit_depolarizing_kraus(probability), operands)
        return self

    # -- measurement -----------------------------------------------------

    def probabilities(self, readout_error: float = 0.0) -> np.ndarray:
        """Diagonal outcome probabilities, optionally readout-corrupted."""
        probs = np.real(np.diag(self._data)).copy()
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        if total > 0:
            probs /= total
        if readout_error > 0.0:
            probs = apply_readout_noise_to_probabilities(probs, readout_error)
        return probs

    def expectation_diagonal(
        self, diagonal_values: np.ndarray, readout_error: float = 0.0
    ) -> float:
        """Expectation of a diagonal observable (cost Hamiltonian)."""
        return float(np.dot(self.probabilities(readout_error), diagonal_values))

    def expectation_matrix(self, observable: np.ndarray) -> float:
        """``Tr(rho O)`` for a dense Hermitian observable."""
        return float(np.real(np.trace(self._data @ observable)))


def simulate_density(
    circuit: QuantumCircuit,
    noise: NoiseModel | None = None,
    bindings: Mapping[Parameter, float] | None = None,
) -> DensityMatrix:
    """Run a circuit from ``|0...0><0...0|`` under a noise model."""
    return DensityMatrix(circuit.num_qubits).evolve(circuit, noise, bindings)
