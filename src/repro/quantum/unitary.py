"""Dense circuit-unitary construction (verification tooling).

Building the full ``2^n x 2^n`` unitary of a circuit is exponential, but
for the small circuits used in tests and debugging it is the most
direct way to verify gate semantics, check equivalence of two circuits,
and cross-validate the statevector engine.  This module provides that
reference path; production simulation never goes through it.
"""

from __future__ import annotations

import numpy as np

from .circuit import QuantumCircuit
from .parameters import Parameter

__all__ = ["circuit_unitary", "circuits_equivalent"]


def _embed_one(matrix: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    out = np.array([[1.0]], dtype=complex)
    for position in range(num_qubits - 1, -1, -1):
        out = np.kron(out, matrix if position == qubit else np.eye(2))
    return out


def _embed_two(
    matrix: np.ndarray, low: int, high: int, num_qubits: int
) -> np.ndarray:
    """Embed a ``|q_high q_low>``-ordered 4x4 operator."""
    dim = 1 << num_qubits
    tensor = matrix.reshape(2, 2, 2, 2)  # (high', low', high, low)
    out = np.zeros((dim, dim), dtype=complex)
    others_mask = ~((1 << low) | (1 << high)) & (dim - 1)
    for column in range(dim):
        bit_low = (column >> low) & 1
        bit_high = (column >> high) & 1
        base = column & others_mask
        for new_high in range(2):
            for new_low in range(2):
                amplitude = tensor[new_high, new_low, bit_high, bit_low]
                if amplitude != 0:
                    row = base | (new_low << low) | (new_high << high)
                    out[row, column] += amplitude
    return out


def circuit_unitary(
    circuit: QuantumCircuit,
    bindings: dict[Parameter, float] | None = None,
    max_qubits: int = 10,
) -> np.ndarray:
    """The full unitary matrix implemented by a circuit.

    Args:
        circuit: the circuit (bound, or with ``bindings`` supplied).
        bindings: parameter values for symbolic circuits.
        max_qubits: safety cap — the matrix is ``4^n`` memory.
    """
    if circuit.num_qubits > max_qubits:
        raise ValueError(
            f"refusing to materialise a {circuit.num_qubits}-qubit unitary "
            f"(cap {max_qubits}); raise max_qubits explicitly if intended"
        )
    n = circuit.num_qubits
    total = np.eye(1 << n, dtype=complex)
    for name, qubits, matrix in circuit.resolved_operations(bindings):
        if len(qubits) == 1:
            full = _embed_one(matrix, qubits[0], n)
        else:
            if name in ("cx", "cnot"):
                low, high = qubits[1], qubits[0]  # control is the high bit
            else:
                low, high = qubits[0], qubits[1]
            full = _embed_two(matrix, low, high, n)
        total = full @ total
    return total


def circuits_equivalent(
    left: QuantumCircuit,
    right: QuantumCircuit,
    up_to_global_phase: bool = True,
    atol: float = 1e-9,
) -> bool:
    """Check whether two (bound) circuits implement the same unitary.

    Args:
        left, right: circuits of equal width.
        up_to_global_phase: ignore an overall phase factor (physically
            unobservable) when comparing.
        atol: elementwise tolerance.
    """
    if left.num_qubits != right.num_qubits:
        return False
    u = circuit_unitary(left)
    v = circuit_unitary(right)
    if up_to_global_phase:
        # Align phases on the largest element of v.
        index = np.unravel_index(np.argmax(np.abs(v)), v.shape)
        if abs(v[index]) < atol:
            return bool(np.allclose(u, v, atol=atol))
        phase = u[index] / v[index]
        if not np.isclose(abs(phase), 1.0, atol=1e-6):
            return False
        v = v * phase
    return bool(np.allclose(u, v, atol=atol))
