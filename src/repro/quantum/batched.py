"""Batched exact statevector simulation.

:class:`BatchedStatevector` holds ``B`` pure states as one ``(B, 2**n)``
complex array and applies gates to all of them in a single vectorized
pass.  This is the execution-side twin of the batched reconstruction
engine in :mod:`repro.cs.engine`: where that module stacks landscapes
along a leading axis to run one FISTA loop, this one stacks parameter
points to run one simulation, turning the 5k-32k per-landscape circuit
executions of a dense grid search (Table 1) from a Python-level loop
into a handful of array operations.

Gate application mirrors :class:`~repro.quantum.statevector.Statevector`
exactly — reshape to a rank-``n`` tensor (behind the leading batch
axis), move the target qubit axes to the front, contract — so batched
results match the serial engine to machine precision.  Each operation
additionally accepts a *per-row* operand (a ``(B, 2, 2)`` matrix stack
or a ``(B, 2**n)`` diagonal stack), which is what lets one call apply a
different parameter binding to every row: a QAOA cost layer becomes one
broadcast ``exp(-1j * gamma[:, None] * cost_diagonal)`` multiply and a
mixer layer one einsum with a ``(B, 2, 2)`` RX stack.
"""

from __future__ import annotations

import math

import numpy as np

from ..utils import ensure_rng
from .statevector import Statevector

__all__ = ["BatchedStatevector", "default_batch_size"]

#: Hard cap on rows per batch regardless of state size: beyond this the
#: arrays are long past the vectorization break-even and a larger batch
#: only raises peak memory.
DEFAULT_MAX_BATCH = 512

#: Amplitude budget per batch (rows x 2**n complex entries).  2**15
#: entries is 512 KiB — sized for L2-cache residency, which measures
#: fastest by a wide margin: gate application makes several passes over
#: the stack, and once the stack spills out of cache those passes are
#: memory-bound while the serial engine's single 16-KiB state stays
#: cache-hot.
DEFAULT_ENTRY_BUDGET = 1 << 15

#: Number of low qubits of :meth:`BatchedStatevector.apply_hadamard_all`
#: handled by one BLAS matmul instead of butterfly passes.  The low
#: qubits are the strided, cache-hostile part of the butterfly (their
#: pair elements sit 1-8 entries apart); a single contiguous
#: ``(rows, 16) @ (16, 16)`` product replaces two full passes over the
#: stack and measures ~15-25% faster across register widths, which is
#: what tips the batched path past the serial engine at n >= 13.
_GEMM_QUBITS = 4

_HADAMARD_BLOCK: np.ndarray | None = None


def _hadamard_block() -> np.ndarray:
    """The unnormalized ``H^{(x)k}`` matrix for the low-qubit gemm."""
    global _HADAMARD_BLOCK
    if _HADAMARD_BLOCK is None:
        block = np.array([[1.0]])
        core = np.array([[1.0, 1.0], [1.0, -1.0]])
        for _ in range(_GEMM_QUBITS):
            block = np.kron(core, block)
        _HADAMARD_BLOCK = np.ascontiguousarray(block, dtype=complex)
    return _HADAMARD_BLOCK


def default_batch_size(
    num_qubits: int | None = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    entry_budget: int = DEFAULT_ENTRY_BUDGET,
) -> int:
    """Cache-capped default batch size for ``num_qubits``-wide states.

    Args:
        num_qubits: width of the simulated register; ``None`` (unknown,
            e.g. a black-box cost function) returns ``max_batch``.
        max_batch: upper bound on rows per batch.
        entry_budget: maximum total complex amplitudes per batch.
    """
    if num_qubits is None:
        return max_batch
    return max(1, min(max_batch, entry_budget >> int(num_qubits)))


class BatchedStatevector:
    """``B`` pure states in one ``(B, 2**n)`` array with batched gates."""

    def __init__(
        self,
        num_qubits: int,
        batch_size: int | None = None,
        data: np.ndarray | None = None,
    ):
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            if batch_size is None:
                raise ValueError("provide either batch_size or data")
            self._data = np.zeros((int(batch_size), dim), dtype=complex)
            self._data[:, 0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.ndim != 2 or data.shape[1] != dim:
                raise ValueError(
                    f"data must have shape (B, {dim}) for {num_qubits} qubits, "
                    f"got {data.shape}"
                )
            if batch_size is not None and data.shape[0] != batch_size:
                raise ValueError("batch_size does not match data rows")
            self._data = data.copy()

    @classmethod
    def uniform_superposition(
        cls, num_qubits: int, batch_size: int
    ) -> "BatchedStatevector":
        """``B`` copies of ``H^{(x)n}|0..0>`` (the QAOA initial state)."""
        dim = 1 << int(num_qubits)
        amplitude = 1.0 / math.sqrt(dim)
        return cls(
            num_qubits,
            data=np.full((int(batch_size), dim), amplitude, dtype=complex),
        )

    @property
    def data(self) -> np.ndarray:
        """The underlying ``(B, 2**n)`` amplitude array (a live view)."""
        return self._data

    @property
    def batch_size(self) -> int:
        """Number of stacked states ``B``."""
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**n``."""
        return self._data.shape[1]

    def copy(self) -> "BatchedStatevector":
        """An independent copy of the stacked states."""
        return BatchedStatevector(self.num_qubits, data=self._data)

    def row(self, index: int) -> Statevector:
        """The single-state view of row ``index`` (as a copy)."""
        return Statevector(self.num_qubits, self._data[index])

    # -- gate application ----------------------------------------------

    def apply_one_qubit(self, matrix: np.ndarray, qubit: int) -> None:
        """Apply a 2x2 unitary to ``qubit`` of every row in place.

        ``matrix`` is either one shared ``(2, 2)`` unitary or a
        ``(B, 2, 2)`` stack applying a different unitary per row (the
        per-row parameter-broadcasting path).
        """
        matrix = np.asarray(matrix, dtype=complex)
        n = self.num_qubits
        batch = self.batch_size
        if matrix.ndim == 2:
            m00, m01 = matrix[0, 0], matrix[0, 1]
            m10, m11 = matrix[1, 0], matrix[1, 1]
        elif matrix.ndim == 3 and matrix.shape == (batch, 2, 2):
            # Per-row scalars broadcast against the (B, L, R) sub-blocks.
            m00 = matrix[:, 0, 0, None, None]
            m01 = matrix[:, 0, 1, None, None]
            m10 = matrix[:, 1, 0, None, None]
            m11 = matrix[:, 1, 1, None, None]
        else:
            raise ValueError(
                f"matrix must be (2, 2) or ({batch}, 2, 2), got {matrix.shape}"
            )
        # Little-endian strided view: the target qubit's bit has stride
        # 2**qubit, so (B, 2**n) factors as (B, L, 2, R) with R = 2**qubit.
        tensor = self._data.reshape(batch, -1, 2, 1 << qubit)
        lower = tensor[:, :, 0, :]
        upper = tensor[:, :, 1, :]
        out = np.empty_like(tensor)
        np.multiply(m00, lower, out=out[:, :, 0, :])
        out[:, :, 0, :] += m01 * upper
        np.multiply(m10, lower, out=out[:, :, 1, :])
        out[:, :, 1, :] += m11 * upper
        self._data = out.reshape(batch, -1)

    def apply_two_qubit(
        self, matrix: np.ndarray, qubit0: int, qubit1: int
    ) -> None:
        """Apply a 4x4 unitary to ``(qubit0, qubit1)`` of every row.

        The matrix is interpreted in the ``|q1 q0>`` basis used by
        :mod:`repro.quantum.gates` (``qubit1`` is the high index bit),
        matching :meth:`Statevector.apply_two_qubit`.  ``matrix`` may be
        one shared ``(4, 4)`` unitary or a per-row ``(B, 4, 4)`` stack.
        """
        matrix = np.asarray(matrix, dtype=complex)
        n = self.num_qubits
        batch = self.batch_size
        tensor = self._data.reshape([batch] + [2] * n)
        axis1 = 1 + (n - 1 - qubit1)  # high bit
        axis0 = 1 + (n - 1 - qubit0)  # low bit
        tensor = np.moveaxis(tensor, (axis1, axis0), (1, 2))
        shape = tensor.shape
        flat = tensor.reshape(batch, 4, -1)
        if matrix.ndim == 2:
            flat = np.einsum("ij,bjk->bik", matrix, flat)
        elif matrix.ndim == 3 and matrix.shape == (batch, 4, 4):
            flat = np.einsum("bij,bjk->bik", matrix, flat)
        else:
            raise ValueError(
                f"matrix must be (4, 4) or ({batch}, 4, 4), got {matrix.shape}"
            )
        tensor = np.moveaxis(flat.reshape(shape), (1, 2), (axis1, axis0))
        self._data = np.ascontiguousarray(tensor).reshape(batch, -1)

    def apply_diagonal(self, diagonal: np.ndarray) -> None:
        """Multiply every row elementwise by a phase vector in place.

        ``diagonal`` is either one shared length-``2**n`` vector or a
        ``(B, 2**n)`` stack with one phase vector per row — the batched
        QAOA cost layer is ``exp(-1j * gamma[:, None] * cost_diagonal)``.
        """
        diagonal = np.asarray(diagonal)
        if diagonal.ndim == 1 and diagonal.shape[0] == self.dim:
            self._data *= diagonal[None, :]
        elif diagonal.shape == self._data.shape:
            self._data *= diagonal
        else:
            raise ValueError(
                f"diagonal must have shape ({self.dim},) or "
                f"{self._data.shape}, got {diagonal.shape}"
            )

    def apply_hadamard_all(self, scale: float | None = None) -> None:
        """Apply ``H`` to every qubit of every row in one shared pass.

        The transform is a fast Walsh-Hadamard butterfly (radix-4, so
        half the passes over the stack of a gate-by-gate loop) shared
        across all rows — the workhorse behind the batched QAOA mixer,
        which is ``H^n · diag(phases) · H^n``.  The lowest
        ``_GEMM_QUBITS`` qubits are transformed by one contiguous BLAS
        matmul instead (see :data:`_GEMM_QUBITS`), which removes the
        strided small-``R`` butterfly passes that used to make the
        batched path merely tie the serial engine at n >= 13.

        Args:
            scale: scalar folded into the transform in place of the
                standard ``2**(-n/2)`` Hadamard normalization.  Callers
                chaining two transforms pass ``scale=1.0`` here and fold
                the combined ``2**-n`` into an adjacent diagonal, saving
                full-stack multiplies.
        """
        n = self.num_qubits
        batch = self.batch_size
        data = self._data
        qubit = 0
        if n >= _GEMM_QUBITS:
            # The low qubits' butterfly pairs are 1-8 entries apart —
            # strided access SIMD handles poorly.  One contiguous BLAS
            # product transforms all of them in a single pass.
            flat = data.reshape(-1, 1 << _GEMM_QUBITS)
            data = (flat @ _hadamard_block()).reshape(batch, -1)
            self._data = data
            qubit = _GEMM_QUBITS
        while qubit + 1 < n:
            # Radix-4 butterfly over qubit pairs (qubit, qubit + 1).
            tensor = data.reshape(batch, -1, 4, 1 << qubit)
            a = tensor[:, :, 0, :]
            b = tensor[:, :, 1, :]
            c = tensor[:, :, 2, :]
            d = tensor[:, :, 3, :]
            s0 = a + b
            s1 = a - b
            s2 = c + d
            s3 = c - d
            tensor[:, :, 0, :] = s0 + s2
            tensor[:, :, 1, :] = s1 + s3
            tensor[:, :, 2, :] = s0 - s2
            tensor[:, :, 3, :] = s1 - s3
            qubit += 2
        if qubit < n:
            tensor = data.reshape(batch, -1, 2, 1 << qubit)
            a = tensor[:, :, 0, :].copy()
            b = tensor[:, :, 1, :]
            tensor[:, :, 0, :] = a + b
            tensor[:, :, 1, :] = a - b
        if scale is None:
            scale = 2.0 ** (-0.5 * n)
        if scale != 1.0:
            data *= scale

    # -- measurement ----------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Per-row basis-outcome probabilities, shape ``(B, 2**n)``."""
        return np.abs(self._data) ** 2

    def norms(self) -> np.ndarray:
        """Euclidean norm of every row's amplitude vector."""
        return np.linalg.norm(self._data, axis=1)

    def expectation_diagonal(self, diagonal_values: np.ndarray) -> np.ndarray:
        """``<psi_b| D |psi_b>`` per row for a real diagonal observable."""
        return np.real(self.probabilities() @ np.asarray(diagonal_values))

    def expectation_matrix(self, observable: np.ndarray) -> np.ndarray:
        """``<psi_b| O |psi_b>`` per row for a dense Hermitian observable.

        One BLAS product against the whole stack — the batched twin of
        :meth:`Statevector.expectation_matrix`, used by the VQE-style
        ansatzes whose molecular Hamiltonians are not diagonal.
        """
        observable = np.asarray(observable, dtype=complex)
        transformed = self._data @ observable.T
        return np.real(np.einsum("bi,bi->b", np.conj(self._data), transformed))

    def _multinomial_counts(
        self, shots: int, rng: np.random.Generator, repeats: int = 1
    ) -> np.ndarray:
        """``(B * repeats, 2**n)`` counts from one vectorized multinomial.

        ``repeats > 1`` tiles each row's distribution that many times
        (row-major) before the single draw — the shape the ZNE fast
        path needs to sample one state once per noise scale.
        """
        probabilities = self.probabilities()
        if repeats > 1:
            probabilities = np.repeat(probabilities, repeats, axis=0)
        totals = probabilities.sum(axis=1)
        if not np.allclose(totals, 1.0, rtol=0.0, atol=1e-9):
            probabilities = np.clip(probabilities, 0.0, None)
            probabilities /= probabilities.sum(axis=1, keepdims=True)
        return rng.multinomial(shots, probabilities)

    def sample_counts(
        self,
        shots: int,
        rng: np.random.Generator | None = None,
        rng_parity: bool = True,
    ) -> list[dict[int, int]]:
        """Per-row measurement counts, ``[{basis_index: count}, ...]``.

        The default path loops rows through
        :meth:`Statevector.sample_counts` so the shared ``rng`` is
        consumed in exactly the order a serial loop would consume it
        (one ``choice`` draw block per row, batch order).  Passing
        ``rng_parity=False`` opts into one vectorized multinomial over
        the whole stack — statistically identical per row but a
        *different draw order*, so seeded results no longer reproduce
        the serial engine draw for draw.
        """
        if shots < 1:
            raise ValueError(f"shots must be >= 1, got {shots}")
        rng = ensure_rng(rng)
        if rng_parity:
            return [
                self.row(index).sample_counts(shots, rng)
                for index in range(self.batch_size)
            ]
        counts = self._multinomial_counts(shots, rng)
        return [
            {int(index): int(row[index]) for index in np.flatnonzero(row)}
            for row in counts
        ]

    def sample_expectation_diagonal(
        self,
        diagonal_values: np.ndarray,
        shots: int,
        rng: np.random.Generator | None = None,
        rng_parity: bool = True,
    ) -> np.ndarray:
        """Per-row shot-noise estimates of a diagonal observable.

        By default rows consume the shared ``rng`` in batch order, one
        draw per row, so a serial loop of
        :meth:`Statevector.sample_expectation_diagonal` over the same
        states with the same generator sees identical draws.
        ``rng_parity=False`` trades that parity for one vectorized
        multinomial per stack (same per-row statistics, different draw
        order, markedly faster for wide shot budgets).
        """
        if shots < 1:
            raise ValueError(f"shots must be >= 1, got {shots}")
        rng = ensure_rng(rng)
        if rng_parity:
            return np.array(
                [
                    self.row(index).sample_expectation_diagonal(
                        diagonal_values, shots, rng
                    )
                    for index in range(self.batch_size)
                ]
            )
        counts = self._multinomial_counts(shots, rng)
        return (counts @ np.asarray(diagonal_values, dtype=float)) / shots
