"""A minimal but complete parameterized quantum circuit IR.

:class:`QuantumCircuit` stores a flat list of :class:`Instruction` items.
It supports everything the rest of the library needs:

- appending named gates (validated against the gate table in
  :mod:`repro.quantum.gates`),
- symbolic parameters and :meth:`QuantumCircuit.bind`,
- composition, inversion and unitary-folding (used by ZNE noise scaling),
- structural queries (depth, gate counts, two-qubit gate count) used by
  the noise model and latency model.

The IR is deliberately simulator-agnostic: the statevector, density
matrix and trajectory engines all consume the same instruction list.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real
from typing import Iterable, Iterator, Sequence

from .gates import gate_matrix
from .parameters import Parameter, ParameterExpression, resolve_value

__all__ = ["Instruction", "QuantumCircuit", "CircuitError"]

ParamLike = "Parameter | ParameterExpression | Real"

_GATE_ARITY = {
    "i": 1, "id": 1, "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1,
    "t": 1, "tdg": 1, "sx": 1, "rx": 1, "ry": 1, "rz": 1, "p": 1, "u": 1,
    "cx": 2, "cnot": 2, "cz": 2, "swap": 2, "rxx": 2, "ryy": 2, "rzz": 2,
    "crx": 2, "cry": 2, "crz": 2, "cp": 2,
}

_PARAM_COUNT = {
    "rx": 1, "ry": 1, "rz": 1, "p": 1, "u": 3, "rxx": 1, "ryy": 1,
    "rzz": 1, "crx": 1, "cry": 1, "crz": 1, "cp": 1,
}

_SELF_INVERSE = {"i", "id", "x", "y", "z", "h", "cx", "cnot", "cz", "swap"}
_NAMED_INVERSE = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}


class CircuitError(ValueError):
    """Raised for structurally invalid circuit operations."""


@dataclass(frozen=True)
class Instruction:
    """One gate application: a name, qubit operands and (possibly
    symbolic) parameters."""

    name: str
    qubits: tuple[int, ...]
    params: tuple[object, ...] = ()

    @property
    def is_parameterized(self) -> bool:
        """True if any parameter is still symbolic."""
        return any(
            isinstance(value, (Parameter, ParameterExpression)) for value in self.params
        )

    def bound_params(self, bindings: dict[Parameter, float] | None) -> tuple[float, ...]:
        """Resolve all parameters to floats using ``bindings``."""
        return tuple(resolve_value(value, bindings) for value in self.params)


class QuantumCircuit:
    """An ordered list of gate instructions on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._instructions: list[Instruction] = []

    # -- construction -------------------------------------------------

    def append(
        self,
        name: str,
        qubits: Sequence[int] | int,
        params: Sequence[object] | object = (),
    ) -> "QuantumCircuit":
        """Append a gate by name; returns ``self`` for chaining."""
        key = name.lower()
        if key not in _GATE_ARITY:
            raise CircuitError(f"unknown gate {name!r}")
        if isinstance(qubits, int):
            qubits = (qubits,)
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != _GATE_ARITY[key]:
            raise CircuitError(
                f"gate {name!r} acts on {_GATE_ARITY[key]} qubit(s), got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubit operands in {qubits!r}")
        for qubit in qubits:
            if not 0 <= qubit < self.num_qubits:
                raise CircuitError(
                    f"qubit {qubit} out of range for {self.num_qubits}-qubit circuit"
                )
        if not isinstance(params, (tuple, list)):
            params = (params,)
        params = tuple(params)
        expected = _PARAM_COUNT.get(key, 0)
        if len(params) != expected:
            raise CircuitError(
                f"gate {name!r} takes {expected} parameter(s), got {len(params)}"
            )
        self._instructions.append(Instruction(key, qubits, params))
        return self

    # Convenience wrappers so ansatz code reads like textbook circuits.
    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X gate."""
        return self.append("x", q)

    def y(self, q: int) -> "QuantumCircuit":
        """Pauli-Y gate."""
        return self.append("y", q)

    def z(self, q: int) -> "QuantumCircuit":
        """Pauli-Z gate."""
        return self.append("z", q)

    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard gate."""
        return self.append("h", q)

    def s(self, q: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self.append("s", q)

    def sdg(self, q: int) -> "QuantumCircuit":
        """Adjoint phase gate S-dagger."""
        return self.append("sdg", q)

    def t(self, q: int) -> "QuantumCircuit":
        """T gate (pi/8)."""
        return self.append("t", q)

    def tdg(self, q: int) -> "QuantumCircuit":
        """Adjoint T gate."""
        return self.append("tdg", q)

    def rx(self, theta: ParamLike, q: int) -> "QuantumCircuit":
        """X-rotation by ``theta``."""
        return self.append("rx", q, (theta,))

    def ry(self, theta: ParamLike, q: int) -> "QuantumCircuit":
        """Y-rotation by ``theta``."""
        return self.append("ry", q, (theta,))

    def rz(self, theta: ParamLike, q: int) -> "QuantumCircuit":
        """Z-rotation by ``theta``."""
        return self.append("rz", q, (theta,))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-X (CNOT) with the first operand as control."""
        return self.append("cx", (control, target))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        """Controlled-Z (symmetric in its operands)."""
        return self.append("cz", (a, b))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP gate."""
        return self.append("swap", (a, b))

    def rzz(self, theta: ParamLike, a: int, b: int) -> "QuantumCircuit":
        """ZZ-rotation ``exp(-i theta ZZ / 2)`` (QAOA cost gate)."""
        return self.append("rzz", (a, b), (theta,))

    def rxx(self, theta: ParamLike, a: int, b: int) -> "QuantumCircuit":
        """XX-rotation ``exp(-i theta XX / 2)``."""
        return self.append("rxx", (a, b), (theta,))

    def ryy(self, theta: ParamLike, a: int, b: int) -> "QuantumCircuit":
        """YY-rotation ``exp(-i theta YY / 2)``."""
        return self.append("ryy", (a, b), (theta,))

    # -- structural queries -------------------------------------------

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        """The instruction list (read-only view)."""
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    @property
    def parameters(self) -> frozenset[Parameter]:
        """All free symbolic parameters, as a set."""
        found: set[Parameter] = set()
        for instruction in self._instructions:
            for value in instruction.params:
                if isinstance(value, (Parameter, ParameterExpression)):
                    found.update(value.parameters)
        return frozenset(found)

    @property
    def is_parameterized(self) -> bool:
        """True if the circuit still has unbound parameters."""
        return any(instr.is_parameterized for instr in self._instructions)

    def count_gates(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for instruction in self._instructions:
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates (drives the noise/latency models)."""
        return sum(1 for instr in self._instructions if len(instr.qubits) == 2)

    def depth(self) -> int:
        """Circuit depth: longest chain of gates sharing qubits."""
        level = [0] * self.num_qubits
        for instruction in self._instructions:
            layer = 1 + max(level[q] for q in instruction.qubits)
            for qubit in instruction.qubits:
                level[qubit] = layer
        return max(level, default=0)

    # -- transformation ------------------------------------------------

    def bind(self, bindings: dict[Parameter, float]) -> "QuantumCircuit":
        """Return a copy with all symbolic parameters resolved."""
        bound = QuantumCircuit(self.num_qubits, name=self.name)
        for instruction in self._instructions:
            bound._instructions.append(
                Instruction(
                    instruction.name,
                    instruction.qubits,
                    instruction.bound_params(bindings),
                )
            )
        return bound

    def bind_list(self, values: Sequence[float]) -> "QuantumCircuit":
        """Bind parameters by sorted-name order (stable convention).

        Ansatz factories name parameters so that sorted-name order is the
        natural semantic order (``beta_00``, ... then ``gamma_00``, ...).
        """
        ordered = sorted(self.parameters, key=lambda prm: (prm.name, prm.uid))
        if len(values) != len(ordered):
            raise CircuitError(
                f"expected {len(ordered)} parameter values, got {len(values)}"
            )
        return self.bind(dict(zip(ordered, (float(v) for v in values))))

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Concatenate ``other`` after this circuit."""
        if other.num_qubits != self.num_qubits:
            raise CircuitError("cannot compose circuits of different widths")
        out = self.copy()
        out._instructions.extend(other._instructions)
        return out

    def copy(self) -> "QuantumCircuit":
        """Shallow copy (instructions are immutable)."""
        out = QuantumCircuit(self.num_qubits, name=self.name)
        out._instructions = list(self._instructions)
        return out

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit.

        Requires all parameters to be bound for rotation gates, since the
        inverse negates angles numerically.
        """
        out = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for instruction in reversed(self._instructions):
            name = instruction.name
            if name in _SELF_INVERSE:
                out._instructions.append(instruction)
            elif name in _NAMED_INVERSE:
                out._instructions.append(
                    Instruction(_NAMED_INVERSE[name], instruction.qubits)
                )
            elif name in _PARAM_COUNT:
                if instruction.is_parameterized:
                    raise CircuitError(
                        "cannot invert a circuit with unbound parameters"
                    )
                if name == "u":
                    theta, phi, lam = instruction.params
                    params: tuple[object, ...] = (-theta, -lam, -phi)
                else:
                    params = tuple(-float(v) for v in instruction.params)
                out._instructions.append(Instruction(name, instruction.qubits, params))
            else:  # pragma: no cover - defensive; every gate is categorized
                raise CircuitError(f"cannot invert gate {name!r}")
        return out

    def folded(self, scale_factor: int) -> "QuantumCircuit":
        """Global unitary folding ``U -> U (U^dagger U)^k`` for ZNE.

        ``scale_factor`` must be an odd positive integer ``2k + 1``; the
        folded circuit is logically identical but executes
        ``scale_factor`` times the gates, scaling physical noise.
        """
        if scale_factor < 1 or scale_factor % 2 == 0:
            raise CircuitError("fold scale factor must be an odd positive integer")
        out = self.copy()
        inverse = self.inverse()
        for _ in range((scale_factor - 1) // 2):
            out = out.compose(inverse).compose(self)
        out.name = f"{self.name}_x{scale_factor}"
        return out

    def resolved_operations(
        self, bindings: dict[Parameter, float] | None = None
    ) -> Iterable[tuple[str, tuple[int, ...], "object"]]:
        """Yield ``(name, qubits, matrix)`` with all parameters bound.

        This is the single entry point simulators use, so gate semantics
        live in exactly one place.
        """
        for instruction in self._instructions:
            params = instruction.bound_params(bindings)
            yield instruction.name, instruction.qubits, gate_matrix(
                instruction.name, params
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self._instructions)}, depth={self.depth()})"
        )
