"""Quantum gate matrices and helpers.

This module is the lowest layer of the simulation substrate: plain
``numpy`` unitaries for the standard gate set used by the ansatz library
(QAOA, Two-local, UCCSD-style) plus small utilities for validating and
combining them.

All matrices use the little-endian qubit convention adopted throughout
``repro.quantum``: qubit 0 is the least significant bit of a basis-state
index.  Two-qubit gate matrices act on basis states ordered
``|q1 q0>`` -> index ``2*q1 + q0``.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

__all__ = [
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "CX",
    "CZ",
    "SWAP",
    "rx",
    "ry",
    "rz",
    "p",
    "u",
    "rxx",
    "ryy",
    "rzz",
    "rx_many",
    "ry_many",
    "rz_many",
    "rxx_many",
    "ryy_many",
    "rzz_many",
    "crx",
    "cry",
    "crz",
    "cp",
    "controlled",
    "is_unitary",
    "is_hermitian",
    "gate_matrix",
    "gate_matrix_many",
    "PAULI_MATRICES",
]

_SQRT2_INV = 1.0 / math.sqrt(2.0)

I = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
TDG = T.conj().T
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

PAULI_MATRICES = {"I": I, "X": X, "Y": Y, "Z": Z}

# Two-qubit gates in little-endian |q1 q0> ordering.  For the symmetric
# gates below (CZ, SWAP, RZZ, ...) endianness does not matter; for CX we
# fix the convention control = first operand, target = second operand and
# build the matrix accordingly in ``Statevector.apply_two_qubit``.
CX = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)


def rx(theta: float) -> np.ndarray:
    """Rotation around X: ``exp(-i theta X / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation around Y: ``exp(-i theta Y / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation around Z: ``exp(-i theta Z / 2)``."""
    phase = cmath.exp(-1j * theta / 2.0)
    return np.array([[phase, 0], [0, phase.conjugate()]], dtype=complex)


def p(lam: float) -> np.ndarray:
    """Phase gate ``diag(1, exp(i lam))``."""
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def u(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary (IBM ``U`` gate convention)."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _two_qubit_pauli_rotation(pauli_pair: np.ndarray, theta: float) -> np.ndarray:
    """``exp(-i theta/2 * P (x) Q)`` for a Pauli tensor product."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return c * np.eye(4, dtype=complex) - 1j * s * pauli_pair


def rxx(theta: float) -> np.ndarray:
    """Two-qubit XX rotation ``exp(-i theta XX / 2)``."""
    return _two_qubit_pauli_rotation(np.kron(X, X), theta)


def ryy(theta: float) -> np.ndarray:
    """Two-qubit YY rotation ``exp(-i theta YY / 2)``."""
    return _two_qubit_pauli_rotation(np.kron(Y, Y), theta)


def rzz(theta: float) -> np.ndarray:
    """Two-qubit ZZ rotation ``exp(-i theta ZZ / 2)`` (diagonal)."""
    phase = cmath.exp(-1j * theta / 2.0)
    conj = phase.conjugate()
    return np.diag([phase, conj, conj, phase]).astype(complex)


def rx_many(thetas: np.ndarray) -> np.ndarray:
    """``(B, 2, 2)`` stack of :func:`rx` matrices, one per angle."""
    thetas = np.asarray(thetas, dtype=float)
    c, s = np.cos(thetas / 2.0), np.sin(thetas / 2.0)
    stack = np.empty(thetas.shape + (2, 2), dtype=complex)
    stack[..., 0, 0] = c
    stack[..., 0, 1] = -1j * s
    stack[..., 1, 0] = -1j * s
    stack[..., 1, 1] = c
    return stack


def ry_many(thetas: np.ndarray) -> np.ndarray:
    """``(B, 2, 2)`` stack of :func:`ry` matrices, one per angle.

    The per-row operand shape
    :meth:`~repro.quantum.batched.BatchedStatevector.apply_one_qubit`
    accepts — a whole rotation layer with a different binding per row
    becomes one call.
    """
    thetas = np.asarray(thetas, dtype=float)
    c, s = np.cos(thetas / 2.0), np.sin(thetas / 2.0)
    stack = np.empty(thetas.shape + (2, 2), dtype=complex)
    stack[..., 0, 0] = c
    stack[..., 0, 1] = -s
    stack[..., 1, 0] = s
    stack[..., 1, 1] = c
    return stack


def rz_many(thetas: np.ndarray) -> np.ndarray:
    """``(B, 2, 2)`` stack of :func:`rz` matrices, one per angle."""
    thetas = np.asarray(thetas, dtype=float)
    phase = np.exp(-0.5j * thetas)
    stack = np.zeros(thetas.shape + (2, 2), dtype=complex)
    stack[..., 0, 0] = phase
    stack[..., 1, 1] = np.conj(phase)
    return stack


def _two_qubit_pauli_rotation_many(
    pauli_pair: np.ndarray, thetas: np.ndarray
) -> np.ndarray:
    """``(B, 4, 4)`` stack of ``exp(-i theta/2 P (x) Q)`` rotations."""
    thetas = np.asarray(thetas, dtype=float)
    c, s = np.cos(thetas / 2.0), np.sin(thetas / 2.0)
    return (
        c[..., None, None] * np.eye(4, dtype=complex)
        - 1j * s[..., None, None] * pauli_pair
    )


def rxx_many(thetas: np.ndarray) -> np.ndarray:
    """``(B, 4, 4)`` stack of :func:`rxx` matrices, one per angle."""
    return _two_qubit_pauli_rotation_many(np.kron(X, X), thetas)


def ryy_many(thetas: np.ndarray) -> np.ndarray:
    """``(B, 4, 4)`` stack of :func:`ryy` matrices, one per angle."""
    return _two_qubit_pauli_rotation_many(np.kron(Y, Y), thetas)


def rzz_many(thetas: np.ndarray) -> np.ndarray:
    """``(B, 4, 4)`` stack of :func:`rzz` matrices, one per angle."""
    thetas = np.asarray(thetas, dtype=float)
    phase = np.exp(-0.5j * thetas)
    stack = np.zeros(thetas.shape + (4, 4), dtype=complex)
    stack[..., 0, 0] = phase
    stack[..., 1, 1] = np.conj(phase)
    stack[..., 2, 2] = np.conj(phase)
    stack[..., 3, 3] = phase
    return stack


def controlled(unitary: np.ndarray) -> np.ndarray:
    """Controlled version of a single-qubit unitary.

    Control is the *second* operand qubit (the high bit of the 2-qubit
    index), matching the ``|q1 q0>`` ordering used by :data:`CX`.
    """
    out = np.eye(4, dtype=complex)
    out[2:, 2:] = unitary
    return out


def crx(theta: float) -> np.ndarray:
    """Controlled-RX rotation."""
    return controlled(rx(theta))


def cry(theta: float) -> np.ndarray:
    """Controlled-RY rotation."""
    return controlled(ry(theta))


def crz(theta: float) -> np.ndarray:
    """Controlled-RZ rotation."""
    return controlled(rz(theta))


def cp(lam: float) -> np.ndarray:
    """Controlled-phase rotation."""
    return controlled(p(lam))


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Check ``M @ M.conj().T == I`` within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Check ``M == M.conj().T`` within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


_FIXED_GATES = {
    "i": I,
    "id": I,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
    "cx": CX,
    "cnot": CX,
    "cz": CZ,
    "swap": SWAP,
}

_PARAMETRIC_GATES = {
    "rx": rx,
    "ry": ry,
    "rz": rz,
    "p": p,
    "u": u,
    "rxx": rxx,
    "ryy": ryy,
    "rzz": rzz,
    "crx": crx,
    "cry": cry,
    "crz": crz,
    "cp": cp,
}


_PARAMETRIC_GATES_MANY = {
    "rx": rx_many,
    "ry": ry_many,
    "rz": rz_many,
    "rxx": rxx_many,
    "ryy": ryy_many,
    "rzz": rzz_many,
}


def gate_matrix(name: str, params: tuple[float, ...] = ()) -> np.ndarray:
    """Resolve a gate name (and bound parameters) to its unitary matrix.

    Raises:
        KeyError: if the gate name is unknown.
        TypeError: if parameters are supplied for a fixed gate or missing
            for a parametric one.
    """
    key = name.lower()
    if key in _FIXED_GATES:
        if params:
            raise TypeError(f"gate {name!r} takes no parameters, got {params!r}")
        return _FIXED_GATES[key]
    if key in _PARAMETRIC_GATES:
        return _PARAMETRIC_GATES[key](*params)
    raise KeyError(f"unknown gate {name!r}")


def gate_matrix_many(
    name: str, params_rows: "list[tuple[float, ...]]"
) -> np.ndarray:
    """``(B, d, d)`` stack of one parametric gate across per-row bindings.

    Single-angle rotations vectorize through their ``*_many``
    constructors; other parametric gates fall back to stacking
    :func:`gate_matrix` per row.  This is what lets batched circuit
    replay resolve a parameterized position for a whole batch without a
    per-row Python matrix build.
    """
    key = name.lower()
    many = _PARAMETRIC_GATES_MANY.get(key)
    if many is not None and all(len(params) == 1 for params in params_rows):
        return many(np.array([params[0] for params in params_rows]))
    return np.stack([gate_matrix(name, params) for params in params_rows])
