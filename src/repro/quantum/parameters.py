"""Symbolic circuit parameters.

Parametric circuits (ansatzes) carry :class:`Parameter` placeholders that
are bound to numbers just before execution.  We support the small algebra
the ansatz library needs: affine expressions ``coeff * parameter +
offset`` (enough for QAOA's ``2 * gamma * w_ij`` angles and UCCSD's
shared excitation parameters).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from numbers import Real

__all__ = ["Parameter", "ParameterExpression", "ParameterValueError"]

_counter = itertools.count()


class ParameterValueError(ValueError):
    """Raised when binding is attempted with missing or non-numeric values."""


@dataclass(frozen=True)
class Parameter:
    """A named symbolic circuit parameter.

    Two parameters with the same name are distinct objects; identity is
    tracked through a unique id so ansatz factories can safely reuse
    names like ``theta``.
    """

    name: str
    uid: int = field(default_factory=lambda: next(_counter), compare=True)

    def __mul__(self, other: Real) -> "ParameterExpression":
        return ParameterExpression(self, coeff=float(other))

    __rmul__ = __mul__

    def __add__(self, other: Real) -> "ParameterExpression":
        return ParameterExpression(self, offset=float(other))

    __radd__ = __add__

    def __sub__(self, other: Real) -> "ParameterExpression":
        return ParameterExpression(self, offset=-float(other))

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self, coeff=-1.0)

    def bind(self, values: dict["Parameter", float]) -> float:
        """Resolve this parameter to a concrete float."""
        if self not in values:
            raise ParameterValueError(f"no value bound for parameter {self.name!r}")
        return float(values[self])

    @property
    def parameters(self) -> frozenset["Parameter"]:
        """The set of free parameters (always a singleton here)."""
        return frozenset({self})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name!r})"


@dataclass(frozen=True)
class ParameterExpression:
    """Affine expression ``coeff * parameter + offset``."""

    parameter: Parameter
    coeff: float = 1.0
    offset: float = 0.0

    def __mul__(self, other: Real) -> "ParameterExpression":
        factor = float(other)
        return ParameterExpression(
            self.parameter, coeff=self.coeff * factor, offset=self.offset * factor
        )

    __rmul__ = __mul__

    def __add__(self, other: Real) -> "ParameterExpression":
        return ParameterExpression(
            self.parameter, coeff=self.coeff, offset=self.offset + float(other)
        )

    __radd__ = __add__

    def __sub__(self, other: Real) -> "ParameterExpression":
        return self + (-float(other))

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(self.parameter, coeff=-self.coeff, offset=-self.offset)

    def bind(self, values: dict[Parameter, float]) -> float:
        """Resolve the expression to a concrete float."""
        return self.coeff * self.parameter.bind(values) + self.offset

    @property
    def parameters(self) -> frozenset[Parameter]:
        """The set of free parameters in the expression."""
        return frozenset({self.parameter})


def resolve_value(
    value: "Parameter | ParameterExpression | Real",
    bindings: dict[Parameter, float] | None,
) -> float:
    """Bind a gate angle that may be symbolic or already numeric."""
    if isinstance(value, (Parameter, ParameterExpression)):
        if bindings is None:
            raise ParameterValueError(
                f"circuit has unbound parameters: {sorted(p.name for p in value.parameters)}"
            )
        return value.bind(bindings)
    return float(value)
