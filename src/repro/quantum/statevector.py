"""Exact statevector simulation.

The engine stores the state as a flat complex vector of length ``2**n``
(little endian: qubit 0 is the least significant index bit) and applies
gates by reshaping to a rank-``n`` tensor and contracting on the target
axes.  This is the standard dense simulation strategy; it is exact and,
for the ≤ 20-qubit circuits this reproduction runs, fast enough on one
CPU core.

A fast path for *diagonal* unitaries (``rz``, ``rzz``, ``cz``, ``p``...)
multiplies phases elementwise, which is what makes dense QAOA landscape
grids cheap: the cost layer of QAOA is one elementwise multiply.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from ..utils import ensure_rng
from .circuit import QuantumCircuit
from .parameters import Parameter

__all__ = ["Statevector", "simulate", "expectation_of_diagonal"]

_DIAGONAL_GATES = {"i", "id", "z", "s", "sdg", "t", "tdg", "rz", "p", "cz", "rzz", "cp", "crz"}


class Statevector:
    """A mutable ``2**n`` complex state with gate application methods."""

    def __init__(self, num_qubits: int, data: np.ndarray | None = None):
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            self._data = np.zeros(dim, dtype=complex)
            self._data[0] = 1.0
        else:
            data = np.asarray(data, dtype=complex).reshape(-1)
            if data.shape[0] != dim:
                raise ValueError(
                    f"state length {data.shape[0]} does not match {num_qubits} qubits"
                )
            self._data = data.copy()

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a computational basis state from a bitstring label.

        The label reads left-to-right as qubit ``n-1 .. 0`` (the usual
        ket convention), e.g. ``"10"`` is qubit1=1, qubit0=0.
        """
        num_qubits = len(label)
        index = int(label, 2)
        state = cls(num_qubits)
        state._data[0] = 0.0
        state._data[index] = 1.0
        return state

    @property
    def data(self) -> np.ndarray:
        """The underlying amplitude vector (a live view)."""
        return self._data

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**n``."""
        return self._data.shape[0]

    def copy(self) -> "Statevector":
        """An independent copy of the state."""
        return Statevector(self.num_qubits, self._data)

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector."""
        return float(np.linalg.norm(self._data))

    def probabilities(self) -> np.ndarray:
        """Probability of each computational basis outcome."""
        return np.abs(self._data) ** 2

    # -- gate application ----------------------------------------------

    def apply_one_qubit(self, matrix: np.ndarray, qubit: int) -> None:
        """Apply a 2x2 unitary to ``qubit`` in place."""
        n = self.num_qubits
        tensor = self._data.reshape([2] * n)
        # Axis ordering: reshape puts qubit n-1 first, qubit 0 last.
        axis = n - 1 - qubit
        tensor = np.moveaxis(tensor, axis, 0)
        shape = tensor.shape
        tensor = matrix @ tensor.reshape(2, -1)
        tensor = np.moveaxis(tensor.reshape(shape), 0, axis)
        self._data = np.ascontiguousarray(tensor).reshape(-1)

    def apply_two_qubit(self, matrix: np.ndarray, qubit0: int, qubit1: int) -> None:
        """Apply a 4x4 unitary to ``(qubit0, qubit1)`` in place.

        The matrix is interpreted in the ``|q1 q0>`` basis used by
        :mod:`repro.quantum.gates`: ``qubit1`` is the high index bit.
        For :data:`~repro.quantum.gates.CX`, operand order
        ``(control, target)`` maps to ``qubit1 = control``.
        """
        n = self.num_qubits
        tensor = self._data.reshape([2] * n)
        axis1 = n - 1 - qubit1  # high bit
        axis0 = n - 1 - qubit0  # low bit
        tensor = np.moveaxis(tensor, (axis1, axis0), (0, 1))
        shape = tensor.shape
        tensor = matrix @ tensor.reshape(4, -1)
        tensor = np.moveaxis(tensor.reshape(shape), (0, 1), (axis1, axis0))
        self._data = np.ascontiguousarray(tensor).reshape(-1)

    def apply_diagonal(self, diagonal: np.ndarray) -> None:
        """Multiply the full state elementwise by a length-``2**n``
        phase vector (the QAOA cost-layer fast path)."""
        diagonal = np.asarray(diagonal)
        if diagonal.shape != self._data.shape:
            raise ValueError("diagonal length does not match state dimension")
        self._data *= diagonal

    def apply_gate(self, name: str, qubits: Sequence[int], matrix: np.ndarray) -> None:
        """Apply a named gate; dispatches on arity."""
        if len(qubits) == 1:
            self.apply_one_qubit(matrix, qubits[0])
        elif len(qubits) == 2:
            if name in ("cx", "cnot"):
                # Operands are (control, target): control is the high bit.
                self.apply_two_qubit(matrix, qubit0=qubits[1], qubit1=qubits[0])
            else:
                self.apply_two_qubit(matrix, qubit0=qubits[0], qubit1=qubits[1])
        else:  # pragma: no cover - the IR only emits 1q/2q gates
            raise ValueError(f"unsupported gate arity {len(qubits)}")

    def evolve(
        self,
        circuit: QuantumCircuit,
        bindings: Mapping[Parameter, float] | None = None,
    ) -> "Statevector":
        """Apply all circuit instructions in place; returns ``self``."""
        for name, qubits, matrix in circuit.resolved_operations(
            dict(bindings) if bindings else None
        ):
            self.apply_gate(name, qubits, matrix)
        return self

    # -- measurement ----------------------------------------------------

    def expectation_diagonal(self, diagonal_values: np.ndarray) -> float:
        """``<psi| D |psi>`` for a real diagonal observable ``D``."""
        probabilities = self.probabilities()
        return float(np.real(np.dot(probabilities, diagonal_values)))

    def expectation_matrix(self, observable: np.ndarray) -> float:
        """``<psi| O |psi>`` for a dense Hermitian observable."""
        return float(np.real(np.vdot(self._data, observable @ self._data)))

    def sample_counts(
        self, shots: int, rng: np.random.Generator | None = None
    ) -> dict[int, int]:
        """Sample measurement outcomes; returns ``{basis_index: count}``."""
        if shots < 1:
            raise ValueError(f"shots must be >= 1, got {shots}")
        rng = ensure_rng(rng)
        probabilities = self.probabilities()
        total = probabilities.sum()
        if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=1e-9):
            # Guard against tiny negative round-off before renormalizing.
            probabilities = np.clip(probabilities, 0.0, None)
            probabilities /= probabilities.sum()
        outcomes = rng.choice(self.dim, size=shots, p=probabilities)
        values, counts = np.unique(outcomes, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def sample_expectation_diagonal(
        self,
        diagonal_values: np.ndarray,
        shots: int,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Shot-noise estimate of a diagonal observable's expectation."""
        rng = ensure_rng(rng)
        counts = self.sample_counts(shots, rng)
        total = 0.0
        for index, count in counts.items():
            total += diagonal_values[index] * count
        return total / shots

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|^2``."""
        return float(abs(np.vdot(self._data, other._data)) ** 2)


def simulate(
    circuit: QuantumCircuit,
    bindings: Mapping[Parameter, float] | None = None,
) -> Statevector:
    """Run a circuit from ``|0...0>`` and return the final state."""
    return Statevector(circuit.num_qubits).evolve(circuit, bindings)


def expectation_of_diagonal(
    circuit: QuantumCircuit,
    diagonal_values: np.ndarray,
    bindings: Mapping[Parameter, float] | None = None,
) -> float:
    """Convenience: simulate then take a diagonal expectation."""
    return simulate(circuit, bindings).expectation_diagonal(diagonal_values)
