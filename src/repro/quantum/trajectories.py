"""Monte-Carlo Pauli-trajectory noisy simulation.

Depolarizing noise is a stochastic mixture of Pauli errors, so its
effect on any expectation value can be estimated by sampling error
*trajectories*: run the statevector simulation and, after each gate,
insert a random Pauli on the touched qubits with the model's error
probability.  Averaging over trajectories converges to the exact
density-matrix result at ``O(2**n)`` memory instead of ``O(4**n)``,
which is how this reproduction simulates noisy landscapes beyond ~8
qubits on one core.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .circuit import QuantumCircuit
from .gates import X, Y, Z
from .noise import NoiseModel
from .parameters import Parameter
from .statevector import Statevector
from ..utils import ensure_rng

__all__ = [
    "trajectory_expectation_diagonal",
    "trajectory_expectation_observable",
    "sample_trajectory",
]

_PAULIS = (X, Y, Z)


def sample_trajectory(
    circuit: QuantumCircuit,
    noise: NoiseModel,
    rng: np.random.Generator,
    bindings: Mapping[Parameter, float] | None = None,
) -> Statevector:
    """One noisy trajectory: unitary evolution with sampled Pauli errors.

    Single-qubit gates are followed (with probability ``p1``) by a
    uniform X/Y/Z error; two-qubit gates by one of the 15 non-identity
    Pauli pairs (with probability ``p2``) — exactly the unravelling of
    the depolarizing Kraus channels, so trajectory averages converge to
    the density-matrix result.
    """
    state = Statevector(circuit.num_qubits)
    for name, qubits, matrix in circuit.resolved_operations(
        dict(bindings) if bindings else None
    ):
        state.apply_gate(name, qubits, matrix)
        probability = noise.error_probability(len(qubits))
        if probability <= 0.0 or rng.random() >= probability:
            continue
        if len(qubits) == 1:
            state.apply_one_qubit(_PAULIS[rng.integers(0, 3)], qubits[0])
        else:
            # Uniform non-identity Pauli pair: index 1..15 in base 4.
            pair = int(rng.integers(1, 16))
            left, right = pair // 4, pair % 4
            if left:
                state.apply_one_qubit(_PAULIS[left - 1], qubits[0])
            if right:
                state.apply_one_qubit(_PAULIS[right - 1], qubits[1])
    return state


def trajectory_expectation_diagonal(
    circuit: QuantumCircuit,
    diagonal_values: np.ndarray,
    noise: NoiseModel,
    num_trajectories: int = 32,
    shots_per_trajectory: int | None = None,
    rng: np.random.Generator | None = None,
    bindings: Mapping[Parameter, float] | None = None,
) -> float:
    """Estimate a diagonal observable's expectation under noise.

    Args:
        circuit: the (bound or bindable) circuit to run.
        diagonal_values: cost value per computational basis state.
        noise: depolarizing noise model.
        num_trajectories: number of sampled error trajectories.
        shots_per_trajectory: if given, each trajectory's expectation is
            itself shot-sampled (adding measurement statistics noise);
            if ``None`` the exact per-trajectory expectation is used.
        rng: random generator (for reproducibility).
        bindings: parameter bindings if the circuit is symbolic.
    """
    rng = ensure_rng(rng)
    if noise.is_ideal and shots_per_trajectory is None:
        state = Statevector(circuit.num_qubits).evolve(circuit, bindings)
        return state.expectation_diagonal(diagonal_values)
    total = 0.0
    for _ in range(num_trajectories):
        state = sample_trajectory(circuit, noise, rng, bindings)
        if shots_per_trajectory is None:
            total += state.expectation_diagonal(diagonal_values)
        else:
            total += state.sample_expectation_diagonal(
                diagonal_values, shots_per_trajectory, rng
            )
    return total / num_trajectories


def trajectory_expectation_observable(
    circuit: QuantumCircuit,
    observable,
    noise: NoiseModel,
    num_trajectories: int = 32,
    rng: np.random.Generator | None = None,
    bindings: Mapping[Parameter, float] | None = None,
) -> float:
    """Noisy expectation of an arbitrary observable via trajectories.

    ``observable`` is anything with an ``expectation(Statevector)``
    method (a :class:`~repro.problems.pauli.PauliSum` or
    :class:`~repro.problems.pauli.PauliString`), so noisy chemistry
    (VQE) estimation scales to qubit counts where the ``O(4^n)``
    density-matrix engine cannot go.
    """
    rng = ensure_rng(rng)
    if noise.is_ideal:
        state = Statevector(circuit.num_qubits).evolve(circuit, bindings)
        return float(observable.expectation(state))
    total = 0.0
    for _ in range(num_trajectories):
        state = sample_trajectory(circuit, noise, rng, bindings)
        total += observable.expectation(state)
    return total / num_trajectories
