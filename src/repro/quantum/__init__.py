"""Quantum simulation substrate: gates, circuits, state engines, noise.

This subpackage replaces the Qiskit/Cirq dependency of the original
OSCAR implementation with a self-contained simulator stack:

- :mod:`~repro.quantum.gates` — gate matrices,
- :mod:`~repro.quantum.parameters` — symbolic circuit parameters,
- :mod:`~repro.quantum.circuit` — the circuit IR (bind/compose/fold),
- :mod:`~repro.quantum.statevector` — exact pure-state engine,
- :mod:`~repro.quantum.batched` — batched pure-state engine (many
  parameter bindings per vectorized pass),
- :mod:`~repro.quantum.density` — exact noisy engine (Kraus channels),
- :mod:`~repro.quantum.batched_density` — batched exact noisy engine
  (many noisy rows per vectorized pass, per-row noise models),
- :mod:`~repro.quantum.trajectories` — scalable Monte-Carlo noisy engine,
- :mod:`~repro.quantum.noise` — depolarizing/readout noise models.
"""

from .batched import BatchedStatevector, default_batch_size
from .batched_density import BatchedDensityMatrix, default_density_batch_size
from .circuit import CircuitError, Instruction, QuantumCircuit
from .density import DensityMatrix, simulate_density
from .noise import IDEAL, NoiseModel, global_depolarizing_factor
from .parameters import Parameter, ParameterExpression
from .statevector import Statevector, expectation_of_diagonal, simulate
from .trajectories import trajectory_expectation_diagonal

__all__ = [
    "BatchedStatevector",
    "default_batch_size",
    "BatchedDensityMatrix",
    "default_density_batch_size",
    "CircuitError",
    "Instruction",
    "QuantumCircuit",
    "DensityMatrix",
    "simulate_density",
    "IDEAL",
    "NoiseModel",
    "global_depolarizing_factor",
    "Parameter",
    "ParameterExpression",
    "Statevector",
    "expectation_of_diagonal",
    "simulate",
    "trajectory_expectation_diagonal",
]
