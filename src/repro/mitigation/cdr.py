"""Clifford Data Regression (CDR) noise mitigation.

CDR (Czarnik et al., Quantum 5, 592 (2021)) — one of the mitigation
families the paper's Sec. 2.3 catalogues — learns the map from noisy to
exact expectation values on *near-Clifford training circuits* (cheap to
simulate classically even at scale) and applies the learned map to the
circuit of interest:

1. build training circuits resembling the target but with parameters
   snapped to Clifford angles (multiples of pi/2 for our RZZ/RX gates,
   where the rotations become Clifford gates);
2. evaluate each training circuit both noisily (device) and exactly
   (classical Clifford-capable simulation — here, our statevector
   engine, since training circuits stay small);
3. fit ``exact ~ a * noisy + b`` by least squares;
4. mitigate the target circuit's noisy value through the fitted map.

For depolarizing-dominated noise the true relationship *is* affine, so
CDR is extremely effective — which our benchmark against ZNE shows.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.noise import NoiseModel
from ..utils import ensure_rng

__all__ = [
    "CdrConfig",
    "CdrCostFunction",
    "CliffordDataRegression",
    "snap_to_clifford_angles",
    "cdr_cost_function",
]


def snap_to_clifford_angles(
    parameters: np.ndarray, rng: np.random.Generator, keep_fraction: float = 0.0
) -> np.ndarray:
    """Project parameters onto the nearest Clifford angles.

    QAOA's RZZ(2*gamma*w) and RX(2*beta) gates are Clifford when their
    angles are multiples of pi/2, i.e. when the *parameters* sit on the
    pi/4 lattice.  ``keep_fraction`` optionally leaves a random subset
    of parameters untouched (the "near-Clifford" variant that improves
    training diversity).
    """
    parameters = np.asarray(parameters, dtype=float)
    snapped = np.round(parameters / (np.pi / 4.0)) * (np.pi / 4.0)
    if keep_fraction > 0.0:
        keep = rng.random(parameters.shape) < keep_fraction
        snapped = np.where(keep, parameters, snapped)
    return snapped


@dataclass(frozen=True)
class CdrConfig:
    """CDR knobs.

    Attributes:
        num_training_circuits: training-set size (paper-family default 10).
        keep_fraction: fraction of parameters left non-Clifford per
            training circuit.  Strictly Clifford QAOA angles (beta on
            the pi/4 lattice) collapse many training values onto the
            landscape mean, degenerating the regression, so the
            near-Clifford variant is the default.
        jitter: random parameter offset applied before snapping, so the
            training set spans the neighbourhood of the target.
    """

    num_training_circuits: int = 10
    keep_fraction: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.num_training_circuits < 2:
            raise ValueError("CDR needs at least two training circuits")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ValueError("keep fraction must be in [0, 1)")


class CliffordDataRegression:
    """Learns and applies the noisy -> exact expectation map."""

    def __init__(self, ansatz: Ansatz, noise: NoiseModel, config: CdrConfig | None = None):
        self.ansatz = ansatz
        self.noise = noise
        self.config = config or CdrConfig()
        self._coefficients: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has run."""
        return self._coefficients is not None

    @property
    def coefficients(self) -> tuple[float, float]:
        """The fitted ``(slope, intercept)``."""
        if self._coefficients is None:
            raise RuntimeError("CDR model has not been trained")
        return float(self._coefficients[0]), float(self._coefficients[1])

    def training_set(
        self, around: np.ndarray, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """Near-Clifford parameter vectors around the target point."""
        around = np.asarray(around, dtype=float)
        circuits = []
        for _ in range(self.config.num_training_circuits):
            jittered = around + rng.normal(0.0, self.config.jitter, around.shape)
            circuits.append(
                snap_to_clifford_angles(jittered, rng, self.config.keep_fraction)
            )
        return circuits

    def train(
        self,
        around: np.ndarray,
        rng: np.random.Generator | None = None,
        shots: int | None = None,
    ) -> "CliffordDataRegression":
        """Fit the regression on training circuits near ``around``."""
        rng = ensure_rng(rng)
        noisy_values = []
        exact_values = []
        for parameters in self.training_set(around, rng):
            noisy_values.append(
                self.ansatz.expectation(
                    parameters, noise=self.noise, shots=shots, rng=rng
                )
            )
            exact_values.append(self.ansatz.expectation(parameters))
        noisy = np.asarray(noisy_values)
        exact = np.asarray(exact_values)
        if np.ptp(noisy) < 1e-12:
            # Degenerate training set (all Clifford values equal):
            # fall back to a pure offset correction.
            self._coefficients = np.array([1.0, float(np.mean(exact - noisy))])
        else:
            self._coefficients = np.polyfit(noisy, exact, deg=1)
        return self

    def mitigate(self, noisy_value: float) -> float:
        """Apply the learned map to a noisy expectation value."""
        if self._coefficients is None:
            raise RuntimeError("CDR model has not been trained")
        return float(np.polyval(self._coefficients, noisy_value))

    def mitigate_many(self, noisy_values: np.ndarray) -> np.ndarray:
        """Apply the learned map to a whole array of noisy values."""
        if self._coefficients is None:
            raise RuntimeError("CDR model has not been trained")
        return np.polyval(
            self._coefficients, np.asarray(noisy_values, dtype=float)
        )

    def mitigated_expectation(
        self,
        parameters: np.ndarray,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Noisy evaluation followed by the learned correction."""
        noisy = self.ansatz.expectation(
            parameters, noise=self.noise, shots=shots, rng=rng
        )
        return self.mitigate(noisy)


class CdrCostFunction:
    """A trained CDR model bound into a batch-capable cost function.

    Calling it mitigates one point; :meth:`many` evaluates a whole
    chunk through the ansatz's vectorized ``expectation_many`` (rows
    consume the shared rng in batch order, matching the serial loop)
    and applies the learned affine map in one ``polyval``.
    """

    def __init__(
        self,
        model: CliffordDataRegression,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.model = model
        self.shots = shots
        self.rng = rng

    @property
    def num_qubits(self) -> int:
        """Width of the underlying circuit (drives batch sizing)."""
        return self.model.ansatz.num_qubits

    def batch_capacity(self) -> int:
        """Memory-capped execution rows per chunk (noise-engine aware).

        Every production query runs under the trained noise model, so
        density-engine ansatzes report the ``4**n``-per-row budget.
        """
        return self.model.ansatz.batch_capacity(self.model.noise)

    def __call__(self, parameters: np.ndarray) -> float:
        """CDR-mitigated cost at one parameter point."""
        return self.model.mitigated_expectation(
            parameters, shots=self.shots, rng=self.rng
        )

    def many(self, parameters_batch: np.ndarray) -> np.ndarray:
        """CDR-mitigated cost values for an ``(m, ndim)`` point batch."""
        noisy = self.model.ansatz.expectation_many(
            np.asarray(parameters_batch, dtype=float),
            noise=self.model.noise,
            shots=self.shots,
            rng=self.rng,
        )
        return self.model.mitigate_many(noisy)


def cdr_cost_function(
    ansatz: Ansatz,
    noise: NoiseModel,
    train_around: np.ndarray,
    config: CdrConfig | None = None,
    shots: int | None = None,
    training_shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> CdrCostFunction:
    """A drop-in mitigated cost callable (trains once, reuses the map).

    Training circuits are shared across all queries — CDR's key cost
    advantage over ZNE, which pays its overhead at *every* point.  The
    returned :class:`CdrCostFunction` is batch-capable, so mitigated
    landscapes ride the vectorized execution backend.

    Args:
        shots: shot budget per production query.
        training_shots: shot budget per training circuit; defaults to
            ``shots``.  Shot noise on the regression inputs attenuates
            the fitted slope (errors-in-variables bias), so investing
            extra shots in the small, amortised training set pays off.
    """
    rng = ensure_rng(rng)
    model = CliffordDataRegression(ansatz, noise, config)
    model.train(
        np.asarray(train_around, dtype=float),
        rng=rng,
        shots=training_shots if training_shots is not None else shots,
    )
    return CdrCostFunction(model, shots=shots, rng=rng)
