"""Probabilistic Error Cancellation (PEC).

PEC (Temme, Bravyi & Gambetta, PRL 119, 180509 (2017)) — the last
mitigation family in the paper's Sec. 2.3 — inverts each noise channel
by expressing its inverse as a *quasi-probability* mixture of
implementable operations, sampling circuits from that mixture with
signs, and averaging sign-weighted outcomes.

For the single-qubit depolarizing channel with Pauli-error probability
``p`` (our :func:`~repro.quantum.noise.depolarizing_kraus` convention),
the inverse channel is

    D_p^{-1} = c_I * I  -  c_P * (X + Y + Z)/3,

with positive weights derived below; the sampling overhead is the
"gamma factor" ``gamma = c_I + c_P``, and the mitigated estimator's
standard deviation grows as ``gamma^G`` over ``G`` noisy gates — the
well-known exponential cost of PEC that makes it impractical for whole
landscapes, which is exactly why OSCAR-style benchmarking matters.

Implementation strategy: simulate the target circuit with the
trajectory engine, inserting after each gate (a) a sampled Pauli error
(the device noise) and (b) a sampled inverse-channel operation with its
sign.  Averaging sign-weighted expectations converges to the ideal
value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..quantum.circuit import QuantumCircuit
from ..quantum.gates import X, Y, Z
from ..quantum.noise import NoiseModel
from ..quantum.statevector import Statevector
from ..utils import ensure_rng

__all__ = ["inverse_depolarizing_quasiprobability", "pec_gamma_factor", "PecEstimator"]

_PAULIS = (X, Y, Z)


def inverse_depolarizing_quasiprobability(probability: float) -> tuple[float, float]:
    """Quasi-probability weights of the inverse depolarizing channel.

    The depolarizing channel with Pauli-error probability ``p`` scales
    every Pauli expectation by ``s = 1 - 4p/3``.  Its inverse applies
    identity with weight ``c_I`` and each Pauli with weight ``-c_P/3``
    where (solving the two-point channel equations)

        c_I = (1/s + 1) / 2 + ... -> c_I = (3 + s) / (4 s) ... simplified:
        c_I = 1 + 3 (1 - s) / (4 s),   c_P = 3 (1 - s) / (4 s) * ...

    Concretely: the inverse scales Paulis by ``1/s`` and the identity by
    1, giving ``c_I = (1 + 3/s) / 4`` and ``c_P = 3 (1/s - 1) / 4``
    (both derived from the Pauli transfer representation).

    Returns:
        ``(c_identity, c_pauli_total)`` with
        ``c_identity - c_pauli_total = 1`` (trace preservation) and the
        gamma factor being their sum.
    """
    if not 0.0 <= probability < 0.75:
        raise ValueError("depolarizing probability must be in [0, 0.75)")
    scale = 1.0 - 4.0 * probability / 3.0
    c_identity = (1.0 + 3.0 / scale) / 4.0
    c_pauli_total = 3.0 * (1.0 / scale - 1.0) / 4.0
    return c_identity, c_pauli_total


def pec_gamma_factor(probability: float) -> float:
    """Per-channel sampling-overhead factor ``gamma >= 1``."""
    c_identity, c_pauli_total = inverse_depolarizing_quasiprobability(probability)
    return c_identity + c_pauli_total


@dataclass
class PecEstimator:
    """Sign-weighted Monte-Carlo PEC estimator on the trajectory engine.

    Attributes:
        noise: device noise model.  Single-qubit channels are inverted
            exactly.  The two-qubit depolarizing channel is approximated
            by independent single-qubit channels whose strength is
            calibrated so that *weight-2* Pauli observables (the ZZ
            couplings that make up QAOA cost Hamiltonians) invert
            exactly to first order: ``(1 - 4 p_eff/3)^2 = 1 - 16 p/15``
            gives ``p_eff ~ 2p/5``.
        num_samples: quasi-probability circuit samples to average.
    """

    noise: NoiseModel
    num_samples: int = 256

    def _effective_probability(self, arity: int) -> float:
        if arity == 1:
            return self.noise.p1
        # Calibrated for weight-2 observables: solve exactly rather than
        # to first order: p_eff = (3/4) * (1 - sqrt(1 - 16 p / 15)).
        inner = max(0.0, 1.0 - 16.0 * self.noise.p2 / 15.0)
        return 0.75 * (1.0 - math.sqrt(inner))

    def total_gamma(self, circuit: QuantumCircuit) -> float:
        """Overall sampling overhead ``prod_gates gamma_gate``."""
        gamma = 1.0
        for instruction in circuit.instructions:
            probability = self._effective_probability(len(instruction.qubits))
            if probability > 0.0:
                gamma *= pec_gamma_factor(probability) ** len(instruction.qubits)
        return gamma

    def estimate(
        self,
        circuit: QuantumCircuit,
        diagonal_values: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> float:
        """PEC-mitigated expectation of a diagonal observable."""
        rng = ensure_rng(rng)
        total = 0.0
        for _ in range(self.num_samples):
            sign, state = self._sample_once(circuit, rng)
            total += sign * state.expectation_diagonal(diagonal_values)
        return total / self.num_samples

    def _sample_once(
        self, circuit: QuantumCircuit, rng: np.random.Generator
    ) -> tuple[float, Statevector]:
        """One quasi-probability trajectory: noise + sampled inverse."""
        state = Statevector(circuit.num_qubits)
        sign = 1.0
        for name, qubits, matrix in circuit.resolved_operations(None):
            state.apply_gate(name, qubits, matrix)
            probability = self._effective_probability(len(qubits))
            if probability <= 0.0:
                continue
            for qubit in qubits:
                # (a) the device's error.
                if rng.random() < probability:
                    state.apply_one_qubit(_PAULIS[rng.integers(0, 3)], qubit)
                # (b) the sampled inverse-channel operation.
                c_identity, c_pauli_total = inverse_depolarizing_quasiprobability(
                    probability
                )
                gamma = c_identity + c_pauli_total
                if rng.random() < c_identity / gamma:
                    pass  # identity branch, positive sign
                else:
                    state.apply_one_qubit(_PAULIS[rng.integers(0, 3)], qubit)
                    sign = -sign
                sign *= gamma  # importance weight folds into the sign
        return sign, state
