"""Zero-Noise Extrapolation (ZNE).

ZNE estimates the noiseless expectation value by measuring at several
amplified noise levels and extrapolating back to zero noise (Li &
Benjamin 2017; Temme et al. 2017).  Two noise-scaling mechanisms are
provided:

- **unitary folding** — replace the circuit ``U`` by ``U (U^dag U)^k``
  (:meth:`repro.quantum.circuit.QuantumCircuit.folded`), which triples,
  quintuples, ... the physical gate count;
- **error-rate scaling** — multiply the depolarizing probabilities of
  the noise model (:meth:`repro.quantum.noise.NoiseModel.scaled`);
  exactly equivalent to folding for small depolarizing rates and much
  cheaper to simulate.

Extrapolation models (the paper's configuration knob, Sec. 6):

- **Richardson** — exact polynomial extrapolation through all points
  (Lagrange at zero).  With scales {1,2,3} the estimator weights are
  [3, -3, 1], amplifying statistical noise by ``sqrt(19) ~ 4.4x`` —
  the "salt-like" jaggedness of Fig. 9(A);
- **linear** — least-squares line, intercept at zero; with scales
  {1,3} the weights are [1.5, -0.5] (amplification ``~1.6x``), hence
  the smoother Fig. 9(B);
- **exponential** — ``y = a * exp(b * scale)`` fit, an extension knob.

Execution is batch-capable: :class:`ZneCostFunction` folds the scale
factors into the execution batch axis (one ``expectation_many`` call
with a per-row noise sequence per chunk, then one vectorized
extrapolation), so mitigated landscape grids ride the same vectorized
backend as unmitigated ones instead of a per-(point, scale) loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..ansatz.base import Ansatz
from ..quantum.noise import NoiseModel
from ..utils import ensure_rng

__all__ = [
    "richardson_extrapolate",
    "linear_extrapolate",
    "exponential_extrapolate",
    "extrapolate",
    "extrapolate_many",
    "ZneConfig",
    "ZneCostFunction",
    "zne_expectation",
    "zne_cost_function",
]


def _richardson_weights(scales: np.ndarray) -> np.ndarray:
    """Lagrange-at-zero weights ``c_i = prod_{j != i} s_j / (s_j - s_i)``."""
    scales = np.asarray(scales, dtype=float)
    if scales.size < 2:
        raise ValueError("need at least two scale factors")
    if len(np.unique(scales)) != scales.size:
        raise ValueError("scale factors must be distinct")
    weights = np.empty(scales.size)
    for i in range(scales.size):
        weight = 1.0
        for j in range(scales.size):
            if j == i:
                continue
            weight *= scales[j] / (scales[j] - scales[i])
        weights[i] = weight
    return weights


def richardson_extrapolate(scales: np.ndarray, values: np.ndarray) -> float:
    """Lagrange polynomial through all (scale, value) pairs, at zero.

    The Richardson estimate is ``sum_i c_i y_i`` with
    ``c_i = prod_{j != i} s_j / (s_j - s_i)``.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if scales.shape != values.shape or scales.size < 2:
        raise ValueError("need matching scales/values with at least two points")
    return float(np.dot(_richardson_weights(scales), values))


def linear_extrapolate(scales: np.ndarray, values: np.ndarray) -> float:
    """Least-squares line through the points, evaluated at scale zero."""
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if scales.shape != values.shape or scales.size < 2:
        raise ValueError("need matching scales/values with at least two points")
    slope, intercept = np.polyfit(scales, values, deg=1)
    del slope
    return float(intercept)


def exponential_extrapolate(scales: np.ndarray, values: np.ndarray) -> float:
    """Fit ``y = a exp(b s)`` (log-linear least squares) and evaluate a.

    Falls back to linear extrapolation when values change sign, where
    the log transform is undefined.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if np.any(values <= 0) and np.any(values >= 0) and not (np.all(values > 0) or np.all(values < 0)):
        return linear_extrapolate(scales, values)
    sign = 1.0 if np.all(values > 0) else -1.0
    magnitudes = np.abs(values)
    if np.any(magnitudes <= 0):
        return linear_extrapolate(scales, values)
    slope, log_a = np.polyfit(scales, np.log(magnitudes), deg=1)
    del slope
    return float(sign * np.exp(log_a))


_EXTRAPOLATORS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "richardson": richardson_extrapolate,
    "linear": linear_extrapolate,
    "exponential": exponential_extrapolate,
}


def extrapolate(method: str, scales: Sequence[float], values: Sequence[float]) -> float:
    """Dispatch to a named extrapolation model."""
    if method not in _EXTRAPOLATORS:
        raise ValueError(
            f"unknown extrapolation method {method!r}; "
            f"choose from {sorted(_EXTRAPOLATORS)}"
        )
    return _EXTRAPOLATORS[method](np.asarray(scales, float), np.asarray(values, float))


def extrapolate_many(
    method: str, scales: Sequence[float], values: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`extrapolate` over an ``(m, num_scales)`` matrix.

    Richardson is one matrix-vector product with the shared Lagrange
    weights, linear is one shared least-squares fit over all rows
    (``np.polyfit`` accepts a 2-D ordinate); the exponential model's
    sign-handling branches keep it a per-row loop.  Each row equals the
    scalar :func:`extrapolate` on that row to machine precision.
    """
    scales = np.asarray(scales, dtype=float)
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or values.shape[1] != scales.size:
        raise ValueError(
            f"values must be (m, {scales.size}) for {scales.size} scales, "
            f"got {values.shape}"
        )
    if method == "richardson":
        return values @ _richardson_weights(scales)
    if method == "linear":
        return np.polyfit(scales, values.T, deg=1)[1]
    if method == "exponential":
        return np.array(
            [exponential_extrapolate(scales, row) for row in values]
        )
    raise ValueError(
        f"unknown extrapolation method {method!r}; "
        f"choose from {sorted(_EXTRAPOLATORS)}"
    )


@dataclass(frozen=True)
class ZneConfig:
    """A ZNE configuration: scaling factors plus extrapolation model.

    The paper's two reference configurations are
    ``ZneConfig((1, 2, 3), "richardson")`` and ``ZneConfig((1, 3), "linear")``.
    """

    scale_factors: tuple[float, ...] = (1.0, 2.0, 3.0)
    method: str = "richardson"

    def __post_init__(self) -> None:
        if len(self.scale_factors) < 2:
            raise ValueError("ZNE needs at least two scale factors")
        if len(set(self.scale_factors)) != len(self.scale_factors):
            raise ValueError("scale factors must be distinct")
        if any(scale < 1.0 for scale in self.scale_factors):
            raise ValueError("scale factors must be >= 1")
        if self.method not in _EXTRAPOLATORS:
            raise ValueError(f"unknown extrapolation method {self.method!r}")

    @property
    def circuit_overhead(self) -> float:
        """Extra circuit executions per mitigated point (vs one run)."""
        return float(len(self.scale_factors))

    @property
    def noise_amplification(self) -> float:
        """L2 norm of the extrapolation weights for statistical noise.

        For Richardson this is the exact amplification of independent
        per-scale measurement noise; for linear/exponential it is
        computed from the equivalent linear weights at the configured
        scales (exponential uses its linearisation).
        """
        scales = np.asarray(self.scale_factors, dtype=float)
        if self.method == "richardson":
            return float(np.linalg.norm(_richardson_weights(scales)))
        # Linear least squares: intercept weights from the hat matrix.
        design = np.stack([scales, np.ones_like(scales)], axis=1)
        pseudo_inverse = np.linalg.pinv(design)
        intercept_weights = pseudo_inverse[1]
        return float(np.linalg.norm(intercept_weights))


def zne_expectation(
    ansatz: Ansatz,
    parameters: np.ndarray,
    noise: NoiseModel,
    config: ZneConfig | None = None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """ZNE-mitigated expectation via error-rate scaling.

    Evaluates the ansatz at every noise scale in the configuration and
    extrapolates to zero.  With ``shots`` set, each scale's estimate
    carries independent shot noise, which the extrapolation amplifies
    by :attr:`ZneConfig.noise_amplification` — the mechanism behind the
    Richardson-vs-linear roughness contrast the paper studies.
    """
    config = config or ZneConfig()
    rng = ensure_rng(rng)
    values = [
        ansatz.expectation(
            parameters, noise=noise.scaled(scale), shots=shots, rng=rng
        )
        for scale in config.scale_factors
    ]
    return extrapolate(config.method, config.scale_factors, values)


class ZneCostFunction:
    """A batch-capable cost function with ZNE applied at every query.

    Drop-in replacement for
    :class:`repro.landscape.generator.AnsatzCostFunction`: calling it
    evaluates one point through :func:`zne_expectation`, while
    :meth:`many` folds the noise scale factors into the batch axis —
    an ``(m, ndim)`` chunk becomes one ``(m * num_scales, ndim)``
    ``expectation_many`` call with a per-row noise sequence, followed by
    one vectorized extrapolation.  Rows are ordered point-major /
    scale-minor, exactly the order the serial loop evaluates them, so
    seeded shot-noise draws match the serial path draw for draw.

    :attr:`rows_per_point` advertises the fold factor so the landscape
    layer can shrink its per-chunk point count to keep the folded batch
    inside the execution backend's cache budget.
    """

    def __init__(
        self,
        ansatz: Ansatz,
        noise: NoiseModel,
        config: ZneConfig | None = None,
        shots: int | None = None,
        rng: np.random.Generator | None = None,
        sampler: str = "parity",
    ):
        self.ansatz = ansatz
        self.noise = noise
        self.config = config or ZneConfig()
        self.shots = shots
        self.rng = rng
        self.sampler = Ansatz.validate_sampler(sampler)
        self._scaled = [
            noise.scaled(scale) for scale in self.config.scale_factors
        ]

    @property
    def num_qubits(self) -> int:
        """Width of the underlying circuit (drives batch sizing)."""
        return self.ansatz.num_qubits

    @property
    def rows_per_point(self) -> int:
        """Execution-batch rows consumed per landscape point."""
        return len(self.config.scale_factors)

    def batch_capacity(self) -> int:
        """Memory-capped execution rows per chunk (noise-engine aware).

        Evaluated against the *scaled* noise models the fold actually
        executes, so density-engine ansatzes report the ``4**n``-per-row
        budget; :func:`repro.landscape.generator.resolve_batch_size`
        further divides by :attr:`rows_per_point`.
        """
        return self.ansatz.batch_capacity(self._scaled)

    def __call__(self, parameters: np.ndarray) -> float:
        """ZNE-mitigated cost at one parameter point."""
        return zne_expectation(
            self.ansatz, parameters, self.noise, self.config, self.shots, self.rng
        )

    def many(self, parameters_batch: np.ndarray) -> np.ndarray:
        """ZNE-mitigated cost values for an ``(m, ndim)`` point batch.

        Ansatzes with a scale-reuse fast path
        (:meth:`~repro.ansatz.qaoa.QaoaAnsatz.expectation_many_scaled`)
        simulate each point *once* and reuse the noise-scale-independent
        ideal state across all scale factors — an ``S``-fold simulation
        saving on the analytic-contraction engine.  Everything else
        takes the generic fold: one ``expectation_many`` call on the
        ``(m * S, ndim)`` row expansion with a per-row noise sequence.
        Both orders are point-major / scale-minor, matching the serial
        loop draw for draw.
        """
        points = np.asarray(parameters_batch, dtype=float)
        if points.ndim == 1:
            points = points[None, :]
        num_points = points.shape[0]
        num_scales = len(self._scaled)
        scaled_many = getattr(self.ansatz, "expectation_many_scaled", None)
        if scaled_many is not None:
            values = scaled_many(
                points,
                self._scaled,
                shots=self.shots,
                rng=self.rng,
                sampler=self.sampler,
            )
        else:
            folded = np.repeat(points, num_scales, axis=0)
            values = self.ansatz.expectation_many(
                folded,
                noise=self._scaled * num_points,
                shots=self.shots,
                rng=self.rng,
                sampler=self.sampler,
            ).reshape(num_points, num_scales)
        return extrapolate_many(
            self.config.method, self.config.scale_factors, values
        )

    def cache_spec(self) -> dict:
        """Canonical content description for the landscape store."""
        spec = {
            "kind": "zne",
            "ansatz": self.ansatz.cache_spec(),
            "noise": self.noise.cache_spec(),
            "shots": self.shots,
            "mitigation": {
                "method": self.config.method,
                "scale_factors": [
                    float(scale) for scale in self.config.scale_factors
                ],
            },
        }
        if self.shots is not None:
            spec["sampler"] = self.sampler
        return spec


def zne_cost_function(
    ansatz: Ansatz,
    noise: NoiseModel,
    config: ZneConfig | None = None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
    sampler: str = "parity",
) -> ZneCostFunction:
    """A batch-capable cost callable with ZNE applied at every query.

    Drop-in replacement for
    :func:`repro.landscape.generator.cost_function`, so mitigated
    landscapes are produced by the same grid/OSCAR machinery — batched
    chunks included (see :class:`ZneCostFunction`).
    """
    return ZneCostFunction(
        ansatz, noise, config, shots=shots, rng=rng, sampler=sampler
    )
