"""Dynamical decoupling (DD) circuit pass.

DD is the canonical shot-frugal mitigation (Sec. 2.3): insert pulse
pairs on qubits that sit idle while other qubits are being operated on,
refocusing low-frequency dephasing (idle ZZ-crosstalk) without extra
circuit executions.

Our circuit IR has no explicit timing, so the pass works on *layers*:
gates are greedily packed into parallel layers (the same scheduling
that defines circuit depth) and every qubit idle in a layer receives an
``X``-``X`` pair.  The pair multiplies to identity, so the transformed
circuit is logically equivalent — verified by the test suite — while a
dephasing-during-idle error model sees its idle windows refocused.

:func:`idle_dephasing_survival` provides a minimal analytic model of
why DD helps: a qubit idling for ``k`` layers under per-layer dephasing
rate ``phi`` retains coherence ``cos(k * phi)`` without DD but
``cos(phi)**k``-ish residual (echoed each layer) with DD.
"""

from __future__ import annotations

import math

from ..quantum.circuit import Instruction, QuantumCircuit

__all__ = ["insert_dynamical_decoupling", "schedule_layers", "idle_dephasing_survival"]


def schedule_layers(circuit: QuantumCircuit) -> list[list[Instruction]]:
    """Greedy ASAP scheduling of instructions into parallel layers."""
    layers: list[list[Instruction]] = []
    busy_until = [0] * circuit.num_qubits
    for instruction in circuit.instructions:
        layer_index = max(busy_until[q] for q in instruction.qubits)
        while len(layers) <= layer_index:
            layers.append([])
        layers[layer_index].append(instruction)
        for qubit in instruction.qubits:
            busy_until[qubit] = layer_index + 1
    return layers


def insert_dynamical_decoupling(circuit: QuantumCircuit) -> QuantumCircuit:
    """Insert X-X pairs on every idle qubit of every layer.

    The output acts identically on all states (XX = I) but has no idle
    windows, emulating an XY-style decoupling sequence.
    """
    layers = schedule_layers(circuit)
    out = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_dd")
    for layer in layers:
        active = {q for instruction in layer for q in instruction.qubits}
        for instruction in layer:
            out._instructions.append(instruction)
        for qubit in range(circuit.num_qubits):
            if qubit not in active:
                out.x(qubit)
                out.x(qubit)
    return out


def idle_dephasing_survival(
    idle_layers: int, phase_per_layer: float, decoupled: bool
) -> float:
    """Coherence retained by a qubit idling under slow dephasing.

    Without DD the phase accumulates coherently over the idle window:
    ``cos(k * phi)``.  With DD each layer's phase is echoed away up to
    second order; we model the residual per layer as ``cos(phi^2 / 2)``.
    This is the standard first-order spin-echo suppression picture and
    is enough to quantify the DD benefit in the mitigation benchmarks.
    """
    if idle_layers < 0:
        raise ValueError("idle_layers must be >= 0")
    if not decoupled:
        return float(abs(math.cos(idle_layers * phase_per_layer)))
    residual = math.cos(phase_per_layer**2 / 2.0)
    return float(abs(residual) ** idle_layers)
