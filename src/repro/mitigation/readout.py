"""Qubit readout mitigation (QRM).

The shot-frugal mitigation of Sec. 2.3: build the readout confusion
matrix from calibration, then filter measurement errors by applying its
(pseudo-)inverse to observed outcome distributions in classical
post-processing.  No extra circuit executions beyond calibration.

For the symmetric independent-flip model used by
:class:`~repro.quantum.noise.NoiseModel`, the confusion matrix is a
Kronecker power of a 2x2 stochastic matrix, so inversion factorises per
qubit and costs ``O(n 2^n)`` instead of ``O(8^n)``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ReadoutMitigator"]


class ReadoutMitigator:
    """Inverts an independent symmetric readout-error channel."""

    def __init__(self, num_qubits: int, flip_probability: float):
        if not 0.0 <= flip_probability < 0.5:
            raise ValueError(
                "flip probability must be in [0, 0.5) for an invertible channel"
            )
        self.num_qubits = int(num_qubits)
        self.flip_probability = float(flip_probability)
        p = self.flip_probability
        self._single = np.array([[1.0 - p, p], [p, 1.0 - p]])
        self._single_inverse = np.linalg.inv(self._single)

    def confusion_matrix(self) -> np.ndarray:
        """The full ``2**n x 2**n`` confusion matrix (small n only)."""
        matrix = np.array([[1.0]])
        for _ in range(self.num_qubits):
            matrix = np.kron(self._single, matrix)
        return matrix

    def _apply_factorised(self, probabilities: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        probs = np.asarray(probabilities, dtype=float)
        expected = 1 << self.num_qubits
        if probs.shape[0] != expected:
            raise ValueError(
                f"expected a distribution over {expected} outcomes, got {probs.shape[0]}"
            )
        tensor = probs.reshape([2] * self.num_qubits)
        for axis in range(self.num_qubits):
            tensor = np.tensordot(matrix, tensor, axes=([1], [axis]))
            tensor = np.moveaxis(tensor, 0, axis)
        return tensor.reshape(-1)

    def corrupt(self, probabilities: np.ndarray) -> np.ndarray:
        """Forward channel: what the device reports for true outcomes."""
        return self._apply_factorised(probabilities, self._single)

    def mitigate_probabilities(self, observed: np.ndarray, clip: bool = True) -> np.ndarray:
        """Invert the channel on an observed outcome distribution.

        Matrix inversion can produce small negative quasi-probabilities
        from sampling noise; with ``clip=True`` they are clamped to zero
        and the distribution renormalised (the standard practical fix).
        """
        recovered = self._apply_factorised(observed, self._single_inverse)
        if clip:
            recovered = np.clip(recovered, 0.0, None)
            total = recovered.sum()
            if total > 0:
                recovered = recovered / total
        return recovered

    def mitigate_counts(self, counts: dict[int, int]) -> np.ndarray:
        """Counts dictionary -> mitigated probability distribution."""
        shots = sum(counts.values())
        if shots <= 0:
            raise ValueError("counts must contain at least one shot")
        observed = np.zeros(1 << self.num_qubits)
        for outcome, count in counts.items():
            observed[outcome] = count / shots
        return self.mitigate_probabilities(observed)

    def mitigate_expectation_diagonal(
        self, observed: np.ndarray, diagonal_values: np.ndarray
    ) -> float:
        """Mitigated expectation of a diagonal observable."""
        mitigated = self.mitigate_probabilities(observed)
        return float(np.dot(mitigated, diagonal_values))
