"""Noise mitigation methods (the paper's Sec. 2.3 taxonomy).

Mitigation with supplementary shots:

- :mod:`~repro.mitigation.zne` — Zero-Noise Extrapolation with
  Richardson / linear / exponential extrapolation,
- :mod:`~repro.mitigation.cdr` — Clifford Data Regression,
- :mod:`~repro.mitigation.pec` — Probabilistic Error Cancellation.

Shot-frugal mitigation:

- :mod:`~repro.mitigation.readout` — readout confusion-matrix inversion,
- :mod:`~repro.mitigation.dd` — dynamical-decoupling circuit pass.
"""

from .cdr import (
    CdrConfig,
    CdrCostFunction,
    CliffordDataRegression,
    cdr_cost_function,
    snap_to_clifford_angles,
)
from .dd import idle_dephasing_survival, insert_dynamical_decoupling, schedule_layers
from .pec import PecEstimator, inverse_depolarizing_quasiprobability, pec_gamma_factor
from .readout import ReadoutMitigator
from .zne import (
    ZneConfig,
    ZneCostFunction,
    exponential_extrapolate,
    extrapolate,
    extrapolate_many,
    linear_extrapolate,
    richardson_extrapolate,
    zne_cost_function,
    zne_expectation,
)

__all__ = [
    "CdrConfig",
    "CdrCostFunction",
    "CliffordDataRegression",
    "cdr_cost_function",
    "snap_to_clifford_angles",
    "PecEstimator",
    "inverse_depolarizing_quasiprobability",
    "pec_gamma_factor",
    "idle_dephasing_survival",
    "insert_dynamical_decoupling",
    "schedule_layers",
    "ReadoutMitigator",
    "ZneConfig",
    "ZneCostFunction",
    "exponential_extrapolate",
    "extrapolate",
    "extrapolate_many",
    "linear_extrapolate",
    "richardson_extrapolate",
    "zne_cost_function",
    "zne_expectation",
]
