"""OSCAR-based initial-point selection.

The pipeline (Sec. 8): reconstruct the landscape with OSCAR, build the
spline interpolation, minimise *on the interpolation* (queries are
instant and free of QPU cost), and return the converged point as the
initial point for the regular, circuit-executing workflow.

:class:`OscarInitializer` records both cost ledgers the paper's Table 6
compares: the reconstruction's QPU queries and the subsequent real
optimization's queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..landscape.generator import LandscapeGenerator
from ..landscape.interpolate import InterpolatedLandscape
from ..landscape.landscape import Landscape
from ..landscape.reconstructor import OscarReconstructor
from ..optimizers.base import Optimizer
from ..utils import ensure_rng

__all__ = ["InitializationOutcome", "OscarInitializer", "random_initial_point"]


def random_initial_point(
    bounds: list[tuple[float, float]], rng: np.random.Generator
) -> np.ndarray:
    """Uniform random point within per-axis bounds (the baseline)."""
    return np.array([rng.uniform(low, high) for low, high in bounds])


@dataclass(frozen=True)
class InitializationOutcome:
    """An OSCAR-chosen initial point plus its cost ledger.

    Attributes:
        initial_point: the point to hand to the regular workflow.
        landscape_value: interpolated cost at that point.
        reconstruction_queries: QPU queries spent reconstructing.
        surrogate_queries: free (interpolated) optimizer queries.
        landscape: the reconstructed landscape (for reuse/inspection).
    """

    initial_point: np.ndarray
    landscape_value: float
    reconstruction_queries: int
    surrogate_queries: int
    landscape: Landscape


class OscarInitializer:
    """Chooses initial points by minimising a reconstructed landscape."""

    def __init__(
        self,
        reconstructor: OscarReconstructor,
        optimizer: Optimizer,
        sampling_fraction: float = 0.05,
        num_restarts: int = 4,
        rng: np.random.Generator | int | None = None,
    ):
        if num_restarts < 1:
            raise ValueError("need at least one surrogate restart")
        self.reconstructor = reconstructor
        self.optimizer = optimizer
        self.sampling_fraction = sampling_fraction
        self.num_restarts = num_restarts
        self.rng = ensure_rng(rng)

    def choose(self, generator: LandscapeGenerator) -> InitializationOutcome:
        """Reconstruct, interpolate, minimise, return the best point."""
        landscape, report = self.reconstructor.reconstruct(
            generator, self.sampling_fraction, label="oscar-init"
        )
        return self.choose_from_landscape(landscape, report.num_samples)

    def choose_from_landscape(
        self, landscape: Landscape, reconstruction_queries: int
    ) -> InitializationOutcome:
        """Run the surrogate optimization on an existing landscape."""
        surrogate = InterpolatedLandscape(landscape)
        bounds = landscape.grid.bounds
        best_point: np.ndarray | None = None
        best_value = np.inf
        # Restart from the landscape's grid minimum plus random points:
        # the grid minimum is nearly always in the right basin already.
        starts = [landscape.minimum()[1]]
        for _ in range(self.num_restarts - 1):
            starts.append(random_initial_point(bounds, self.rng))
        for start in starts:
            result = self.optimizer.minimize(surrogate, start)
            if result.value < best_value:
                best_value = result.value
                best_point = result.parameters
        assert best_point is not None
        clipped = np.clip(
            best_point,
            [low for low, _ in bounds],
            [high for _, high in bounds],
        )
        return InitializationOutcome(
            initial_point=clipped,
            landscape_value=float(surrogate(clipped)),
            reconstruction_queries=int(reconstruction_queries),
            surrogate_queries=int(surrogate.query_count),
            landscape=landscape,
        )
