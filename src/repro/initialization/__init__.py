"""Optimizer initialization via OSCAR (paper Sec. 8).

Instead of starting the VQA training loop at a random point, run an
optimizer *on the interpolated reconstructed landscape* (free queries)
and hand its converged point to the real workflow as the initial point.
The paper shows this cuts ADAM's QPU queries by ~5x even after paying
the reconstruction cost (Table 6).
"""

from .initializer import InitializationOutcome, OscarInitializer, random_initial_point
from .transfer import TransferOutcome, transfer_initial_point

__all__ = [
    "InitializationOutcome",
    "OscarInitializer",
    "random_initial_point",
    "TransferOutcome",
    "transfer_initial_point",
]
