"""Parameter transfer: warm-starting from smaller problem instances.

The paper's Sec. 8 cites warm-starting and "using parameters obtained
from running simpler instances" (Egger et al. 2021) as the prior
alternatives to OSCAR initialization.  This module implements that
baseline so the two strategies can be compared head-to-head: QAOA
angles are known to *concentrate* — optimal ``(beta, gamma)`` for
random instances of the same problem family vary little with instance
and size — so angles found on a cheap small instance transfer well to
an expensive large one.

:func:`transfer_initial_point` optimizes a small donor instance (via a
dense-but-cheap landscape) and returns its optimum as the initial point
for the target instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ansatz.qaoa import QaoaAnsatz
from ..landscape.generator import LandscapeGenerator, cost_function
from ..landscape.grid import qaoa_grid
from ..problems.maxcut import random_3_regular_maxcut

__all__ = ["TransferOutcome", "transfer_initial_point"]


@dataclass(frozen=True)
class TransferOutcome:
    """A transferred initial point and its provenance.

    Attributes:
        initial_point: donor-optimal angles, to start the target run.
        donor_qubits: size of the donor instance.
        donor_value: donor cost at the transferred angles.
        donor_executions: circuit executions spent on the donor.
    """

    initial_point: np.ndarray
    donor_qubits: int
    donor_value: float
    donor_executions: int


def transfer_initial_point(
    target_p: int = 1,
    donor_qubits: int = 6,
    donor_seed: int = 0,
    resolution: tuple[int, int] = (16, 32),
) -> TransferOutcome:
    """Optimal angles of a small donor MaxCut instance.

    The donor's landscape is generated densely (cheap at 6 qubits) and
    its grid minimum is returned.  For ``p > 1`` the donor grid uses
    the Table 1 p=2 ranges.
    """
    if donor_qubits < 4:
        raise ValueError("donor instance needs at least 4 qubits")
    donor_problem = random_3_regular_maxcut(donor_qubits, seed=donor_seed)
    donor_ansatz = QaoaAnsatz(donor_problem, p=target_p)
    grid = qaoa_grid(p=target_p, resolution=resolution if target_p == 1 else None)
    generator = LandscapeGenerator(cost_function(donor_ansatz), grid)
    landscape = generator.grid_search(label="transfer-donor")
    value, point = landscape.minimum()
    return TransferOutcome(
        initial_point=point,
        donor_qubits=donor_qubits,
        donor_value=value,
        donor_executions=landscape.circuit_executions,
    )
