"""Terminal visualisation (ASCII heatmaps and path overlays)."""

from .ascii import (
    render_error_map,
    render_heatmap,
    render_path_overlay,
    render_side_by_side,
)

__all__ = [
    "render_error_map",
    "render_heatmap",
    "render_path_overlay",
    "render_side_by_side",
]
