"""ASCII landscape rendering.

The paper's debugging story is visual ("bird's-eye view", Fig. 2), and
this environment has no plotting backend, so we render landscapes as
terminal heatmaps: a character ramp over the value range, optional
optimizer-path overlay, and side-by-side comparison for
original-vs-reconstructed pairs (the Figs. 5/9 layout).
"""

from __future__ import annotations

import numpy as np

from ..landscape.landscape import Landscape

__all__ = [
    "render_heatmap",
    "render_side_by_side",
    "render_path_overlay",
    "render_error_map",
]

_RAMP = " .:-=+*#%@"


def _downsample(values: np.ndarray, max_rows: int, max_cols: int) -> np.ndarray:
    rows, cols = values.shape
    row_step = max(1, int(np.ceil(rows / max_rows)))
    col_step = max(1, int(np.ceil(cols / max_cols)))
    return values[::row_step, ::col_step]


def _to_characters(values: np.ndarray, lo: float, hi: float) -> list[str]:
    span = hi - lo if hi > lo else 1.0
    normalised = np.clip((values - lo) / span, 0.0, 1.0)
    levels = (normalised * (len(_RAMP) - 1)).astype(int)
    return ["".join(_RAMP[level] for level in row) for row in levels]


def render_heatmap(
    landscape: Landscape,
    max_rows: int = 24,
    max_cols: int = 60,
    title: str | None = None,
) -> str:
    """Render a 2-D landscape as an ASCII heatmap string."""
    values = landscape.reshaped_2d()
    sampled = _downsample(values, max_rows, max_cols)
    lo, hi = float(values.min()), float(values.max())
    lines = _to_characters(sampled, lo, hi)
    header = title or landscape.label
    ruler = "-" * len(lines[0]) if lines else ""
    body = "\n".join(lines)
    footer = f"min={lo:.3f}  max={hi:.3f}  ramp='{_RAMP}'"
    return f"{header}\n{ruler}\n{body}\n{ruler}\n{footer}"


def render_side_by_side(
    left: Landscape,
    right: Landscape,
    max_rows: int = 20,
    max_cols: int = 36,
    titles: tuple[str, str] | None = None,
) -> str:
    """Two landscapes side by side on a shared value scale."""
    left_values = left.reshaped_2d()
    right_values = right.reshaped_2d()
    lo = min(float(left_values.min()), float(right_values.min()))
    hi = max(float(left_values.max()), float(right_values.max()))
    left_lines = _to_characters(_downsample(left_values, max_rows, max_cols), lo, hi)
    right_lines = _to_characters(_downsample(right_values, max_rows, max_cols), lo, hi)
    height = max(len(left_lines), len(right_lines))
    width_left = len(left_lines[0]) if left_lines else 0
    left_lines += [" " * width_left] * (height - len(left_lines))
    width_right = len(right_lines[0]) if right_lines else 0
    right_lines += [" " * width_right] * (height - len(right_lines))
    left_title, right_title = titles or (left.label, right.label)
    header = f"{left_title:<{width_left}}   |   {right_title}"
    rows = [f"{a}   |   {b}" for a, b in zip(left_lines, right_lines)]
    footer = f"shared scale: min={lo:.3f} max={hi:.3f}"
    return "\n".join([header, *rows, footer])


def render_error_map(
    reference: Landscape,
    candidate: Landscape,
    max_rows: int = 24,
    max_cols: int = 60,
    title: str | None = None,
) -> str:
    """Heatmap of the absolute pointwise error between two landscapes.

    The debugging companion to
    :func:`~repro.landscape.compare.compare_landscapes`: shows *where*
    a reconstruction (or a second device's landscape) deviates, not
    just by how much.
    """
    if reference.values.shape != candidate.values.shape:
        raise ValueError("landscapes must share a shape for an error map")
    error = np.abs(reference.reshaped_2d() - candidate.reshaped_2d())
    sampled = _downsample(error, max_rows, max_cols)
    lo, hi = 0.0, float(error.max()) or 1.0
    lines = _to_characters(sampled, lo, hi)
    header = title or f"|{reference.label} - {candidate.label}|"
    body = "\n".join(lines)
    footer = f"max abs error = {error.max():.4f}, mean = {error.mean():.4f}"
    return f"{header}\n{body}\n{footer}"


def render_path_overlay(
    landscape: Landscape,
    path: np.ndarray,
    max_rows: int = 24,
    max_cols: int = 60,
    title: str | None = None,
) -> str:
    """Heatmap with an optimizer path overlaid.

    Path points are drawn as ``o``, the start as ``S``, the end as ``E``
    (the Fig. 2(B) bird's-eye view).
    """
    if landscape.grid.ndim != 2:
        raise ValueError("path overlay requires a 2-D landscape")
    values = landscape.values
    sampled = _downsample(values, max_rows, max_cols)
    lo, hi = float(values.min()), float(values.max())
    lines = [list(row) for row in _to_characters(sampled, lo, hi)]
    rows, cols = sampled.shape
    beta_axis, gamma_axis = landscape.grid.axis_values
    for rank, point in enumerate(np.atleast_2d(path)):
        row_fraction = (point[0] - beta_axis[0]) / max(beta_axis[-1] - beta_axis[0], 1e-12)
        col_fraction = (point[1] - gamma_axis[0]) / max(gamma_axis[-1] - gamma_axis[0], 1e-12)
        row = int(np.clip(row_fraction * (rows - 1), 0, rows - 1))
        col = int(np.clip(col_fraction * (cols - 1), 0, cols - 1))
        if rank == 0:
            marker = "S"
        elif rank == len(path) - 1:
            marker = "E"
        else:
            marker = "o"
        lines[row][col] = marker
    header = title or f"{landscape.label} (S=start, E=end)"
    body = "\n".join("".join(row) for row in lines)
    return f"{header}\n{body}"
