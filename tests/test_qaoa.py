"""Tests for the QAOA ansatz: the fast path is validated against the
explicit circuit on every instance, which pins the whole simulation
stack together."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import QaoaAnsatz
from repro.problems import random_3_regular_maxcut, sk_problem
from repro.quantum import NoiseModel, simulate

ANGLES = st.floats(min_value=-1.5, max_value=1.5)


def test_depth_validation():
    problem = random_3_regular_maxcut(4, seed=0)
    with pytest.raises(ValueError):
        QaoaAnsatz(problem, p=0)


def test_parameter_count():
    problem = random_3_regular_maxcut(4, seed=0)
    assert QaoaAnsatz(problem, p=1).num_parameters == 2
    assert QaoaAnsatz(problem, p=3).num_parameters == 6


def test_parameter_length_validation():
    ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1)
    with pytest.raises(ValueError):
        ansatz.expectation([0.1])


@settings(max_examples=15, deadline=None)
@given(beta=ANGLES, gamma=ANGLES)
def test_fast_path_matches_circuit_p1(beta, gamma):
    problem = random_3_regular_maxcut(6, seed=0)
    ansatz = QaoaAnsatz(problem, p=1)
    params = np.array([beta, gamma])
    fast = ansatz.statevector(params)
    slow = simulate(ansatz.circuit(params))
    assert fast.fidelity(slow) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 20))
def test_fast_path_matches_circuit_p2(seed):
    rng = np.random.default_rng(seed)
    problem = sk_problem(4, seed=seed)
    ansatz = QaoaAnsatz(problem, p=2)
    params = rng.uniform(-1, 1, size=4)
    fast = ansatz.expectation(params)
    slow_state = simulate(ansatz.circuit(params))
    slow = slow_state.expectation_diagonal(problem.cost_diagonal())
    assert fast == pytest.approx(slow, abs=1e-9)


def test_zero_gamma_landscape_is_flat_in_beta():
    """With gamma = 0 the cost layer is trivial; the state stays uniform
    under the mixer, so the expectation equals the cost mean."""
    problem = random_3_regular_maxcut(6, seed=1)
    ansatz = QaoaAnsatz(problem, p=1)
    mean = problem.cost_diagonal().mean()
    for beta in (-0.5, 0.0, 0.4, 1.0):
        assert ansatz.expectation([beta, 0.0]) == pytest.approx(mean, abs=1e-9)


def test_optimal_angles_beat_random_guess():
    problem = random_3_regular_maxcut(8, seed=2)
    ansatz = QaoaAnsatz(problem, p=1)
    betas = np.linspace(-np.pi / 4, np.pi / 4, 15)
    gammas = np.linspace(-np.pi / 2, np.pi / 2, 25)
    values = [
        ansatz.expectation([beta, gamma]) for beta in betas for gamma in gammas
    ]
    mean = problem.cost_diagonal().mean()
    assert min(values) < mean - 0.5  # QAOA finds structure below average


def test_noise_contracts_toward_mean():
    problem = random_3_regular_maxcut(6, seed=3)
    ansatz = QaoaAnsatz(problem, p=1)
    params = np.array([0.2, -0.6])
    mean = problem.cost_diagonal().mean()
    ideal = ansatz.expectation(params)
    noisy = ansatz.expectation(params, noise=NoiseModel(p1=0.01, p2=0.03))
    assert abs(noisy - mean) < abs(ideal - mean)


def test_noise_contraction_matches_density_matrix_scaling():
    """The analytic global-depolarizing contraction must track the exact
    density-matrix result within a few percent of the cost spread for a
    small instance."""
    from repro.quantum import simulate_density

    problem = random_3_regular_maxcut(4, seed=4)
    ansatz = QaoaAnsatz(problem, p=1)
    params = np.array([0.3, 0.5])
    noise = NoiseModel(p1=0.005, p2=0.01)
    analytic = ansatz.expectation(params, noise=noise)
    exact = simulate_density(ansatz.circuit(params), noise).expectation_diagonal(
        problem.cost_diagonal()
    )
    spread = problem.cost_diagonal().std()
    assert analytic == pytest.approx(exact, abs=0.10 * spread)


def test_shot_noise_converges(rng):
    problem = random_3_regular_maxcut(4, seed=5)
    ansatz = QaoaAnsatz(problem, p=1)
    params = np.array([0.15, -0.3])
    exact = ansatz.expectation(params)
    sampled = ansatz.expectation(params, shots=40000, rng=rng)
    assert sampled == pytest.approx(exact, abs=0.05)


def test_trajectory_path_runs():
    problem = random_3_regular_maxcut(4, seed=6)
    ansatz = QaoaAnsatz(problem, p=1)
    rng = np.random.default_rng(0)
    value = ansatz.expectation_trajectory(
        np.array([0.2, 0.4]), NoiseModel(p1=0.01, p2=0.02),
        num_trajectories=16, rng=rng,
    )
    assert np.isfinite(value)


def test_parameter_names_layout():
    ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=2)
    assert ansatz.parameter_names() == ["beta_0", "beta_1", "gamma_0", "gamma_1"]


def test_circuit_gate_structure():
    problem = random_3_regular_maxcut(6, seed=0)
    ansatz = QaoaAnsatz(problem, p=2)
    circuit = ansatz.circuit(np.array([0.1, 0.2, 0.3, 0.4]))
    counts = circuit.count_gates()
    assert counts["h"] == 6
    assert counts["rzz"] == 2 * len(problem.couplings)
    assert counts["rx"] == 12


def test_cost_diagonal_copy_is_defensive():
    ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1)
    diag = ansatz.cost_diagonal
    diag[:] = 0.0
    assert not np.allclose(ansatz.cost_diagonal, 0.0)
