"""Smoke tests for the experiment runners (tiny scales).

These verify every table/figure runner executes end-to-end and that the
qualitative relationships the paper reports hold at reduced scale.  The
benchmarks regenerate the full (scaled) artifacts; here we only pin the
invariants.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments import (
    SMOKE,
    measure_speedup,
    run_endpoint_distance_study,
    run_fig4_sweep,
    run_fig6_sycamore,
    run_fig8_sweep,
    run_mitigation_study,
    run_optimizer_choice,
    run_table2,
    run_table4,
    run_table6_initialization,
    slice_reconstruction_error,
)
from repro.experiments.slices import random_slice, slice_generator
from repro.experiments.tables import run_table3
from repro.ansatz import QaoaAnsatz
from repro.problems import random_3_regular_maxcut


# -- slices ----------------------------------------------------------------------


def test_random_slice_structure():
    ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=3)
    rng = np.random.default_rng(0)
    spec = random_slice(ansatz, points_per_axis=7, rng=rng)
    assert spec.grid.shape == (7, 7)
    assert 0 <= spec.varying[0] < spec.varying[1] < 6
    assert spec.fixed_values.shape == (6,)


def test_random_slice_needs_two_parameters():
    ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=1)
    spec = random_slice(ansatz, points_per_axis=5)
    assert spec.varying == (0, 1)


def test_slice_generator_freezes_other_parameters():
    ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=2)
    rng = np.random.default_rng(1)
    spec = random_slice(ansatz, points_per_axis=5, rng=rng)
    generator = slice_generator(ansatz, spec)
    point = spec.grid.point_from_flat(7)
    full = spec.fixed_values.copy()
    full[spec.varying[0]] = point[0]
    full[spec.varying[1]] = point[1]
    assert generator.evaluate_point(point) == pytest.approx(ansatz.expectation(full))


def test_slice_reconstruction_error_returns_medians():
    ansatz = QaoaAnsatz(random_3_regular_maxcut(4, seed=0), p=2)
    error, sparsity = slice_reconstruction_error(
        ansatz, points_per_axis=9, sampling_fraction=0.4, repeats=2, seed=0
    )
    assert error >= 0.0
    assert 0.0 < sparsity <= 1.0


# -- tables ---------------------------------------------------------------------------


def test_table2_rows_structure():
    rows = run_table2(repeats=1, seed=0)
    assert len(rows) == 8  # 4 cases x 2 ansatzes
    for row in rows:
        assert row.nrmse >= 0.0
        assert row.ansatz in ("QAOA", "Two-local")


def test_table3_rows_structure():
    rows = run_table3(repeats=1, seed=0)
    assert len(rows) == 5
    molecules = {row.problem for row in rows}
    assert molecules == {"H2", "LiH"}


def test_table3_denser_slice_reduces_uccsd_error():
    """The paper's H2/UCCSD rows: error collapses from 14 to 50 points."""
    rows = run_table3(repeats=2, seed=1)
    h2_uccsd = [r for r in rows if r.problem == "H2" and r.ansatz == "UCCSD"]
    coarse = next(r for r in h2_uccsd if r.points_per_axis == 14)
    fine = next(r for r in h2_uccsd if r.points_per_axis == 50)
    assert fine.nrmse < coarse.nrmse


def test_table4_sparsity_rows():
    rows = run_table4(repeats=1, seed=0)
    assert len(rows) == 12
    for row in rows:
        assert 0.0 < row.dct_sparsity <= 1.0
        assert math.isnan(row.nrmse)
    # The headline claim: landscapes are sparse.
    assert np.median([row.dct_sparsity for row in rows]) < 0.25


# -- figure sweeps ----------------------------------------------------------------------


def test_fig4_error_decreases_with_fraction():
    points = run_fig4_sweep(p=1, noisy=False, scale=SMOKE, qubit_counts=(6,), seed=0)
    by_fraction = {p.sampling_fraction: p.nrmse_median for p in points}
    fractions = sorted(by_fraction)
    assert by_fraction[fractions[-1]] <= by_fraction[fractions[0]] + 0.02
    for p in points:
        assert p.nrmse_q1 <= p.nrmse_median <= p.nrmse_q3


def test_fig4_noisy_path_runs():
    points = run_fig4_sweep(p=1, noisy=True, scale=SMOKE, qubit_counts=(6,), seed=0)
    assert all(np.isfinite(p.nrmse_median) for p in points)


def test_fig4_p2_reshape_runs():
    points = run_fig4_sweep(p=2, noisy=False, scale=SMOKE, qubit_counts=(6,), seed=0)
    assert all(p.p == 2 for p in points)
    assert all(np.isfinite(p.nrmse_median) for p in points)


def test_fig6_sycamore_curves_decrease():
    curves = run_fig6_sycamore(fractions=(0.1, 0.4), seed=0)
    assert set(curves) == {"mesh", "3-regular", "sk"}
    for series in curves.values():
        assert series[-1][1] < series[0][1]


def test_fig8_compensation_helps():
    points = run_fig8_sweep(
        qubit_counts=(8,),
        qpu1_shares=(0.2,),
        resolution=(20, 40),
        total_fraction=0.12,
        seed=0,
    )
    (point,) = points
    assert point.nrmse_compensated < point.nrmse_uncompensated


def test_mitigation_study_preserves_richardson_roughness():
    landscapes, rows = run_mitigation_study(
        num_qubits=6, resolution=(16, 32), shots=512, sampling_fraction=0.2, seed=0
    )
    def metric(setting, source):
        return next(
            r.second_derivative
            for r in rows
            if r.setting == setting and r.source == source
        )
    # Richardson is roughest in the original and stays roughest in the
    # reconstruction (the Fig. 10 takeaway).
    assert metric("richardson", "original") > metric("linear", "original")
    assert metric("richardson", "reconstructed") > metric("linear", "reconstructed")
    assert set(landscapes.original) == {"unmitigated", "richardson", "linear"}


def test_endpoint_distance_study_small():
    results = run_endpoint_distance_study(
        optimizers=("cobyla",),
        noisy_settings=(False,),
        num_qubits=6,
        num_instances=2,
        resolution=(16, 32),
        sampling_fraction=0.15,
        seed=0,
    )
    assert len(results) == 2
    grid_diameter = np.hypot(np.pi / 2, np.pi)
    for r in results:
        assert r.distance < grid_diameter


def test_optimizer_choice_runs():
    outcomes = run_optimizer_choice(
        num_qubits=6, resolution=(16, 32), shots=256, sampling_fraction=0.2, seed=0
    )
    names = {o.optimizer for o in outcomes}
    assert names == {"adam", "cobyla"}
    for o in outcomes:
        assert np.isfinite(o.final_value)
        assert o.path.shape[0] >= 2


def test_table6_runs_and_oscar_helps_adam():
    rows = run_table6_initialization(
        optimizers=("adam",),
        noisy_settings=(False,),
        num_qubits=6,
        num_instances=2,
        resolution=(16, 32),
        sampling_fraction=0.1,
        seed=0,
    )
    (row,) = rows
    assert row.oscar_init_queries <= row.random_init_queries


def test_speedup_measurement():
    result = measure_speedup(
        num_qubits=6, resolution=(20, 40), target_nrmse=0.1, seed=0
    )
    assert result.speedup > 2.0
    assert result.oscar_executions < result.grid_executions
