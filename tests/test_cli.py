"""Tests for the oscar-repro command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["teleport"])


def test_reconstruct_command(capsys):
    code = main(
        [
            "reconstruct",
            "--qubits", "6",
            "--resolution", "16", "32",
            "--fraction", "0.15",
            "--seed", "0",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "NRMSE" in output
    assert "speedup" in output


def test_reconstruct_command_noisy_with_render(capsys):
    code = main(
        [
            "reconstruct",
            "--qubits", "6",
            "--problem", "sk",
            "--resolution", "12", "24",
            "--fraction", "0.2",
            "--noisy",
            "--render",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "sk-n6" in output
    assert "|" in output  # side-by-side render


def test_reconstruct_command_zne(capsys):
    code = main(
        [
            "reconstruct",
            "--qubits", "6",
            "--resolution", "8", "16",
            "--fraction", "0.3",
            "--zne", "richardson",
            "--shots", "256",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "zne: richardson" in output
    assert "3 execution rows per point" in output
    assert "NRMSE" in output


def test_reconstruct_rejects_unknown_zne_method():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["reconstruct", "--zne", "cubic"])


def test_sycamore_command(capsys):
    code = main(["sycamore", "--kind", "mesh", "--fraction", "0.3"])
    assert code == 0
    assert "sycamore-mesh" in capsys.readouterr().out


def test_speedup_command(capsys):
    code = main(["speedup", "--qubits", "6", "--target-nrmse", "0.1"])
    assert code == 0
    output = capsys.readouterr().out
    assert "speedup" in output


def test_sparsity_command(capsys):
    code = main(["sparsity", "--qubits", "6"])
    assert code == 0
    assert "DCT coefficients" in capsys.readouterr().out


def test_adaptive_command(capsys):
    code = main(
        [
            "adaptive",
            "--qubits", "6",
            "--resolution", "20", "40",
            "--target-error", "0.2",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "holdout error estimate" in output
    assert "met" in output


def test_batch_command(capsys):
    code = main(
        [
            "batch",
            "--qubits", "6",
            "--resolution", "16", "32",
            "--fractions", "0.08", "0.12", "0.2",
            "--compare-serial",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "stack: 3 landscapes" in output
    assert "batched engine" in output
    assert "serial loop" in output
    assert output.count("NRMSE") == 3


def test_pipeline_command(capsys):
    code = main(
        [
            "pipeline",
            "--qubits", "6",
            "--resolution", "16", "32",
            "--fraction", "0.15",
            "--optimizer", "nelder-mead",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "samples:" in output
    assert "nelder-mead: best" in output
    assert "stages:" in output
    assert "served by: local" in output


def test_pipeline_command_rejects_unknown_optimizer():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["pipeline", "--optimizer", "bfgs"])


def test_analyze_command(capsys):
    code = main(
        ["analyze", "--qubits", "6", "--resolution", "16", "32", "--fraction", "0.15"]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "barren-plateau fraction" in output
    assert "local minima" in output
    assert "symmetry error" in output


def test_reconstruct_command_with_workers(capsys):
    code = main(
        [
            "reconstruct",
            "--qubits", "6",
            "--resolution", "10", "20",
            "--fraction", "0.15",
            "--workers", "2",
        ]
    )
    assert code == 0
    assert "NRMSE" in capsys.readouterr().out


def test_reconstruct_command_with_cache_dir(capsys, tmp_path):
    args = [
        "reconstruct",
        "--qubits", "6",
        "--resolution", "10", "20",
        "--fraction", "0.15",
        "--cache-dir", str(tmp_path / "store"),
    ]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0  # second run served from the store
    second = capsys.readouterr().out
    # Identical exact landscapes -> identical reported NRMSE lines.
    assert [l for l in first.splitlines() if "NRMSE" in l] == [
        l for l in second.splitlines() if "NRMSE" in l
    ]


def test_cache_list_and_clear_commands(capsys, tmp_path):
    store_dir = str(tmp_path / "store")
    assert main(["cache", "list", "--cache-dir", store_dir]) == 0
    assert "no cached landscapes" in capsys.readouterr().out
    main(
        [
            "reconstruct",
            "--qubits", "6",
            "--resolution", "10", "20",
            "--fraction", "0.15",
            "--cache-dir", store_dir,
        ]
    )
    capsys.readouterr()
    assert main(["cache", "list", "--cache-dir", store_dir]) == 0
    listing = capsys.readouterr().out
    assert "1 cached landscape(s)" in listing
    assert "grid-search" in listing
    assert main(["cache", "clear", "--cache-dir", store_dir]) == 0
    assert "cleared 1" in capsys.readouterr().out
    assert main(["cache", "list", "--cache-dir", store_dir]) == 0
    assert "no cached landscapes" in capsys.readouterr().out
