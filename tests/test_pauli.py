"""Unit tests for the Pauli-string algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import PauliString, PauliSum
from repro.quantum import Statevector

LABELS_2Q = st.text(alphabet="IXYZ", min_size=2, max_size=2)
LABELS_3Q = st.text(alphabet="IXYZ", min_size=3, max_size=3)


def random_state(num_qubits: int, seed: int) -> Statevector:
    rng = np.random.default_rng(seed)
    amplitudes = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    amplitudes /= np.linalg.norm(amplitudes)
    return Statevector(num_qubits, amplitudes)


def test_invalid_labels_raise():
    with pytest.raises(ValueError):
        PauliString("XQ")
    with pytest.raises(ValueError):
        PauliString("")


def test_basic_properties():
    term = PauliString("XZI", 0.5)
    assert term.num_qubits == 3
    assert term.weight == 2
    assert not term.is_identity
    assert not term.is_diagonal
    assert PauliString("IZI").is_diagonal
    assert PauliString("III").is_identity


@given(a=LABELS_2Q, b=LABELS_2Q)
@settings(max_examples=60)
def test_product_matches_matrix_product(a, b):
    left = PauliString(a)
    right = PauliString(b)
    product = left * right
    assert np.allclose(product.matrix(), left.matrix() @ right.matrix())


@given(label=LABELS_3Q)
@settings(max_examples=30)
def test_pauli_strings_square_to_identity(label):
    term = PauliString(label)
    squared = term * term
    assert squared.label == "I" * 3
    assert squared.coefficient == pytest.approx(1.0)


def test_scalar_multiplication():
    term = 2.0 * PauliString("XX")
    assert term.coefficient == pytest.approx(2.0)


def test_width_mismatch_raises():
    with pytest.raises(ValueError):
        PauliString("X") * PauliString("XX")


@given(label=st.text(alphabet="IZ", min_size=3, max_size=3))
@settings(max_examples=20)
def test_diagonal_matches_matrix_diagonal(label):
    term = PauliString(label, 0.7)
    assert np.allclose(term.diagonal(), np.real(np.diag(term.matrix())))


def test_diagonal_of_offdiagonal_raises():
    with pytest.raises(ValueError):
        PauliString("XI").diagonal()


@given(label=LABELS_3Q, seed=st.integers(0, 50))
@settings(max_examples=40, deadline=None)
def test_expectation_matches_dense(label, seed):
    term = PauliString(label, 1.3)
    state = random_state(3, seed)
    dense = np.real(np.vdot(state.data, term.matrix() @ state.data))
    assert term.expectation(state) == pytest.approx(dense, abs=1e-10)


def test_expectation_width_mismatch_raises():
    with pytest.raises(ValueError):
        PauliString("X").expectation(Statevector(2))


def test_pauli_sum_merges_duplicates():
    total = PauliSum([PauliString("ZZ", 0.5), PauliString("ZZ", 0.25)])
    assert len(total) == 1
    assert total.terms[0].coefficient == pytest.approx(0.75)


def test_pauli_sum_drops_cancelled_terms():
    total = PauliSum([PauliString("XX", 1.0), PauliString("XX", -1.0)])
    assert len(total) == 1
    assert total.terms[0].coefficient == 0.0


def test_pauli_sum_width_mismatch_raises():
    with pytest.raises(ValueError):
        PauliSum([PauliString("X"), PauliString("XX")])


def test_pauli_sum_requires_terms():
    with pytest.raises(ValueError):
        PauliSum([])


def test_from_dict_and_expectation():
    hamiltonian = PauliSum.from_dict({"ZZ": 1.0, "XI": 0.5})
    state = random_state(2, seed=9)
    dense = np.real(np.vdot(state.data, hamiltonian.matrix() @ state.data))
    assert hamiltonian.expectation(state) == pytest.approx(dense, abs=1e-10)


def test_sum_addition_and_scaling():
    a = PauliSum.from_dict({"Z": 1.0})
    b = PauliSum.from_dict({"X": 2.0})
    combined = a + b
    assert len(combined) == 2
    scaled = combined * 0.5
    coefficients = {t.label: t.coefficient for t in scaled}
    assert coefficients["Z"] == pytest.approx(0.5)
    assert coefficients["X"] == pytest.approx(1.0)


def test_diagonal_sum_ground_energy():
    hamiltonian = PauliSum.from_dict({"ZZ": 1.0})
    # ZZ eigenvalues: +1 (00, 11), -1 (01, 10).
    assert hamiltonian.ground_energy() == pytest.approx(-1.0)
    assert hamiltonian.is_diagonal


def test_offdiagonal_ground_energy_matches_eigh():
    hamiltonian = PauliSum.from_dict({"XX": 0.5, "ZI": 0.3, "IZ": -0.2})
    eigenvalues = np.linalg.eigvalsh(hamiltonian.matrix())
    assert hamiltonian.ground_energy() == pytest.approx(float(eigenvalues[0]))
