"""Tests for the sparse-recovery solvers (FISTA, OMP, basis pursuit)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cs import (
    basis_pursuit_linprog,
    dct_basis_matrix,
    fista_lasso,
    idct_transform,
    omp,
    reconstruction_operators,
    soft_threshold,
)


def sparse_problem(shape, sparsity, num_measurements, seed, amplitude=5.0):
    """A planted sparse-DCT signal measured at random grid indices."""
    rng = np.random.default_rng(seed)
    size = int(np.prod(shape))
    coefficients = np.zeros(size)
    support = rng.choice(size, size=sparsity, replace=False)
    coefficients[support] = amplitude * rng.normal(size=sparsity)
    coefficients = coefficients.reshape(shape)
    signal = idct_transform(coefficients)
    indices = np.sort(rng.choice(size, size=num_measurements, replace=False))
    forward, adjoint = reconstruction_operators(shape, indices)
    measurements = signal.reshape(-1)[indices]
    return coefficients, signal, indices, forward, adjoint, measurements


# -- soft threshold ------------------------------------------------------------


@given(value=st.floats(-10, 10), threshold=st.floats(0, 5))
def test_soft_threshold_shrinks_toward_zero(value, threshold):
    out = float(soft_threshold(np.array([value]), threshold)[0])
    assert abs(out) <= max(abs(value) - threshold, 0.0) + 1e-12


def test_soft_threshold_kills_small_values():
    values = np.array([-0.5, 0.2, 0.9])
    assert np.allclose(soft_threshold(values, 1.0), 0.0)


def test_soft_threshold_preserves_sign():
    values = np.array([-3.0, 3.0])
    out = soft_threshold(values, 1.0)
    assert np.allclose(out, [-2.0, 2.0])


# -- FISTA ----------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100))
def test_fista_recovers_sparse_signal(seed):
    shape = (12, 12)
    coefficients, signal, indices, forward, adjoint, y = sparse_problem(
        shape, sparsity=5, num_measurements=70, seed=seed
    )
    result = fista_lasso(forward, adjoint, y, shape, max_iterations=800)
    recovered = idct_transform(result.coefficients)
    error = np.linalg.norm(recovered - signal) / np.linalg.norm(signal)
    assert error < 0.05


def test_fista_converges_flag():
    shape = (8, 8)
    _, _, _, forward, adjoint, y = sparse_problem(shape, 3, 40, seed=0)
    result = fista_lasso(forward, adjoint, y, shape, max_iterations=2000)
    assert result.converged
    assert result.iterations < 2000


def test_fista_dc_not_penalised_by_default():
    """A constant signal must reconstruct exactly despite the L1 term."""
    shape = (10, 10)
    signal = np.full(shape, 4.2)
    rng = np.random.default_rng(0)
    indices = np.sort(rng.choice(100, size=30, replace=False))
    forward, adjoint = reconstruction_operators(shape, indices)
    y = signal.reshape(-1)[indices]
    result = fista_lasso(forward, adjoint, y, shape, max_iterations=500)
    recovered = idct_transform(result.coefficients)
    assert np.allclose(recovered, 4.2, atol=1e-3)


def test_fista_explicit_lambda_controls_sparsity():
    shape = (10, 10)
    _, signal, indices, forward, adjoint, y = sparse_problem(shape, 4, 50, seed=3)
    tight = fista_lasso(forward, adjoint, y, shape, lam=10.0, max_iterations=300)
    loose = fista_lasso(forward, adjoint, y, shape, lam=1e-4, max_iterations=300)
    nnz_tight = np.count_nonzero(np.abs(tight.coefficients) > 1e-9)
    nnz_loose = np.count_nonzero(np.abs(loose.coefficients) > 1e-9)
    assert nnz_tight < nnz_loose


def test_fista_objective_is_finite():
    shape = (6, 6)
    _, _, _, forward, adjoint, y = sparse_problem(shape, 2, 20, seed=5)
    result = fista_lasso(forward, adjoint, y, shape)
    assert np.isfinite(result.objective)


def test_fista_warm_start_fewer_iterations():
    """Seeding with a previous solution must cut the iteration count."""
    shape = (12, 12)
    _, _, _, forward, adjoint, y = sparse_problem(shape, 5, 70, seed=6)
    cold = fista_lasso(forward, adjoint, y, shape, max_iterations=800)
    warm = fista_lasso(
        forward, adjoint, y, shape, max_iterations=800, initial=cold.coefficients
    )
    assert warm.iterations < cold.iterations
    assert np.allclose(warm.coefficients, cold.coefficients, atol=1e-4)


def test_fista_adaptive_restart_recovers():
    shape = (12, 12)
    _, signal, _, forward, adjoint, y = sparse_problem(shape, 5, 70, seed=8)
    result = fista_lasso(
        forward, adjoint, y, shape, max_iterations=800, adaptive_restart=True
    )
    recovered = idct_transform(result.coefficients)
    assert np.linalg.norm(recovered - signal) / np.linalg.norm(signal) < 0.05


def test_fista_backtracking_line_search():
    """lipschitz=None enables backtracking and still recovers — even
    when the true Lipschitz constant is not 1 (scaled operator)."""
    shape = (10, 10)
    _, signal, _, forward, adjoint, y = sparse_problem(shape, 4, 55, seed=9)

    def scaled_forward(coefficients):
        return 3.0 * forward(coefficients)

    def scaled_adjoint(residual):
        return 3.0 * adjoint(residual)

    result = fista_lasso(
        scaled_forward,
        scaled_adjoint,
        3.0 * y,
        shape,
        max_iterations=1500,
        lipschitz=None,
    )
    recovered = idct_transform(result.coefficients)
    assert np.linalg.norm(recovered - signal) / np.linalg.norm(signal) < 0.05


def test_auto_lambda_respects_penalize_dc():
    from repro.cs import auto_lambda

    correlation = np.array([10.0, 1.0, 0.5])
    assert auto_lambda(correlation, penalize_dc=False) == pytest.approx(0.01)
    assert auto_lambda(correlation, penalize_dc=True) == pytest.approx(0.1)


def test_dst_basis_penalizes_flat_index_zero():
    """Under the DST there is no DC term, so index 0 must be shrunk
    like any other coefficient (the auto-lam/DC bugfix)."""
    from repro.cs import ReconstructionConfig, reconstruct_signal

    shape = (8, 8)
    rng = np.random.default_rng(10)
    indices = np.sort(rng.choice(64, size=30, replace=False))
    values = rng.normal(size=30)
    config = ReconstructionConfig(basis="dst", lam=50.0, max_iterations=200)
    _, result = reconstruct_signal(shape, indices, values, config)
    # A huge penalty with full shrinkage drives *every* coefficient,
    # including flat index 0, to zero.
    assert result.coefficients[0, 0] == 0.0
    assert np.allclose(result.coefficients, 0.0)


# -- OMP --------------------------------------------------------------------------


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 50))
def test_omp_exact_recovery_for_very_sparse(seed):
    shape = (10, 10)
    coefficients, signal, indices, forward, adjoint, y = sparse_problem(
        shape, sparsity=3, num_measurements=50, seed=seed
    )
    result = omp(forward, adjoint, y, shape, max_atoms=10)
    recovered = idct_transform(result.coefficients)
    error = np.linalg.norm(recovered - signal) / np.linalg.norm(signal)
    assert error < 1e-6
    assert result.converged


def test_omp_respects_atom_cap():
    shape = (8, 8)
    _, _, _, forward, adjoint, y = sparse_problem(shape, 6, 30, seed=2)
    result = omp(forward, adjoint, y, shape, max_atoms=2)
    assert np.count_nonzero(result.coefficients) <= 2


def test_omp_zero_measurements_edge():
    shape = (4, 4)
    forward, adjoint = reconstruction_operators(shape, np.array([0, 5, 9]))
    result = omp(forward, adjoint, np.zeros(3), shape)
    assert np.allclose(result.coefficients, 0.0)


# -- basis pursuit -----------------------------------------------------------------


def test_basis_pursuit_exact_recovery():
    rng = np.random.default_rng(4)
    n, m, k = 36, 20, 3
    psi = dct_basis_matrix(n)
    coefficients = np.zeros(n)
    support = rng.choice(n, size=k, replace=False)
    coefficients[support] = rng.normal(size=k) * 3.0
    indices = np.sort(rng.choice(n, size=m, replace=False))
    sensing = psi[indices, :]
    y = sensing @ coefficients
    result = basis_pursuit_linprog(sensing, y)
    assert result.converged
    assert np.allclose(result.coefficients, coefficients, atol=1e-6)


def test_basis_pursuit_dimension_mismatch():
    with pytest.raises(ValueError):
        basis_pursuit_linprog(np.ones((3, 5)), np.ones(4))


def test_basis_pursuit_minimises_l1():
    """Among consistent solutions, BP picks (near) minimal L1 norm."""
    rng = np.random.default_rng(7)
    sensing = rng.normal(size=(5, 12))
    sparse = np.zeros(12)
    sparse[[2, 8]] = [1.5, -2.0]
    y = sensing @ sparse
    result = basis_pursuit_linprog(sensing, y)
    assert np.abs(result.coefficients).sum() <= np.abs(sparse).sum() + 1e-6
    assert np.allclose(sensing @ result.coefficients, y, atol=1e-8)
