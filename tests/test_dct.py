"""Tests for the orthonormal DCT basis layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cs import (
    dct_basis_matrix,
    dct_transform,
    energy_fraction_coefficients,
    idct_transform,
    sparsity_fraction_for_energy,
)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), ndim=st.integers(1, 3))
def test_transform_roundtrip(seed, ndim):
    rng = np.random.default_rng(seed)
    shape = tuple(rng.integers(2, 8) for _ in range(ndim))
    signal = rng.normal(size=shape)
    assert np.allclose(idct_transform(dct_transform(signal)), signal)
    assert np.allclose(dct_transform(idct_transform(signal)), signal)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_transform_preserves_energy(seed):
    """Orthonormal transform: Parseval's identity."""
    rng = np.random.default_rng(seed)
    signal = rng.normal(size=(6, 9))
    coefficients = dct_transform(signal)
    assert np.sum(signal**2) == pytest.approx(np.sum(coefficients**2))


def test_basis_matrix_is_orthonormal():
    for length in (2, 5, 8):
        psi = dct_basis_matrix(length)
        assert np.allclose(psi.T @ psi, np.eye(length), atol=1e-10)


def test_basis_matrix_synthesises():
    rng = np.random.default_rng(0)
    coefficients = rng.normal(size=7)
    psi = dct_basis_matrix(7)
    assert np.allclose(psi @ coefficients, idct_transform(coefficients))


def test_constant_signal_is_one_coefficient():
    signal = np.full((10, 10), 3.7)
    assert energy_fraction_coefficients(signal) == 1
    assert sparsity_fraction_for_energy(signal) == pytest.approx(0.01)


def test_single_cosine_is_one_coefficient():
    coefficients = np.zeros((8, 8))
    coefficients[2, 3] = 5.0
    signal = idct_transform(coefficients)
    assert energy_fraction_coefficients(signal) == 1


def test_energy_fraction_monotone_in_threshold():
    rng = np.random.default_rng(1)
    signal = rng.normal(size=(12, 12))
    low = energy_fraction_coefficients(signal, 0.5)
    high = energy_fraction_coefficients(signal, 0.99)
    assert low <= high


def test_energy_fraction_of_zero_signal():
    assert energy_fraction_coefficients(np.zeros((4, 4))) == 0


def test_energy_fraction_validation():
    with pytest.raises(ValueError):
        energy_fraction_coefficients(np.ones(4), fraction=0.0)
    with pytest.raises(ValueError):
        energy_fraction_coefficients(np.ones(4), fraction=1.5)


def test_white_noise_is_not_sparse():
    rng = np.random.default_rng(2)
    noise = rng.normal(size=(20, 20))
    assert sparsity_fraction_for_energy(noise) > 0.5


def test_qaoa_landscape_is_sparse():
    """The paper's core empirical claim (Table 4) at small scale."""
    from repro.ansatz import QaoaAnsatz
    from repro.landscape import LandscapeGenerator, cost_function, qaoa_grid
    from repro.problems import random_3_regular_maxcut

    problem = random_3_regular_maxcut(6, seed=0)
    ansatz = QaoaAnsatz(problem, p=1)
    grid = qaoa_grid(p=1, resolution=(16, 32))
    truth = LandscapeGenerator(cost_function(ansatz), grid).grid_search()
    assert sparsity_fraction_for_energy(truth.values) < 0.05
