"""Tests for QAOA landscape symmetries and symmetry-folded sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.landscape import (
    GridAxis,
    Landscape,
    LandscapeGenerator,
    OscarReconstructor,
    ParameterGrid,
    cost_function,
    half_grid_indices,
    is_centrosymmetric_grid,
    mirror_flat_index,
    mirror_samples,
    nrmse,
    qaoa_grid,
    symmetrize,
    time_reversal_symmetry_error,
)


def test_table1_grid_is_centrosymmetric():
    assert is_centrosymmetric_grid(qaoa_grid(p=1))
    assert is_centrosymmetric_grid(qaoa_grid(p=2))


def test_asymmetric_grid_detected():
    grid = ParameterGrid([GridAxis("x", 0.0, 1.0, 5), GridAxis("y", -1.0, 1.0, 5)])
    assert not is_centrosymmetric_grid(grid)
    landscape = Landscape(grid, np.zeros((5, 5)))
    with pytest.raises(ValueError):
        time_reversal_symmetry_error(landscape)
    with pytest.raises(ValueError):
        symmetrize(landscape)
    with pytest.raises(ValueError):
        half_grid_indices(grid)


def test_mirror_flat_index_involution():
    shape = (6, 9)
    for flat in range(6 * 9):
        assert mirror_flat_index(mirror_flat_index(flat, shape), shape) == flat


def test_mirror_flat_index_corners():
    shape = (4, 5)
    assert mirror_flat_index(0, shape) == 19  # (0,0) -> (3,4)
    assert mirror_flat_index(19, shape) == 0


def test_qaoa_landscape_is_time_reversal_symmetric(qaoa6, small_grid):
    """The physics: C(-beta, -gamma) = C(beta, gamma) exactly."""
    truth = LandscapeGenerator(cost_function(qaoa6), small_grid).grid_search()
    assert time_reversal_symmetry_error(truth) < 1e-10


def test_symmetry_error_flags_broken_landscape(qaoa6, small_grid):
    truth = LandscapeGenerator(cost_function(qaoa6), small_grid).grid_search()
    broken = truth.with_values(
        truth.values + np.linspace(0, 1, truth.values.size).reshape(truth.values.shape)
    )
    assert time_reversal_symmetry_error(broken) > 0.05


def test_symmetrize_removes_antisymmetric_noise(qaoa6, small_grid):
    truth = LandscapeGenerator(cost_function(qaoa6), small_grid).grid_search()
    rng = np.random.default_rng(0)
    noise = rng.normal(0, 0.1, truth.values.shape)
    noisy = truth.with_values(truth.values + noise)
    cleaned = symmetrize(noisy)
    assert nrmse(truth.values, cleaned.values) < nrmse(truth.values, noisy.values)
    # Symmetrisation is idempotent on the symmetric part.
    assert time_reversal_symmetry_error(cleaned) < 1e-10


def test_half_grid_indices_cover_orbits():
    grid = qaoa_grid(p=1, resolution=(6, 8))
    half = half_grid_indices(grid)
    mirrored = {mirror_flat_index(flat, grid.shape) for flat in half}
    assert set(half) | mirrored == set(range(grid.size))
    # Roughly half the grid (self-symmetric points counted once).
    assert grid.size / 2 <= half.size <= grid.size / 2 + 2


def test_mirror_samples_doubles_distinct_points():
    grid = qaoa_grid(p=1, resolution=(6, 8))
    indices = np.array([0, 1, 2])
    values = np.array([1.0, 2.0, 3.0])
    all_indices, all_values = mirror_samples(grid, indices, values)
    assert all_indices.shape[0] == 6
    lookup = dict(zip(all_indices.tolist(), all_values.tolist()))
    assert lookup[mirror_flat_index(0, grid.shape)] == 1.0


def test_mirror_samples_handles_duplicates():
    grid = qaoa_grid(p=1, resolution=(5, 5))
    center = grid.size // 2  # self-symmetric central point
    all_indices, all_values = mirror_samples(
        grid, np.array([center]), np.array([7.0])
    )
    assert all_indices.shape[0] == 1
    assert all_values[0] == 7.0


def test_mirror_samples_validation():
    grid = qaoa_grid(p=1, resolution=(5, 5))
    with pytest.raises(ValueError):
        mirror_samples(grid, np.array([0, 1]), np.array([1.0]))


def test_symmetry_folded_oscar_beats_plain_at_same_cost(qaoa6, medium_grid):
    """Sampling in the half-space + free mirroring halves the circuit
    budget for the same effective sampling fraction."""
    generator = LandscapeGenerator(cost_function(qaoa6), medium_grid)
    truth = generator.grid_search()
    budget = int(0.05 * medium_grid.size)  # circuit executions

    # Plain OSCAR spends the budget on uniform samples.
    plain = OscarReconstructor(medium_grid, rng=0)
    indices = plain.sample_indices(budget / medium_grid.size)
    plain_landscape, _ = plain.reconstruct_from_samples(
        indices, generator.evaluate_indices(indices)
    )

    # Folded OSCAR: sample the half-space, mirror for free.
    rng = np.random.default_rng(0)
    half = half_grid_indices(medium_grid)
    chosen = np.sort(rng.choice(half, size=budget, replace=False))
    values = generator.evaluate_indices(chosen)
    full_indices, full_values = mirror_samples(medium_grid, chosen, values)
    folded = OscarReconstructor(medium_grid, rng=1)
    folded_landscape, report = folded.reconstruct_from_samples(
        full_indices, full_values
    )
    assert report.num_samples > budget  # free mirrored points counted
    assert nrmse(truth.values, folded_landscape.values) < nrmse(
        truth.values, plain_landscape.values
    )


# -- reconstructor input hardening (failure injection) ------------------------


def test_reconstructor_rejects_nan_samples(medium_grid):
    oscar = OscarReconstructor(medium_grid)
    values = np.ones(10)
    values[3] = np.nan
    with pytest.raises(ValueError, match="non-finite"):
        oscar.reconstruct_from_samples(np.arange(10), values)


def test_reconstructor_rejects_inf_samples(medium_grid):
    oscar = OscarReconstructor(medium_grid)
    values = np.ones(5)
    values[0] = np.inf
    with pytest.raises(ValueError, match="non-finite"):
        oscar.reconstruct_from_samples(np.arange(5), values)


def test_reconstructor_rejects_duplicate_indices(medium_grid):
    oscar = OscarReconstructor(medium_grid)
    with pytest.raises(ValueError, match="duplicates"):
        oscar.reconstruct_from_samples(np.array([1, 1, 2]), np.ones(3))
