"""Tests for the batched reconstruction engine and the solver registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cs import (
    ReconstructionConfig,
    ReconstructionEngine,
    available_solvers,
    idct_transform,
    reconstruct_signal,
    reconstruct_signals,
    register_solver,
)
from repro.cs.reconstruct import _SOLVER_REGISTRY
from repro.cs.solvers import SolverResult
from repro.landscape import (
    LandscapeGenerator,
    OscarReconstructor,
    cost_function,
    qaoa_grid,
)


def planted_problems(shape, batch, seed, fraction=0.12, sparsity=8):
    """A stack of planted sparse-DCT problems over one grid shape."""
    rng = np.random.default_rng(seed)
    size = int(np.prod(shape))
    problems = []
    signals = []
    for _ in range(batch):
        coefficients = np.zeros(size)
        support = rng.choice(size, size=sparsity, replace=False)
        coefficients[support] = 4.0 * rng.normal(size=sparsity)
        signal = idct_transform(coefficients.reshape(shape))
        indices = np.sort(
            rng.choice(size, size=max(8, int(fraction * size)), replace=False)
        )
        problems.append((indices, signal.reshape(-1)[indices]))
        signals.append(signal)
    return problems, signals


# -- batched vs serial equivalence ---------------------------------------------


@pytest.mark.parametrize("basis", ["dct", "dst"])
def test_batched_matches_serial(basis):
    """A stack of 8 landscapes must reproduce the serial path exactly:
    same signals (allclose), same iteration counts, same flags."""
    shape = (20, 40)
    config = ReconstructionConfig(basis=basis, max_iterations=300)
    problems, _ = planted_problems(shape, batch=8, seed=0)
    serial = [
        reconstruct_signal(shape, indices, values, config)
        for indices, values in problems
    ]
    batched = ReconstructionEngine(shape, config).solve(problems)
    for (s_signal, s_result), (b_signal, b_result) in zip(serial, batched):
        assert np.allclose(s_signal, b_signal, atol=1e-9)
        assert s_result.iterations == b_result.iterations
        assert s_result.converged == b_result.converged
        assert s_result.objective == pytest.approx(b_result.objective)


def test_batched_handles_unequal_sample_counts():
    shape = (12, 18)
    rng = np.random.default_rng(3)
    size = 12 * 18
    signal = idct_transform(
        np.concatenate([rng.normal(size=4) * 5, np.zeros(size - 4)]).reshape(shape)
    )
    problems = []
    for count in (20, 55, 90, 140):
        indices = np.sort(rng.choice(size, size=count, replace=False))
        problems.append((indices, signal.reshape(-1)[indices]))
    batched = reconstruct_signals(shape, problems)
    serial = [reconstruct_signal(shape, i, v) for i, v in problems]
    for (s_signal, _), (b_signal, _) in zip(serial, batched):
        assert np.allclose(s_signal, b_signal, atol=1e-9)


def test_convergence_mask_early_exit():
    """An easy problem in the stack must stop at its own (early)
    iteration count while a hard one iterates on — the per-landscape
    convergence masks at work."""
    shape = (16, 16)
    rng = np.random.default_rng(5)
    size = 256
    # Easy: a constant signal (converges almost immediately).
    easy_indices = np.sort(rng.choice(size, size=60, replace=False))
    easy = (easy_indices, np.full(60, 3.0))
    # Hard: dense random values (no sparse representation).
    hard_indices = np.sort(rng.choice(size, size=60, replace=False))
    hard = (hard_indices, rng.normal(size=60))
    config = ReconstructionConfig(max_iterations=400)
    results = ReconstructionEngine(shape, config).solve([easy, hard])
    easy_result, hard_result = results[0][1], results[1][1]
    assert easy_result.converged
    assert easy_result.iterations < hard_result.iterations


def test_warm_start_converges_in_fewer_iterations():
    shape = (20, 40)
    problems, _ = planted_problems(shape, batch=4, seed=7)
    engine = ReconstructionEngine(shape, ReconstructionConfig(max_iterations=400))
    cold = engine.solve(problems)
    warm_starts = [result.coefficients for _, result in cold]
    warmed = engine.solve(problems, warm_starts=warm_starts)
    for (_, cold_result), (_, warm_result) in zip(cold, warmed):
        assert warm_result.iterations < cold_result.iterations
    # A None entry means "start cold" for that problem only.
    mixed = engine.solve(problems, warm_starts=[None] + warm_starts[1:])
    assert mixed[0][1].iterations == cold[0][1].iterations


def test_engine_adaptive_restart_matches_quality():
    """Adaptive restart must not hurt recovery (it typically helps)."""
    shape = (20, 40)
    problems, signals = planted_problems(shape, batch=4, seed=11)
    restarted = ReconstructionEngine(
        shape, ReconstructionConfig(adaptive_restart=True, max_iterations=400)
    ).solve(problems)
    for (recovered, _), signal in zip(restarted, signals):
        error = np.linalg.norm(recovered - signal) / np.linalg.norm(signal)
        assert error < 0.05


# -- validation and fallback paths ---------------------------------------------


def test_engine_validation_errors():
    engine = ReconstructionEngine((8, 8))
    good = (np.array([0, 5, 9]), np.array([1.0, 2.0, 3.0]))
    with pytest.raises(ValueError, match="duplicates"):
        engine.solve([good, (np.array([1, 1, 4]), np.ones(3))])
    with pytest.raises(ValueError, match="matching lengths"):
        engine.solve([(np.array([0, 1]), np.ones(3))])
    with pytest.raises(ValueError, match="out of range"):
        engine.solve([(np.array([0, 64]), np.ones(2))])
    with pytest.raises(ValueError, match="at least one sample"):
        engine.solve([(np.array([], dtype=int), np.empty(0))])
    with pytest.raises(ValueError, match="non-finite"):
        engine.solve([(np.array([0, 1]), np.array([1.0, np.nan]))])
    with pytest.raises(ValueError, match="warm start"):
        engine.solve([good], warm_starts=[None, None])
    with pytest.raises(ValueError):
        ReconstructionEngine((0, 4))


def test_engine_empty_stack():
    assert ReconstructionEngine((8, 8)).solve([]) == []


def test_engine_serial_fallback_for_omp():
    """Non-FISTA solvers run serially through the engine with
    identical results."""
    shape = (10, 10)
    problems, _ = planted_problems(shape, batch=3, seed=13, fraction=0.4, sparsity=3)
    config = ReconstructionConfig(solver="omp", max_atoms=10)
    batched = ReconstructionEngine(shape, config).solve(problems)
    serial = [reconstruct_signal(shape, i, v, config) for i, v in problems]
    for (s_signal, _), (b_signal, _) in zip(serial, batched):
        assert np.array_equal(s_signal, b_signal)


def test_engine_backtracking_falls_back_to_serial():
    """lipschitz=None (backtracking) has no batched formulation but
    must still solve correctly through the engine."""
    shape = (12, 12)
    problems, signals = planted_problems(
        shape, batch=2, seed=17, fraction=0.5, sparsity=4
    )
    config = ReconstructionConfig(lipschitz=None, max_iterations=600)
    results = ReconstructionEngine(shape, config).solve(problems)
    for (recovered, _), signal in zip(results, signals):
        error = np.linalg.norm(recovered - signal) / np.linalg.norm(signal)
        assert error < 0.05


# -- solver registry -------------------------------------------------------------


def test_registry_lists_builtin_solvers():
    assert set(available_solvers()) >= {"fista", "omp", "bp"}


def test_registry_custom_solver_roundtrip():
    def zeros_solver(shape, flat_indices, values, config, warm_start):
        return SolverResult(np.zeros(shape), 0, True, 0.0)

    register_solver("zeros", zeros_solver)
    try:
        signal, result = reconstruct_signal(
            (4, 4),
            np.array([0, 3]),
            np.array([1.0, 2.0]),
            ReconstructionConfig(solver="zeros"),
        )
        assert np.allclose(signal, 0.0)
        assert result.converged
    finally:
        del _SOLVER_REGISTRY["zeros"]
    with pytest.raises(ValueError, match="unknown solver"):
        reconstruct_signal(
            (4, 4),
            np.array([0]),
            np.array([1.0]),
            ReconstructionConfig(solver="zeros"),
        )


# -- OscarReconstructor.reconstruct_many ------------------------------------------


def test_reconstruct_many_matches_serial_reconstructor(qaoa6, medium_grid):
    generator = LandscapeGenerator(cost_function(qaoa6), medium_grid)
    oscar = OscarReconstructor(medium_grid, rng=0)
    sample_sets = []
    for fraction in (0.08, 0.10, 0.12):
        indices = oscar.sample_indices(fraction)
        sample_sets.append((indices, generator.evaluate_indices(indices)))
    batched = oscar.reconstruct_many(
        sample_sets, labels=[f"f{i}" for i in range(3)]
    )
    for (indices, values), (landscape, report) in zip(sample_sets, batched):
        serial_landscape, serial_report = oscar.reconstruct_from_samples(
            indices, values
        )
        assert np.allclose(landscape.values, serial_landscape.values, atol=1e-9)
        assert report.solver_iterations == serial_report.solver_iterations
        assert report.num_samples == indices.size
        assert landscape.circuit_executions == indices.size
    assert [landscape.label for landscape, _ in batched] == ["f0", "f1", "f2"]


def test_reconstruct_many_validation(medium_grid):
    oscar = OscarReconstructor(medium_grid)
    good = (np.array([0, 1, 2]), np.array([1.0, 2.0, 3.0]))
    with pytest.raises(ValueError, match="duplicates"):
        oscar.reconstruct_many([good, (np.array([5, 5]), np.ones(2))])
    with pytest.raises(ValueError, match="matching lengths"):
        oscar.reconstruct_many([(np.array([0, 1]), np.ones(3))])
    with pytest.raises(ValueError, match="non-finite"):
        oscar.reconstruct_many([(np.array([0, 1]), np.array([np.inf, 0.0]))])
    # Serial and batched paths agree on range validation too.
    with pytest.raises(ValueError, match="out of range"):
        oscar.reconstruct_from_samples(np.array([-1, 5]), np.ones(2))
    with pytest.raises(ValueError, match="out of range"):
        oscar.reconstruct_many([(np.array([-1, 5]), np.ones(2))])
    with pytest.raises(ValueError, match="label"):
        oscar.reconstruct_many([good], labels=["a", "b"])


def test_reconstruct_many_p2_reshape():
    """4-D grids batch through the paper's 2-D concatenation reshape."""
    grid = qaoa_grid(p=2, resolution=(5, 6))
    rng = np.random.default_rng(19)
    flat = rng.choice(grid.size, size=grid.size // 3, replace=False)
    values = rng.normal(size=flat.size)
    oscar = OscarReconstructor(grid, rng=0)
    batched = oscar.reconstruct_many([(flat, values)])
    serial = oscar.reconstruct_from_samples(flat, values)
    assert batched[0][0].values.shape == grid.shape
    assert np.allclose(batched[0][0].values, serial[0].values, atol=1e-9)


def test_warm_start_through_reconstructor(qaoa6, medium_grid):
    """coefficients_of(previous) warm-starts a re-solve with more
    samples, converging in fewer iterations."""
    generator = LandscapeGenerator(cost_function(qaoa6), medium_grid)
    oscar = OscarReconstructor(medium_grid, rng=1)
    indices = oscar.sample_indices(0.10)
    values = generator.evaluate_indices(indices)
    first, cold_report = oscar.reconstruct_from_samples(indices, values)
    more = oscar.sample_indices(0.15)
    extra = np.setdiff1d(more, indices)
    grown_indices = np.concatenate([indices, extra])
    grown_values = np.concatenate([values, generator.evaluate_indices(extra)])
    _, cold_grown = oscar.reconstruct_from_samples(grown_indices, grown_values)
    _, warm_grown = oscar.reconstruct_from_samples(
        grown_indices, grown_values, warm_start=oscar.coefficients_of(first)
    )
    assert warm_grown.solver_iterations < cold_grown.solver_iterations
