"""Tests for the landscape metrics (paper Eqs. 1-4 + Table 4 statistic)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.landscape import (
    dct_sparsity,
    landscape_variance,
    nrmse,
    second_derivative,
    variance_of_gradient,
)


# -- NRMSE (Eq. 1) ---------------------------------------------------------------


def test_nrmse_zero_for_identical():
    rng = np.random.default_rng(0)
    values = rng.normal(size=(10, 10))
    assert nrmse(values, values) == 0.0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100), scale=st.floats(0.1, 100.0))
def test_nrmse_scale_invariance(seed, scale):
    """Scaling both landscapes by the same factor leaves NRMSE fixed."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=50)
    y = x + rng.normal(size=50) * 0.2
    assert nrmse(scale * x, scale * y) == pytest.approx(nrmse(x, y), rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100), shift=st.floats(-50, 50))
def test_nrmse_shift_invariance(seed, shift):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=50)
    y = x + rng.normal(size=50) * 0.2
    assert nrmse(x + shift, y + shift) == pytest.approx(nrmse(x, y), rel=1e-9)


def test_nrmse_matches_paper_formula():
    x = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
    y = x + 0.5
    rms = np.sqrt(np.mean(0.25))
    iqr = np.percentile(x, 75) - np.percentile(x, 25)
    assert nrmse(x, y) == pytest.approx(rms / iqr)


def test_nrmse_shape_mismatch_raises():
    with pytest.raises(ValueError):
        nrmse(np.zeros(3), np.zeros(4))


def test_nrmse_degenerate_constant_landscape():
    x = np.full(10, 2.0)
    assert nrmse(x, x) == 0.0
    assert nrmse(x, x + 1.0) == float("inf")


# -- D2 roughness (Eq. 2) -----------------------------------------------------------


def test_second_derivative_zero_for_linear_ramp():
    ramp = np.linspace(0, 5, 20)
    assert second_derivative(ramp) == pytest.approx(0.0, abs=1e-20)


def test_second_derivative_formula_1d():
    x = np.array([0.0, 0.0, 1.0, 0.0, 0.0])
    # second differences: 1, -2, 1 -> sum of squares / 4 = 6/4
    assert second_derivative(x) == pytest.approx(1.5)


def test_second_derivative_rough_beats_smooth():
    t = np.linspace(0, 4 * np.pi, 64)
    smooth = np.sin(t)
    rough = np.sin(t) + 0.5 * np.sin(12 * t)
    assert second_derivative(rough) > second_derivative(smooth)


def test_second_derivative_2d_averages_dimensions():
    values = np.outer(np.linspace(0, 1, 8), np.ones(8))
    # Linear along rows, constant along columns: zero both ways.
    assert second_derivative(values) == pytest.approx(0.0, abs=1e-20)


def test_second_derivative_short_signal_is_zero():
    assert second_derivative(np.array([1.0, 2.0])) == 0.0


# -- VoG flatness (Eq. 3) --------------------------------------------------------------


def test_vog_zero_for_constant_gradient():
    ramp = np.linspace(0, 10, 30)
    assert variance_of_gradient(ramp) == pytest.approx(0.0, abs=1e-20)


def test_vog_flat_landscape_is_zero():
    assert variance_of_gradient(np.full(20, 3.0)) == 0.0


def test_vog_detects_barren_plateau():
    """A flat (plateau) landscape has much smaller VoG than a bumpy one."""
    t = np.linspace(0, 2 * np.pi, 64)
    plateau = 0.01 * np.sin(t)
    structured = np.sin(t)
    assert variance_of_gradient(plateau) < variance_of_gradient(structured) / 100


def test_vog_short_signal_is_zero():
    assert variance_of_gradient(np.array([1.0])) == 0.0


# -- variance (Eq. 4) and sparsity --------------------------------------------------------


def test_landscape_variance_matches_numpy():
    rng = np.random.default_rng(1)
    values = rng.normal(size=(6, 7))
    assert landscape_variance(values) == pytest.approx(float(np.var(values)))


def test_dct_sparsity_in_unit_interval():
    rng = np.random.default_rng(2)
    values = rng.normal(size=(10, 10))
    assert 0.0 < dct_sparsity(values) <= 1.0


def test_dct_sparsity_smooth_less_than_noise():
    t = np.linspace(0, 2 * np.pi, 32)
    smooth = np.outer(np.sin(t), np.cos(t))
    rng = np.random.default_rng(3)
    noise = rng.normal(size=(32, 32))
    assert dct_sparsity(smooth) < dct_sparsity(noise)
