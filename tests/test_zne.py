"""Tests for Zero-Noise Extrapolation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import QaoaAnsatz
from repro.mitigation import (
    ZneConfig,
    exponential_extrapolate,
    extrapolate,
    linear_extrapolate,
    richardson_extrapolate,
    zne_cost_function,
    zne_expectation,
)
from repro.problems import random_3_regular_maxcut
from repro.quantum import NoiseModel

COEFFS = st.floats(min_value=-3, max_value=3)


# -- extrapolation models ---------------------------------------------------------


@given(a=COEFFS, b=COEFFS)
def test_richardson_exact_on_lines(a, b):
    scales = np.array([1.0, 2.0])
    values = a + b * scales
    assert richardson_extrapolate(scales, values) == pytest.approx(a, abs=1e-9)


@given(a=COEFFS, b=COEFFS, c=COEFFS)
def test_richardson_exact_on_quadratics(a, b, c):
    scales = np.array([1.0, 2.0, 3.0])
    values = a + b * scales + c * scales**2
    assert richardson_extrapolate(scales, values) == pytest.approx(a, abs=1e-7)


def test_richardson_weights_for_123():
    """The {1,2,3} estimator is 3 y1 - 3 y2 + y3."""
    scales = np.array([1.0, 2.0, 3.0])
    for i, expected in enumerate((3.0, -3.0, 1.0)):
        values = np.zeros(3)
        values[i] = 1.0
        assert richardson_extrapolate(scales, values) == pytest.approx(expected)


def test_richardson_validation():
    with pytest.raises(ValueError):
        richardson_extrapolate(np.array([1.0]), np.array([1.0]))
    with pytest.raises(ValueError):
        richardson_extrapolate(np.array([1.0, 1.0]), np.array([1.0, 2.0]))


@given(a=COEFFS, b=COEFFS)
def test_linear_exact_on_lines(a, b):
    scales = np.array([1.0, 3.0])
    values = a + b * scales
    assert linear_extrapolate(scales, values) == pytest.approx(a, abs=1e-9)


def test_linear_least_squares_on_noisy_line():
    rng = np.random.default_rng(0)
    scales = np.array([1.0, 2.0, 3.0, 4.0])
    values = 2.0 - 0.5 * scales + rng.normal(0, 1e-3, size=4)
    assert linear_extrapolate(scales, values) == pytest.approx(2.0, abs=0.01)


@given(a=st.floats(0.1, 3.0), b=st.floats(-1.0, -0.01))
def test_exponential_exact_on_exponentials(a, b):
    scales = np.array([1.0, 2.0, 3.0])
    values = a * np.exp(b * scales)
    assert exponential_extrapolate(scales, values) == pytest.approx(a, rel=1e-6)


def test_exponential_falls_back_on_sign_changes():
    scales = np.array([1.0, 2.0])
    values = np.array([1.0, -1.0])
    assert exponential_extrapolate(scales, values) == pytest.approx(
        linear_extrapolate(scales, values)
    )


def test_extrapolate_dispatch_and_validation():
    scales = [1.0, 2.0]
    values = [1.0, 0.5]
    assert extrapolate("linear", scales, values) == linear_extrapolate(
        np.array(scales), np.array(values)
    )
    with pytest.raises(ValueError):
        extrapolate("cubic-spline", scales, values)


# -- ZneConfig -----------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        ZneConfig(scale_factors=(1.0,))
    with pytest.raises(ValueError):
        ZneConfig(scale_factors=(0.5, 1.0))
    with pytest.raises(ValueError):
        ZneConfig(method="quartic")


def test_richardson_noise_amplification_sqrt19():
    config = ZneConfig(scale_factors=(1.0, 2.0, 3.0), method="richardson")
    assert config.noise_amplification == pytest.approx(np.sqrt(19.0))


def test_linear_noise_amplification_smaller_than_richardson():
    richardson = ZneConfig((1.0, 2.0, 3.0), "richardson")
    linear = ZneConfig((1.0, 3.0), "linear")
    assert linear.noise_amplification < richardson.noise_amplification


def test_circuit_overhead():
    assert ZneConfig((1.0, 2.0, 3.0), "richardson").circuit_overhead == 3.0


# -- end-to-end ZNE ---------------------------------------------------------------------


def test_zne_recovers_ideal_expectation():
    """On the analytic depolarizing model, ZNE must land much closer to
    the ideal value than the unmitigated noisy estimate."""
    problem = random_3_regular_maxcut(6, seed=0)
    ansatz = QaoaAnsatz(problem, p=1)
    params = np.array([0.25, -0.55])
    noise = NoiseModel(p1=0.002, p2=0.008)
    ideal = ansatz.expectation(params)
    noisy = ansatz.expectation(params, noise=noise)
    mitigated = zne_expectation(
        ansatz, params, noise, ZneConfig((1.0, 2.0, 3.0), "richardson")
    )
    assert abs(mitigated - ideal) < abs(noisy - ideal) / 3


def test_zne_linear_also_improves():
    problem = random_3_regular_maxcut(6, seed=1)
    ansatz = QaoaAnsatz(problem, p=1)
    params = np.array([0.3, 0.6])
    noise = NoiseModel(p1=0.001, p2=0.005)
    ideal = ansatz.expectation(params)
    noisy = ansatz.expectation(params, noise=noise)
    mitigated = zne_expectation(ansatz, params, noise, ZneConfig((1.0, 3.0), "linear"))
    assert abs(mitigated - ideal) < abs(noisy - ideal)


def test_richardson_amplifies_shot_noise_vs_linear():
    """The Fig. 9 mechanism: with shot noise, Richardson estimates have
    larger variance than linear ones."""
    problem = random_3_regular_maxcut(6, seed=2)
    ansatz = QaoaAnsatz(problem, p=1)
    params = np.array([0.2, 0.4])
    noise = NoiseModel(p1=0.001, p2=0.02)
    rng = np.random.default_rng(5)
    richardson_samples = [
        zne_expectation(ansatz, params, noise,
                        ZneConfig((1.0, 2.0, 3.0), "richardson"), shots=256, rng=rng)
        for _ in range(30)
    ]
    linear_samples = [
        zne_expectation(ansatz, params, noise,
                        ZneConfig((1.0, 3.0), "linear"), shots=256, rng=rng)
        for _ in range(30)
    ]
    assert np.std(richardson_samples) > np.std(linear_samples)


def test_zne_cost_function_is_plain_callable():
    problem = random_3_regular_maxcut(4, seed=3)
    ansatz = QaoaAnsatz(problem, p=1)
    noise = NoiseModel(p1=0.001, p2=0.01)
    function = zne_cost_function(ansatz, noise)
    value = function(np.array([0.1, 0.2]))
    assert np.isfinite(value)


def test_zne_many_simulates_each_point_once_on_the_qaoa_fast_path():
    """The analytic-contraction fast path reuses the scale-independent
    ideal state: one ``statevector_many`` pass over the points, instead
    of one per (point, scale) via the folded batch."""
    problem = random_3_regular_maxcut(4, seed=3)
    ansatz = QaoaAnsatz(problem, p=1)
    noise = NoiseModel(p1=0.001, p2=0.01)
    config = ZneConfig((1.0, 2.0, 3.0), "richardson")
    function = zne_cost_function(ansatz, noise, config)
    points = np.random.default_rng(0).uniform(-np.pi, np.pi, (9, 2))

    simulated_rows = []
    original = QaoaAnsatz.statevector_many

    def counting(self, batch):
        state = original(self, batch)
        simulated_rows.append(np.asarray(batch).shape[0])
        return state

    QaoaAnsatz.statevector_many = counting
    try:
        mitigated = function.many(points)
    finally:
        QaoaAnsatz.statevector_many = original
    assert sum(simulated_rows) == points.shape[0], (
        "fast path must simulate each point exactly once, not once per "
        "noise scale"
    )
    # And it must agree with the serial per-(point, scale) loop.
    serial = np.array([function(point) for point in points])
    np.testing.assert_allclose(mitigated, serial, rtol=0.0, atol=1e-10)


def test_zne_many_matches_folded_path_for_non_qaoa_ansatzes():
    """Ansatzes without the scale-reuse hook still take the generic
    fold and stay pinned to the serial loop."""
    from repro.ansatz import TwoLocalAnsatz
    from repro.problems import sk_problem

    ansatz = TwoLocalAnsatz(sk_problem(3, seed=1).to_pauli_sum(), reps=1)
    assert not hasattr(ansatz, "expectation_many_scaled")
    noise = NoiseModel(p1=0.002, p2=0.004)
    function = zne_cost_function(ansatz, noise, ZneConfig((1.0, 3.0), "linear"))
    points = np.random.default_rng(2).uniform(-np.pi, np.pi, (4, 6))
    serial = np.array([function(point) for point in points])
    np.testing.assert_allclose(function.many(points), serial, rtol=0.0, atol=1e-10)
