"""Shared fixtures for the test suite.

Sizes are deliberately small (4-8 qubits, coarse grids) so the whole
suite runs in a couple of minutes on one core while still exercising
every code path the experiments use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import QaoaAnsatz, TwoLocalAnsatz
from repro.landscape import LandscapeGenerator, cost_function, qaoa_grid
from repro.problems import random_3_regular_maxcut, sk_problem
from repro.quantum import NoiseModel


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "protocol: wire-protocol conformance + fuzz suite (run with "
        "`pytest -m protocol`)",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator; tests share determinism through it."""
    return np.random.default_rng(12345)


@pytest.fixture
def maxcut6():
    """A 6-node 3-regular MaxCut problem (the suite's workhorse)."""
    return random_3_regular_maxcut(6, seed=0)


@pytest.fixture
def maxcut8():
    """An 8-node 3-regular MaxCut problem."""
    return random_3_regular_maxcut(8, seed=1)


@pytest.fixture
def sk4():
    """A 4-spin SK instance."""
    return sk_problem(4, seed=2)


@pytest.fixture
def qaoa6(maxcut6) -> QaoaAnsatz:
    """Depth-1 QAOA on the 6-node MaxCut problem."""
    return QaoaAnsatz(maxcut6, p=1)


@pytest.fixture
def twolocal4(sk4) -> TwoLocalAnsatz:
    """A 1-rep Two-local ansatz on the 4-spin SK Hamiltonian."""
    return TwoLocalAnsatz(sk4.to_pauli_sum(), reps=1)


@pytest.fixture
def small_grid():
    """A 16 x 32 p=1 QAOA grid (512 points)."""
    return qaoa_grid(p=1, resolution=(16, 32))


@pytest.fixture
def medium_grid():
    """A 20 x 40 p=1 QAOA grid (800 points) — the reconstruction floor
    where 10% sampling reliably gives NRMSE < 0.1."""
    return qaoa_grid(p=1, resolution=(20, 40))


@pytest.fixture
def ideal_generator(qaoa6, medium_grid) -> LandscapeGenerator:
    """Ideal-execution generator on the medium grid."""
    return LandscapeGenerator(cost_function(qaoa6), medium_grid)


@pytest.fixture
def mild_noise() -> NoiseModel:
    """A light depolarizing model used across noisy-path tests."""
    return NoiseModel(p1=0.002, p2=0.006)
