"""Unit tests for repro.quantum.noise."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum import NoiseModel, QuantumCircuit, global_depolarizing_factor
from repro.quantum.noise import (
    apply_readout_noise_to_probabilities,
    depolarizing_kraus,
    readout_confusion_matrix,
    two_qubit_depolarizing_kraus,
)

PROBS = st.floats(min_value=0.0, max_value=1.0)


@given(p=PROBS)
def test_single_qubit_kraus_completeness(p):
    kraus = depolarizing_kraus(p)
    total = sum(k.conj().T @ k for k in kraus)
    assert np.allclose(total, np.eye(2))


@given(p=PROBS)
def test_two_qubit_kraus_completeness(p):
    kraus = two_qubit_depolarizing_kraus(p)
    assert len(kraus) == 16
    total = sum(k.conj().T @ k for k in kraus)
    assert np.allclose(total, np.eye(4))


def test_kraus_probability_validation():
    with pytest.raises(ValueError):
        depolarizing_kraus(1.5)
    with pytest.raises(ValueError):
        two_qubit_depolarizing_kraus(-0.1)


def test_noise_model_validation():
    with pytest.raises(ValueError):
        NoiseModel(p1=-0.1)
    with pytest.raises(ValueError):
        NoiseModel(readout=1.2)


def test_is_ideal():
    assert NoiseModel().is_ideal
    assert not NoiseModel(p1=0.01).is_ideal
    assert not NoiseModel(readout=0.01).is_ideal


def test_error_probability_by_arity():
    model = NoiseModel(p1=0.01, p2=0.05)
    assert model.error_probability(1) == 0.01
    assert model.error_probability(2) == 0.05
    with pytest.raises(ValueError):
        model.error_probability(3)


def test_scaled_multiplies_and_clamps():
    model = NoiseModel(p1=0.4, p2=0.3, readout=0.2)
    scaled = model.scaled(3.0)
    assert scaled.p1 == 1.0  # clamped
    assert scaled.p2 == pytest.approx(0.9)
    assert scaled.readout == pytest.approx(0.6)


def test_global_depolarizing_factor_ideal_is_one():
    qc = QuantumCircuit(2).h(0).cx(0, 1)
    assert global_depolarizing_factor(qc, NoiseModel()) == 1.0


def test_global_depolarizing_factor_decreases_with_gates():
    noise = NoiseModel(p1=0.01, p2=0.02)
    short = QuantumCircuit(2).h(0)
    long = QuantumCircuit(2).h(0).cx(0, 1).cx(0, 1).h(1)
    assert global_depolarizing_factor(long, noise) < global_depolarizing_factor(
        short, noise
    )


def test_global_depolarizing_factor_formula():
    noise = NoiseModel(p1=0.003, p2=0.007)
    qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
    expected = (1 - 4 * 0.003 / 3) ** 2 * (1 - 16 * 0.007 / 15)
    assert global_depolarizing_factor(qc, noise) == pytest.approx(expected)


def test_global_depolarizing_factor_nonnegative():
    noise = NoiseModel(p1=0.9, p2=0.99)
    qc = QuantumCircuit(2)
    for _ in range(50):
        qc.cx(0, 1)
    assert global_depolarizing_factor(qc, noise) >= 0.0


def test_readout_confusion_matrix_is_stochastic():
    matrix = readout_confusion_matrix(3, 0.05)
    assert matrix.shape == (8, 8)
    assert np.allclose(matrix.sum(axis=0), 1.0)
    assert np.all(matrix >= 0.0)


def test_apply_readout_noise_matches_matrix():
    rng = np.random.default_rng(0)
    probs = rng.dirichlet(np.ones(8))
    fast = apply_readout_noise_to_probabilities(probs, 0.07)
    reference = readout_confusion_matrix(3, 0.07) @ probs
    assert np.allclose(fast, reference)


def test_apply_readout_noise_zero_is_identity():
    probs = np.array([0.25, 0.75])
    assert apply_readout_noise_to_probabilities(probs, 0.0) is probs


@given(p=st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=20)
def test_apply_readout_noise_preserves_normalisation(p):
    rng = np.random.default_rng(1)
    probs = rng.dirichlet(np.ones(4))
    noisy = apply_readout_noise_to_probabilities(probs, p)
    assert noisy.sum() == pytest.approx(1.0)
    assert np.all(noisy >= 0.0)
