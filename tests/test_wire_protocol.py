"""Wire-protocol v2 conformance + fuzz suite (``pytest -m protocol``).

Three gates on the network front of
:class:`~repro.service.daemon.LandscapeDaemon`:

- **golden round-trip vectors** — one pinned request/response pair per
  v2 op, stored in ``tests/fixtures/wire_protocol_v2.json``.  The test
  replays each request against a live TCP daemon and compares the
  response's key set and pinned payload fields, so any change to the
  wire format (a renamed field, a reshaped array codec, a different
  cache key) fails loudly instead of drifting silently.  Regenerate
  after an *intentional* format change with::

      PYTHONPATH=src python tests/test_wire_protocol.py --regen

- **fuzz** — hypothesis-generated malformed / truncated / oversized /
  wrong-version / wrong-type frames against a live daemon.  Every frame
  must come back as a structured ``{"ok": false, "error": {code}}``
  response, and afterwards the daemon must still answer a ping with an
  empty in-flight table — no hang, no crash, no leaked flight.

- **no pickle on the TCP path** — greps the v2 dispatch table (and
  every helper it reaches) for ``pickle``: the network front must never
  unpickle attacker-controlled bytes.
"""

from __future__ import annotations

import inspect
import json
import socket
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import protocol as protocol_module
from repro.service.daemon import V2_OPS, LandscapeDaemon
from repro.service.protocol import ERROR_CODES, decode_array

pytestmark = pytest.mark.protocol

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "wire_protocol_v2.json"

GOLDEN_TOKEN = "golden-token"
FUZZ_TOKEN = "fuzz-token-7f3a9c"
FUZZ_MAX_PAYLOAD = 4096

#: The compute cost function / grid all golden vectors share: 3-qubit
#: p=1 QAOA on a fixed ring, 4x4 grid — small enough that the whole
#: golden replay takes well under a second.
GOLDEN_FUNCTION = {
    "kind": "ansatz",
    "ansatz": {
        "type": "qaoa",
        "p": 1,
        "num_qubits": 3,
        "problem": {
            "couplings": [[0, 1, 1.0], [0, 2, 1.0], [1, 2, 1.0]],
            "fields": [],
            "offset": 0.0,
        },
    },
    "noise": None,
    "shots": None,
}
GOLDEN_GRID = [
    {"name": "gamma", "low": 0.0, "high": 1.0, "num_points": 4},
    {"name": "beta", "low": 0.0, "high": 1.0, "num_points": 4},
]


def _b64_batch() -> dict:
    from repro.service.protocol import encode_array

    return encode_array(
        np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]], dtype=float)
    )


def golden_requests() -> list[dict]:
    """The pinned request sequence, one frame per v2 op (in replay
    order: ``compute`` primes the store entries that ``get`` /
    ``index`` / ``compute_indices`` / ``invalidate`` then exercise).
    ``shutdown`` is replayed last against a throwaway daemon."""
    base = {"version": 2, "token": GOLDEN_TOKEN}
    return [
        {**base, "op": "ping"},
        {**base, "op": "stats"},
        {
            **base,
            "op": "evaluate",
            "ansatz": GOLDEN_FUNCTION["ansatz"],
            "batch": _b64_batch(),
            "noise": {"p1": 0.002, "p2": 0.006, "readout": 0.0},
            "shots": None,
            "rng": None,
        },
        {
            **base,
            "op": "compute",
            "function": GOLDEN_FUNCTION,
            "grid": GOLDEN_GRID,
            "batch_size": None,
            "seed": None,
            "shard_points": None,
            "label": "golden",
        },
        {
            **base,
            "op": "compute_indices",
            "function": GOLDEN_FUNCTION,
            "grid": GOLDEN_GRID,
            "indices": [0, 3, 7, 15, 2],
            "batch_size": None,
            "seed": None,
            "shard_points": None,
            "rng": None,
        },
        {**base, "op": "index"},
        {**base, "op": "get", "key": "__KEY__"},
        {
            **base,
            "op": "pipeline",
            "function": GOLDEN_FUNCTION,
            "grid": GOLDEN_GRID,
            "config": {
                "fraction": 0.5,
                "sampler": "uniform",
                "reconstruction": None,
                "optimizer": "cobyla",
                "optimizer_options": {"maxiter": 5},
                "initial_point": None,
                "label": "golden-pipeline",
            },
            "sample_rng": 7,
            "batch_size": None,
            "seed": None,
            "shard_points": None,
            "rng": None,
        },
        {**base, "op": "invalidate", "key": "__KEY__"},
        {**base, "op": "shutdown"},
    ]


#: Response fields pinned verbatim per op (everything else is checked
#: by key-set only — pids, uptimes and timings are legitimately
#: volatile, landscape blobs are pinned by decoded values instead).
PIN_FIELDS = {
    "ping": ["workers", "tenant", "protocol"],
    "stats": [],
    "evaluate": ["values", "rng"],
    "compute": ["key", "hit", "deduped", "__landscape_values__"],
    "compute_indices": ["values", "rng", "readthrough", "deduped"],
    "index": ["__entry_keys__"],
    "get": ["__landscape_values__"],
    "pipeline": ["report", "optimization", "flat_indices", "values", "key"],
    "invalidate": ["removed"],
    "shutdown": ["stopping"],
}


# -- live-daemon plumbing -----------------------------------------------------


def _start_daemon(tmp_path: Path, **overrides) -> LandscapeDaemon:
    tmp_path.mkdir(parents=True, exist_ok=True)
    tokens = tmp_path / "tokens.json"
    tokens.write_text(json.dumps({"golden": GOLDEN_TOKEN, "fuzz": FUZZ_TOKEN}))
    kwargs = dict(
        workers=1,
        shard_points=2,
        cache_dir=tmp_path / "cache",
        tcp=("127.0.0.1", 0),
        tokens_file=tokens,
    )
    kwargs.update(overrides)
    daemon = LandscapeDaemon(tmp_path / "daemon.sock", **kwargs)
    daemon.start()
    return daemon


def _roundtrip(address: tuple[str, int], frame: bytes, timeout: float = 30.0) -> bytes:
    """One frame out, one line (possibly empty = closed) back."""
    with socket.create_connection(address, timeout=timeout) as connection:
        connection.sendall(frame + b"\n")
        with connection.makefile("rb") as stream:
            return stream.readline()


def _request(address: tuple[str, int], message: dict) -> dict:
    line = _roundtrip(address, json.dumps(message).encode("utf-8"))
    assert line, "daemon closed the connection without answering"
    return json.loads(line)


# -- golden vectors -----------------------------------------------------------


def _is_array_codec(value) -> bool:
    return isinstance(value, dict) and set(value) == {"dtype", "shape", "data"}


def _tolerant_equal(actual, pinned, path: str) -> None:
    if _is_array_codec(pinned):
        assert _is_array_codec(actual), f"{path}: expected an array codec"
        np.testing.assert_allclose(
            decode_array(actual),
            decode_array(pinned),
            rtol=0.0,
            atol=1e-9,
            err_msg=f"{path}: array payload drifted",
        )
        assert actual["dtype"] == pinned["dtype"], f"{path}: dtype drifted"
        return
    if isinstance(pinned, dict):
        assert isinstance(actual, dict) and set(actual) == set(pinned), (
            f"{path}: keys {sorted(actual) if isinstance(actual, dict) else actual!r}"
            f" != pinned {sorted(pinned)}"
        )
        for name, value in pinned.items():
            _tolerant_equal(actual[name], value, f"{path}.{name}")
        return
    if isinstance(pinned, list):
        assert isinstance(actual, list) and len(actual) == len(pinned), (
            f"{path}: length drifted"
        )
        for index, value in enumerate(pinned):
            _tolerant_equal(actual[index], value, f"{path}[{index}]")
        return
    if isinstance(pinned, float):
        assert actual == pytest.approx(pinned, abs=1e-9), f"{path}: {actual} != {pinned}"
        return
    assert actual == pinned, f"{path}: {actual!r} != {pinned!r}"


def _landscape_values(response: dict) -> list:
    from repro.landscape.landscape import Landscape
    from repro.service.daemon import decode_blob

    blob = response["landscape"]
    assert blob is not None, "expected a landscape payload"
    return np.asarray(Landscape.from_bytes(decode_blob(blob)).values).tolist()


def _extract_pins(op: str, response: dict) -> dict:
    pins = {}
    for field in PIN_FIELDS[op]:
        if field == "__landscape_values__":
            pins[field] = _landscape_values(response)
        elif field == "__entry_keys__":
            pins[field] = [entry["key"] for entry in response["entries"]]
        else:
            pins[field] = response[field]
    return pins


def _check_pins(op: str, actual_pins: dict, expected_pins: dict) -> None:
    assert set(actual_pins) == set(expected_pins), f"{op}: pin set drifted"
    for field, pinned in expected_pins.items():
        if field == "__landscape_values__":
            np.testing.assert_allclose(
                actual_pins[field], pinned, rtol=0.0, atol=1e-9,
                err_msg=f"{op}: landscape payload drifted",
            )
        else:
            _tolerant_equal(actual_pins[field], pinned, f"{op}.{field}")


def _replay(tmp_path: Path, record: bool) -> list[dict]:
    """Run the golden sequence; return ``[{op, request, response_keys,
    pins}]`` (recording) or compare against the fixture (checking)."""
    daemon = _start_daemon(tmp_path)
    results = []
    key = None
    try:
        for request in golden_requests():
            op = request["op"]
            if op == "shutdown":
                continue  # replayed against its own daemon below
            sent = json.loads(json.dumps(request).replace("__KEY__", key or ""))
            response = _request(daemon.tcp_address, sent)
            assert response.get("ok") is True, f"{op}: {response}"
            assert response.get("version") == 2, f"{op}: missing version echo"
            if op == "compute":
                key = response["key"]
            results.append(
                {
                    "op": op,
                    "request": sent,
                    "response_keys": sorted(response),
                    "pins": _extract_pins(op, response),
                }
            )
    finally:
        daemon.close()

    shutdown_daemon = _start_daemon(tmp_path / "shutdown")
    request = golden_requests()[-1]
    response = _request(shutdown_daemon.tcp_address, request)
    shutdown_daemon.close()
    assert response.get("ok") is True
    results.append(
        {
            "op": "shutdown",
            "request": request,
            "response_keys": sorted(response),
            "pins": _extract_pins("shutdown", response),
        }
    )
    return results


def test_golden_vectors_roundtrip(tmp_path):
    """Every v2 op answers exactly its pinned wire shape."""
    assert FIXTURE_PATH.exists(), (
        f"{FIXTURE_PATH} missing — generate it with "
        "`PYTHONPATH=src python tests/test_wire_protocol.py --regen`"
    )
    pinned = json.loads(FIXTURE_PATH.read_text())
    live = _replay(tmp_path, record=True)
    assert [entry["op"] for entry in live] == [entry["op"] for entry in pinned]
    assert set(PIN_FIELDS) == {entry["op"] for entry in pinned}, (
        "every v2 op needs a golden vector"
    )
    for expected, actual in zip(pinned, live):
        op = expected["op"]
        assert actual["response_keys"] == expected["response_keys"], (
            f"{op}: response key set drifted "
            f"({actual['response_keys']} != {expected['response_keys']})"
        )
        _check_pins(op, actual["pins"], expected["pins"])


def test_golden_vectors_cover_every_v2_op():
    pinned = json.loads(FIXTURE_PATH.read_text())
    assert {entry["op"] for entry in pinned} == set(V2_OPS)


# -- fuzz ---------------------------------------------------------------------

_FUZZ_RUNTIME: dict = {}


def _fuzz_daemon() -> LandscapeDaemon:
    """A long-lived daemon shared by all fuzz examples (hypothesis
    reruns the test body hundreds of times; one daemon keeps the suite
    fast and — deliberately — accumulates all the abuse)."""
    if "daemon" not in _FUZZ_RUNTIME:
        import atexit
        import tempfile

        root = Path(tempfile.mkdtemp(prefix="oscar-fuzz-"))
        daemon = _start_daemon(
            root,
            max_payload_bytes=FUZZ_MAX_PAYLOAD,
            idle_timeout=5.0,
            cache_dir=None,
        )
        atexit.register(daemon.close)
        _FUZZ_RUNTIME["daemon"] = daemon
    return _FUZZ_RUNTIME["daemon"]


def _no_newline(raw: bytes) -> bytes:
    cleaned = raw.replace(b"\n", b"\xff").replace(b"\r", b"\xfe")
    return cleaned if cleaned.strip() else b"\xff"


_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

_field_soup = st.fixed_dictionaries(
    {},
    optional={
        "version": st.one_of(
            _json_scalars, st.just(2), st.integers(min_value=-5, max_value=99)
        ),
        "op": st.one_of(
            _json_scalars,
            st.sampled_from(sorted(V2_OPS) + ["evaluate_pickle", "", "_op_ping"]),
        ),
        "token": _json_scalars.filter(lambda v: v != FUZZ_TOKEN),
        "key": _json_scalars,
        "indices": st.one_of(_json_scalars, st.lists(_json_scalars, max_size=4)),
        "batch": _json_scalars,
        "grid": st.one_of(_json_scalars, st.lists(_json_scalars, max_size=3)),
        "function": _json_scalars,
        "ansatz": _json_scalars,
        "task": _json_scalars,
        "rng": _json_scalars,
        "shots": _json_scalars,
    },
)


def _encode(value) -> bytes:
    return _no_newline(json.dumps(value).encode("utf-8"))


_frames = st.one_of(
    # raw junk bytes (never valid JSON headers, often invalid UTF-8)
    st.binary(min_size=1, max_size=200).map(_no_newline),
    # valid JSON that is not an object
    _json_scalars.map(_encode),
    st.lists(_json_scalars, max_size=4).map(_encode),
    # objects with systematically wrong / missing / mistyped fields
    _field_soup.map(_encode),
    # truncated frames (cut mid-JSON)
    _field_soup.map(lambda d: _no_newline(json.dumps(d).encode()[: max(1, len(json.dumps(d)) // 2)])),
    # oversized frames (beyond the fuzz daemon's max_payload_bytes)
    st.just(b"A" * (FUZZ_MAX_PAYLOAD + 64)),
    st.builds(
        lambda pad: _encode({"version": 2, "op": "ping", "pad": pad}),
        st.just("B" * (FUZZ_MAX_PAYLOAD + 64)),
    ),
)


@settings(
    max_examples=250,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(frame=_frames)
def test_fuzzed_frames_always_yield_structured_errors(frame):
    """Any hostile frame gets a structured error; the server survives.

    The three-part invariant per example: (1) the daemon answers with
    ``ok: false`` and a registered error ``code`` (it never just drops
    the connection silently, never crashes, never hangs); (2) a
    follow-up authenticated ping on a fresh connection succeeds; (3)
    the in-flight table is empty — no fuzz frame can leak a flight.
    """
    daemon = _fuzz_daemon()
    line = _roundtrip(daemon.tcp_address, frame, timeout=30.0)
    assert line, f"daemon closed without a structured error for {frame[:60]!r}"
    response = json.loads(line)
    assert response.get("ok") is False, f"fuzz frame accepted: {frame[:60]!r}"
    error = response.get("error") or {}
    assert error.get("code") in ERROR_CODES, f"unregistered code in {response}"
    assert isinstance(error.get("message"), str) and error["message"]

    alive = _request(
        daemon.tcp_address, {"version": 2, "op": "ping", "token": FUZZ_TOKEN}
    )
    assert alive.get("ok") is True, "daemon stopped serving after a fuzz frame"
    assert daemon._inflight == {}, "fuzz frame leaked an in-flight entry"


def test_fuzz_daemon_counters_saw_the_abuse():
    """Ordering shim: runs after the fuzz test (pytest executes in file
    order) and pins that the errors counter actually moved — i.e. the
    fuzz frames reached the dispatch path rather than dying in
    transport limbo."""
    daemon = _fuzz_daemon()
    stats = _request(
        daemon.tcp_address, {"version": 2, "op": "stats", "token": FUZZ_TOKEN}
    )
    assert stats["counters"]["errors"] >= 100


# -- the no-pickle gate -------------------------------------------------------


def _reachable_sources() -> dict[str, str]:
    """Source text of every function a TCP request can reach: the whole
    v2 dispatch table, the transport/dispatch layer above it, the
    compute helpers below it, and the spec-registry module."""
    sources = {
        f"V2_OPS[{name!r}]": inspect.getsource(handler)
        for name, handler in V2_OPS.items()
    }
    for name in (
        "handle_line",
        "_handle_v2",
        "_authenticate",
        "_error_payload",
        "_v2_rng",
        "_v2_generator",
        "_v2_spec_for",
        "_int_field",
        "_sparse_values",
        "_sparse_identity",
        "_single_flight",
        "_tcp_serve",
        "_tcp_connection",
        "_tcp_session",
        "_tcp_send",
    ):
        sources[f"LandscapeDaemon.{name}"] = inspect.getsource(
            getattr(LandscapeDaemon, name)
        )
    sources["repro.service.protocol"] = inspect.getsource(protocol_module)
    return sources


def test_no_pickle_reachable_from_tcp_request_path():
    """``pickle`` must be unreachable from any v2 (and therefore any
    TCP) request: the legacy codec lives exclusively behind the
    unversioned Unix-socket dispatch.  (Docstrings may *mention*
    pickle — what must never appear is a call or an import.)"""
    for name, source in _reachable_sources().items():
        for needle in ("pickle.loads", "pickle.load(", "pickle.dumps",
                       "import pickle", "cPickle", "pickle.Unpickler"):
            assert needle not in source, f"{needle} reachable via {name}"
    # ... and v2 never routes into the v1 handler table.
    v2_dispatch = inspect.getsource(LandscapeDaemon._handle_v2)
    assert "_op_" not in v2_dispatch and "_handle_v1" not in v2_dispatch


def test_v2_table_is_the_only_tcp_dispatch():
    """The TCP session hands every frame to ``handle_line`` with
    ``transport="tcp"``, and that transport can only reach ``V2_OPS``
    (unversioned frames raise before any handler runs)."""
    session = inspect.getsource(LandscapeDaemon._tcp_session)
    assert '"tcp"' in session and "handle_line" in session
    dispatch = inspect.getsource(LandscapeDaemon.handle_line)
    assert 'transport != "unix"' in dispatch


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        raise SystemExit(
            "usage: PYTHONPATH=src python tests/test_wire_protocol.py --regen"
        )
    import tempfile

    with tempfile.TemporaryDirectory(prefix="oscar-golden-") as tmp:
        vectors = _replay(Path(tmp), record=True)
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(vectors, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(vectors)} golden vectors to {FIXTURE_PATH}")
