"""Tests for the basis-choice extension (DCT vs DST)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cs import (
    BASES,
    ReconstructionConfig,
    dst_transform,
    idst_transform,
    inverse_transform,
    reconstruct_signal,
    reconstruction_operators,
    transform,
)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_dst_roundtrip(seed):
    rng = np.random.default_rng(seed)
    signal = rng.normal(size=(7, 9))
    assert np.allclose(idst_transform(dst_transform(signal)), signal)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_dst_preserves_energy(seed):
    rng = np.random.default_rng(seed)
    signal = rng.normal(size=40)
    assert np.sum(signal**2) == pytest.approx(np.sum(dst_transform(signal) ** 2))


@pytest.mark.parametrize("basis", BASES)
def test_generic_transform_dispatch(basis):
    rng = np.random.default_rng(0)
    signal = rng.normal(size=(5, 6))
    assert np.allclose(inverse_transform(transform(signal, basis), basis), signal)


def test_unknown_basis_raises():
    with pytest.raises(ValueError):
        transform(np.ones(4), basis="wavelet")
    with pytest.raises(ValueError):
        ReconstructionConfig(basis="wavelet")


@pytest.mark.parametrize("basis", BASES)
def test_operator_adjoint_identity_per_basis(basis):
    shape = (8, 10)
    rng = np.random.default_rng(1)
    indices = np.sort(rng.choice(80, size=25, replace=False))
    forward, adjoint = reconstruction_operators(shape, indices, basis)
    s = rng.normal(size=shape)
    y = rng.normal(size=25)
    assert float(forward(s) @ y) == pytest.approx(float(np.sum(s * adjoint(y))))


def test_dst_recovers_dst_sparse_signal():
    shape = (10, 10)
    rng = np.random.default_rng(2)
    coefficients = np.zeros(100)
    coefficients[rng.choice(100, 3, replace=False)] = rng.normal(size=3) * 4
    signal = idst_transform(coefficients.reshape(shape))
    indices = np.sort(rng.choice(100, size=45, replace=False))
    recovered, _ = reconstruct_signal(
        shape,
        indices,
        signal.reshape(-1)[indices],
        ReconstructionConfig(basis="dst", max_iterations=1000),
    )
    error = np.linalg.norm(recovered - signal) / np.linalg.norm(signal)
    assert error < 0.05


def test_dct_beats_dst_on_nonzero_boundary_landscape(qaoa6, medium_grid):
    """VQA landscapes have non-zero boundaries, violating the DST's
    implicit odd extension — the DCT should reconstruct better (the
    DESIGN.md basis ablation, asserted at test scale)."""
    from repro.landscape import LandscapeGenerator, OscarReconstructor, cost_function, nrmse

    generator = LandscapeGenerator(cost_function(qaoa6), medium_grid)
    truth = generator.grid_search()
    errors = {}
    for basis in BASES:
        oscar = OscarReconstructor(
            medium_grid, config=ReconstructionConfig(basis=basis), rng=3
        )
        reconstruction, _ = oscar.reconstruct(generator, 0.10)
        errors[basis] = nrmse(truth.values, reconstruction.values)
    assert errors["dct"] < errors["dst"]


def test_bp_solver_rejects_non_dct_basis():
    with pytest.raises(ValueError):
        reconstruct_signal(
            (4, 4),
            np.array([0, 1]),
            np.array([1.0, 2.0]),
            ReconstructionConfig(solver="bp", basis="dst"),
        )
