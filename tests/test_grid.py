"""Tests for parameter grids (including the paper's Table 1 shapes)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.landscape import GridAxis, ParameterGrid, qaoa_grid


def test_axis_validation():
    with pytest.raises(ValueError):
        GridAxis("x", 0.0, 1.0, 1)
    with pytest.raises(ValueError):
        GridAxis("x", 1.0, 0.0, 5)


def test_axis_values_and_step():
    axis = GridAxis("x", 0.0, 1.0, 5)
    assert np.allclose(axis.values, [0.0, 0.25, 0.5, 0.75, 1.0])
    assert axis.step == pytest.approx(0.25)


def test_grid_needs_axes():
    with pytest.raises(ValueError):
        ParameterGrid([])


def test_table1_p1_grid():
    """Paper Table 1: p=1 is 50 x 100 = 5k points over the stated ranges."""
    grid = qaoa_grid(p=1)
    assert grid.shape == (50, 100)
    assert grid.size == 5000
    assert grid.axes[0].low == pytest.approx(-math.pi / 4)
    assert grid.axes[0].high == pytest.approx(math.pi / 4)
    assert grid.axes[1].low == pytest.approx(-math.pi / 2)
    assert grid.axes[1].high == pytest.approx(math.pi / 2)


def test_table1_p2_grid():
    """Paper Table 1: p=2 is 12^2 x 15^2 = 32.4k points."""
    grid = qaoa_grid(p=2)
    assert grid.shape == (12, 12, 15, 15)
    assert grid.size == 32400
    assert grid.axes[0].low == pytest.approx(-math.pi / 8)
    assert grid.axes[2].low == pytest.approx(-math.pi / 4)


def test_qaoa_grid_custom_resolution_and_ranges():
    grid = qaoa_grid(p=1, resolution=(10, 20), beta_range=(-1, 1), gamma_range=(0, 2))
    assert grid.shape == (10, 20)
    assert grid.axes[0].low == -1
    assert grid.axes[1].high == 2


def test_qaoa_grid_p_validation():
    with pytest.raises(ValueError):
        qaoa_grid(p=0)


def test_point_and_flat_roundtrip():
    grid = qaoa_grid(p=1, resolution=(5, 7))
    for flat in (0, 6, 17, 34):
        point = grid.point_from_flat(flat)
        assert grid.nearest_flat_index(point) == flat


def test_points_from_flat_vectorised():
    grid = qaoa_grid(p=1, resolution=(5, 7))
    flats = np.array([0, 3, 20])
    batch = grid.points_from_flat(flats)
    assert batch.shape == (3, 2)
    for row, flat in zip(batch, flats):
        assert np.allclose(row, grid.point_from_flat(flat))


def test_point_arity_validation():
    grid = qaoa_grid(p=1, resolution=(5, 7))
    with pytest.raises(ValueError):
        grid.point([1])
    with pytest.raises(ValueError):
        grid.nearest_flat_index([0.1])


def test_iter_points_covers_grid():
    grid = qaoa_grid(p=1, resolution=(3, 4))
    points = list(grid.iter_points())
    assert len(points) == 12
    assert points[0][0] == 0
    assert points[-1][0] == 11


def test_validate_flat_indices_accepts_in_range():
    grid = qaoa_grid(p=1, resolution=(5, 7))
    flat = grid.validate_flat_indices([0, 34, 7])
    assert flat.dtype == np.int64
    np.testing.assert_array_equal(flat, [0, 34, 7])
    assert grid.validate_flat_indices([]).size == 0


def test_validate_flat_indices_rejects_negative():
    """Negative flat indices would silently wrap to the end of the
    grid under fancy indexing — they must raise instead."""
    grid = qaoa_grid(p=1, resolution=(5, 7))
    with pytest.raises(ValueError, match="negative"):
        grid.validate_flat_indices([3, -1, 5])
    from repro.landscape import validate_flat_indices

    with pytest.raises(ValueError, match="negative"):
        validate_flat_indices(35, [-35])


def test_validate_flat_indices_rejects_out_of_range():
    grid = qaoa_grid(p=1, resolution=(5, 7))
    with pytest.raises(ValueError, match="out of range"):
        grid.validate_flat_indices([0, grid.size])
    with pytest.raises(ValueError, match="out of range"):
        grid.validate_flat_indices([10**9])


def test_generator_evaluate_indices_validates():
    from repro.landscape import LandscapeGenerator

    grid = qaoa_grid(p=1, resolution=(5, 7))
    generator = LandscapeGenerator(lambda point: 0.0, grid)
    with pytest.raises(ValueError, match="negative"):
        generator.evaluate_indices([-2])
    with pytest.raises(ValueError, match="out of range"):
        generator.local_evaluate_indices([grid.size + 3])


def test_bounds():
    grid = qaoa_grid(p=1, resolution=(5, 7))
    assert grid.bounds == [
        (-math.pi / 4, math.pi / 4),
        (-math.pi / 2, math.pi / 2),
    ]


def test_reshaped_2d_identity_for_2d():
    grid = qaoa_grid(p=1, resolution=(5, 7))
    assert grid.reshaped_2d_shape() == (5, 7)


def test_reshaped_2d_concatenates_4d():
    """The paper's (12, 12, 15, 15) -> (144, 225) reshape."""
    grid = qaoa_grid(p=2)
    assert grid.reshaped_2d_shape() == (144, 225)


def test_reshaped_2d_odd_dims_balanced_split():
    grid = ParameterGrid([GridAxis("a", 0, 1, 3)] * 3)
    assert grid.reshaped_2d_shape() == (9, 3)


def test_reshaped_2d_one_dim_raises():
    grid = ParameterGrid([GridAxis("a", 0, 1, 5)])
    with pytest.raises(ValueError):
        grid.reshaped_2d_shape()


def test_nearest_flat_index_snaps():
    grid = qaoa_grid(p=1, resolution=(5, 7))
    beta = grid.axes[0].values[2] + 0.3 * grid.axes[0].step
    gamma = grid.axes[1].values[4] - 0.2 * grid.axes[1].step
    flat = grid.nearest_flat_index([beta, gamma])
    assert np.unravel_index(flat, grid.shape) == (2, 4)
