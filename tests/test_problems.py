"""Tests for the problem library: Ising, MaxCut, SK, chemistry."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import (
    IsingProblem,
    cut_value,
    h2_hamiltonian,
    lih_hamiltonian,
    maxcut_from_graph,
    mesh_maxcut,
    random_3_regular_maxcut,
    random_regular_graph,
    sk_problem,
)


# -- IsingProblem -----------------------------------------------------------


def test_ising_validation():
    with pytest.raises(ValueError):
        IsingProblem(0, ())
    with pytest.raises(ValueError):
        IsingProblem(2, ((1, 0, 1.0),))  # i must be < j
    with pytest.raises(ValueError):
        IsingProblem(2, ((0, 5, 1.0),))
    with pytest.raises(ValueError):
        IsingProblem(2, (), fields=((7, 1.0),))


def test_from_dicts_normalises_pair_order():
    problem = IsingProblem.from_dicts(3, {(2, 0): 1.5})
    assert problem.couplings == ((0, 2, 1.5),)


def test_from_dicts_rejects_self_coupling():
    with pytest.raises(ValueError):
        IsingProblem.from_dicts(2, {(1, 1): 1.0})


def test_cost_diagonal_matches_pointwise():
    problem = IsingProblem.from_dicts(
        3, {(0, 1): 1.0, (1, 2): -0.5}, fields={0: 0.25}, offset=0.1
    )
    diagonal = problem.cost_diagonal()
    for index in range(8):
        assert diagonal[index] == pytest.approx(problem.cost_of_bitstring(index))


def test_cost_of_bitstring_label_and_index_agree():
    problem = IsingProblem.from_dicts(2, {(0, 1): 1.0})
    # Label "10": char 0 -> qubit 1 ... int("10",2)=2 -> bit0=0,bit1=1.
    assert problem.cost_of_bitstring("10") == problem.cost_of_bitstring(2)


def test_to_pauli_sum_diagonal_matches_cost():
    problem = IsingProblem.from_dicts(
        3, {(0, 2): 0.7, (0, 1): -0.4}, fields={2: 0.3}, offset=-0.2
    )
    assert np.allclose(problem.to_pauli_sum().diagonal(), problem.cost_diagonal())


def test_optimal_cost_is_min():
    problem = IsingProblem.from_dicts(3, {(0, 1): 1.0, (1, 2): 1.0})
    assert problem.optimal_cost() == problem.cost_diagonal().min()


@given(seed=st.integers(0, 30))
@settings(max_examples=10, deadline=None)
def test_ising_spin_flip_symmetry(seed):
    """Pure coupling problems are invariant under global spin flip."""
    problem = sk_problem(4, seed=seed)
    diagonal = problem.cost_diagonal()
    flipped = diagonal[::-1]  # index complement = flip all bits
    assert np.allclose(diagonal, flipped)


# -- MaxCut ------------------------------------------------------------------


def test_maxcut_needs_two_nodes():
    with pytest.raises(ValueError):
        maxcut_from_graph(nx.Graph())


def test_maxcut_cost_relates_to_cut_value():
    """cost(z) = W/2 - cut(z) where W is total edge weight."""
    graph = nx.cycle_graph(4)
    problem = maxcut_from_graph(graph)
    total_weight = graph.number_of_edges()
    for index in range(16):
        assignment = {node: (index >> node) & 1 for node in graph.nodes()}
        cut = cut_value(graph, assignment)
        assert problem.cost_of_bitstring(index) == pytest.approx(
            total_weight / 2.0 - cut
        )


def test_maxcut_optimal_on_even_cycle():
    """An even cycle is bipartite: the max cut uses every edge."""
    problem = maxcut_from_graph(nx.cycle_graph(6))
    # cost = W/2 - cut; best cut = 6 edges, W/2 = 3 -> optimal cost -3.
    assert problem.optimal_cost() == pytest.approx(-3.0)


def test_random_regular_graph_degree():
    graph = random_regular_graph(3, 8, seed=0)
    assert all(degree == 3 for _, degree in graph.degree())


def test_random_regular_graph_parity_check():
    with pytest.raises(ValueError):
        random_regular_graph(3, 5, seed=0)


def test_random_3_regular_maxcut_is_seed_deterministic():
    a = random_3_regular_maxcut(8, seed=3)
    b = random_3_regular_maxcut(8, seed=3)
    assert a.couplings == b.couplings


def test_mesh_maxcut_grid_structure():
    problem = mesh_maxcut(2, 3)
    assert problem.num_qubits == 6
    # 2x3 grid has 7 edges.
    assert len(problem.couplings) == 7


def test_weighted_graph_weights_carry_through():
    graph = nx.Graph()
    graph.add_edge(0, 1, weight=2.0)
    problem = maxcut_from_graph(graph)
    assert problem.couplings == ((0, 1, 1.0),)  # weight / 2


# -- SK model -----------------------------------------------------------------


def test_sk_is_fully_connected():
    problem = sk_problem(5, seed=0)
    assert len(problem.couplings) == 10


def test_sk_coupling_magnitudes_pm1():
    problem = sk_problem(6, seed=1)
    scale = 1.0 / np.sqrt(6)
    for _, _, weight in problem.couplings:
        assert abs(weight) == pytest.approx(scale)


def test_sk_gaussian_variant():
    problem = sk_problem(6, seed=1, couplings="gaussian")
    weights = [w for _, _, w in problem.couplings]
    assert len(set(np.abs(weights))) > 1


def test_sk_unknown_scheme_raises():
    with pytest.raises(ValueError):
        sk_problem(4, couplings="cauchy")


def test_sk_needs_two_spins():
    with pytest.raises(ValueError):
        sk_problem(1)


def test_sk_seed_determinism():
    a = sk_problem(5, seed=9)
    b = sk_problem(5, seed=9)
    assert a.couplings == b.couplings


# -- Chemistry -----------------------------------------------------------------


def test_h2_hamiltonian_structure():
    hamiltonian = h2_hamiltonian()
    assert hamiltonian.num_qubits == 2
    labels = {term.label for term in hamiltonian}
    assert {"II", "ZI", "IZ", "ZZ", "XX", "YY"} == labels


def test_h2_ground_energy_near_literature():
    """O'Malley et al. report ~-1.85 Ha total at equilibrium."""
    energy = h2_hamiltonian().ground_energy()
    assert -1.90 < energy < -1.80


def test_h2_matrix_is_hermitian():
    matrix = h2_hamiltonian().matrix()
    assert np.allclose(matrix, matrix.conj().T)


def test_lih_hamiltonian_structure():
    hamiltonian = lih_hamiltonian()
    assert hamiltonian.num_qubits == 4
    assert len(hamiltonian) > 15
    matrix = hamiltonian.matrix()
    assert np.allclose(matrix, matrix.conj().T)


def test_lih_ground_energy_below_identity_shift():
    """The correlated ground state must be below the bare core energy."""
    hamiltonian = lih_hamiltonian()
    identity_coefficient = next(
        term.coefficient for term in hamiltonian if term.is_identity
    )
    assert hamiltonian.ground_energy() < np.real(identity_coefficient)
