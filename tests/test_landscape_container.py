"""Tests for the Landscape container and its persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.landscape import Landscape, qaoa_grid


@pytest.fixture
def landscape():
    grid = qaoa_grid(p=1, resolution=(6, 8))
    rng = np.random.default_rng(0)
    return Landscape(grid, rng.normal(size=(6, 8)), label="test", circuit_executions=48)


def test_shape_validation():
    grid = qaoa_grid(p=1, resolution=(6, 8))
    with pytest.raises(ValueError):
        Landscape(grid, np.zeros((8, 6)))


def test_flat_view(landscape):
    assert landscape.flat().shape == (48,)
    assert np.allclose(landscape.flat(), landscape.values.reshape(-1))


def test_minimum_and_maximum(landscape):
    min_value, min_point = landscape.minimum()
    max_value, _ = landscape.maximum()
    assert min_value == landscape.values.min()
    assert max_value == landscape.values.max()
    assert landscape.value_at(min_point) == pytest.approx(min_value)


def test_reshaped_2d_on_4d():
    grid = qaoa_grid(p=2, resolution=(3, 4))
    values = np.arange(3 * 3 * 4 * 4, dtype=float).reshape(3, 3, 4, 4)
    landscape = Landscape(grid, values)
    reshaped = landscape.reshaped_2d()
    assert reshaped.shape == (9, 16)
    assert np.allclose(reshaped.reshape(-1), values.reshape(-1))


def test_metric_delegation(landscape):
    assert landscape.variance() == pytest.approx(np.var(landscape.values))
    assert landscape.second_derivative() >= 0.0
    assert landscape.variance_of_gradient() >= 0.0
    assert 0.0 < landscape.dct_sparsity() <= 1.0


def test_nrmse_against_self_is_zero(landscape):
    assert landscape.nrmse_against(landscape) == pytest.approx(0.0)


def test_save_load_roundtrip(landscape, tmp_path):
    path = tmp_path / "landscape.npz"
    landscape.save(path)
    loaded = Landscape.load(path)
    assert np.allclose(loaded.values, landscape.values)
    assert loaded.label == "test"
    assert loaded.circuit_executions == 48
    assert loaded.grid.shape == landscape.grid.shape
    for original, restored in zip(landscape.grid.axes, loaded.grid.axes):
        assert original.name == restored.name
        assert original.low == pytest.approx(restored.low)
        assert original.high == pytest.approx(restored.high)


def test_save_creates_missing_parent_directories(landscape, tmp_path):
    """Nested store/result layouts save without pre-creating dirs, and
    the round trip through the nested path preserves all metadata."""
    path = tmp_path / "store" / "deeply" / "nested" / "landscape.npz"
    assert not path.parent.exists()
    landscape.save(path)
    loaded = Landscape.load(path)
    np.testing.assert_array_equal(loaded.values, landscape.values)
    assert loaded.label == landscape.label
    assert loaded.circuit_executions == landscape.circuit_executions
    assert [axis.name for axis in loaded.grid.axes] == [
        axis.name for axis in landscape.grid.axes
    ]


def test_with_values(landscape):
    other = landscape.with_values(np.zeros_like(landscape.values), label="zeros")
    assert other.label == "zeros"
    assert np.allclose(other.values, 0.0)
    assert other.grid is landscape.grid
