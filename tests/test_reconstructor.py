"""Tests for OscarReconstructor — the headline end-to-end API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import QaoaAnsatz
from repro.cs import ReconstructionConfig
from repro.landscape import (
    LandscapeGenerator,
    OscarReconstructor,
    cost_function,
    nrmse,
    qaoa_grid,
)
from repro.problems import random_3_regular_maxcut


def test_reconstruction_beats_nrmse_bar(ideal_generator, medium_grid):
    """10% sampling on the medium grid must reach NRMSE < 0.1 — the
    regime of the paper's Fig. 4."""
    truth = ideal_generator.grid_search()
    oscar = OscarReconstructor(medium_grid, rng=0)
    reconstruction, report = oscar.reconstruct(ideal_generator, 0.10)
    assert nrmse(truth.values, reconstruction.values) < 0.1
    assert report.speedup > 5.0


def test_error_decreases_with_fraction(ideal_generator, medium_grid):
    truth = ideal_generator.grid_search()
    errors = []
    for fraction in (0.05, 0.10, 0.25):
        oscar = OscarReconstructor(medium_grid, rng=1)
        reconstruction, _ = oscar.reconstruct(ideal_generator, fraction)
        errors.append(nrmse(truth.values, reconstruction.values))
    assert errors[2] < errors[0]


def test_report_accounting(ideal_generator, medium_grid):
    oscar = OscarReconstructor(medium_grid, rng=2)
    reconstruction, report = oscar.reconstruct(ideal_generator, 0.10)
    assert report.grid_size == medium_grid.size
    assert report.num_samples == int(round(0.10 * medium_grid.size))
    assert report.sampling_fraction == pytest.approx(0.10, abs=0.01)
    assert report.speedup == pytest.approx(
        medium_grid.size / report.num_samples
    )
    assert reconstruction.circuit_executions == report.num_samples


def test_reconstruct_from_samples_matches_reconstruct(ideal_generator, medium_grid):
    """Splitting sampling and reconstruction gives identical output."""
    oscar_a = OscarReconstructor(medium_grid, rng=3)
    land_a, _ = oscar_a.reconstruct(ideal_generator, 0.1)
    oscar_b = OscarReconstructor(medium_grid, rng=3)
    indices = oscar_b.sample_indices(0.1)
    values = ideal_generator.evaluate_indices(indices)
    land_b, _ = oscar_b.reconstruct_from_samples(indices, values)
    assert np.allclose(land_a.values, land_b.values)


def test_stratified_sampler_option(ideal_generator, medium_grid):
    truth = ideal_generator.grid_search()
    oscar = OscarReconstructor(medium_grid, sampler="stratified", rng=4)
    reconstruction, _ = oscar.reconstruct(ideal_generator, 0.12)
    assert nrmse(truth.values, reconstruction.values) < 0.15


def test_unknown_sampler_raises(medium_grid):
    with pytest.raises(ValueError):
        OscarReconstructor(medium_grid, sampler="sobol")


def test_mismatched_samples_raise(medium_grid):
    oscar = OscarReconstructor(medium_grid)
    with pytest.raises(ValueError):
        oscar.reconstruct_from_samples(np.array([0, 1]), np.array([1.0]))


def test_p2_reshaped_reconstruction():
    """4-D grids reconstruct through the 2-D concatenation reshape."""
    problem = random_3_regular_maxcut(6, seed=0)
    ansatz = QaoaAnsatz(problem, p=2)
    grid = qaoa_grid(p=2, resolution=(6, 7))
    generator = LandscapeGenerator(cost_function(ansatz), grid)
    truth = generator.grid_search()
    oscar = OscarReconstructor(grid, rng=5)
    reconstruction, report = oscar.reconstruct(generator, 0.25)
    assert reconstruction.values.shape == grid.shape
    error = nrmse(truth.values, reconstruction.values)
    # p=2 reshaping introduces artificial patterns (paper Sec. 4.2.4);
    # accuracy is lower than p=1 but must still be informative.
    assert error < 0.5


def test_rng_seeding_reproducible(ideal_generator, medium_grid):
    land1, _ = OscarReconstructor(medium_grid, rng=7).reconstruct(
        ideal_generator, 0.1
    )
    land2, _ = OscarReconstructor(medium_grid, rng=7).reconstruct(
        ideal_generator, 0.1
    )
    assert np.allclose(land1.values, land2.values)


def test_custom_config_omp_solver(ideal_generator, medium_grid):
    config = ReconstructionConfig(solver="omp", max_atoms=60)
    truth = ideal_generator.grid_search()
    oscar = OscarReconstructor(medium_grid, config=config, rng=8)
    reconstruction, _ = oscar.reconstruct(ideal_generator, 0.15)
    assert nrmse(truth.values, reconstruction.values) < 0.3
