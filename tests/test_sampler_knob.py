"""The ``sampler=`` knob: vectorized multinomial vs parity sampling.

The two samplers draw from the same per-row measurement distribution in
different orders, so they must agree *statistically* (identical means,
matching spread) while only ``"parity"`` reproduces the serial loop
draw for draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import QaoaAnsatz, TwoLocalAnsatz
from repro.landscape import cost_function
from repro.mitigation import ZneConfig, zne_cost_function
from repro.problems import random_3_regular_maxcut, sk_problem
from repro.quantum import NoiseModel


@pytest.fixture
def qaoa():
    return QaoaAnsatz(random_3_regular_maxcut(6, seed=0), p=1)


def test_sampler_value_is_validated(qaoa):
    with pytest.raises(ValueError, match="sampler"):
        qaoa.expectation_many(np.zeros((2, 2)), shots=8, sampler="bogus")
    with pytest.raises(ValueError, match="sampler"):
        cost_function(qaoa, sampler="bogus")
    with pytest.raises(ValueError, match="sampler"):
        zne_cost_function(
            qaoa, NoiseModel(p1=0.001), ZneConfig((1.0, 2.0)), sampler="bogus"
        )


def test_exact_values_ignore_the_sampler(qaoa):
    """Without shots there is nothing to sample: both settings are the
    same deterministic fast path."""
    batch = np.random.default_rng(0).uniform(-np.pi, np.pi, (5, 2))
    np.testing.assert_array_equal(
        qaoa.expectation_many(batch, sampler="parity"),
        qaoa.expectation_many(batch, sampler="multinomial"),
    )


def test_multinomial_matches_parity_statistics(qaoa):
    """Equivalence of statistics: same point replicated across a large
    batch, the two samplers' empirical mean and spread must both match
    the exact expectation within shot-noise tolerance."""
    point = np.array([0.3, -0.7])
    rows = 400
    shots = 256
    batch = np.tile(point, (rows, 1))
    exact = float(qaoa.expectation_many(point[None, :])[0])
    estimates = {}
    for sampler in ("parity", "multinomial"):
        values = qaoa.expectation_many(
            batch,
            shots=shots,
            rng=np.random.default_rng(11),
            sampler=sampler,
        )
        assert values.shape == (rows,)
        estimates[sampler] = values
    # Per-shot spread of the estimator, bounded by the cost range.
    diagonal = qaoa.cost_diagonal
    sigma = float(diagonal.max() - diagonal.min()) / np.sqrt(shots)
    for sampler, values in estimates.items():
        # Mean of 400 estimates: ~20x tighter than one estimate.
        assert abs(values.mean() - exact) < 5 * sigma / np.sqrt(rows), sampler
        assert values.std() < 3 * sigma, sampler
        assert values.std() > 0, sampler
    # Same statistics does not mean same draws: the orders differ.
    assert not np.array_equal(estimates["parity"], estimates["multinomial"])


def test_multinomial_sampler_threads_through_cost_function(qaoa):
    """The AnsatzCostFunction knob reaches the execution layer."""
    batch = np.random.default_rng(1).uniform(-np.pi, np.pi, (6, 2))
    fast = cost_function(
        qaoa, shots=64, rng=np.random.default_rng(3), sampler="multinomial"
    )
    direct = qaoa.expectation_many(
        batch, shots=64, rng=np.random.default_rng(3), sampler="multinomial"
    )
    np.testing.assert_array_equal(fast.many(batch), direct)


def test_multinomial_zne_matches_parity_statistics(qaoa):
    """The knob also reaches the ZNE fast path: both samplers'
    mitigated estimates are unbiased around the exact ZNE value."""
    noise = NoiseModel(p1=0.002, p2=0.005)
    config = ZneConfig((1.0, 2.0), "linear")
    point = np.array([0.4, -0.5])
    rows = 200
    batch = np.tile(point, (rows, 1))
    exact = float(zne_cost_function(qaoa, noise, config).many(point[None, :])[0])
    for sampler in ("parity", "multinomial"):
        function = zne_cost_function(
            qaoa,
            noise,
            config,
            shots=256,
            rng=np.random.default_rng(5),
            sampler=sampler,
        )
        values = function.many(batch)
        diagonal = qaoa.cost_diagonal
        sigma = (
            float(diagonal.max() - diagonal.min())
            / np.sqrt(256)
            * config.noise_amplification
        )
        assert abs(values.mean() - exact) < 5 * sigma / np.sqrt(rows), sampler


def test_gaussian_shot_ansatzes_accept_the_knob():
    """Two-local's Gaussian shot model is already one vectorized block;
    the knob is accepted and a no-op (identical draws either way)."""
    ansatz = TwoLocalAnsatz(sk_problem(4, seed=2).to_pauli_sum(), reps=1)
    batch = np.random.default_rng(2).uniform(-np.pi, np.pi, (4, 8))
    np.testing.assert_array_equal(
        ansatz.expectation_many(
            batch, shots=32, rng=np.random.default_rng(9), sampler="parity"
        ),
        ansatz.expectation_many(
            batch, shots=32, rng=np.random.default_rng(9), sampler="multinomial"
        ),
    )
