"""Batched-vs-serial equivalence across ansatzes, noise and shots.

The full cross product — all three ansatzes (both observable paths) x
noise {off, on, per-row mixed} x shots {off, on} — plus hypothesis-style
randomized circuits.  Every test funnels through
:func:`harness.assert_engines_match`, so registering a new engine in
``harness.ENGINES`` automatically subjects it to this entire matrix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import (
    ansatz_cases,
    assert_engines_match,
    random_noise,
    random_parameter_batch,
    random_qaoa,
    random_twolocal,
    random_uccsd,
)
from repro.quantum import NoiseModel

pytestmark = pytest.mark.equivalence

CASES = ansatz_cases()
NOISE = NoiseModel(p1=0.004, p2=0.009, readout=0.02)


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize(
    "noise", [None, NOISE], ids=["ideal", "noisy"]
)
@pytest.mark.parametrize("shots", [None, 96], ids=["exact", "shots"])
def test_all_ansatzes_noise_shots_matrix(case, noise, shots):
    ansatz = CASES[case]()
    # Stable per-case seed (str hash is randomized per process).
    rng = np.random.default_rng(sorted(CASES).index(case))
    batch = rng.uniform(-np.pi, np.pi, size=(6, ansatz.num_parameters))
    assert_engines_match(ansatz, batch, noise=noise, shots=shots)


@pytest.mark.parametrize("case", ["qaoa-maxcut-p1", "twolocal-sk", "uccsd-h2"])
@pytest.mark.parametrize("shots", [None, 64], ids=["exact", "shots"])
def test_per_row_noise_matches_serial(case, shots):
    """A mixed per-row noise sequence (the batched-ZNE folding shape)
    matches a serial loop with per-row models, draws included."""
    ansatz = CASES[case]()
    rng = np.random.default_rng(7)
    batch = rng.uniform(-np.pi, np.pi, size=(6, ansatz.num_parameters))
    rows = [None, NOISE, NOISE.scaled(2.0), None, NOISE.scaled(3.0), NOISE]
    assert_engines_match(ansatz, batch, noise=rows, shots=shots)


def test_single_row_batches_match():
    """B=1 batches (the promotion path) agree for every ansatz."""
    for case, factory in CASES.items():
        ansatz = factory()
        point = np.linspace(-1.0, 1.0, ansatz.num_parameters)
        assert_engines_match(ansatz, point[None, :])


# -- hypothesis-style randomized circuits -------------------------------------


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_random_qaoa_circuits(seed):
    ansatz = random_qaoa(seed)
    rng = np.random.default_rng(seed)
    batch = random_parameter_batch(ansatz, rng)
    assert_engines_match(ansatz, batch)
    assert_engines_match(ansatz, batch, noise=random_noise(seed))


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_random_twolocal_circuits(seed):
    ansatz = random_twolocal(seed)
    rng = np.random.default_rng(seed)
    batch = random_parameter_batch(ansatz, rng)
    assert_engines_match(ansatz, batch)
    assert_engines_match(ansatz, batch, shots=32, seed=seed)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_random_uccsd_circuits(seed):
    """Randomized excitation layouts (singles anywhere, doubles on any
    4-qubit window) keep the batched gate stacks aligned with the
    serial circuit."""
    ansatz = random_uccsd(seed)
    rng = np.random.default_rng(seed)
    batch = random_parameter_batch(ansatz, rng)
    assert_engines_match(ansatz, batch)
    assert_engines_match(ansatz, batch, shots=32, seed=seed)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10**5))
def test_random_noisy_twolocal_density_rows(seed):
    """Noisy Two-local rows route through the density engine in both
    the serial loop and the batched path's noisy-row branch."""
    ansatz = random_twolocal(seed)
    rng = np.random.default_rng(seed)
    batch = random_parameter_batch(ansatz, rng, max_rows=4)
    assert_engines_match(ansatz, batch, noise=random_noise(seed))
