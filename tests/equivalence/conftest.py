"""Configuration for the cross-engine equivalence harness.

Makes the sibling ``harness`` module importable regardless of pytest's
rootdir and registers the ``equivalence`` marker so the harness can run
as its own CI job via ``pytest -m equivalence``.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "equivalence: cross-engine equivalence harness (run with "
        "`pytest -m equivalence`)",
    )
