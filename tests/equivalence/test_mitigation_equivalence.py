"""Batched ZNE / CDR equivalence with their serial per-point loops.

``ZneCostFunction.many`` folds the noise scale factors into the batch
axis (point-major, scale-minor — the serial evaluation order), so one
batched call per chunk must reproduce the per-(point, scale) loop draw
for draw.  ``CdrCostFunction.many`` routes its noisy evaluations
through ``expectation_many`` under the same contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import ATOL, qaoa_maxcut, twolocal_sk, uccsd_h2
from repro.landscape import LandscapeGenerator, qaoa_grid
from repro.mitigation import (
    CdrConfig,
    ZneConfig,
    cdr_cost_function,
    extrapolate,
    extrapolate_many,
    zne_cost_function,
)
from repro.quantum import NoiseModel

pytestmark = pytest.mark.equivalence

NOISE = NoiseModel(p1=0.003, p2=0.008)

ZNE_CONFIGS = {
    "richardson-123": ZneConfig((1.0, 2.0, 3.0), "richardson"),
    "linear-13": ZneConfig((1.0, 3.0), "linear"),
    "exponential-123": ZneConfig((1.0, 2.0, 3.0), "exponential"),
}


def _paired(factory, **kwargs):
    """Two identically-seeded instances: one for the serial loop, one
    for the batched path (the rng is bound at construction)."""
    return (
        factory(rng=np.random.default_rng(11), **kwargs),
        factory(rng=np.random.default_rng(11), **kwargs),
    )


@pytest.mark.parametrize("config_name", sorted(ZNE_CONFIGS))
@pytest.mark.parametrize("shots", [None, 128], ids=["exact", "shots"])
def test_zne_many_matches_serial_loop_qaoa(config_name, shots):
    ansatz = qaoa_maxcut(num_qubits=6)
    config = ZNE_CONFIGS[config_name]
    points = np.random.default_rng(0).uniform(-np.pi, np.pi, (9, 2))

    def factory(rng):
        return zne_cost_function(ansatz, NOISE, config, shots=shots, rng=rng)

    serial_fn, batched_fn = _paired(factory)
    serial = np.array([serial_fn(point) for point in points])
    batched = batched_fn.many(points)
    np.testing.assert_allclose(batched, serial, rtol=0.0, atol=ATOL)
    # Draw-order parity: both rng streams sit at the same position.
    assert serial_fn.rng.integers(1 << 63) == batched_fn.rng.integers(1 << 63)


@pytest.mark.parametrize(
    "make_ansatz", [twolocal_sk, uccsd_h2], ids=["twolocal", "uccsd"]
)
def test_zne_many_matches_serial_loop_density_ansatzes(make_ansatz):
    """ZNE over the density-engine ansatzes: every folded row is noisy,
    so the batched path's per-row density branch must equal the loop."""
    ansatz = make_ansatz()
    function = zne_cost_function(ansatz, NOISE, ZNE_CONFIGS["linear-13"])
    points = np.random.default_rng(1).uniform(
        -np.pi, np.pi, (4, ansatz.num_parameters)
    )
    serial = np.array([function(point) for point in points])
    np.testing.assert_allclose(
        function.many(points), serial, rtol=0.0, atol=ATOL
    )


def test_zne_grid_search_equals_pointwise_grid_search():
    """End to end through the landscape layer: a batched mitigated grid
    equals the same grid evaluated point by point."""
    ansatz = qaoa_maxcut(num_qubits=6)
    grid = qaoa_grid(p=1, resolution=(6, 12))
    function = zne_cost_function(ansatz, NOISE, ZNE_CONFIGS["richardson-123"])
    batched = LandscapeGenerator(function, grid).grid_search().flat()
    serial = np.array(
        [function(point) for _, point in grid.iter_points()]
    )
    np.testing.assert_allclose(batched, serial, rtol=0.0, atol=ATOL)


def test_zne_rows_per_point_shrinks_default_chunk():
    from repro.quantum import default_batch_size

    ansatz = qaoa_maxcut(num_qubits=6)
    function = zne_cost_function(ansatz, NOISE, ZNE_CONFIGS["richardson-123"])
    assert function.rows_per_point == 3
    grid = qaoa_grid(p=1, resolution=(6, 12))
    mitigated = LandscapeGenerator(function, grid)._resolved_batch_size()
    # The folded (points x scales) execution batch stays within the
    # same cache budget an unmitigated chunk would use.
    assert mitigated == max(1, default_batch_size(6) // 3)
    explicit = LandscapeGenerator(function, grid, batch_size=5)
    assert explicit._resolved_batch_size() == 5  # user override wins


@pytest.mark.parametrize("shots", [None, 64], ids=["exact", "shots"])
def test_cdr_many_matches_serial_loop(shots):
    ansatz = qaoa_maxcut(num_qubits=6)
    points = np.random.default_rng(2).uniform(-np.pi, np.pi, (11, 2))

    def factory(rng):
        return cdr_cost_function(
            ansatz,
            NOISE,
            train_around=np.zeros(2),
            config=CdrConfig(num_training_circuits=8),
            shots=shots,
            rng=rng,
        )

    serial_fn, batched_fn = _paired(factory)
    serial = np.array([serial_fn(point) for point in points])
    np.testing.assert_allclose(
        batched_fn.many(points), serial, rtol=0.0, atol=ATOL
    )
    if shots is not None:
        assert serial_fn.rng.integers(1 << 63) == batched_fn.rng.integers(
            1 << 63
        )


@pytest.mark.parametrize("method", ["richardson", "linear", "exponential"])
def test_extrapolate_many_matches_scalar_rows(method):
    rng = np.random.default_rng(3)
    scales = np.array([1.0, 2.0, 3.0])
    values = rng.normal(size=(13, 3))
    if method == "exponential":
        values = np.abs(values) + 0.1  # keep the log-linear branch
    expected = np.array(
        [extrapolate(method, scales, row) for row in values]
    )
    np.testing.assert_allclose(
        extrapolate_many(method, scales, values),
        expected,
        rtol=0.0,
        atol=1e-12,
    )


def test_extrapolate_many_validates_shape_and_method():
    with pytest.raises(ValueError):
        extrapolate_many("richardson", [1.0, 2.0], np.zeros((3, 3)))
    with pytest.raises(ValueError):
        extrapolate_many("cubic-spline", [1.0, 2.0], np.zeros((3, 2)))
    assert extrapolate_many("richardson", [1.0, 2.0], np.zeros((0, 2))).shape == (0,)


def test_zne_config_rejects_duplicate_scales():
    """Duplicate scale factors would make the batched and serial
    extrapolation paths diverge (Richardson rejects them, the linear
    fit degenerates), so the config refuses them up front."""
    with pytest.raises(ValueError):
        ZneConfig((1.0, 1.0, 3.0), "linear")
