"""Reusable cross-engine equivalence harness.

The repo ships multiple ways to evaluate the same cost function — the
serial point-at-a-time loop over :meth:`repro.ansatz.base.Ansatz.expectation`
and the vectorized :meth:`~repro.ansatz.base.Ansatz.expectation_many`
batch path — and every future backend (threaded, GPU, remote) is
expected to join them.  This module is the single place that knows how
to prove two engines identical:

- :data:`ENGINES` maps an engine name to an evaluation function with
  the uniform signature ``(ansatz, batch, noise, shots, rng) -> values``.
  Adding a new engine is one entry here (see ``README.md``); every
  parametrized test in this directory then exercises it automatically.
- :func:`assert_engines_match` runs every registered engine against the
  reference engine with independently seeded generators and asserts
  both *value equivalence* (to machine precision) and *rng draw-order
  parity*: after a stochastic evaluation the generators of all engines
  must sit at the same stream position, which is checked by comparing
  their next draw.
- :func:`ansatz_cases` builds the three shipped ansatzes (plus a
  non-diagonal molecular Two-local) in paper-sized configurations, and
  :func:`random_uccsd`/:func:`random_twolocal`/:func:`random_qaoa`
  derive randomized instances from a seed for hypothesis-style
  property tests.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.ansatz import QaoaAnsatz, TwoLocalAnsatz, UccsdAnsatz
from repro.ansatz.base import Ansatz
from repro.problems import random_3_regular_maxcut, sk_problem
from repro.problems.chemistry import h2_hamiltonian, lih_hamiltonian
from repro.quantum import NoiseModel
from repro.utils import ensure_rng

#: Absolute tolerance for "machine precision" equivalence.  Engine
#: implementations are free to reorder float operations (butterfly vs
#: BLAS summation), so bit-identity is not required — 1e-10 on O(1)
#: cost values leaves ~5 orders of magnitude of headroom over the
#: reorder noise while catching any semantic divergence.
ATOL = 1e-10

EngineFn = Callable[..., np.ndarray]


def serial_engine(
    ansatz: Ansatz,
    batch: np.ndarray,
    noise=None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Reference engine: the point-at-a-time loop over ``expectation``.

    Accepts the same shared-or-per-row ``noise`` spec as the batch
    interface so per-row cases (batched ZNE's folded scale factors) can
    be pinned against it too.
    """
    batch = np.asarray(batch, dtype=float)
    noise_rows = (
        list(noise)
        if isinstance(noise, (list, tuple))
        else [noise] * batch.shape[0]
    )
    if shots is not None:
        rng = ensure_rng(rng)
    return np.array(
        [
            ansatz.expectation(row, noise=model, shots=shots, rng=rng)
            for row, model in zip(batch, noise_rows)
        ]
    ).reshape(batch.shape[0])


def batched_engine(
    ansatz: Ansatz,
    batch: np.ndarray,
    noise=None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """The vectorized ``expectation_many`` batch engine."""
    return ansatz.expectation_many(batch, noise=noise, shots=shots, rng=rng)


def batched_density_engine(
    ansatz: Ansatz,
    batch: np.ndarray,
    noise=None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """The batched path with the density engine forced into tiny chunks.

    Noisy Two-local/UCCSD rows run on
    :class:`repro.quantum.batched_density.BatchedDensityMatrix`;
    pinning ``density_batch_rows = 2`` forces every noisy batch through
    genuine chunk splits (and, on mixed per-row noise, per-row Kraus
    stacks) instead of one whole-batch pass.  QAOA cases pass through
    their analytic contraction path untouched, pinning that the density
    engine's registration did not disturb it.
    """
    original = ansatz.density_batch_rows
    ansatz.density_batch_rows = 2
    try:
        return ansatz.expectation_many(batch, noise=noise, shots=shots, rng=rng)
    finally:
        ansatz.density_batch_rows = original


def sharded_engine(
    ansatz: Ansatz,
    batch: np.ndarray,
    noise=None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """The sharded executor in parity mode (workers=1, tiny shards).

    Two-row shards force every batch through a genuine split + merge,
    and sequential in-process execution threads the caller's ``rng``
    through the shards in order — which must consume the stream exactly
    as the unsharded engines do (the block-draw contract).  Multiprocess
    spawn-mode seeding intentionally trades this parity for worker-count
    independence and is pinned separately in
    ``tests/test_service_shards.py``.
    """
    from repro.service.shards import ShardedExecutor

    executor = ShardedExecutor(workers=1, shard_points=2)
    return executor.run_ansatz(ansatz, batch, noise=noise, shots=shots, rng=rng)


#: Lazily-started shared daemon backing :func:`daemon_engine` (one per
#: test process; torn down atexit).
_DAEMON_RUNTIME: dict = {}


def _daemon_client():
    """The shared daemon-backed client, starting the daemon on first use.

    The daemon runs on a background thread of this process (workers=1,
    two-point shards — the same parity configuration as
    :func:`sharded_engine`, plus the full socket/pickle round trip).
    ``fallback=False`` so a dead daemon fails the matrix loudly instead
    of silently passing via local computation.
    """
    if "client" not in _DAEMON_RUNTIME:
        import atexit
        import json
        import tempfile
        from pathlib import Path

        from repro.service.client import LandscapeClient
        from repro.service.daemon import LandscapeDaemon

        root = Path(tempfile.mkdtemp(prefix="oscar-eqd-"))
        tokens = root / "tokens.json"
        tokens.write_text(json.dumps({"equivalence": "eq-harness-token"}))
        daemon = LandscapeDaemon(
            root / "daemon.sock",
            workers=1,
            shard_points=2,
            tcp=("127.0.0.1", 0),
            tokens_file=tokens,
        )
        daemon.start()
        atexit.register(daemon.close)
        host, port = daemon.tcp_address
        _DAEMON_RUNTIME["daemon"] = daemon
        _DAEMON_RUNTIME["client"] = LandscapeClient(
            daemon.socket_path, fallback=False
        )
        _DAEMON_RUNTIME["tcp_client"] = LandscapeClient(
            f"tcp://{host}:{port}",
            fallback=False,
            token="eq-harness-token",
        )
    return _DAEMON_RUNTIME["client"]


def _daemon_tcp_client():
    """The token-authed TCP client against the same shared daemon."""
    _daemon_client()
    return _DAEMON_RUNTIME["tcp_client"]


def daemon_engine(
    ansatz: Ansatz,
    batch: np.ndarray,
    noise=None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """The landscape daemon's ``evaluate`` op (socket round trip).

    The caller's ``rng`` is pickled to the daemon, consumed by its
    executor (parity mode: workers=1, two-point shards), and its final
    state is written back — so this engine must match the serial loop
    in both values and rng stream position, proving the wire protocol
    itself preserves the cross-engine contract.
    """
    return _daemon_client().evaluate_ansatz(
        ansatz, batch, noise=noise, shots=shots, rng=rng
    )


class _EnumeratedGrid:
    """A picklable duck grid whose flat indices enumerate a fixed batch.

    The sparse daemon op resolves ``flat index -> parameter point``
    server-side via the grid's ``points_from_flat``; wrapping the test
    batch in this stand-in makes ``compute_indices`` evaluate exactly
    the batch rows, in order, so its output is directly comparable to
    every dense engine.
    """

    def __init__(self, batch: np.ndarray):
        self.batch = np.asarray(batch, dtype=float)

    @property
    def size(self) -> int:
        return int(self.batch.shape[0])

    def points_from_flat(self, flat_indices) -> np.ndarray:
        return self.batch[np.asarray(flat_indices, dtype=np.int64)]


def daemon_sparse_engine(
    ansatz: Ansatz,
    batch: np.ndarray,
    noise=None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """The daemon's sparse ``compute_indices`` op (socket round trip).

    Ships the batch as an enumerated grid plus the index set
    ``0..B-1``, so the daemon resolves points from indices server-side
    and runs them through its executor exactly like OSCAR's sampling
    path — per-row noise sequences align with the index list, and the
    caller's ``rng`` round-trips like the dense ``evaluate`` op's.
    """
    batch = np.asarray(batch, dtype=float)
    return _daemon_client().evaluate_ansatz_indices(
        ansatz,
        _EnumeratedGrid(batch),
        np.arange(batch.shape[0]),
        noise=noise,
        shots=shots,
        rng=rng,
    )


def daemon_tcp_engine(
    ansatz: Ansatz,
    batch: np.ndarray,
    noise=None,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """The daemon's ``evaluate`` op over the authenticated TCP front.

    Same daemon, same executor configuration as :func:`daemon_engine`,
    but the request travels as a pickle-free v2 frame over TCP with a
    bearer token: ansatz and noise go as declarative specs, the batch
    as a typed array codec, and the caller's ``rng`` as a JSON state
    object that round-trips — so matching the serial loop here proves
    the network wire format preserves the full cross-engine contract.
    """
    return _daemon_tcp_client().evaluate_ansatz(
        ansatz, batch, noise=noise, shots=shots, rng=rng
    )


#: Engine registry: name -> evaluation function.  ``REFERENCE_ENGINE``
#: is what every other entry is pinned against.
ENGINES: dict[str, EngineFn] = {
    "serial": serial_engine,
    "batched": batched_engine,
    "batched-density": batched_density_engine,
    "sharded": sharded_engine,
    "daemon": daemon_engine,
    "daemon-sparse": daemon_sparse_engine,
    "daemon-tcp": daemon_tcp_engine,
}
REFERENCE_ENGINE = "serial"


def assert_engines_match(
    ansatz: Ansatz,
    batch: np.ndarray,
    noise=None,
    shots: int | None = None,
    seed: int = 1234,
    atol: float = ATOL,
) -> None:
    """Assert every registered engine reproduces the reference engine.

    Each engine gets its own generator seeded identically; stochastic
    paths must both produce the same values (identical draw order and
    identical sampled distributions) and leave the generator at the
    same stream position (checked via one probe draw afterwards).
    """
    reference_rng = np.random.default_rng(seed)
    reference = ENGINES[REFERENCE_ENGINE](
        ansatz, batch, noise=noise, shots=shots, rng=reference_rng
    )
    reference_probe = reference_rng.integers(1 << 63)
    for name, engine in ENGINES.items():
        if name == REFERENCE_ENGINE:
            continue
        rng = np.random.default_rng(seed)
        values = engine(ansatz, batch, noise=noise, shots=shots, rng=rng)
        np.testing.assert_allclose(
            values,
            reference,
            rtol=0.0,
            atol=atol,
            err_msg=(
                f"engine {name!r} diverges from {REFERENCE_ENGINE!r} for "
                f"{type(ansatz).__name__} (noise={noise!r}, shots={shots})"
            ),
        )
        probe = rng.integers(1 << 63)
        assert probe == reference_probe, (
            f"engine {name!r} consumed the rng stream differently from "
            f"{REFERENCE_ENGINE!r} for {type(ansatz).__name__} "
            f"(shots={shots}): draw-order parity is part of the contract"
        )


def assert_cost_functions_match(
    function, batch: np.ndarray, atol: float = ATOL
) -> None:
    """Assert a batch-capable cost function's ``many`` equals its loop.

    For wrappers above the ansatz layer (ZNE, CDR, slices) whose rng is
    bound at construction: build two identically-seeded instances and
    pass them through :func:`make_pair` before calling this.
    """
    points = np.asarray(batch, dtype=float)
    serial = np.array([function(point) for point in points])
    batched = np.asarray(function.many(points), dtype=float)
    np.testing.assert_allclose(batched, serial, rtol=0.0, atol=atol)


# -- paper-sized ansatz cases -------------------------------------------------


def qaoa_maxcut(p: int = 1, num_qubits: int = 6, seed: int = 0) -> QaoaAnsatz:
    return QaoaAnsatz(random_3_regular_maxcut(num_qubits, seed=seed), p=p)


def twolocal_sk(reps: int = 1, num_qubits: int = 4, seed: int = 2) -> TwoLocalAnsatz:
    return TwoLocalAnsatz(sk_problem(num_qubits, seed=seed).to_pauli_sum(), reps=reps)


def twolocal_molecular(reps: int = 1) -> TwoLocalAnsatz:
    """Two-local over the non-diagonal H2 Hamiltonian (matrix path)."""
    return TwoLocalAnsatz(h2_hamiltonian(), reps=reps)


def uccsd_h2() -> UccsdAnsatz:
    return UccsdAnsatz(h2_hamiltonian(), num_parameters=3)


def uccsd_lih() -> UccsdAnsatz:
    return UccsdAnsatz(lih_hamiltonian(), num_parameters=8)


def ansatz_cases() -> dict[str, Callable[[], Ansatz]]:
    """Named factories covering all three ansatzes and both observable
    paths (diagonal and dense-matrix)."""
    return {
        "qaoa-maxcut-p1": qaoa_maxcut,
        "qaoa-maxcut-p2": lambda: qaoa_maxcut(p=2),
        "twolocal-sk": twolocal_sk,
        "twolocal-h2": twolocal_molecular,
        "uccsd-h2": uccsd_h2,
        "uccsd-lih": uccsd_lih,
    }


# -- randomized instances for property tests ----------------------------------


def random_parameter_batch(
    ansatz: Ansatz, rng: np.random.Generator, max_rows: int = 8
) -> np.ndarray:
    rows = int(rng.integers(1, max_rows + 1))
    return rng.uniform(-np.pi, np.pi, size=(rows, ansatz.num_parameters))


def random_qaoa(seed: int) -> QaoaAnsatz:
    rng = np.random.default_rng(seed)
    num_qubits = int(rng.integers(3, 8))
    problem = (
        random_3_regular_maxcut(num_qubits, seed=seed)
        if num_qubits % 2 == 0 and num_qubits >= 4
        else sk_problem(num_qubits, seed=seed)
    )
    return QaoaAnsatz(problem, p=int(rng.integers(1, 4)))


def random_twolocal(seed: int) -> TwoLocalAnsatz:
    rng = np.random.default_rng(seed)
    num_qubits = int(rng.integers(2, 6))
    hamiltonian = (
        h2_hamiltonian()
        if num_qubits == 2 and rng.random() < 0.5
        else sk_problem(max(num_qubits, 2), seed=seed).to_pauli_sum()
    )
    return TwoLocalAnsatz(hamiltonian, reps=int(rng.integers(0, 3)))


def random_uccsd(seed: int) -> UccsdAnsatz:
    """A UCCSD instance with a randomized excitation layout."""
    rng = np.random.default_rng(seed)
    num_qubits = int(rng.integers(2, 6))
    hamiltonian = sk_problem(num_qubits, seed=seed).to_pauli_sum()
    num_parameters = int(rng.integers(1, 7))
    excitations = []
    for _ in range(num_parameters):
        if num_qubits >= 4 and rng.random() < 0.4:
            start = int(rng.integers(0, num_qubits - 3))
            excitations.append(tuple(range(start, start + 4)))
        else:
            pair = rng.choice(num_qubits, size=2, replace=False)
            excitations.append((int(pair[0]), int(pair[1])))
    return UccsdAnsatz(
        hamiltonian, num_parameters=num_parameters, excitations=excitations
    )


def random_noise(seed: int) -> NoiseModel:
    rng = np.random.default_rng(seed + 99)
    return NoiseModel(
        p1=float(rng.uniform(0.0, 0.01)),
        p2=float(rng.uniform(0.0, 0.02)),
        readout=float(rng.uniform(0.0, 0.03)),
    )
