"""Store read-through parity for the daemon's sparse path.

The `daemon-sparse` engine in the main matrix covers the raw
ansatz-shaped `compute_indices` path; this file pins the
function-shaped service path's **read-through fast path**: an exact
sparse request answered from a cached dense landscape must return the
values an in-process evaluation of the subset would (to the harness's
``ATOL`` — dense-grid and subset evaluations chunk differently, which
legally reorders float operations) — the cached landscape is the same
deterministic function, just precomputed.
(Shot-noise requests must NOT read through — a cached noisy landscape
is a different stochastic draw than evaluating the subset — which
`tests/test_service_daemon.py` pins from the counter side.)
"""

from __future__ import annotations

import numpy as np
import pytest

from harness import ATOL
from repro.ansatz import QaoaAnsatz
from repro.landscape import LandscapeGenerator, cost_function, qaoa_grid
from repro.problems import random_3_regular_maxcut
from repro.service.client import LandscapeClient
from repro.service.daemon import LandscapeDaemon

pytestmark = pytest.mark.equivalence


def test_readthrough_matches_local_evaluation(tmp_path):
    ansatz = QaoaAnsatz(random_3_regular_maxcut(6, seed=0), p=1)
    grid = qaoa_grid(p=1, resolution=(10, 20))
    function = cost_function(ansatz)
    with LandscapeDaemon(
        tmp_path / "daemon.sock", workers=1, cache_dir=tmp_path / "cache"
    ) as daemon:
        client = LandscapeClient(daemon.socket_path, fallback=False)
        generator = LandscapeGenerator(function, grid, daemon=client)
        generator.grid_search()  # prime the dense cache

        rng = np.random.default_rng(11)
        flat_indices = rng.choice(grid.size, size=37, replace=False)
        served = generator.evaluate_indices(flat_indices)
        assert client.last_served_by == "daemon-readthrough"

        local = LandscapeGenerator(function, grid).local_evaluate_indices(
            flat_indices
        )
        np.testing.assert_allclose(served, local, rtol=0.0, atol=ATOL)

        # The fast path really answered from the store, not the pool.
        counters = client.stats()["counters"]
        assert counters["sparse_hits"] == 1
        assert counters["sparse_computed"] == 0


def test_tcp_readthrough_matches_local_evaluation(tmp_path):
    """The same read-through contract over the authenticated TCP front.

    A dense landscape primed by one tenant answers that tenant's exact
    sparse request from the store (no pool work), and the served values
    match an in-process evaluation of the subset — proving the v2 wire
    codecs (spec registry in, typed arrays out) preserve the service
    path's numerics end to end.
    """
    import json

    ansatz = QaoaAnsatz(random_3_regular_maxcut(6, seed=0), p=1)
    grid = qaoa_grid(p=1, resolution=(10, 20))
    function = cost_function(ansatz)
    tokens = tmp_path / "tokens.json"
    tokens.write_text(json.dumps({"alpha": "alpha-token"}))
    with LandscapeDaemon(
        tmp_path / "daemon.sock",
        workers=1,
        cache_dir=tmp_path / "cache",
        tcp=("127.0.0.1", 0),
        tokens_file=tokens,
    ) as daemon:
        host, port = daemon.tcp_address
        client = LandscapeClient(
            f"tcp://{host}:{port}", fallback=False, token="alpha-token"
        )
        generator = LandscapeGenerator(function, grid, daemon=client)
        generator.grid_search()  # prime the dense cache (tenant "alpha")

        rng = np.random.default_rng(11)
        flat_indices = rng.choice(grid.size, size=37, replace=False)
        served = generator.evaluate_indices(flat_indices)
        assert client.last_served_by == "daemon-readthrough"

        local = LandscapeGenerator(function, grid).local_evaluate_indices(
            flat_indices
        )
        np.testing.assert_allclose(served, local, rtol=0.0, atol=ATOL)

        counters = client.stats()["counters"]
        assert counters["sparse_hits"] == 1
        assert counters["sparse_computed"] == 0


def test_sparse_compute_matches_local_without_store(tmp_path):
    """No store: the sparse op computes, and still matches exactly."""
    ansatz = QaoaAnsatz(random_3_regular_maxcut(6, seed=1), p=1)
    grid = qaoa_grid(p=1, resolution=(8, 16))
    function = cost_function(ansatz)
    with LandscapeDaemon(tmp_path / "daemon.sock", workers=1) as daemon:
        client = LandscapeClient(daemon.socket_path, fallback=False)
        generator = LandscapeGenerator(function, grid, daemon=client)
        flat_indices = np.array([0, 5, 2, grid.size - 1, 64])
        served = generator.evaluate_indices(flat_indices)
        assert client.last_served_by == "daemon-computed"
        local = LandscapeGenerator(function, grid).local_evaluate_indices(
            flat_indices
        )
        np.testing.assert_allclose(served, local, rtol=0.0, atol=ATOL)
