"""Tests for Clifford Data Regression and Probabilistic Error
Cancellation (the remaining Sec. 2.3 mitigation families)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import QaoaAnsatz
from repro.mitigation import (
    CdrConfig,
    CliffordDataRegression,
    PecEstimator,
    cdr_cost_function,
    inverse_depolarizing_quasiprobability,
    pec_gamma_factor,
    snap_to_clifford_angles,
)
from repro.problems import random_3_regular_maxcut
from repro.quantum import NoiseModel


# -- CDR -----------------------------------------------------------------------


def test_snap_to_clifford_angles():
    rng = np.random.default_rng(0)
    snapped = snap_to_clifford_angles(np.array([0.1, 0.7, -0.4]), rng)
    lattice = snapped / (np.pi / 4.0)
    assert np.allclose(lattice, np.round(lattice))


def test_snap_keep_fraction_preserves_some():
    rng = np.random.default_rng(1)
    original = np.array([0.11, 0.22, 0.33, 0.44] * 10)
    snapped = snap_to_clifford_angles(original, rng, keep_fraction=0.5)
    kept = np.isclose(snapped, original)
    assert 0 < kept.sum() < original.size


def test_cdr_config_validation():
    with pytest.raises(ValueError):
        CdrConfig(num_training_circuits=1)
    with pytest.raises(ValueError):
        CdrConfig(keep_fraction=1.0)


def test_cdr_requires_training():
    problem = random_3_regular_maxcut(6, seed=0)
    model = CliffordDataRegression(QaoaAnsatz(problem, p=1), NoiseModel(p1=0.01))
    assert not model.is_trained
    with pytest.raises(RuntimeError):
        model.mitigate(0.5)
    with pytest.raises(RuntimeError):
        model.coefficients


def test_cdr_recovers_ideal_for_depolarizing():
    """Under (affine) depolarizing noise, CDR's linear fit is exact."""
    problem = random_3_regular_maxcut(6, seed=0)
    ansatz = QaoaAnsatz(problem, p=1)
    noise = NoiseModel(p1=0.003, p2=0.01)
    params = np.array([0.2, -0.5])
    model = CliffordDataRegression(ansatz, noise)
    model.train(params, rng=np.random.default_rng(0))
    ideal = ansatz.expectation(params)
    noisy = ansatz.expectation(params, noise=noise)
    mitigated = model.mitigated_expectation(params)
    assert abs(mitigated - ideal) < abs(noisy - ideal) / 10
    slope, _ = model.coefficients
    assert slope > 1.0  # the inverse of a contraction expands


def test_cdr_cost_function_shares_training():
    problem = random_3_regular_maxcut(6, seed=1)
    ansatz = QaoaAnsatz(problem, p=1)
    noise = NoiseModel(p1=0.002, p2=0.008)
    function = cdr_cost_function(
        ansatz, noise, train_around=np.array([0.2, 0.5]),
        rng=np.random.default_rng(2),
    )
    for point in ([0.2, 0.5], [-0.1, 0.9], [0.4, -0.3]):
        mitigated = function(np.array(point))
        ideal = ansatz.expectation(np.array(point))
        assert mitigated == pytest.approx(ideal, abs=0.05)


def test_cdr_with_shot_noise_still_helps():
    problem = random_3_regular_maxcut(6, seed=2)
    ansatz = QaoaAnsatz(problem, p=1)
    noise = NoiseModel(p1=0.003, p2=0.01)
    params = np.array([0.3, 0.4])
    rng = np.random.default_rng(3)
    model = CliffordDataRegression(
        ansatz, noise, CdrConfig(num_training_circuits=20)
    )
    model.train(params, rng=rng, shots=4096)
    ideal = ansatz.expectation(params)
    noisy = ansatz.expectation(params, noise=noise)
    mitigated = model.mitigated_expectation(params, shots=4096, rng=rng)
    assert abs(mitigated - ideal) < abs(noisy - ideal)


# -- PEC ------------------------------------------------------------------------


def test_inverse_quasiprobability_weights():
    c_identity, c_pauli = inverse_depolarizing_quasiprobability(0.0)
    assert c_identity == pytest.approx(1.0)
    assert c_pauli == pytest.approx(0.0)
    # TP constraint: signed coefficients sum to 1.
    c_identity, c_pauli = inverse_depolarizing_quasiprobability(0.05)
    assert c_identity - c_pauli == pytest.approx(1.0)
    assert c_pauli > 0


def test_inverse_quasiprobability_validation():
    with pytest.raises(ValueError):
        inverse_depolarizing_quasiprobability(0.75)
    with pytest.raises(ValueError):
        inverse_depolarizing_quasiprobability(-0.01)


def test_gamma_factor_grows_with_noise():
    assert pec_gamma_factor(0.0) == pytest.approx(1.0)
    assert pec_gamma_factor(0.02) > pec_gamma_factor(0.01) > 1.0


def test_gamma_formula():
    p = 0.03
    scale = 1 - 4 * p / 3
    assert pec_gamma_factor(p) == pytest.approx((3.0 / scale - 1.0) / 2.0)


def test_pec_total_gamma_exponential_in_gates():
    problem = random_3_regular_maxcut(6, seed=0)
    ansatz = QaoaAnsatz(problem, p=1)
    noise = NoiseModel(p1=0.002, p2=0.01)
    estimator = PecEstimator(noise)
    shallow = ansatz.circuit(np.array([0.2, 0.3]))
    deep = shallow.folded(3)
    gamma_shallow = estimator.total_gamma(shallow)
    gamma_deep = estimator.total_gamma(deep)
    assert gamma_deep == pytest.approx(gamma_shallow**3, rel=1e-6)
    assert gamma_shallow > 1.0


def test_pec_estimate_unbiased():
    """The sign-weighted estimator converges to the ideal expectation."""
    problem = random_3_regular_maxcut(4, seed=0)
    ansatz = QaoaAnsatz(problem, p=1)
    noise = NoiseModel(p1=0.005, p2=0.02)
    params = np.array([0.25, -0.4])
    circuit = ansatz.circuit(params)
    diagonal = problem.cost_diagonal()
    ideal = ansatz.expectation(params)
    estimator = PecEstimator(noise, num_samples=3000)
    estimate = estimator.estimate(circuit, diagonal, rng=np.random.default_rng(0))
    gamma = estimator.total_gamma(circuit)
    # Statistical tolerance ~ gamma * spread / sqrt(N).
    tolerance = 4.0 * gamma * diagonal.std() / np.sqrt(3000)
    assert estimate == pytest.approx(ideal, abs=tolerance)


def test_pec_variance_exceeds_unmitigated():
    """The gamma overhead is visible as estimator variance."""
    problem = random_3_regular_maxcut(4, seed=1)
    ansatz = QaoaAnsatz(problem, p=1)
    noise = NoiseModel(p1=0.01, p2=0.03)
    params = np.array([0.2, 0.3])
    circuit = ansatz.circuit(params)
    diagonal = problem.cost_diagonal()
    rng = np.random.default_rng(1)
    estimator = PecEstimator(noise, num_samples=40)
    estimates = [estimator.estimate(circuit, diagonal, rng) for _ in range(15)]
    assert np.std(estimates) > 0.01
