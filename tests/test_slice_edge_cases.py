"""Edge cases of the batched slice / cost-function plumbing.

Covers ``SliceCostFunction`` on degenerate inputs (empty batches,
single points, batch sizes exceeding the grid) and the base-class
``expectation_many`` fallback that any ansatz without a native batched
path rides — including per-row noise handling and its validation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import TwoLocalAnsatz, UccsdAnsatz
from repro.ansatz.base import Ansatz
from repro.experiments.slices import SliceCostFunction, random_slice, slice_generator
from repro.landscape.grid import GridAxis, ParameterGrid
from repro.problems import sk_problem
from repro.problems.chemistry import h2_hamiltonian
from repro.quantum import NoiseModel
from repro.quantum.circuit import QuantumCircuit
from repro.utils import ensure_rng

ATOL = 1e-12


class _PlainAnsatz(Ansatz):
    """Minimal ansatz with no native batched path (base fallback only)."""

    def __init__(self, num_parameters: int = 2):
        self.num_parameters = num_parameters
        self.num_qubits = 1
        self.calls: list[np.ndarray] = []

    def circuit(self, parameters):
        qc = QuantumCircuit(1)
        qc.ry(float(np.sum(parameters)), 0)
        return qc

    def expectation(self, parameters, noise=None, shots=None, rng=None):
        values = self._validate(parameters)
        self.calls.append(values.copy())
        value = float(np.cos(values).sum())
        if noise is not None and not noise.is_ideal:
            value *= 1.0 - noise.p1
        if shots is None:
            return value
        rng = ensure_rng(rng)
        return value + rng.normal(0.0, 1.0 / np.sqrt(shots))


# -- base-class expectation_many fallback -------------------------------------


def test_fallback_loops_expectation_row_by_row():
    ansatz = _PlainAnsatz()
    batch = np.random.default_rng(0).normal(size=(5, 2))
    values = ansatz.expectation_many(batch)
    assert values.shape == (5,)
    assert len(ansatz.calls) == 5
    serial = np.array([ansatz.expectation(row) for row in batch])
    assert np.allclose(values, serial, atol=ATOL)


def test_fallback_shots_consume_rng_in_batch_order():
    ansatz = _PlainAnsatz()
    batch = np.random.default_rng(1).normal(size=(4, 2))
    serial_rng = np.random.default_rng(2)
    batched_rng = np.random.default_rng(2)
    serial = np.array(
        [ansatz.expectation(row, shots=32, rng=serial_rng) for row in batch]
    )
    batched = ansatz.expectation_many(batch, shots=32, rng=batched_rng)
    assert np.allclose(batched, serial, atol=ATOL)
    assert serial_rng.integers(1 << 63) == batched_rng.integers(1 << 63)


def test_fallback_accepts_per_row_noise():
    ansatz = _PlainAnsatz()
    batch = np.random.default_rng(3).normal(size=(3, 2))
    noisy = NoiseModel(p1=0.1)
    rows = [None, noisy, None]
    values = ansatz.expectation_many(batch, noise=rows)
    expected = np.array(
        [ansatz.expectation(row, noise=model) for row, model in zip(batch, rows)]
    )
    assert np.allclose(values, expected, atol=ATOL)


def test_per_row_noise_validation():
    ansatz = _PlainAnsatz()
    batch = np.zeros((3, 2))
    with pytest.raises(ValueError):
        ansatz.expectation_many(batch, noise=[None, NoiseModel(p1=0.1)])
    with pytest.raises(TypeError):
        ansatz.expectation_many(batch, noise=[0.1, 0.2, 0.3])


def test_fallback_empty_batch():
    ansatz = _PlainAnsatz()
    values = ansatz.expectation_many(np.empty((0, 2)))
    assert values.shape == (0,)
    assert not ansatz.calls


# -- SliceCostFunction edge cases ---------------------------------------------


def _slice_case(points_per_axis: int = 5, seed: int = 0):
    ansatz = TwoLocalAnsatz(sk_problem(4, seed=2).to_pauli_sum(), reps=1)
    spec = random_slice(ansatz, points_per_axis, rng=np.random.default_rng(seed))
    return ansatz, spec


def test_slice_cost_function_empty_batch():
    ansatz, spec = _slice_case()
    function = SliceCostFunction(ansatz, spec)
    values = function.many(np.empty((0, 2)))
    assert np.asarray(values).shape == (0,)


def test_slice_cost_function_single_point_matches_call():
    ansatz, spec = _slice_case()
    function = SliceCostFunction(ansatz, spec)
    point = np.array([0.3, -0.9])
    assert np.isclose(function.many(point[None, :])[0], function(point), atol=ATOL)


def test_slice_generator_batch_size_larger_than_grid():
    ansatz, spec = _slice_case(points_per_axis=3)
    oversized = slice_generator(ansatz, spec, batch_size=10_000).grid_search()
    reference = slice_generator(ansatz, spec, batch_size=1).grid_search()
    assert np.allclose(oversized.values, reference.values, atol=ATOL)
    assert oversized.values.shape == (3, 3)


def test_slice_generator_with_fallback_ansatz():
    """A custom ansatz without a native batched path still slices
    correctly through the base-class loop."""
    ansatz = _PlainAnsatz(num_parameters=4)
    spec = random_slice(ansatz, 4, rng=np.random.default_rng(5))
    landscape = slice_generator(ansatz, spec, batch_size=3).grid_search()
    for flat, slice_point in spec.grid.iter_points():
        full = spec.fixed_values.copy()
        full[spec.varying[0]] = slice_point[0]
        full[spec.varying[1]] = slice_point[1]
        assert np.isclose(
            landscape.flat()[flat], ansatz.expectation(full), atol=ATOL
        )


def test_uccsd_slice_rides_native_batched_path(monkeypatch):
    """Slices of the chemistry ansatzes now call the native batched
    engine, not the serial fallback loop."""
    ansatz = UccsdAnsatz(h2_hamiltonian(), num_parameters=3)
    spec = random_slice(ansatz, 4, rng=np.random.default_rng(6))
    called = {"native": 0}
    original = UccsdAnsatz.statevector_many

    def counting(self, batch):
        called["native"] += 1
        return original(self, batch)

    monkeypatch.setattr(UccsdAnsatz, "statevector_many", counting)
    slice_generator(ansatz, spec).grid_search()
    assert called["native"] >= 1


def test_empty_parameter_grid_slice_points():
    """LandscapeGenerator.evaluate_points on an empty selection stays
    empty for slice cost functions too."""
    ansatz, spec = _slice_case()
    generator = slice_generator(ansatz, spec)
    assert generator.evaluate_indices(np.empty(0, dtype=int)).shape == (0,)


def test_grid_axis_sanity():
    grid = ParameterGrid(
        [GridAxis("a", -1.0, 1.0, 2), GridAxis("b", -1.0, 1.0, 2)]
    )
    ansatz = _PlainAnsatz(num_parameters=2)
    from repro.landscape.generator import LandscapeGenerator, cost_function

    landscape = LandscapeGenerator(
        cost_function(ansatz), grid, batch_size=100
    ).grid_search()
    assert landscape.values.shape == (2, 2)
