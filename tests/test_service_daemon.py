"""Tests for the landscape daemon and its client library.

Covers the protocol (every op, malformed input), the service semantics
(store hit/miss, single-flight dedup, single-writer LRU accounting
through one daemon), the failure modes the docs promise (no daemon ->
transparent in-process fallback; daemon restart preserves the store;
malformed requests return structured errors without killing the
server), and the ``LandscapeGenerator(daemon=...)`` / CLI wiring.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.ansatz import QaoaAnsatz
from repro.landscape import LandscapeGenerator, cost_function, qaoa_grid
from repro.problems import random_3_regular_maxcut
from repro.service import (
    DaemonError,
    LandscapeClient,
    LandscapeDaemon,
    LandscapeStore,
)


@pytest.fixture
def ansatz():
    return QaoaAnsatz(random_3_regular_maxcut(6, seed=0), p=1)


@pytest.fixture
def grid():
    return qaoa_grid(p=1, resolution=(6, 12))


@pytest.fixture
def daemon(tmp_path):
    """A running daemon (workers=1) with a store under tmp_path."""
    instance = LandscapeDaemon(
        tmp_path / "daemon.sock", workers=1, cache_dir=tmp_path / "cache"
    )
    instance.start()
    yield instance
    instance.close()


def _client(daemon) -> LandscapeClient:
    return LandscapeClient(daemon.socket_path)


# -- protocol basics ----------------------------------------------------------


def test_ping_and_is_alive(daemon):
    client = _client(daemon)
    assert client.is_alive()
    response = client.ping()
    assert response["workers"] == 1
    assert response["uptime"] >= 0.0


def test_malformed_request_returns_structured_error(daemon):
    """Garbage on the socket produces an error response, not a dead
    server."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
        raw.connect(str(daemon.socket_path))
        with raw.makefile("rwb") as stream:
            stream.write(b"this is not json\n")
            stream.flush()
            line = stream.readline()
    assert b'"ok": false' in line
    assert b"JSONDecodeError" in line
    # The server survived and still answers.
    assert _client(daemon).is_alive()


def test_unknown_op_is_a_structured_error(daemon):
    with pytest.raises(DaemonError, match="unknown op"):
        _client(daemon)._request({"op": "teleport"})
    assert _client(daemon).is_alive()


def test_compute_without_task_is_a_structured_error(daemon):
    with pytest.raises(DaemonError, match="task"):
        _client(daemon)._request({"op": "compute"})


def test_shot_noise_without_seed_is_rejected(daemon, ansatz, grid):
    """The store's seeding rule surfaces as a DaemonError (no silent
    uncacheable computation)."""
    client = _client(daemon)
    with pytest.raises(DaemonError, match="seed"):
        client.get_or_compute(
            cost_function(ansatz, shots=128, rng=np.random.default_rng(0)),
            grid,
        )


# -- service semantics --------------------------------------------------------


def test_compute_then_hit_and_store_roundtrip(daemon, ansatz, grid):
    client = _client(daemon)
    function = cost_function(ansatz)
    first = client.get_or_compute(function, grid, label="demo")
    assert client.last_served_by == "daemon-computed"
    second = client.get_or_compute(function, grid, label="demo")
    assert client.last_served_by == "daemon-hit"
    np.testing.assert_array_equal(first.values, second.values)
    assert second.label == "demo"

    local = LandscapeGenerator(function, grid).grid_search(label="demo")
    np.testing.assert_allclose(first.values, local.values, rtol=0.0, atol=1e-10)

    stats = client.stats()
    assert stats["counters"]["computed"] == 1
    assert stats["counters"]["hits"] == 1
    assert stats["store"]["entries"] == 1

    entries = client.index()
    assert len(entries) == 1
    key = entries[0]["key"]
    served = client.get(key)
    np.testing.assert_array_equal(served.values, first.values)
    assert client.invalidate(key) is True
    assert client.get(key) is None
    assert client.invalidate(key) is False


def test_generator_daemon_wiring(daemon, ansatz, grid):
    """LandscapeGenerator(daemon=...) serves grid_search through the
    daemon (accepting a path or a client)."""
    function = cost_function(ansatz)
    client = LandscapeClient(daemon.socket_path)
    by_path = LandscapeGenerator(function, grid, daemon=daemon.socket_path)
    by_client = LandscapeGenerator(function, grid, daemon=client)
    first = by_path.grid_search(label="wired")
    second = by_client.grid_search(label="wired")
    np.testing.assert_array_equal(first.values, second.values)
    assert client.last_served_by == "daemon-hit"
    local = LandscapeGenerator(function, grid).grid_search(label="wired")
    np.testing.assert_allclose(first.values, local.values, rtol=0.0, atol=1e-10)


def test_concurrent_identical_requests_compute_once(daemon, grid):
    """Single-flight dedup: N concurrent identical computes -> one
    computation, every client gets the same landscape."""
    function = _SlowConstant(delay=0.4)
    results: list = []
    errors: list = []
    barrier = threading.Barrier(3)

    def request():
        try:
            barrier.wait(timeout=10.0)
            client = _client(daemon)
            results.append(client.get_or_compute(function, grid, label="slow"))
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=request) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors
    assert len(results) == 3
    for landscape in results[1:]:
        np.testing.assert_array_equal(landscape.values, results[0].values)
    counters = _client(daemon).stats()["counters"]
    assert counters["computed"] == 1
    # Followers either joined the flight or (if they lost the race
    # entirely) hit the store the leader populated.
    assert counters["deduped"] + counters["hits"] == 2


def test_failed_compute_releases_the_flight(daemon, grid):
    """A compute that raises propagates to every waiter and clears the
    in-flight slot so a later request can retry."""
    function = _Explosive()
    client = _client(daemon)
    with pytest.raises(DaemonError, match="boom"):
        client.get_or_compute(function, grid)
    assert daemon._inflight == {}
    with pytest.raises(DaemonError, match="boom"):
        client.get_or_compute(function, grid)


# -- failure modes ------------------------------------------------------------


def test_client_without_daemon_falls_back(tmp_path, ansatz, grid):
    """No daemon listening -> transparent in-process computation."""
    client = LandscapeClient(tmp_path / "never-bound.sock")
    assert not client.is_alive()
    function = cost_function(ansatz)
    landscape = client.get_or_compute(function, grid, label="fallback")
    assert client.last_served_by == "local"
    assert client.fallbacks == 1
    local = LandscapeGenerator(function, grid).grid_search(label="fallback")
    np.testing.assert_allclose(
        landscape.values, local.values, rtol=0.0, atol=1e-10
    )


def test_generator_falls_back_with_its_own_store(tmp_path, ansatz, grid):
    """The generator's fallback keeps its own store= semantics: the
    daemonless call still populates the local cache."""
    store = LandscapeStore(tmp_path / "local-cache")
    generator = LandscapeGenerator(
        cost_function(ansatz),
        grid,
        store=store,
        daemon=tmp_path / "never-bound.sock",
    )
    generator.grid_search(label="fallback")
    assert store.misses == 1
    assert len(store.entries()) == 1


def test_fallback_disabled_raises(tmp_path, ansatz, grid):
    from repro.service import DaemonUnavailable

    client = LandscapeClient(tmp_path / "never-bound.sock", fallback=False)
    with pytest.raises(DaemonUnavailable):
        client.get_or_compute(cost_function(ansatz), grid)
    # fallback=False wins even when a fallback callable is supplied
    # (the generator wiring always passes one): the loud-failure mode
    # must never silently compute locally.
    with pytest.raises(DaemonUnavailable):
        LandscapeGenerator(
            cost_function(ansatz), grid, daemon=client
        ).grid_search()


def test_daemon_default_shard_points_applies(tmp_path, monkeypatch, ansatz, grid):
    """serve --shard-points reaches the executor when the client does
    not choose a layout (clients serialize an explicit None)."""
    from repro.service import daemon as daemon_module
    from repro.service import shards as shards_module

    seen: list = []
    real_executor = shards_module.ShardedExecutor

    def spy(*args, **kwargs):
        seen.append(kwargs.get("shard_points"))
        return real_executor(*args, **kwargs)

    # The evaluate op uses the daemon module's binding; the compute path
    # resolves through the shards module (via LandscapeGenerator).
    monkeypatch.setattr(daemon_module, "ShardedExecutor", spy)
    monkeypatch.setattr(shards_module, "ShardedExecutor", spy)
    instance = LandscapeDaemon(
        tmp_path / "daemon.sock", workers=1, shard_points=7
    )
    with instance:
        client = LandscapeClient(instance.socket_path, fallback=False)
        client.evaluate_ansatz(ansatz, np.zeros((3, 2)))
        served = client.get_or_compute(cost_function(ansatz), grid)
    assert seen == [7, 7]
    local = LandscapeGenerator(cost_function(ansatz), grid).grid_search()
    np.testing.assert_allclose(
        served.values, local.values, rtol=0.0, atol=1e-10
    )


def test_daemon_restart_preserves_store(tmp_path, ansatz, grid):
    """The store is on disk: a restarted daemon serves yesterday's
    landscapes as hits."""
    function = cost_function(ansatz)
    first_daemon = LandscapeDaemon(
        tmp_path / "daemon.sock", workers=1, cache_dir=tmp_path / "cache"
    )
    with first_daemon:
        first = LandscapeClient(first_daemon.socket_path).get_or_compute(
            function, grid, label="persist"
        )
    assert not first_daemon.socket_path.exists()

    second_daemon = LandscapeDaemon(
        tmp_path / "daemon.sock", workers=1, cache_dir=tmp_path / "cache"
    )
    with second_daemon:
        client = LandscapeClient(second_daemon.socket_path)
        served = client.get_or_compute(function, grid, label="persist")
        assert client.last_served_by == "daemon-hit"
        counters = client.stats()["counters"]
        assert counters["computed"] == 0 and counters["hits"] == 1
    np.testing.assert_array_equal(served.values, first.values)


def test_shutdown_op_stops_the_server(tmp_path):
    daemon = LandscapeDaemon(tmp_path / "daemon.sock", workers=1)
    daemon.start()
    client = LandscapeClient(daemon.socket_path)
    assert client.is_alive()
    client.shutdown()
    deadline = time.time() + 10.0
    while client.is_alive() and time.time() < deadline:
        time.sleep(0.05)
    assert not client.is_alive()
    daemon.close()  # idempotent


# -- raw evaluation (the harness path) ----------------------------------------


def test_evaluate_matches_in_process_with_rng_parity(daemon, ansatz):
    """evaluate round-trips the rng: values and stream position match
    the in-process batch engine exactly."""
    points = np.linspace(-1.0, 1.0, 10).reshape(5, 2)
    daemon_rng = np.random.default_rng(11)
    local_rng = np.random.default_rng(11)
    served = _client(daemon).evaluate_ansatz(
        ansatz, points, shots=64, rng=daemon_rng
    )
    local = ansatz.expectation_many(points, shots=64, rng=local_rng)
    np.testing.assert_allclose(served, local, rtol=0.0, atol=1e-10)
    assert daemon_rng.integers(1 << 63) == local_rng.integers(1 << 63)


# -- sparse evaluation (compute_indices) --------------------------------------


def test_compute_indices_matches_local(daemon, ansatz, grid):
    """The sparse op computes the subset on the daemon's resources."""
    function = cost_function(ansatz)
    client = _client(daemon)
    generator = LandscapeGenerator(function, grid, daemon=client)
    flat_indices = np.array([4, 0, 17, grid.size - 1])
    served = generator.evaluate_indices(flat_indices)
    assert client.last_served_by == "daemon-computed"
    local = LandscapeGenerator(function, grid).local_evaluate_indices(
        flat_indices
    )
    np.testing.assert_allclose(served, local, rtol=0.0, atol=1e-10)
    assert _client(daemon).stats()["counters"]["sparse_computed"] == 1


def test_compute_indices_reads_through_cached_dense(daemon, ansatz, grid):
    """An exact sparse request is answered from a cached dense
    landscape without touching the pool."""
    function = cost_function(ansatz)
    client = _client(daemon)
    generator = LandscapeGenerator(function, grid, daemon=client)
    truth = generator.grid_search()
    flat_indices = np.array([3, 60, 1, 44])
    served = generator.evaluate_indices(flat_indices)
    assert client.last_served_by == "daemon-readthrough"
    np.testing.assert_array_equal(served, truth.flat()[flat_indices])
    counters = client.stats()["counters"]
    assert counters["sparse_hits"] == 1
    assert counters["sparse_computed"] == 0


def test_shot_noise_sparse_never_reads_through(daemon, ansatz, grid):
    """A cached shot-noise dense landscape is a *different draw* than
    evaluating the subset, so stochastic requests always compute."""
    client = _client(daemon)
    # Prime the store with the seeded dense landscape.
    dense_function = cost_function(
        ansatz, shots=96, rng=np.random.default_rng(0)
    )
    client.get_or_compute(dense_function, grid, seed=5)
    sparse_function = cost_function(
        ansatz, shots=96, rng=np.random.default_rng(0)
    )
    generator = LandscapeGenerator(
        sparse_function, grid, seed=5, daemon=client
    )
    generator.evaluate_indices([2, 9, 31])
    assert client.last_served_by == "daemon-computed"
    assert client.stats()["counters"]["sparse_hits"] == 0


def test_out_of_range_indices_are_a_daemon_error(daemon, ansatz, grid):
    """Bounds validation runs server-side too (the client library
    validates in the generator, but the protocol must not trust it)."""
    client = _client(daemon)
    with pytest.raises(DaemonError, match="negative"):
        client.evaluate_indices(cost_function(ansatz), grid, [-3])
    with pytest.raises(DaemonError, match="out of range"):
        client.evaluate_indices(cost_function(ansatz), grid, [grid.size])
    assert client.is_alive()


def test_concurrent_sparse_requests_dedup(daemon, grid):
    """Identical concurrent index sets single-flight into one
    evaluation, keyed on (dense spec, index set)."""
    function = _SlowConstant(delay=0.4)
    flat_indices = np.array([1, 5, 9])
    results: list = []
    errors: list = []
    barrier = threading.Barrier(3)

    def request():
        try:
            barrier.wait(timeout=10.0)
            client = _client(daemon)
            results.append(
                client.evaluate_indices(function, grid, flat_indices)
            )
        except BaseException as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=request) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors
    assert len(results) == 3
    for values in results[1:]:
        np.testing.assert_array_equal(values, results[0])
    counters = _client(daemon).stats()["counters"]
    assert counters["sparse_computed"] == 1
    assert counters["sparse_deduped"] == 2


def test_evaluate_indices_falls_back_without_daemon(tmp_path, ansatz, grid):
    function = cost_function(ansatz)
    generator = LandscapeGenerator(
        function, grid, daemon=tmp_path / "never-bound.sock"
    )
    flat_indices = np.array([0, 7, 33])
    values = generator.evaluate_indices(flat_indices)
    local = LandscapeGenerator(function, grid).local_evaluate_indices(
        flat_indices
    )
    np.testing.assert_array_equal(values, local)


def test_sparse_rng_round_trips(daemon, ansatz, grid):
    """A seeded shot-noise sparse request leaves the client's bound rng
    exactly where the daemon's evaluation left its copy."""
    daemon_function = cost_function(
        ansatz, shots=64, rng=np.random.default_rng(21)
    )
    client = _client(daemon)
    generator = LandscapeGenerator(
        daemon_function, grid, seed=9, daemon=client
    )
    flat_indices = np.array([8, 2, 40])
    served = generator.evaluate_indices(flat_indices)

    local_function = cost_function(
        ansatz, shots=64, rng=np.random.default_rng(21)
    )
    local = LandscapeGenerator(
        local_function, grid, seed=9
    ).local_evaluate_indices(flat_indices)
    np.testing.assert_allclose(served, local, rtol=0.0, atol=1e-10)
    assert (
        daemon_function.rng.integers(1 << 63)
        == local_function.rng.integers(1 << 63)
    )


# -- the one-request pipeline -------------------------------------------------


def test_pipeline_op_matches_local_run(daemon, ansatz, grid):
    """A daemon-served pipeline returns the same samples, values,
    landscape and optimizer trajectory as the in-process sequence."""
    from repro.service import PipelineConfig

    function = cost_function(ansatz)
    client = _client(daemon)
    config = PipelineConfig(fraction=0.25, optimizer="nelder-mead")
    served = LandscapeGenerator(function, grid, daemon=client).run_pipeline(
        config, sample_rng=3
    )
    assert served.served_by == "daemon"
    assert client.last_served_by == "daemon-pipeline"

    local = LandscapeGenerator(function, grid).run_pipeline(
        config, sample_rng=3
    )
    np.testing.assert_array_equal(served.flat_indices, local.flat_indices)
    np.testing.assert_array_equal(served.values, local.values)
    np.testing.assert_array_equal(
        served.landscape.values, local.landscape.values
    )
    np.testing.assert_array_equal(
        served.optimization.path, local.optimization.path
    )
    assert served.optimization.num_queries == local.optimization.num_queries
    assert set(served.timings) == {
        "sample", "evaluate", "reconstruct", "optimize",
    }

    # Reproducible request -> the reconstruction is cached under a
    # pipeline spec whose key the response hands back.
    assert served.key is not None
    cached = client.get(served.key)
    np.testing.assert_array_equal(cached.values, served.landscape.values)
    assert client.stats()["counters"]["pipeline_runs"] == 1


def test_pipeline_sample_rng_round_trips(daemon, ansatz, grid):
    """A Generator sample_rng advances in the caller's process exactly
    as a local run advances it (and yields no cache key)."""
    from repro.service import PipelineConfig

    function = cost_function(ansatz)
    client = _client(daemon)
    config = PipelineConfig(fraction=0.2)
    daemon_rng = np.random.default_rng(17)
    served = LandscapeGenerator(function, grid, daemon=client).run_pipeline(
        config, sample_rng=daemon_rng
    )
    local_rng = np.random.default_rng(17)
    local = LandscapeGenerator(function, grid).run_pipeline(
        config, sample_rng=local_rng
    )
    np.testing.assert_array_equal(served.flat_indices, local.flat_indices)
    assert served.key is None
    assert daemon_rng.integers(1 << 63) == local_rng.integers(1 << 63)


def test_pipeline_falls_back_without_daemon(tmp_path, ansatz, grid):
    from repro.service import PipelineConfig

    function = cost_function(ansatz)
    generator = LandscapeGenerator(
        function, grid, daemon=tmp_path / "never-bound.sock"
    )
    outcome = generator.run_pipeline(
        PipelineConfig(fraction=0.2), sample_rng=3
    )
    assert outcome.served_by == "local"
    local = LandscapeGenerator(function, grid).run_pipeline(
        PipelineConfig(fraction=0.2), sample_rng=3
    )
    np.testing.assert_array_equal(
        outcome.optimization.path, local.optimization.path
    )


def test_pipeline_config_validation():
    from repro.service import PipelineConfig

    with pytest.raises(ValueError, match="fraction"):
        PipelineConfig(fraction=0.0)
    with pytest.raises(ValueError, match="sampler"):
        PipelineConfig(fraction=0.1, sampler="sobol")
    with pytest.raises(ValueError, match="optimizer"):
        PipelineConfig(fraction=0.1, optimizer="bfgs")


def test_pipeline_op_rejects_non_config_task(daemon, ansatz, grid):
    import pickle

    from repro.service.daemon import encode_blob

    task = {
        "function": cost_function(ansatz),
        "grid": grid,
        "config": {"fraction": 0.1},
        "sample_rng": 0,
        "batch_size": None,
        "seed": None,
        "shard_points": None,
    }
    with pytest.raises(DaemonError, match="PipelineConfig"):
        _client(daemon)._request(
            {"op": "pipeline", "task": encode_blob(pickle.dumps(task))}
        )


# -- CLI wiring ---------------------------------------------------------------


def test_cli_reconstruct_through_daemon(daemon, capsys):
    from repro.cli import main

    code = main(
        [
            "reconstruct",
            "--qubits", "6",
            "--resolution", "6", "12",
            "--fraction", "0.3",
            "--daemon", str(daemon.socket_path),
        ]
    )
    assert code == 0
    assert "NRMSE" in capsys.readouterr().out
    # The dense ground truth went through the daemon.
    assert _client(daemon).stats()["counters"]["computed"] >= 1


def test_cli_pipeline_through_daemon(daemon, capsys):
    from repro.cli import main

    code = main(
        [
            "pipeline",
            "--qubits", "6",
            "--resolution", "6", "12",
            "--fraction", "0.3",
            "--daemon", str(daemon.socket_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "served by: daemon" in out
    assert "cached as" in out  # integer --seed makes the run cacheable
    assert _client(daemon).stats()["counters"]["pipeline_runs"] == 1


def test_cli_cache_stats_directory_and_daemon(daemon, tmp_path, capsys):
    from repro.cli import main

    assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")]) == 0
    assert "payload bytes" in capsys.readouterr().out
    assert main(["cache", "stats", "--socket", str(daemon.socket_path)]) == 0
    out = capsys.readouterr().out
    assert "daemon pid" in out and "requests" in out
    # Per-op counters from the stats op (dense + sparse + pipeline).
    assert "read-through" in out and "pipelines" in out
    assert main(["cache", "list", "--socket", str(daemon.socket_path)]) == 0
    assert "daemon" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 2  # neither --cache-dir nor --socket
    capsys.readouterr()
    # A dead socket is a clean one-line error, not a traceback.
    dead = str(tmp_path / "never-bound.sock")
    assert main(["cache", "stats", "--socket", dead]) == 2
    assert "no landscape daemon" in capsys.readouterr().out


# -- helpers ------------------------------------------------------------------


class _SlowConstant:
    """Picklable cost function whose many() sleeps once per chunk (to
    hold a compute in flight while followers pile up)."""

    num_qubits = 2
    shots = None

    def __init__(self, delay: float):
        self.delay = delay

    def __call__(self, point) -> float:
        return 0.0

    def many(self, points) -> np.ndarray:
        time.sleep(self.delay)
        return np.zeros(np.asarray(points).shape[0])

    def cache_spec(self) -> dict:
        return {"kind": "slow-constant", "delay": self.delay}


class _Explosive:
    """Picklable cost function that always fails server-side."""

    num_qubits = 2
    shots = None

    def __call__(self, point) -> float:
        raise RuntimeError("boom")

    def many(self, points):
        raise RuntimeError("boom")

    def cache_spec(self) -> dict:
        return {"kind": "explosive"}


# -- TCP front: auth and limits ----------------------------------------------


def _tcp_tokens(tmp_path):
    import json

    tokens = tmp_path / "tokens.json"
    tokens.write_text(
        json.dumps(
            {
                "alice": "tok-alice",
                "bob": {"token": "tok-bob", "quota_bytes": 1 << 20},
                "stale": {"token": "tok-stale", "expires": 1.0},
            }
        )
    )
    return tokens


def _tcp_daemon(tmp_path, **overrides):
    kwargs = dict(
        workers=1,
        cache_dir=tmp_path / "cache",
        tcp=("127.0.0.1", 0),
        tokens_file=_tcp_tokens(tmp_path),
    )
    kwargs.update(overrides)
    daemon = LandscapeDaemon(tmp_path / "daemon.sock", **kwargs)
    daemon.start()
    return daemon


def _tcp_send(daemon, message, timeout=30.0):
    """One raw frame out, one response line back (b"" = closed)."""
    import json

    with socket.create_connection(daemon.tcp_address, timeout=timeout) as conn:
        payload = message if isinstance(message, bytes) else json.dumps(message).encode()
        conn.sendall(payload + b"\n")
        with conn.makefile("rb") as stream:
            line = stream.readline()
    return json.loads(line) if line else None


def test_tcp_requires_tokens_file(tmp_path):
    with pytest.raises(ValueError, match="tokens_file"):
        LandscapeDaemon(tmp_path / "d.sock", tcp=("127.0.0.1", 0))


@pytest.mark.parametrize(
    "token, detail",
    [
        (None, "missing"),
        ("wrong-token", "unknown"),
        ("tok-stale", "expired"),
    ],
)
def test_bad_tokens_get_auth_errors_without_pool_work(tmp_path, token, detail):
    """Missing, wrong and expired tokens all fail with the structured
    ``auth`` code — before any compute/evaluate/tenant accounting."""
    daemon = _tcp_daemon(tmp_path)
    try:
        frame = {
            "version": 2,
            "op": "compute",
            "function": {
                "kind": "ansatz",
                "ansatz": {
                    "type": "qaoa",
                    "p": 1,
                    "num_qubits": 3,
                    "problem": {"couplings": [[0, 1, 1.0]], "fields": [], "offset": 0.0},
                },
                "noise": None,
                "shots": None,
            },
            "grid": [
                {"name": "g", "low": 0.0, "high": 1.0, "num_points": 3},
                {"name": "b", "low": 0.0, "high": 1.0, "num_points": 3},
            ],
        }
        if token is not None:
            frame["token"] = token
        response = _tcp_send(daemon, frame)
        assert response["ok"] is False
        assert response["error"]["code"] == "auth"
        assert detail in response["error"]["message"]
        with daemon._counter_lock:
            counters = dict(daemon._counters)
            tenant_ops = dict(daemon._tenant_counters)
        assert counters["computed"] == 0 and counters["evaluations"] == 0
        assert tenant_ops == {}, "rejected requests must not be attributed"
    finally:
        daemon.close()


def test_presented_token_must_be_valid_even_on_unix(tmp_path):
    """A *presented* token is always checked — Unix-socket callers
    cannot silently fall back to the default tenant with a bad token."""
    daemon = _tcp_daemon(tmp_path)
    try:
        client = LandscapeClient(daemon.socket_path, fallback=False, token="nope")
        with pytest.raises(DaemonError) as denied:
            client.ping()
        assert denied.value.code == "auth"
        # ... while no token at all keeps the legacy trust boundary.
        assert LandscapeClient(daemon.socket_path).ping()["tenant"] == "local"
    finally:
        daemon.close()


def test_payload_over_limit_gets_too_large_then_disconnect(tmp_path):
    daemon = _tcp_daemon(tmp_path, max_payload_bytes=2048)
    try:
        import json

        with socket.create_connection(daemon.tcp_address, timeout=30.0) as conn:
            conn.sendall(b"X" * 4096 + b"\n")
            with conn.makefile("rb") as stream:
                response = json.loads(stream.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "too-large"
                assert stream.readline() == b"", "connection must close"
        # the daemon itself keeps serving
        assert _tcp_send(daemon, {"version": 2, "op": "ping", "token": "tok-alice"})["ok"]
    finally:
        daemon.close()


def test_idle_connections_are_disconnected(tmp_path):
    daemon = _tcp_daemon(tmp_path, idle_timeout=0.4)
    try:
        with socket.create_connection(daemon.tcp_address, timeout=30.0) as conn:
            start = time.monotonic()
            with conn.makefile("rb") as stream:
                assert stream.readline() == b"", "idle connection must be dropped"
            assert time.monotonic() - start < 10.0
        assert _tcp_send(daemon, {"version": 2, "op": "ping", "token": "tok-alice"})["ok"]
    finally:
        daemon.close()


def test_connection_cap_sheds_with_retryable_error(tmp_path):
    import json

    daemon = _tcp_daemon(tmp_path, max_connections=1)
    try:
        with socket.create_connection(daemon.tcp_address, timeout=30.0) as held:
            held.sendall(
                json.dumps({"version": 2, "op": "ping", "token": "tok-alice"}).encode()
                + b"\n"
            )
            held_stream = held.makefile("rb")
            assert json.loads(held_stream.readline())["ok"] is True

            response = _tcp_send(daemon, {"version": 2, "op": "ping", "token": "tok-alice"})
            assert response["ok"] is False
            assert response["error"]["code"] == "overloaded"
            assert response["error"]["retryable"] is True
            held_stream.close()
        # capacity frees up once the held connection goes away
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            retry = _tcp_send(daemon, {"version": 2, "op": "ping", "token": "tok-alice"})
            if retry and retry.get("ok"):
                break
            time.sleep(0.05)
        else:
            pytest.fail("shed load never recovered")
    finally:
        daemon.close()


def test_legacy_pickle_op_over_tcp_is_refused(tmp_path, ansatz):
    """An unversioned (v1, pickled-task) frame over TCP never reaches a
    handler: structured ``unsupported-version``, nothing unpickled."""
    import base64
    import pickle

    daemon = _tcp_daemon(tmp_path)
    try:
        task = base64.b64encode(pickle.dumps({"ansatz": ansatz})).decode()
        response = _tcp_send(daemon, {"op": "evaluate", "task": task})
        assert response["ok"] is False
        assert response["error"]["code"] == "unsupported-version"
        with daemon._counter_lock:
            assert daemon._counters["evaluations"] == 0
    finally:
        daemon.close()


def test_tcp_client_refuses_unspecable_payloads_client_side(tmp_path):
    """A cost function that cannot describe itself declaratively fails
    in the client over TCP (the pickle fallback is Unix-only)."""
    daemon = _tcp_daemon(tmp_path)
    try:
        host, port = daemon.tcp_address
        client = LandscapeClient(
            f"tcp://{host}:{port}", fallback=False, token="tok-alice"
        )
        grid = qaoa_grid(p=1, resolution=(4, 4))
        with pytest.raises(DaemonError) as refused:
            client.get_or_compute(_SlowConstant(0.0), grid)
        assert refused.value.code == "invalid-spec"
        with daemon._counter_lock:
            assert daemon._counters["computed"] == 0
    finally:
        daemon.close()
