"""Sharded execution: planning, merge determinism, seeding contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import QaoaAnsatz
from repro.landscape import LandscapeGenerator, cost_function, qaoa_grid
from repro.mitigation import ZneConfig, zne_cost_function
from repro.problems import random_3_regular_maxcut
from repro.quantum import NoiseModel
from repro.service import ShardedExecutor, plan_shards
from repro.service.shards import DEFAULT_MAX_SHARDS


@pytest.fixture
def qaoa():
    return QaoaAnsatz(random_3_regular_maxcut(6, seed=0), p=1)


@pytest.fixture
def grid():
    return qaoa_grid(p=1, resolution=(7, 11))  # 77 points: uneven shards


# -- shard planning ------------------------------------------------------------


def test_plan_covers_every_index_exactly_once():
    for size, shard_points in ((77, 10), (77, None), (1, 1), (5, 100)):
        shards = plan_shards(size, shard_points)
        covered = [
            index
            for shard in shards
            for index in range(shard.start, shard.stop)
        ]
        assert covered == list(range(size))
        assert [shard.index for shard in shards] == list(range(len(shards)))


def test_plan_default_stays_within_max_shards():
    for size in (1, 15, 16, 17, 1000, 5000):
        shards = plan_shards(size)
        assert len(shards) <= DEFAULT_MAX_SHARDS
        assert sum(shard.size for shard in shards) == size


def test_plan_is_worker_count_independent():
    """The layout is a pure function of (size, shard_points) — the
    worker count never appears, which is what makes seeded shot noise
    identical for any parallelism."""
    assert plan_shards(1000, 37) == plan_shards(1000, 37)
    assert plan_shards(0) == []


def test_plan_validates_inputs():
    with pytest.raises(ValueError):
        plan_shards(-1)
    with pytest.raises(ValueError):
        plan_shards(10, 0)
    with pytest.raises(ValueError):
        ShardedExecutor(workers=0)
    with pytest.raises(ValueError):
        ShardedExecutor(shard_points=0)


# -- exact landscapes: any workers == serial ----------------------------------


def test_exact_grid_search_matches_across_worker_counts(qaoa, grid):
    reference = LandscapeGenerator(cost_function(qaoa), grid).grid_search()
    for workers in (1, 2, 3):
        sharded = LandscapeGenerator(
            cost_function(qaoa), grid, workers=workers, shard_points=13
        ).grid_search()
        np.testing.assert_allclose(
            sharded.values, reference.values, rtol=0.0, atol=1e-10
        )
        assert sharded.circuit_executions == grid.size


def test_exact_evaluate_indices_matches(qaoa, grid):
    indices = np.array([0, 3, 5, 20, 21, 22, 76, 40])
    reference = LandscapeGenerator(cost_function(qaoa), grid).evaluate_indices(
        indices
    )
    sharded = LandscapeGenerator(
        cost_function(qaoa), grid, workers=2, shard_points=3
    ).evaluate_indices(indices)
    np.testing.assert_allclose(sharded, reference, rtol=0.0, atol=1e-10)


def _plain_cosine(point):
    """A picklable closure-free cost function (no ``many`` path)."""
    return float(np.cos(point[0]) * np.sin(point[1]))


def test_plain_closures_shard_too(grid):
    """Functions without a batched ``many`` path still shard (the
    per-shard worker falls back to the point loop)."""
    values = LandscapeGenerator(
        _plain_cosine,
        grid,
        workers=2,
        shard_points=10,
    ).grid_search()
    expected = np.array(
        [
            float(np.cos(point[0]) * np.sin(point[1]))
            for _, point in grid.iter_points()
        ]
    ).reshape(grid.shape)
    np.testing.assert_allclose(values.values, expected, rtol=0.0, atol=1e-12)


# -- parity mode: workers=1 reproduces the serial batched path ----------------


def test_parity_mode_matches_unsharded_draw_for_draw(qaoa, grid):
    rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
    unsharded = LandscapeGenerator(
        cost_function(qaoa, shots=48, rng=rng_a), grid
    ).grid_search()
    sharded = LandscapeGenerator(
        cost_function(qaoa, shots=48, rng=rng_b), grid, shard_points=13
    ).grid_search()
    np.testing.assert_array_equal(sharded.values, unsharded.values)
    # Both generators sit at the same stream position afterwards.
    assert rng_a.integers(1 << 63) == rng_b.integers(1 << 63)


# -- spawn mode: seeded results identical for any worker count ----------------


@pytest.mark.parametrize("shots", [32], ids=["shots"])
def test_seeded_shot_noise_identical_for_workers_1_2_4(qaoa, grid, shots):
    landscapes = []
    for workers in (1, 2, 4):
        generator = LandscapeGenerator(
            cost_function(qaoa, shots=shots),
            grid,
            workers=workers,
            seed=123,
        )
        landscapes.append(generator.grid_search().values)
    np.testing.assert_array_equal(landscapes[0], landscapes[1])
    np.testing.assert_array_equal(landscapes[0], landscapes[2])


def test_seeded_results_depend_on_seed_and_layout(qaoa, grid):
    def values(seed, shard_points=None):
        return LandscapeGenerator(
            cost_function(qaoa, shots=32),
            grid,
            seed=seed,
            shard_points=shard_points,
        ).grid_search().values

    assert not np.array_equal(values(1), values(2))
    np.testing.assert_array_equal(values(1), values(1))
    # A different shard layout is a different rng plan (recorded as
    # shard_points in shot-noise cache keys — see the store tests),
    # hence different draws.  The 77-point grid's default plan is
    # 5-point shards, so 30 is a genuinely different layout.
    assert not np.array_equal(values(1), values(1, shard_points=30))


def test_seeded_mitigated_landscape_identical_across_workers(qaoa, grid):
    noise = NoiseModel(p1=0.002, p2=0.006)
    config = ZneConfig((1.0, 2.0), "linear")
    reference = None
    for workers in (1, 2):
        generator = LandscapeGenerator(
            zne_cost_function(qaoa, noise, config, shots=24),
            grid,
            workers=workers,
            seed=77,
        )
        values = generator.grid_search().values
        if reference is None:
            reference = values
        else:
            np.testing.assert_array_equal(values, reference)


def test_multiprocess_shot_noise_without_seed_is_refused(qaoa, grid):
    generator = LandscapeGenerator(
        cost_function(qaoa, shots=16, rng=np.random.default_rng(0)),
        grid,
        workers=2,
    )
    with pytest.raises(ValueError, match="seed"):
        generator.grid_search()


def test_seeded_truth_and_sample_runs_draw_independent_noise(qaoa, grid):
    """Distinct evaluations under one seed must not replay each other's
    rng streams: if OSCAR's sample run reused the ground-truth grid's
    per-shard generators, sampled shot noise would correlate with (and
    at shard boundaries equal) the truth values, biasing NRMSE low.
    The spawn root therefore folds in a fingerprint of the evaluated
    points."""
    generator = LandscapeGenerator(
        cost_function(qaoa, shots=32), grid, seed=123
    )
    truth = generator.grid_search()
    indices = np.arange(12)  # aligned with the truth run's first shard
    sampled = generator.evaluate_indices(indices)
    assert not np.array_equal(sampled, truth.flat()[indices]), (
        "sample evaluation replayed the ground-truth rng streams"
    )
    # Same request, same draws: the evaluation stays reproducible.
    np.testing.assert_array_equal(sampled, generator.evaluate_indices(indices))


def test_seeded_executor_does_not_mutate_the_callers_function(qaoa):
    """Spawn mode reseeds a copy, never the caller's cost function."""
    rng = np.random.default_rng(0)
    function = cost_function(qaoa, shots=16, rng=rng)
    executor = ShardedExecutor(workers=1, shard_points=4, seed=5)
    points = np.random.default_rng(1).uniform(-1, 1, (10, 2))
    executor.run(function, points)
    assert function.rng is rng


# -- ansatz-level entry (the harness path) ------------------------------------


def test_run_ansatz_slices_per_row_noise(qaoa):
    noise = NoiseModel(p1=0.004, p2=0.009)
    rows = [None, noise, noise.scaled(2.0), None, noise.scaled(3.0), noise]
    batch = np.random.default_rng(3).uniform(-np.pi, np.pi, (6, 2))
    expected = qaoa.expectation_many(batch, noise=rows)
    sharded = ShardedExecutor(workers=1, shard_points=2).run_ansatz(
        qaoa, batch, noise=rows
    )
    np.testing.assert_allclose(sharded, expected, rtol=0.0, atol=1e-10)
    with pytest.raises(ValueError):
        ShardedExecutor(shard_points=2).run_ansatz(qaoa, batch, noise=rows[:3])
