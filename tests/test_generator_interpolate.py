"""Tests for landscape generation and spline interpolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import QaoaAnsatz
from repro.landscape import (
    GridAxis,
    InterpolatedLandscape,
    Landscape,
    LandscapeGenerator,
    ParameterGrid,
    cost_function,
    qaoa_grid,
)
from repro.problems import random_3_regular_maxcut


# -- generator ---------------------------------------------------------------


def test_grid_search_evaluates_every_point(qaoa6, small_grid):
    generator = LandscapeGenerator(cost_function(qaoa6), small_grid)
    truth = generator.grid_search()
    assert truth.values.shape == small_grid.shape
    assert truth.circuit_executions == small_grid.size
    # Spot-check individual points.
    for flat in (0, 100, 511):
        point = small_grid.point_from_flat(flat)
        assert truth.flat()[flat] == pytest.approx(qaoa6.expectation(point))


def test_evaluate_indices_matches_grid_search(qaoa6, small_grid):
    generator = LandscapeGenerator(cost_function(qaoa6), small_grid)
    truth = generator.grid_search()
    indices = np.array([3, 77, 200, 450])
    values = generator.evaluate_indices(indices)
    assert np.allclose(values, truth.flat()[indices])


def test_evaluate_point_off_grid(qaoa6, small_grid):
    generator = LandscapeGenerator(cost_function(qaoa6), small_grid)
    point = np.array([0.123, -0.456])
    assert generator.evaluate_point(point) == pytest.approx(qaoa6.expectation(point))


def test_cost_function_with_noise_settings(qaoa6, mild_noise):
    ideal = cost_function(qaoa6)
    noisy = cost_function(qaoa6, noise=mild_noise)
    point = np.array([0.2, 0.4])
    assert ideal(point) != noisy(point)


# -- interpolation --------------------------------------------------------------


@pytest.fixture
def smooth_landscape():
    """An analytically known smooth surface on a 2-D grid."""
    grid = ParameterGrid(
        [GridAxis("x", 0.0, 1.0, 20), GridAxis("y", 0.0, 2.0, 25)]
    )
    xs, ys = np.meshgrid(*grid.axis_values, indexing="ij")
    values = np.sin(2 * xs) * np.cos(ys)
    return Landscape(grid, values)


def test_interpolation_exact_at_grid_nodes(smooth_landscape):
    surrogate = InterpolatedLandscape(smooth_landscape)
    grid = smooth_landscape.grid
    for flat in (0, 57, 311, 499):
        point = grid.point_from_flat(flat)
        assert surrogate(point) == pytest.approx(
            smooth_landscape.flat()[flat], abs=1e-9
        )


def test_interpolation_accurate_off_grid(smooth_landscape):
    surrogate = InterpolatedLandscape(smooth_landscape)
    rng = np.random.default_rng(0)
    for _ in range(20):
        x, y = rng.uniform(0.05, 0.95), rng.uniform(0.05, 1.95)
        assert surrogate([x, y]) == pytest.approx(
            np.sin(2 * x) * np.cos(y), abs=5e-4
        )


def test_interpolation_clamps_out_of_bounds(smooth_landscape):
    surrogate = InterpolatedLandscape(smooth_landscape)
    inside = surrogate([1.0, 2.0])
    outside = surrogate([5.0, 9.0])
    assert outside == pytest.approx(inside)


def test_query_counting(smooth_landscape):
    surrogate = InterpolatedLandscape(smooth_landscape)
    for _ in range(7):
        surrogate([0.5, 0.5])
    assert surrogate.query_count == 7


def test_gradient_of_smooth_function(smooth_landscape):
    surrogate = InterpolatedLandscape(smooth_landscape)
    x, y = 0.4, 0.9
    gradient = surrogate.gradient([x, y])
    expected = np.array([2 * np.cos(2 * x) * np.cos(y), -np.sin(2 * x) * np.sin(y)])
    assert np.allclose(gradient, expected, atol=5e-3)


def test_dense_resample_shape(smooth_landscape):
    surrogate = InterpolatedLandscape(smooth_landscape)
    dense = surrogate.dense_resample(factor=2)
    assert dense.shape == (40, 50)


def test_dense_resample_validation(smooth_landscape):
    surrogate = InterpolatedLandscape(smooth_landscape)
    with pytest.raises(ValueError):
        surrogate.dense_resample(factor=0)


def test_interpolation_wrong_arity_raises(smooth_landscape):
    surrogate = InterpolatedLandscape(smooth_landscape)
    with pytest.raises(ValueError):
        surrogate([0.1, 0.2, 0.3])


def test_generic_interpolator_for_4d():
    grid = qaoa_grid(p=2, resolution=(4, 5))
    rng = np.random.default_rng(1)
    values = rng.normal(size=grid.shape)
    landscape = Landscape(grid, values)
    surrogate = InterpolatedLandscape(landscape)
    flat = 123
    point = grid.point_from_flat(flat)
    assert surrogate(point) == pytest.approx(landscape.flat()[flat], abs=1e-4)


def test_qaoa_interpolation_tracks_circuit(qaoa6):
    """Interpolated reconstructed landscape ~ true cost function — the
    property the optimizer use case relies on."""
    grid = qaoa_grid(p=1, resolution=(20, 40))
    generator = LandscapeGenerator(cost_function(qaoa6), grid)
    truth = generator.grid_search()
    surrogate = InterpolatedLandscape(truth)
    rng = np.random.default_rng(2)
    for _ in range(10):
        point = np.array(
            [rng.uniform(-np.pi / 4, np.pi / 4), rng.uniform(-np.pi / 2, np.pi / 2)]
        )
        assert surrogate(point) == pytest.approx(
            qaoa6.expectation(point), abs=0.05
        )
