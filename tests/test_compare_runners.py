"""Tests for the landscape-comparison API and remaining experiment
runner branches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ncm_study import run_table5
from repro.experiments.speedup import measure_speedup
from repro.landscape import (
    LandscapeGenerator,
    OscarReconstructor,
    compare_landscapes,
    cost_function,
    qaoa_grid,
)
from repro.ansatz import QaoaAnsatz
from repro.problems import random_3_regular_maxcut


# -- compare_landscapes ----------------------------------------------------------


def test_compare_identical_landscapes(ideal_generator):
    truth = ideal_generator.grid_search()
    report = compare_landscapes(truth, truth)
    assert report.nrmse == 0.0
    assert report.correlation == pytest.approx(1.0)
    assert report.minimum_distance == 0.0
    assert report.minimum_value_gap == 0.0
    assert report.d2_ratio == pytest.approx(1.0)
    assert report.vog_ratio == pytest.approx(1.0)
    assert report.variance_ratio == pytest.approx(1.0)


def test_compare_reconstruction_against_truth(ideal_generator, medium_grid):
    truth = ideal_generator.grid_search()
    oscar = OscarReconstructor(medium_grid, rng=0)
    reconstruction, _ = oscar.reconstruct(ideal_generator, 0.12)
    report = compare_landscapes(truth, reconstruction)
    assert report.nrmse < 0.1
    assert report.correlation > 0.99
    assert 0.5 < report.variance_ratio < 1.5
    # Argmin agreement: same basin or symmetric twin.
    assert report.minimum_value_gap < 0.2


def test_compare_shape_mismatch_raises(ideal_generator, small_grid):
    truth = ideal_generator.grid_search()
    import numpy as np
    from repro.landscape import Landscape

    other = Landscape(small_grid, np.zeros(small_grid.shape))
    with pytest.raises(ValueError):
        compare_landscapes(truth, other)


def test_compare_constant_landscapes():
    from repro.landscape import Landscape

    grid = qaoa_grid(p=1, resolution=(4, 6))
    flat_a = Landscape(grid, np.full(grid.shape, 2.0))
    flat_b = Landscape(grid, np.full(grid.shape, 2.0))
    report = compare_landscapes(flat_a, flat_b)
    assert report.correlation == 1.0
    assert report.d2_ratio == 1.0


def test_compare_summary_is_readable(ideal_generator, medium_grid):
    truth = ideal_generator.grid_search()
    oscar = OscarReconstructor(medium_grid, rng=1)
    reconstruction, _ = oscar.reconstruct(ideal_generator, 0.1)
    text = compare_landscapes(truth, reconstruction).summary()
    assert "NRMSE" in text and "correlation" in text and "D2" in text


# -- runner branches ----------------------------------------------------------------


def test_speedup_fallback_when_target_unreachable():
    result = measure_speedup(
        num_qubits=6,
        resolution=(12, 24),
        target_nrmse=1e-9,  # unreachable
        fractions=(0.05, 0.10),
        seed=0,
    )
    assert result.achieved_nrmse > result.target_nrmse
    assert result.fraction in (0.05, 0.10)


def test_run_table5_single_pair_smoke():
    rows = run_table5(
        pairs=(("noisy-sim-i", "noisy-sim-ii"),),
        num_qubits=6,
        resolution=(12, 24),
        splits=(0.5,),
        total_fraction=0.15,
        shots=None,
        seed=0,
    )
    (row,) = rows
    assert row.qpu1 == "noisy-sim-i"
    oscar_error, ncm_error = row.split_errors[0.5]
    assert ncm_error <= oscar_error + 1e-9
    assert np.isfinite(row.qpu1_only_error)


def test_full_pipeline_reproducibility():
    """Same seeds -> bitwise-identical reconstruction, end to end."""
    def run():
        problem = random_3_regular_maxcut(8, seed=0)
        ansatz = QaoaAnsatz(problem, p=1)
        grid = qaoa_grid(p=1, resolution=(16, 32))
        generator = LandscapeGenerator(cost_function(ansatz), grid)
        oscar = OscarReconstructor(grid, rng=42)
        landscape, report = oscar.reconstruct(generator, 0.1)
        return landscape.values, report.num_samples

    values_a, samples_a = run()
    values_b, samples_b = run()
    assert samples_a == samples_b
    assert np.array_equal(values_a, values_b)


def test_full_3d_uccsd_landscape_reconstruction():
    """A 3-parameter UCCSD landscape reconstructs through the odd-dim
    balanced concatenation reshape."""
    from repro.ansatz import UccsdAnsatz
    from repro.landscape import GridAxis, ParameterGrid
    from repro.landscape import nrmse as _nrmse
    from repro.problems import h2_hamiltonian

    ansatz = UccsdAnsatz(h2_hamiltonian(), num_parameters=3)
    grid = ParameterGrid(
        [GridAxis(name, -np.pi, np.pi, 8) for name in ansatz.parameter_names()]
    )
    generator = LandscapeGenerator(cost_function(ansatz), grid)
    truth = generator.grid_search()
    oscar = OscarReconstructor(grid, rng=0)
    reconstruction, report = oscar.reconstruct(generator, 0.3)
    assert reconstruction.values.shape == (8, 8, 8)
    assert _nrmse(truth.values, reconstruction.values) < 0.5
